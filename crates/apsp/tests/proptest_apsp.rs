//! Property-based tests for the APSP applications: spanner stretch and
//! (3,2)-estimate domination on arbitrary weighted graphs.

use congest_apsp::baswana_sen::baswana_sen_spanner;
use congest_apsp::prt12::prt12_apsp;
use congest_graph::algo::apsp::{apsp_unweighted, apsp_weighted, measure_stretch_weighted};
use congest_graph::algo::components::is_connected;
use congest_graph::{Graph, GraphBuilder, WeightedGraph};
use proptest::prelude::*;

fn arb_connected_weighted(max_n: usize) -> impl Strategy<Value = WeightedGraph> {
    (5..max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mix = |mut z: u64| {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        };
        let mut b = GraphBuilder::new(n);
        let mut edges = std::collections::BTreeSet::new();
        for v in 1..n as u32 {
            let u = (mix(seed ^ v as u64) % v as u64) as u32;
            edges.insert((u, v));
        }
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if mix(seed ^ (((u as u64) << 32) | v as u64)) % 100 < 40 {
                    edges.insert((u, v));
                }
            }
        }
        let edge_vec: Vec<(u32, u32)> = edges.into_iter().collect();
        for &(u, v) in &edge_vec {
            b.push_edge(u, v);
        }
        let g = b.build().unwrap();
        let w: Vec<f64> = (0..g.m())
            .map(|e| 1.0 + (mix(seed ^ (e as u64) << 7) % 50) as f64)
            .collect();
        WeightedGraph::new(g, w)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Baswana–Sen stretch ≤ 2k−1 on arbitrary connected weighted graphs,
    /// with the spanner always a subgraph that dominates distances.
    #[test]
    fn spanner_stretch_bound(g in arb_connected_weighted(18), k in 1usize..4, seed in any::<u64>()) {
        let spanner = baswana_sen_spanner(&g, k, seed);
        let h = spanner.as_graph(&g);
        let dg = apsp_weighted(&g);
        let dh = apsp_weighted(&h);
        let stretch = measure_stretch_weighted(&dg, &dh).expect("domination");
        prop_assert!(stretch <= (2 * k - 1) as f64 + 1e-9,
            "stretch {} > {}", stretch, 2 * k - 1);
    }

    /// PRT12's staggered schedule is collision-free and exact on
    /// arbitrary connected graphs.
    #[test]
    fn prt12_exact_and_collision_free(g in arb_connected_weighted(18)) {
        let base: &Graph = g.graph();
        prop_assume!(is_connected(base));
        let out = prt12_apsp(base);
        prop_assert!(out.max_collisions <= 1);
        let exact = apsp_unweighted(base);
        prop_assert_eq!(out.dist, exact);
    }

    /// Spanner size bound `O(k·n^{1+1/k})` with a generous constant.
    #[test]
    fn spanner_size_law(g in arb_connected_weighted(20), seed in any::<u64>()) {
        let k = 2;
        let spanner = baswana_sen_spanner(&g, k, seed);
        let n = g.n() as f64;
        let bound = 8.0 * k as f64 * n.powf(1.0 + 1.0 / k as f64);
        prop_assert!((spanner.size() as f64) < bound,
            "size {} vs bound {}", spanner.size(), bound);
    }
}
