//! The Peleg–Roditty–Tal APSP on the cluster graph (paper Lemma 6).
//!
//! PRT12's linear-time APSP: depth-first-**walk** the graph once,
//! obtaining first-visit walk timestamps `π(u)` (every tree-edge
//! traversal, descending or backtracking, advances the clock); then every
//! node starts a full BFS at time `2·π(u)`. Because the walk moves one
//! edge per step, `|π(u) − π(w)| ≥ d(u, w)`, so the staggered waves are
//! **collision-free**: a node receiving waves of `u ≠ w` simultaneously
//! would need `2|π(u) − π(w)| = |d(w,v) − d(u,v)| ≤ d(u,w)` — impossible.
//! All BFS runs therefore fit the 1-message-per-edge-round budget at
//! once, finishing after `≤ 4k + ecc` rounds (k = cluster-graph size).
//!
//! We *simulate* the wave schedule exactly (arrival of `u`'s wave at `v`
//! happens at `2π(u) + d(u,v)`), asserting the collision-freeness claim on
//! every instance rather than trusting it, and report the virtual round
//! count. Lemma 6 then charges 3 `G`-rounds per virtual round (center →
//! cluster members → neighboring cluster members → their centers), plus
//! `O(k)` rounds for centers to learn their `Gc`-neighborhoods up front.

use congest_graph::algo::apsp::apsp_unweighted;
use congest_graph::algo::dfs::dfs_walk_first_visit;
use congest_graph::Graph;

/// Result of the PRT12 schedule simulation.
#[derive(Debug, Clone)]
pub struct Prt12Outcome {
    /// All-pairs distances on the (cluster) graph.
    pub dist: Vec<Vec<u32>>,
    /// Virtual rounds of the staggered-BFS schedule:
    /// `max over (u,v) of 2π(u) + d(u,v)`.
    pub virtual_rounds: u64,
    /// `G`-rounds charged by Lemma 6: `3·virtual + k` (neighborhood
    /// learning).
    pub charged_g_rounds: u64,
    /// Maximum number of distinct waves hitting one node in one round —
    /// PRT12's collision-freeness says this is ≤ 1 (asserted).
    pub max_collisions: usize,
}

/// Simulate PRT12 on `g` (the cluster graph). Panics if `g` is
/// disconnected (cluster graphs of connected graphs are connected).
pub fn prt12_apsp(g: &Graph) -> Prt12Outcome {
    let k = g.n();
    assert!(k > 0);
    let pi = dfs_walk_first_visit(g, 0);
    assert!(
        pi.iter().all(|&t| t != u32::MAX),
        "PRT12 needs a connected graph"
    );
    let dist = apsp_unweighted(g);

    // Collision check: wave of u reaches v at t(u, v) = 2π(u) + d(u, v).
    // PRT12 Lemma: for u ≠ u', t(u, v) ≠ t(u', v).
    let mut virtual_rounds = 0u64;
    let mut max_collisions = 0usize;
    let mut seen: Vec<u64> = Vec::new();
    for v in 0..k {
        seen.clear();
        for (u, dist_u) in dist.iter().enumerate() {
            if u == v {
                continue;
            }
            let d = dist_u[v];
            assert_ne!(d, u32::MAX, "connected");
            let t = 2 * pi[u] as u64 + d as u64;
            virtual_rounds = virtual_rounds.max(t);
            seen.push(t);
        }
        seen.sort_unstable();
        let mut run = 1usize;
        let mut worst = 1usize;
        for w in seen.windows(2) {
            if w[0] == w[1] {
                run += 1;
                worst = worst.max(run);
            } else {
                run = 1;
            }
        }
        if k > 1 {
            max_collisions = max_collisions.max(worst);
        }
    }
    assert!(
        max_collisions <= 1,
        "PRT12 collision-freeness violated: {max_collisions} waves in one round"
    );

    Prt12Outcome {
        dist,
        virtual_rounds,
        charged_g_rounds: 3 * virtual_rounds + k as u64,
        max_collisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{complete, cycle, harary, path, torus2d};

    #[test]
    fn distances_are_exact() {
        for g in [path(9), cycle(8), torus2d(4, 4), complete(6)] {
            let out = prt12_apsp(&g);
            let exact = apsp_unweighted(&g);
            assert_eq!(out.dist, exact);
        }
    }

    #[test]
    fn collision_freeness_holds_everywhere() {
        for g in [path(12), cycle(15), torus2d(5, 5), harary(4, 30)] {
            let out = prt12_apsp(&g);
            assert!(out.max_collisions <= 1);
        }
    }

    #[test]
    fn virtual_rounds_linear_in_k() {
        let g = cycle(20);
        let out = prt12_apsp(&g);
        // Walk times < 2(k−1); start delays < 4(k−1); plus eccentricity.
        assert!(out.virtual_rounds <= 4 * 19 + 10);
        assert!(out.virtual_rounds >= 20, "late starters dominate");
        assert_eq!(out.charged_g_rounds, 3 * out.virtual_rounds + 20);
    }

    #[test]
    fn single_node_graph() {
        let g = congest_graph::GraphBuilder::new(1).build().unwrap();
        let out = prt12_apsp(&g);
        assert_eq!(out.dist, vec![vec![0]]);
        assert_eq!(out.virtual_rounds, 0);
    }
}
