//! Theorem 4: `(3,2)`-approximate unweighted APSP in `Õ(n/λ)` rounds.
//!
//! Pipeline (exactly the paper's proof of Theorem 4):
//!
//! 1. build the radius-1 clustering and the cluster graph `Gc`
//!    ([`crate::clustering`], 3 measured rounds);
//! 2. solve APSP on `Gc` via PRT12 ([`crate::prt12`], charged
//!    `3·virtual + #clusters` G-rounds per Lemma 6);
//! 3. every center broadcasts its distance vector to its own cluster —
//!    charged `#clusters` rounds (each member is adjacent to its center;
//!    pipelining one distance per round);
//! 4. every node broadcasts `s(v)` to the whole graph — **n messages
//!    through the real Theorem 1 broadcast** (measured rounds);
//! 5. everyone evaluates `d̃(u,v) = 3·d_Gc(s(u), s(v)) + 2` locally
//!    (Lemma 7 proves `d ≤ d̃ ≤ 3d + 2`).

use crate::clustering::{build_clustering_retrying_hosted, ClusterGraph, ClusteringError};
use crate::prt12::prt12_apsp;
use congest_core::broadcast::{
    partition_broadcast_retrying_hosted, BroadcastConfig, BroadcastError, BroadcastInput,
};
use congest_core::partition::PartitionParams;
use congest_graph::{Graph, Node};
use congest_sim::{PhaseLog, RunStats};

/// Outcome of the full Theorem 4 pipeline.
#[derive(Debug, Clone)]
pub struct UnweightedApspOutcome {
    /// The clustering used.
    pub cluster_graph: ClusterGraph,
    /// Distance estimates: `estimate[u][v]` (exactly 0 on the diagonal).
    pub estimate: Vec<Vec<u32>>,
    /// Per-phase accounting; "(charged)" phases follow Lemma 6/paper
    /// accounting rather than simulation.
    pub phases: PhaseLog,
    /// Total rounds (measured + charged).
    pub total_rounds: u64,
}

/// Errors from the pipeline.
#[derive(Debug)]
pub enum ApspError {
    Clustering(ClusteringError),
    Broadcast(BroadcastError),
}

impl std::fmt::Display for ApspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApspError::Clustering(e) => write!(f, "clustering: {e}"),
            ApspError::Broadcast(e) => write!(f, "broadcast: {e}"),
        }
    }
}

impl std::error::Error for ApspError {}

/// Run Theorem 4. `lambda` parameterizes the broadcast (learned via
/// Lemma 4 / exponential search in the full system; passed here so
/// experiments can sweep it).
pub fn unweighted_apsp_approx(
    g: &Graph,
    lambda: usize,
    seed: u64,
) -> Result<UnweightedApspOutcome, ApspError> {
    let n = g.n();
    // One resident engine serves the clustering phase and every phase of
    // the Theorem 1 broadcast below.
    let mut host = congest_sim::PhaseHost::resident(g);
    let mut phases = PhaseLog::new();

    // 1. Clustering (3 measured rounds).
    let (cg, cluster_stats) = build_clustering_retrying_hosted(&mut host, 2.0, seed, 20)
        .map_err(ApspError::Clustering)?;
    phases.record("clustering", cluster_stats);

    // 2. PRT12 on the cluster graph (charged per Lemma 6).
    let prt = prt12_apsp(&cg.graph);
    phases.record("prt12-on-Gc (charged)", charged(prt.charged_g_rounds));

    // 3. Centers → members distance vectors (charged: one hop, pipelined).
    phases.record("center-vectors (charged)", charged(cg.centers.len() as u64));

    // 4. Broadcast s(v) for all v with the real Theorem 1 broadcast.
    //    Payload packs (v, cluster_of(v)).
    let input = BroadcastInput {
        messages: (0..n as Node)
            .map(|v| (v, ((v as u64) << 32) | cg.cluster_of[v as usize] as u64))
            .collect(),
    };
    let params =
        PartitionParams::from_lambda(n, lambda, congest_core::broadcast::DEFAULT_PARTITION_C);
    let (bc, _) = partition_broadcast_retrying_hosted(
        &mut host,
        &input,
        params,
        &BroadcastConfig::with_seed(seed ^ 0xB0),
        20,
    )
    .map_err(ApspError::Broadcast)?;
    debug_assert!(bc.all_delivered());
    for (name, st) in bc.phases.phases() {
        phases.record(format!("broadcast-s(v): {name}"), *st);
    }

    // 5. Local evaluation of the (3,2) estimates.
    let mut estimate = vec![vec![0u32; n]; n];
    for (u, row) in estimate.iter_mut().enumerate() {
        let cu = cg.cluster_of[u] as usize;
        for (v, slot) in row.iter_mut().enumerate() {
            if u == v {
                continue;
            }
            let cv = cg.cluster_of[v] as usize;
            *slot = 3 * prt.dist[cu][cv] + 2;
        }
    }

    let total_rounds = phases.total_rounds();
    Ok(UnweightedApspOutcome {
        cluster_graph: cg,
        estimate,
        phases,
        total_rounds,
    })
}

/// A stats record carrying only a charged round count.
fn charged(rounds: u64) -> RunStats {
    RunStats {
        rounds,
        iterations: rounds,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::algo::apsp::{apsp_unweighted, measure_stretch_unweighted};
    use congest_graph::generators::{complete, harary, torus2d};

    fn verify_32_guarantee(g: &Graph, lambda: usize, seed: u64) {
        let out = unweighted_apsp_approx(g, lambda, seed).unwrap();
        let exact = apsp_unweighted(g);
        // d ≤ d̃ everywhere and d̃ ≤ 3d + 2.
        let alpha = measure_stretch_unweighted(&exact, &out.estimate, 2).unwrap();
        assert!(
            alpha <= 3.0 + 1e-9,
            "multiplicative stretch {alpha} exceeds 3"
        );
    }

    #[test]
    fn guarantee_on_harary() {
        verify_32_guarantee(&harary(10, 50), 10, 3);
    }

    #[test]
    fn guarantee_on_torus() {
        verify_32_guarantee(&torus2d(5, 6), 4, 7);
    }

    #[test]
    fn guarantee_on_complete() {
        verify_32_guarantee(&complete(40), 39, 1);
    }

    #[test]
    fn phases_include_measured_and_charged() {
        let g = harary(8, 40);
        let out = unweighted_apsp_approx(&g, 8, 5).unwrap();
        let names: Vec<&str> = out.phases.phases().map(|(n, _)| n).collect();
        assert!(names.iter().any(|n| n.contains("clustering")));
        assert!(names.iter().any(|n| n.contains("charged")));
        assert!(names.iter().any(|n| n.contains("broadcast")));
        assert!(out.total_rounds > 0);
    }

    #[test]
    fn diagonal_is_zero_and_symmetric_inputs_behave() {
        let g = harary(6, 30);
        let out = unweighted_apsp_approx(&g, 6, 11).unwrap();
        for u in 0..g.n() {
            assert_eq!(out.estimate[u][u], 0);
        }
    }
}
