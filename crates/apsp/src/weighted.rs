//! Theorem 5 / Corollary 1: `(2k−1)`-approximate **weighted** APSP in
//! `Õ(n^{1+1/k}/λ)` rounds.
//!
//! Proof recipe, reproduced: build a Baswana–Sen `(2k−1)`-spanner with
//! `m̃ = O(k·n^{1+1/k})` edges (charged `O(k²)` rounds per \[BS07\]), then
//! broadcast all `m̃` spanner edges to everyone with the **real Theorem 1
//! broadcast** (measured rounds — this is the dominant term), after which
//! every node solves APSP on the spanner locally.
//!
//! Each spanner edge is one broadcast message packing
//! `(u: 24 bits, v: 24 bits, weight: 16 bits)` — a constant number of
//! `O(log n)`-bit words, as the paper assumes.

use crate::baswana_sen::{baswana_sen_spanner, corollary1_k, SpannerResult};
use congest_core::broadcast::{
    partition_broadcast_retrying, BroadcastConfig, BroadcastError, BroadcastInput,
};
use congest_core::partition::PartitionParams;
use congest_graph::{Node, WeightedGraph};
use congest_sim::{PhaseLog, RunStats};

/// Outcome of the full Theorem 5 pipeline.
#[derive(Debug, Clone)]
pub struct WeightedApspOutcome {
    /// The spanner that was broadcast.
    pub spanner_edges: usize,
    /// Stretch parameter used (stretch = 2k−1).
    pub k: usize,
    /// Distance estimates = exact APSP on the spanner.
    pub estimate: Vec<Vec<f64>>,
    pub phases: PhaseLog,
    pub total_rounds: u64,
}

/// Pack a spanner edge into a broadcast payload. Bounds asserted.
pub fn pack_edge(u: Node, v: Node, w: f64) -> u64 {
    assert!(u < (1 << 24) && v < (1 << 24), "node ids must fit 24 bits");
    let wi = w as u64;
    assert!(
        wi < (1 << 16) && (wi as f64 - w).abs() < 1e-9,
        "weights must be integers < 65536 for wire packing (got {w})"
    );
    ((u as u64) << 40) | ((v as u64) << 16) | wi
}

/// Inverse of [`pack_edge`].
pub fn unpack_edge(p: u64) -> (Node, Node, f64) {
    (
        (p >> 40) as Node,
        ((p >> 16) & 0xFF_FFFF) as Node,
        (p & 0xFFFF) as f64,
    )
}

/// Run Theorem 5 with explicit `k`.
pub fn weighted_apsp_approx(
    g: &WeightedGraph,
    k: usize,
    lambda: usize,
    seed: u64,
) -> Result<WeightedApspOutcome, BroadcastError> {
    let n = g.n();
    let mut phases = PhaseLog::new();

    // 1. Spanner construction (charged O(k²) rounds per [BS07]).
    let spanner: SpannerResult = baswana_sen_spanner(g, k, seed);
    phases.record(
        "baswana-sen (charged)",
        RunStats {
            rounds: spanner.charged_rounds,
            iterations: spanner.charged_rounds,
            ..Default::default()
        },
    );

    // 2. Broadcast the spanner: one message per spanner edge, held by the
    //    higher-id endpoint (which locally knows the edge).
    let input = BroadcastInput {
        messages: spanner
            .edges
            .iter()
            .map(|&e| {
                let (u, v) = g.graph().endpoints(e);
                (u.max(v), pack_edge(u, v, g.weight(e)))
            })
            .collect(),
    };
    let params =
        PartitionParams::from_lambda(n, lambda, congest_core::broadcast::DEFAULT_PARTITION_C);
    // The broadcast (and its retries) runs all six Theorem 1 phases on
    // one resident engine session (`BroadcastConfig::phase_resident`).
    let (bc, _) = partition_broadcast_retrying(
        g.graph(),
        &input,
        params,
        &BroadcastConfig::with_seed(seed ^ 0x5A),
        20,
    )?;
    debug_assert!(bc.all_delivered());
    for (name, st) in bc.phases.phases() {
        phases.record(format!("broadcast-spanner: {name}"), *st);
    }

    // 3. Local APSP on the received spanner (every node would run this on
    //    its local copy; we compute it once).
    let h = spanner.as_graph(g);
    let estimate = congest_graph::algo::apsp::apsp_weighted(&h);

    let total_rounds = phases.total_rounds();
    Ok(WeightedApspOutcome {
        spanner_edges: spanner.size(),
        k,
        estimate,
        phases,
        total_rounds,
    })
}

/// Corollary 1: `k = ⌈log n/log log n⌉` ⇒ `O(log n/log log n)`-approximate
/// weighted APSP in `Õ(n/λ)` rounds.
pub fn corollary1_apsp(
    g: &WeightedGraph,
    lambda: usize,
    seed: u64,
) -> Result<WeightedApspOutcome, BroadcastError> {
    weighted_apsp_approx(g, corollary1_k(g.n()), lambda, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::algo::apsp::{apsp_weighted, measure_stretch_weighted};
    use congest_graph::generators::harary;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn weighted_harary(k: usize, n: usize, seed: u64) -> WeightedGraph {
        let g = harary(k, n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let w: Vec<f64> = (0..g.m()).map(|_| rng.gen_range(1..50) as f64).collect();
        WeightedGraph::new(g, w)
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let (u, v, w) = unpack_edge(pack_edge(123, 45678, 999.0));
        assert_eq!((u, v, w), (123, 45678, 999.0));
    }

    #[test]
    #[should_panic(expected = "weights must be integers")]
    fn pack_rejects_fractional_weight() {
        pack_edge(1, 2, 1.5);
    }

    #[test]
    fn theorem5_guarantee_k2() {
        let g = weighted_harary(10, 40, 1);
        let out = weighted_apsp_approx(&g, 2, 10, 7).unwrap();
        let exact = apsp_weighted(&g);
        let stretch = measure_stretch_weighted(&exact, &out.estimate).unwrap();
        assert!(stretch <= 3.0 + 1e-9, "stretch {stretch} > 2k-1 = 3");
        assert!(out.spanner_edges <= g.m());
        assert!(out.total_rounds > 0);
    }

    #[test]
    fn theorem5_guarantee_k3() {
        let g = weighted_harary(8, 48, 2);
        let out = weighted_apsp_approx(&g, 3, 8, 9).unwrap();
        let exact = apsp_weighted(&g);
        let stretch = measure_stretch_weighted(&exact, &out.estimate).unwrap();
        assert!(stretch <= 5.0 + 1e-9, "stretch {stretch} > 2k-1 = 5");
    }

    #[test]
    fn corollary1_runs() {
        let g = weighted_harary(10, 50, 3);
        let out = corollary1_apsp(&g, 10, 11).unwrap();
        let exact = apsp_weighted(&g);
        let stretch = measure_stretch_weighted(&exact, &out.estimate).unwrap();
        let k = corollary1_k(50);
        assert!(stretch <= (2 * k - 1) as f64 + 1e-9);
    }

    #[test]
    fn fewer_spanner_edges_for_larger_k() {
        let g = weighted_harary(12, 48, 4);
        let e2 = weighted_apsp_approx(&g, 2, 12, 5).unwrap().spanner_edges;
        let e4 = weighted_apsp_approx(&g, 4, 12, 5).unwrap().spanner_edges;
        assert!(
            e4 <= e2,
            "larger k must not enlarge the spanner: k=4 gives {e4}, k=2 gives {e2}"
        );
    }
}
