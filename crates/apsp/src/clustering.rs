//! Degree-based clustering (paper Theorem 4, "Building a cluster graph").
//!
//! Each node self-samples as a **center** with probability
//! `p = c·ln n / δ`; since every node has ≥ δ neighbors, w.h.p. every node
//! is adjacent to a center. Every non-center then joins the cluster of one
//! neighboring center (`s(v)`), giving `Õ(n/δ)` clusters of radius 1. The
//! **cluster graph** `Gc` has the centers as nodes and an edge between
//! clusters joined by any `G`-edge; a `G`-path changes clusters at most
//! once per hop, so `d_Gc(s(u), s(v)) ≤ d_G(u, v)` (Lemma 7's key fact).
//!
//! The protocol is 3 real rounds: (1) centers announce; (2) nodes pick
//! `s(v)` and tell their neighbors; (3) nodes record the neighbor-cluster
//! pairs they witness. Cluster-graph assembly from those locally-witnessed
//! pairs is charged to the PRT12 phase per Lemma 6 (centers gather their
//! `Gc`-neighborhoods in `O(#clusters)` rounds).

use congest_graph::{Graph, Node};
use congest_sim::{EngineConfig, EngineError, MsgBits, NodeCtx, PackedMsg, Protocol, RunStats};
use rand::Rng;

/// Per-node clustering output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterInfo {
    /// Whether this node sampled itself as a center.
    pub is_center: bool,
    /// The center this node joined (= itself for centers); `None` if no
    /// neighboring center existed (the w.h.p. failure event).
    pub s: Option<Node>,
    /// Cluster pairs `(s(v), s(u))` witnessed on incident edges.
    pub witnessed: Vec<(Node, Node)>,
}

/// Clustering wire message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterMsg {
    /// "I am a center."
    Announce,
    /// "My cluster is s(v)."
    MyCluster(Node),
}

impl MsgBits for ClusterMsg {
    fn bits(&self) -> usize {
        match self {
            ClusterMsg::Announce => 1,
            ClusterMsg::MyCluster(_) => 1 + 32,
        }
    }
}

/// Bit budget: `tag(1) | center(32)`.
impl PackedMsg for ClusterMsg {
    type Word = u64;
    const WIDTH: u32 = 33;
    #[inline]
    fn pack(self) -> u64 {
        match self {
            ClusterMsg::Announce => 0,
            ClusterMsg::MyCluster(s) => 1 | (s as u64) << 1,
        }
    }
    #[inline]
    fn unpack(word: u64) -> Self {
        if word & 1 == 0 {
            ClusterMsg::Announce
        } else {
            ClusterMsg::MyCluster((word >> 1) as Node)
        }
    }
}

/// The 3-round clustering protocol.
pub struct ClusterProtocol {
    me: Node,
    p: f64,
    info: ClusterInfo,
    center_neighbors: Vec<Node>,
}

impl ClusterProtocol {
    pub fn new(me: Node, p: f64) -> Self {
        ClusterProtocol {
            me,
            p,
            info: ClusterInfo {
                is_center: false,
                s: None,
                witnessed: Vec::new(),
            },
            center_neighbors: Vec::new(),
        }
    }
}

impl Protocol for ClusterProtocol {
    type Msg = ClusterMsg;
    type Output = ClusterInfo;

    fn round(&mut self, ctx: &mut NodeCtx<'_, ClusterMsg>) {
        match ctx.round {
            0 => {
                // Sample and announce.
                self.info.is_center = ctx.rng().gen_bool(self.p.clamp(0.0, 1.0));
                if self.info.is_center {
                    self.info.s = Some(self.me);
                    ctx.send_all(ClusterMsg::Announce);
                }
            }
            1 => {
                let centers: Vec<Node> = ctx
                    .inbox()
                    .filter(|(_, msg)| matches!(msg, ClusterMsg::Announce))
                    .map(|(port, _)| ctx.graph_neighbor(port))
                    .collect();
                self.center_neighbors.extend(centers);
                // Join the lowest-id neighboring center (deterministic);
                // centers keep themselves.
                if !self.info.is_center {
                    self.info.s = self.center_neighbors.iter().copied().min();
                }
                if let Some(s) = self.info.s {
                    ctx.send_all(ClusterMsg::MyCluster(s));
                }
            }
            2 => {
                let my_s = self.info.s;
                for (_, msg) in ctx.inbox() {
                    if let ClusterMsg::MyCluster(su) = msg {
                        if let Some(sv) = my_s {
                            self.info.witnessed.push((sv, su));
                        }
                    }
                }
                ctx.set_done(true);
            }
            _ => ctx.set_done(true),
        }
    }

    fn finish(self) -> ClusterInfo {
        self.info
    }
}

/// Convenience accessor used inside the protocol (NodeCtx::neighbor is the
/// public API; aliased here for clarity).
trait CtxExt {
    fn graph_neighbor(&self, port: u32) -> Node;
}

impl<M: PackedMsg> CtxExt for NodeCtx<'_, M> {
    fn graph_neighbor(&self, port: u32) -> Node {
        self.neighbor(port)
    }
}

/// The assembled cluster graph: dense center renumbering + edges.
#[derive(Debug, Clone)]
pub struct ClusterGraph {
    /// The centers, ascending; index = cluster-graph node id.
    pub centers: Vec<Node>,
    /// `cluster_of[v]` = cluster-graph id of `s(v)`.
    pub cluster_of: Vec<u32>,
    /// The cluster graph itself.
    pub graph: Graph,
}

/// Failure: some node had no neighboring center (resample with larger c).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UncoveredNode(pub Node);

impl std::fmt::Display for UncoveredNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node {} has no neighboring center", self.0)
    }
}

impl std::error::Error for UncoveredNode {}

/// Run the clustering protocol and assemble the cluster graph.
///
/// `c` is the sampling constant in `p = c·ln n/δ` (paper: sufficiently
/// large; c = 2 keeps the failure probability ≤ n⁻¹ while `Õ(n/δ)`
/// clusters remain).
pub fn build_clustering(
    g: &Graph,
    c: f64,
    seed: u64,
) -> Result<(ClusterGraph, RunStats), ClusteringError> {
    let mut host = congest_sim::PhaseHost::resident(g);
    build_clustering_hosted(&mut host, c, seed)
}

/// [`build_clustering`] on a caller-provided engine host, so the APSP
/// pipeline's clustering phase shares the engine its broadcast phases
/// run on.
pub fn build_clustering_hosted(
    host: &mut congest_sim::PhaseHost<'_>,
    c: f64,
    seed: u64,
) -> Result<(ClusterGraph, RunStats), ClusteringError> {
    let g = host.graph();
    let n = g.n();
    let delta = g.min_degree().max(1);
    let p = (c * (n.max(2) as f64).ln() / delta as f64).min(1.0);
    let run = host.run(
        |v, _| ClusterProtocol::new(v, p),
        EngineConfig::with_seed(seed),
    )?;
    let stats = run.stats;
    let outputs = run.take_outputs();
    // Coverage check (w.h.p. event).
    for (v, info) in outputs.iter().enumerate() {
        if info.s.is_none() {
            return Err(ClusteringError::Uncovered(UncoveredNode(v as Node)));
        }
    }
    // Dense renumbering of centers.
    let mut centers: Vec<Node> = outputs
        .iter()
        .enumerate()
        .filter(|(_, i)| i.is_center)
        .map(|(v, _)| v as Node)
        .collect();
    centers.sort_unstable();
    let center_index =
        |c: Node| -> u32 { centers.binary_search(&c).expect("s(v) must be a center") as u32 };
    let cluster_of: Vec<u32> = outputs
        .iter()
        .map(|i| center_index(i.s.expect("covered")))
        .collect();
    // Cluster-graph edges from witnessed pairs (and the direct check on
    // every G-edge via endpoint clusters, equivalent by construction).
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (_, u, v) in g.edge_list() {
        let (cu, cv) = (cluster_of[u as usize], cluster_of[v as usize]);
        if cu != cv {
            edges.push((cu.min(cv), cu.max(cv)));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    let graph = congest_graph::GraphBuilder::new(centers.len())
        .edges(edges)
        .build()
        .expect("deduped cluster edges are simple");
    Ok((
        ClusterGraph {
            centers,
            cluster_of,
            graph,
        },
        stats,
    ))
}

/// Clustering failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusteringError {
    Uncovered(UncoveredNode),
    Engine(EngineError),
}

impl From<EngineError> for ClusteringError {
    fn from(e: EngineError) -> Self {
        ClusteringError::Engine(e)
    }
}

impl std::fmt::Display for ClusteringError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusteringError::Uncovered(u) => u.fmt(f),
            ClusteringError::Engine(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ClusteringError {}

/// Retry wrapper over the w.h.p. coverage event.
pub fn build_clustering_retrying(
    g: &Graph,
    c: f64,
    seed: u64,
    attempts: usize,
) -> Result<(ClusterGraph, RunStats), ClusteringError> {
    let mut host = congest_sim::PhaseHost::resident(g);
    build_clustering_retrying_hosted(&mut host, c, seed, attempts)
}

/// [`build_clustering_retrying`] on a caller-provided engine host.
pub fn build_clustering_retrying_hosted(
    host: &mut congest_sim::PhaseHost<'_>,
    c: f64,
    seed: u64,
    attempts: usize,
) -> Result<(ClusterGraph, RunStats), ClusteringError> {
    let mut last = None;
    for a in 0..attempts.max(1) {
        match build_clustering_hosted(host, c, seed.wrapping_add(a as u64 * 0xC11)) {
            Ok(ok) => return Ok(ok),
            Err(e @ ClusteringError::Uncovered(_)) => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("at least one attempt"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::algo::apsp::apsp_unweighted;
    use congest_graph::generators::{complete, harary, torus2d};

    #[test]
    fn every_node_clustered_and_adjacent_to_center() {
        let g = harary(10, 60);
        let (cg, stats) = build_clustering_retrying(&g, 2.0, 5, 10).unwrap();
        assert!(stats.rounds <= 3, "clustering is a 3-round protocol");
        assert!(!cg.centers.is_empty());
        for v in 0..g.n() as Node {
            let ci = cg.cluster_of[v as usize] as usize;
            let center = cg.centers[ci];
            assert!(
                v == center || g.has_edge(v, center),
                "node {v} must be adjacent to its center {center}"
            );
        }
    }

    #[test]
    fn cluster_graph_distance_lower_bounds_g_distance() {
        // Lemma 7: d_Gc(s(u), s(v)) ≤ d_G(u, v).
        let g = torus2d(5, 6);
        let (cg, _) = build_clustering_retrying(&g, 2.0, 9, 10).unwrap();
        let dg = apsp_unweighted(&g);
        let dc = apsp_unweighted(&cg.graph);
        #[allow(clippy::needless_range_loop)]
        for u in 0..g.n() {
            for v in 0..g.n() {
                let (cu, cv) = (cg.cluster_of[u] as usize, cg.cluster_of[v] as usize);
                assert!(
                    dc[cu][cv] <= dg[u][v],
                    "d_Gc({cu},{cv}) = {} > d_G({u},{v}) = {}",
                    dc[cu][cv],
                    dg[u][v]
                );
            }
        }
    }

    #[test]
    fn cluster_count_scales_as_n_log_n_over_delta() {
        let g = complete(200); // δ = 199 ⇒ expect ~c·ln n ≈ 10.6 centers
        let (cg, _) = build_clustering_retrying(&g, 2.0, 3, 10).unwrap();
        let expected = 2.0 * (200f64).ln();
        assert!(
            (cg.centers.len() as f64) < 5.0 * expected,
            "too many centers: {} vs expected ≈ {expected:.0}",
            cg.centers.len()
        );
    }

    #[test]
    fn centers_cluster_to_themselves() {
        let g = harary(8, 40);
        let (cg, _) = build_clustering_retrying(&g, 2.0, 1, 10).unwrap();
        for (i, &c) in cg.centers.iter().enumerate() {
            assert_eq!(cg.cluster_of[c as usize] as usize, i);
        }
    }
}
