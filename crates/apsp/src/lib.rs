//! # congest-apsp — approximate APSP in `Õ(n/λ)` rounds (paper §4.1–4.2)
//!
//! Two applications of the fast broadcast:
//!
//! * **Unweighted (3,2)-approximate APSP** (Theorem 4, module
//!   [`unweighted`]): decompose the graph into `Õ(n/δ)` constant-diameter
//!   clusters ([`clustering`]), run the Peleg–Roditty–Tal APSP on the
//!   cluster graph ([`prt12`]), and broadcast the cluster assignment with
//!   Theorem 1 so every node can evaluate
//!   `d̃(u,v) = 3·d_Gc(s(u), s(v)) + 2` locally.
//! * **Weighted (2k−1)-approximate APSP** (Theorem 5 / Corollary 1,
//!   module [`weighted`]): build a Baswana–Sen spanner
//!   ([`baswana_sen`]) with `O(k·n^{1+1/k})` edges and broadcast it whole;
//!   every node then solves APSP on the spanner locally.
//!
//! Round accounting is split between *measured* phases (the clustering
//! protocol and every broadcast run as real message passing) and *charged*
//! phases (the PRT12 simulation at 3 G-rounds per cluster-graph round per
//! Lemma 6's proof, and Baswana–Sen's `O(k²)` rounds per \[BS07\]) — each
//! entry in the returned [`congest_sim::PhaseLog`] is labelled accordingly.

pub mod baswana_sen;
pub mod clustering;
pub mod prt12;
pub mod unweighted;
pub mod weighted;

pub use baswana_sen::baswana_sen_spanner;
pub use unweighted::{unweighted_apsp_approx, UnweightedApspOutcome};
pub use weighted::{weighted_apsp_approx, WeightedApspOutcome};
