//! The Baswana–Sen `(2k−1)`-spanner \[BS07\] (paper §4.2, Theorem 5).
//!
//! A randomized clustering construction producing a spanner with
//! `O(k·n^{1+1/k})` edges and multiplicative stretch `2k−1` on weighted
//! graphs:
//!
//! * **Phase 1** (`k−1` iterations): clusters start as singletons; each
//!   iteration samples clusters with probability `n^{-1/k}`. A clustered
//!   vertex whose cluster was not sampled either (a) joins the nearest
//!   sampled neighboring cluster — adding the connecting edge and the
//!   lightest edge to every *strictly closer* cluster — or (b) if no
//!   sampled cluster is adjacent, adds the lightest edge to **every**
//!   neighboring cluster and retires.
//! * **Phase 2**: every vertex with surviving edges adds the lightest edge
//!   to each adjacent final cluster.
//!
//! The paper runs this in `O(k²)` CONGEST rounds \[BS07\] and then
//! broadcasts the spanner; we implement the construction from scratch
//! (centralized, identical output distribution) and charge the `O(k²)`
//! rounds, while the broadcast of the spanner runs through the *real*
//! Theorem 1 machinery (see [`crate::weighted`]).

use congest_graph::{Edge, Node, WeightedGraph};
use congest_sim::rng::mix64;
use std::collections::HashMap;

/// A constructed spanner.
#[derive(Debug, Clone)]
pub struct SpannerResult {
    /// Edge ids (into the source graph) forming the spanner.
    pub edges: Vec<Edge>,
    /// The stretch parameter `k` (stretch = 2k−1).
    pub k: usize,
    /// Charged CONGEST round cost `O(k²)` per \[BS07\].
    pub charged_rounds: u64,
}

impl SpannerResult {
    /// The spanner as a weighted subgraph (same node set).
    pub fn as_graph(&self, g: &WeightedGraph) -> WeightedGraph {
        let keep: std::collections::HashSet<Edge> = self.edges.iter().copied().collect();
        g.filter_map_edges(|e| keep.contains(&e), |_, w| w)
    }

    pub fn size(&self) -> usize {
        self.edges.len()
    }
}

/// Build a `(2k−1)`-spanner of `g`.
pub fn baswana_sen_spanner(g: &WeightedGraph, k: usize, seed: u64) -> SpannerResult {
    assert!(k >= 1);
    let n = g.n();
    if n == 0 {
        return SpannerResult {
            edges: Vec::new(),
            k,
            charged_rounds: 0,
        };
    }
    let sample_p = (n as f64).powf(-1.0 / k as f64);
    // cluster[v]: Some(center) while v is clustered, None once retired.
    let mut cluster: Vec<Option<Node>> = (0..n as Node).map(Some).collect();
    let mut removed = vec![false; g.m()];
    let mut spanner: Vec<Edge> = Vec::new();
    // (weight, edge) ordering with edge-id tie-break for determinism.
    let lighter =
        |a: (f64, Edge), b: (f64, Edge)| -> bool { a.0 < b.0 || (a.0 == b.0 && a.1 < b.1) };

    for phase in 1..k {
        // Sample clusters of the previous level by their center id.
        let sampled = |center: Node| -> bool {
            let h = mix64(seed ^ mix64(((phase as u64) << 32) | center as u64));
            (h as f64 / u64::MAX as f64) < sample_p
        };
        let prev_cluster = cluster.clone();
        for v in 0..n as Node {
            let Some(my_c) = prev_cluster[v as usize] else {
                continue; // retired
            };
            if sampled(my_c) {
                continue; // stays in its (sampled) cluster
            }
            // Lightest edge per adjacent (previous-level) cluster.
            let mut best: HashMap<Node, (f64, Edge)> = HashMap::new();
            for (u, e, w) in g.edges_of(v) {
                if removed[e as usize] {
                    continue;
                }
                let Some(cu) = prev_cluster[u as usize] else {
                    continue;
                };
                if cu == my_c {
                    continue;
                }
                let cand = (w, e);
                best.entry(cu)
                    .and_modify(|cur| {
                        if lighter(cand, *cur) {
                            *cur = cand;
                        }
                    })
                    .or_insert(cand);
            }
            // Nearest sampled adjacent cluster, if any.
            let nearest_sampled = best
                .iter()
                .filter(|(&c, _)| sampled(c))
                .map(|(&c, &we)| (c, we))
                .min_by(|a, b| {
                    if lighter(a.1, b.1) {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                });
            match nearest_sampled {
                None => {
                    // Retire: connect to every adjacent cluster, drop all
                    // of v's surviving edges.
                    for (&c, &(_, e)) in best.iter() {
                        spanner.push(e);
                        let _ = c;
                    }
                    for (_, e, _) in g.edges_of(v) {
                        removed[e as usize] = true;
                    }
                    cluster[v as usize] = None;
                }
                Some((c_star, e_star)) => {
                    spanner.push(e_star.1);
                    cluster[v as usize] = Some(c_star);
                    // Lightest edge to every strictly closer cluster, and
                    // remove the resolved groups.
                    for (&c, &(w, e)) in best.iter() {
                        if c == c_star {
                            continue;
                        }
                        if lighter((w, e), e_star) {
                            spanner.push(e);
                            // Resolved: drop edges from v into cluster c.
                            for (u2, e2, _) in g.edges_of(v) {
                                if prev_cluster[u2 as usize] == Some(c) {
                                    removed[e2 as usize] = true;
                                }
                            }
                        }
                    }
                    // Drop edges into the joined cluster too (covered by
                    // the cluster tree through e_star).
                    for (u2, e2, _) in g.edges_of(v) {
                        if prev_cluster[u2 as usize] == Some(c_star) && e2 != e_star.1 {
                            removed[e2 as usize] = true;
                        }
                    }
                }
            }
        }
    }

    // Phase 2: lightest edge to each adjacent final cluster.
    for v in 0..n as Node {
        let my_c = cluster[v as usize];
        let mut best: HashMap<Node, (f64, Edge)> = HashMap::new();
        for (u, e, w) in g.edges_of(v) {
            if removed[e as usize] {
                continue;
            }
            let Some(cu) = cluster[u as usize] else {
                continue;
            };
            if Some(cu) == my_c {
                continue;
            }
            let cand = (w, e);
            best.entry(cu)
                .and_modify(|cur| {
                    if lighter(cand, *cur) {
                        *cur = cand;
                    }
                })
                .or_insert(cand);
        }
        for (_, &(_, e)) in best.iter() {
            spanner.push(e);
        }
    }

    spanner.sort_unstable();
    spanner.dedup();
    SpannerResult {
        edges: spanner,
        k,
        charged_rounds: (k * k) as u64,
    }
}

/// Corollary 1's parameter: `k = ⌈log n / log log n⌉` turns the size into
/// `Õ(n)` and the stretch into `O(log n / log log n)`.
pub fn corollary1_k(n: usize) -> usize {
    let ln_n = (n.max(3) as f64).ln();
    let ln_ln_n = ln_n.ln().max(1.0);
    (ln_n / ln_ln_n).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::algo::apsp::{apsp_weighted, measure_stretch_weighted};
    use congest_graph::generators::{complete, gnp_connected, harary};
    use congest_graph::WeightedGraph;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_weights(g: congest_graph::Graph, seed: u64) -> WeightedGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let w: Vec<f64> = (0..g.m()).map(|_| rng.gen_range(1..100) as f64).collect();
        WeightedGraph::new(g, w)
    }

    fn check_stretch(g: &WeightedGraph, k: usize, seed: u64) -> (usize, f64) {
        let spanner = baswana_sen_spanner(g, k, seed);
        let h = spanner.as_graph(g);
        let dg = apsp_weighted(g);
        let dh = apsp_weighted(&h);
        let stretch = measure_stretch_weighted(&dg, &dh).expect("spanner must dominate distances");
        assert!(
            stretch <= (2 * k - 1) as f64 + 1e-9,
            "stretch {stretch} exceeds 2k-1 = {}",
            2 * k - 1
        );
        (spanner.size(), stretch)
    }

    #[test]
    fn k1_returns_whole_graph() {
        let g = random_weights(complete(10), 1);
        let (size, stretch) = check_stretch(&g, 1, 2);
        assert_eq!(size, g.m());
        assert!((stretch - 1.0).abs() < 1e-9);
    }

    #[test]
    fn k2_spanner_on_complete_graph() {
        let g = random_weights(complete(30), 3);
        let (size, _) = check_stretch(&g, 2, 4);
        // O(k n^{1.5}) = 2·164 ≈ 330 ≫ size; must beat the full 435 edges.
        assert!(size < g.m(), "spanner must drop edges on K_30");
    }

    #[test]
    fn k3_spanner_on_random_graph() {
        let g = random_weights(gnp_connected(60, 0.3, 5), 6);
        let (size, _) = check_stretch(&g, 3, 7);
        let bound = 6.0 * 3.0 * (60f64).powf(1.0 + 1.0 / 3.0);
        assert!(
            (size as f64) < bound,
            "size {size} exceeds O(k·n^(1+1/k)) slack bound {bound:.0}"
        );
    }

    #[test]
    fn stretch_on_harary_unit_weights() {
        let g = WeightedGraph::unit(harary(6, 36));
        check_stretch(&g, 2, 9);
        check_stretch(&g, 3, 10);
    }

    #[test]
    fn spanner_is_deterministic_in_seed() {
        let g = random_weights(gnp_connected(40, 0.3, 2), 3);
        let a = baswana_sen_spanner(&g, 3, 42);
        let b = baswana_sen_spanner(&g, 3, 42);
        let c = baswana_sen_spanner(&g, 3, 43);
        assert_eq!(a.edges, b.edges);
        // Different seeds will (almost surely) differ on a 40-node graph.
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn corollary1_parameter() {
        // ln 3 ≈ 1.1, ln ln clamped to 1 ⇒ k = ⌈1.1⌉ = 2.
        assert_eq!(corollary1_k(3), 2);
        let k = corollary1_k(1_000_000);
        // ln(1e6) ≈ 13.8, ln ln ≈ 2.63 ⇒ k = ⌈5.25⌉ = 6.
        assert_eq!(k, 6);
    }

    #[test]
    fn charged_rounds_are_k_squared() {
        let g = WeightedGraph::unit(complete(12));
        let s = baswana_sen_spanner(&g, 4, 1);
        assert_eq!(s.charged_rounds, 16);
    }
}
