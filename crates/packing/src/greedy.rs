//! Greedy edge-disjoint spanning-tree extraction.
//!
//! Tutte/Nash-Williams guarantee ⌊λ/2⌋ edge-disjoint spanning trees exist
//! in any λ-edge-connected graph. Two greedy constructions:
//!
//! * [`greedy_disjoint_spanning_trees`] — repeated **BFS** trees on the
//!   residual edges. Trees are shallow, but a BFS tree drains its root's
//!   edges (on `K_n` the first tree is a star that isolates the root in
//!   the residual), so repeated-BFS stalls early on dense graphs.
//! * [`random_disjoint_spanning_trees`] — repeated **Kruskal over a
//!   seeded random edge order**. Usage spreads evenly, so the residual
//!   stays connected for many more rounds; tree diameters are whatever
//!   random spanning trees give.
//!
//! Greedy extraction is a cheap constructive *lower bound* on the packing
//! number: it can fall short of ⌊λ/2⌋ (the tests pin concrete shortfalls).
//! When the exact number matters, use the matroid-union algorithm in
//! [`crate::matroid`], which is optimal by Edmonds' theorem.

use crate::packing::TreePacking;
use congest_graph::algo::bfs::{bfs_tree_restricted, BfsTree, UNREACHABLE};
use congest_graph::algo::components::UnionFind;
use congest_graph::{Graph, Node, INVALID_NODE};
use congest_sim::rng::mix64;

/// Extract up to `want` edge-disjoint spanning trees by repeated BFS on
/// the residual edges, all rooted at `root`. Stops early when the
/// residual disconnects; always returns ≥ 1 tree on a connected graph.
pub fn greedy_disjoint_spanning_trees(g: &Graph, want: usize, root: Node) -> TreePacking {
    let mut used = vec![false; g.m()];
    let mut trees = Vec::new();
    for _ in 0..want {
        let t = bfs_tree_restricted(g, root, |e| !used[e as usize]);
        if !t.is_spanning() {
            break;
        }
        mark_used(g, &t, &mut used);
        trees.push(t);
    }
    TreePacking::new(trees)
}

/// Extract up to `want` edge-disjoint spanning trees via Kruskal over
/// independently seeded random edge orders. Spreads edge usage, so dense
/// graphs yield many more trees than repeated BFS.
pub fn random_disjoint_spanning_trees(g: &Graph, want: usize, seed: u64) -> TreePacking {
    let mut used = vec![false; g.m()];
    let mut trees = Vec::new();
    for t in 0..want {
        match random_kruskal_tree(g, &used, seed ^ mix64(t as u64)) {
            Some(tree) => {
                mark_used(g, &tree, &mut used);
                trees.push(tree);
            }
            None => break,
        }
    }
    TreePacking::new(trees)
}

fn mark_used(g: &Graph, t: &BfsTree, used: &mut [bool]) {
    for v in 0..g.n() {
        if t.parent[v] != INVALID_NODE {
            used[t.parent_edge[v] as usize] = true;
        }
    }
}

/// Kruskal over a random permutation of the unused edges; returns a
/// spanning tree in [`BfsTree`] form (rooted at the minimum node), or
/// `None` if the residual is disconnected.
fn random_kruskal_tree(g: &Graph, used: &[bool], seed: u64) -> Option<BfsTree> {
    let n = g.n();
    let mut order: Vec<u32> = (0..g.m() as u32).filter(|&e| !used[e as usize]).collect();
    // Fisher–Yates with the crate's mixer for determinism.
    for i in (1..order.len()).rev() {
        let j = (mix64(seed ^ mix64(i as u64)) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut uf = UnionFind::new(n);
    let mut chosen: Vec<u32> = Vec::with_capacity(n.saturating_sub(1));
    for &e in &order {
        let (u, v) = g.endpoints(e);
        if uf.union(u, v) {
            chosen.push(e);
            if chosen.len() + 1 == n {
                break;
            }
        }
    }
    if chosen.len() + 1 != n {
        return None;
    }
    // Root the edge set at node 0 and orient parents by BFS within it.
    let mut in_tree = vec![false; g.m()];
    for &e in &chosen {
        in_tree[e as usize] = true;
    }
    let t = bfs_tree_restricted(g, 0, |e| in_tree[e as usize]);
    debug_assert!(t.is_spanning());
    debug_assert!(t.depth.iter().all(|&d| d != UNREACHABLE));
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{complete, cycle, harary, hypercube};

    #[test]
    fn bfs_greedy_extracts_at_least_one() {
        let g = cycle(10); // λ = 2: exactly one spanning tree extractable
        let packing = greedy_disjoint_spanning_trees(&g, 5, 0);
        assert_eq!(packing.num_trees(), 1);
        packing.validate(&g).unwrap();
    }

    #[test]
    fn random_extraction_gets_most_trees_on_harary() {
        // λ = 8 admits ⌊λ/2⌋ = 4 trees (m = 160 leaves just 4 spare
        // edges) — greedy cannot certify that tight a packing; it must
        // still find ≥ 3 valid disjoint trees. The exact count is the
        // matroid algorithm's job (see `matroid::tests`).
        let g = harary(8, 40);
        let packing = random_disjoint_spanning_trees(&g, 4, 7);
        assert!(packing.num_trees() >= 3, "got {}", packing.num_trees());
        packing.validate(&g).unwrap();
        assert!(packing.stats(&g).edge_disjoint);
    }

    #[test]
    fn random_extraction_beats_bfs_on_complete_graphs() {
        // Repeated BFS stalls after one star on K_n; random Kruskal keeps
        // the residual alive for ⌊λ/2⌋-ish rounds.
        let g = complete(16);
        let via_bfs = greedy_disjoint_spanning_trees(&g, 7, 0);
        let via_random = random_disjoint_spanning_trees(&g, 7, 3);
        assert_eq!(via_bfs.num_trees(), 1, "the star pathology");
        assert!(
            via_random.num_trees() >= 5,
            "random got only {}",
            via_random.num_trees()
        );
        via_random.validate(&g).unwrap();
        assert!(via_random.stats(&g).edge_disjoint);
    }

    #[test]
    fn hypercube_two_trees() {
        let g = hypercube(5); // λ = 5
        let packing = random_disjoint_spanning_trees(&g, 2, 1);
        assert_eq!(packing.num_trees(), 2);
        packing.validate(&g).unwrap();
    }

    #[test]
    fn bfs_root_star_pathology_documented() {
        // BFS tree 1 from the root of a circulant parents all the root's
        // neighbors, exhausting every root edge: the residual isolates
        // the root, so repeated BFS stalls at one tree. This is the
        // documented limitation motivating the random and matroid
        // variants.
        let g = harary(10, 60);
        let packing = greedy_disjoint_spanning_trees(&g, 3, 0);
        assert_eq!(packing.num_trees(), 1);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = harary(8, 32);
        let a = random_disjoint_spanning_trees(&g, 3, 42);
        let b = random_disjoint_spanning_trees(&g, 3, 42);
        for (ta, tb) in a.trees.iter().zip(b.trees.iter()) {
            assert_eq!(ta.parent, tb.parent);
        }
    }
}
