//! The fractional-packing view and Ghaffari's parameters (paper
//! Question 2 / §3.1 "Tree packings" paragraph).
//!
//! A fractional tree packing assigns each tree a weight such that every
//! edge's total weight over the trees containing it is ≤ 1. An
//! edge-disjoint integral packing *is* a fractional packing with unit
//! weights; a congestion-`c` packing becomes fractional with weights
//! `1/c`.
//!
//! Ghaffari \[Gha15a\] constructs (in `Õ(D + k)` rounds) packings with
//! total weight `Ω(k/(OPT·log n))` and diameter `O(OPT·log n)`. The paper
//! shows (§3.1) that in the regime `k = Ω(n)`, Theorem 2 delivers the
//! *same* parameters in only `O(OPT·log n)` rounds, with integral
//! weights. This module computes both parameter sets for a concrete
//! packing so experiment E6 can table the comparison.

use crate::packing::{PackingStats, TreePacking};
use congest_graph::Graph;

/// A fractional view of a packing.
#[derive(Debug, Clone, PartialEq)]
pub struct FractionalView {
    /// Weight per tree (uniform: `1/congestion`).
    pub weight_per_tree: f64,
    /// Total weight = `num_trees / congestion`.
    pub total_weight: f64,
    /// Max tree diameter.
    pub diameter: u32,
}

impl FractionalView {
    /// Make an existing packing fractional by scaling with its congestion.
    pub fn of(packing: &TreePacking, g: &Graph) -> Self {
        let stats = packing.stats(g);
        Self::of_stats(&stats)
    }

    pub fn of_stats(stats: &PackingStats) -> Self {
        let c = stats.congestion.max(1) as f64;
        FractionalView {
            weight_per_tree: 1.0 / c,
            total_weight: stats.num_trees as f64 / c,
            diameter: stats.max_diameter,
        }
    }

    /// Check the fractional-packing feasibility constraint directly:
    /// every edge's summed weight ≤ 1 (+ ε).
    pub fn feasible(&self, packing: &TreePacking, g: &Graph) -> bool {
        packing
            .edge_usage(g)
            .iter()
            .all(|&u| u as f64 * self.weight_per_tree <= 1.0 + 1e-9)
    }
}

/// The Ghaffari-parameter comparison for the `k = Ω(n)` regime, where
/// `OPT = Θ(k/λ)` (Theorems 1 + 3).
#[derive(Debug, Clone, PartialEq)]
pub struct GhaffariComparison {
    /// `OPT` estimate `k/λ`.
    pub opt_estimate: f64,
    /// Target total weight `k / (OPT·ln n) = λ / ln n`.
    pub target_weight: f64,
    /// Target diameter `OPT·ln n`.
    pub target_diameter: f64,
    /// Achieved total weight.
    pub achieved_weight: f64,
    /// Achieved diameter.
    pub achieved_diameter: u32,
    /// `achieved_weight / target_weight` (≥ Ω(1) means we match).
    pub weight_ratio: f64,
    /// `achieved_diameter / target_diameter` (≤ O(1) means we match).
    pub diameter_ratio: f64,
}

/// Compare a packing against Ghaffari's parameter point for a k-broadcast
/// instance on a graph with edge connectivity `lambda`.
pub fn ghaffari_comparison(
    packing: &TreePacking,
    g: &Graph,
    k: usize,
    lambda: usize,
) -> GhaffariComparison {
    assert!(lambda > 0 && k > 0);
    let frac = FractionalView::of(packing, g);
    let ln_n = (g.n().max(2) as f64).ln();
    let opt = k as f64 / lambda as f64;
    let target_weight = k as f64 / (opt * ln_n); // = λ / ln n
    let target_diameter = opt * ln_n;
    GhaffariComparison {
        opt_estimate: opt,
        target_weight,
        target_diameter,
        achieved_weight: frac.total_weight,
        achieved_diameter: frac.diameter,
        weight_ratio: frac.total_weight / target_weight,
        diameter_ratio: frac.diameter as f64 / target_diameter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_partition::partition_packing_retrying;
    use crate::sampled::{lemma5_probability, sampled_packing};
    use congest_graph::generators::harary;

    #[test]
    fn edge_disjoint_packing_has_unit_weights() {
        let g = harary(16, 64);
        let (packing, _, _) = partition_packing_retrying(&g, 3, 0, 1, 10).unwrap();
        let frac = FractionalView::of(&packing, &g);
        assert_eq!(frac.weight_per_tree, 1.0);
        assert_eq!(frac.total_weight, 3.0);
        assert!(frac.feasible(&packing, &g));
    }

    #[test]
    fn sampled_packing_fractional_weights() {
        let g = harary(16, 64);
        let p = lemma5_probability(64, 16, 2.0);
        let report = sampled_packing(&g, 16, p, 0, 5).unwrap();
        let frac = FractionalView::of(&report.packing, &g);
        assert!(frac.weight_per_tree < 1.0);
        assert!(frac.feasible(&report.packing, &g));
        // Total weight = λ / congestion = Ω(λ / log n).
        let ln_n = 64f64.ln();
        assert!(
            frac.total_weight >= 16.0 / (8.0 * ln_n),
            "total weight {} too small",
            frac.total_weight
        );
    }

    #[test]
    fn ghaffari_parameters_matched_in_linear_k_regime() {
        let lambda = 16;
        let g = harary(lambda, 64);
        let (packing, _, _) = partition_packing_retrying(&g, 3, 0, 1, 10).unwrap();
        let k = 2 * g.n(); // k = Ω(n)
        let cmp = ghaffari_comparison(&packing, &g, k, lambda);
        // Weight within a constant·log factor below target, diameter within
        // a constant·log factor above — i.e. the same parameter point up to
        // the paper's O(log n) slack.
        assert!(cmp.weight_ratio >= 0.3, "weight ratio {}", cmp.weight_ratio);
        assert!(
            cmp.diameter_ratio <= 3.0,
            "diameter ratio {}",
            cmp.diameter_ratio
        );
    }
}
