//! Tree packings from the Theorem 2 random edge partition.
//!
//! §3.1: *"By spending extra O((n log n)/δ) rounds to perform a BFS in
//! parallel for all the edge-disjoint spanning subgraphs in Theorem 2, we
//! may obtain a tree packing of Ω(λ/log n) edge-disjoint spanning trees
//! with diameter O((n log n)/δ)."*
//!
//! Both routes are provided:
//! * [`partition_packing`] — centralized (partition + restricted BFS),
//!   used by the measurement-heavy experiments;
//! * [`partition_packing_distributed`] — the real thing: the one-round
//!   partition protocol plus the simultaneous per-class BFS protocol, with
//!   round costs reported. Tests assert both routes produce identical
//!   trees (the partition is a shared pure function of the seed, and BFS
//!   tie-breaking matches).

use crate::packing::TreePacking;
use congest_core::bfs::SubgraphBfs;
use congest_core::partition::{EdgePartition, EdgePartitionProtocol, PartitionParams};
use congest_graph::algo::bfs::{bfs_tree_restricted, BfsTree};
use congest_graph::{Graph, Node, INVALID_NODE};
use congest_sim::{EngineConfig, EngineError, PhaseLog};

/// Failure: some partition class did not span (retry with another seed or
/// fewer classes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotSpanning {
    pub subgraph: u32,
    pub unreached: usize,
}

impl std::fmt::Display for NotSpanning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "partition class {} left {} nodes unreached",
            self.subgraph, self.unreached
        )
    }
}

impl std::error::Error for NotSpanning {}

/// Centralized Theorem 2 packing: partition edges into `num_subgraphs`
/// classes with `seed`, BFS each class from `root`.
pub fn partition_packing(
    g: &Graph,
    num_subgraphs: usize,
    root: Node,
    seed: u64,
) -> Result<(TreePacking, EdgePartition), NotSpanning> {
    let part = EdgePartition::compute(g, PartitionParams::explicit(num_subgraphs), seed);
    let mut trees = Vec::with_capacity(num_subgraphs);
    for c in 0..num_subgraphs as u32 {
        let t = bfs_tree_restricted(g, root, |e| part.color(e) == c);
        if !t.is_spanning() {
            return Err(NotSpanning {
                subgraph: c,
                unreached: g.n() - t.reached(),
            });
        }
        trees.push(t);
    }
    Ok((TreePacking::new(trees), part))
}

/// Retry wrapper for the w.h.p. guarantee.
pub fn partition_packing_retrying(
    g: &Graph,
    num_subgraphs: usize,
    root: Node,
    seed: u64,
    attempts: usize,
) -> Result<(TreePacking, EdgePartition, usize), NotSpanning> {
    let mut last = None;
    for a in 0..attempts.max(1) {
        match partition_packing(g, num_subgraphs, root, seed.wrapping_add(a as u64 * 0x9E37)) {
            Ok((p, part)) => return Ok((p, part, a + 1)),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("at least one attempt"))
}

/// Distributed Theorem 2 packing: one partition round + simultaneous
/// per-class BFS, exactly the protocols the broadcast uses. Returns the
/// packing, the phase log (for round accounting), or the failure.
pub fn partition_packing_distributed(
    g: &Graph,
    num_subgraphs: usize,
    root: Node,
    seed: u64,
) -> Result<(TreePacking, PhaseLog), DistPackingError> {
    // Both phases share one resident engine session.
    let mut session = congest_sim::Session::new(g);
    let mut phases = PhaseLog::new();
    let part_run = session.run(
        |v, gr| EdgePartitionProtocol::new(v, seed, num_subgraphs, gr.degree(v)),
        EngineConfig::with_seed(seed ^ 0x9a),
    )?;
    phases.record("edge-partition", part_run.stats);
    let port_colors = part_run.take_outputs();

    let bfs_phase = session.run(
        |v, _| SubgraphBfs::new(root, v, port_colors[v as usize].clone(), num_subgraphs),
        EngineConfig::with_seed(seed ^ 0x9b),
    )?;
    phases.record("subgraph-bfs", bfs_phase.stats);
    let bfs_outputs = bfs_phase.take_outputs();

    // Reassemble BfsTree structures from per-node protocol outputs.
    let n = g.n();
    let mut trees = Vec::with_capacity(num_subgraphs);
    for c in 0..num_subgraphs {
        let mut parent = vec![INVALID_NODE; n];
        let mut parent_edge = vec![u32::MAX; n];
        let mut depth = vec![u32::MAX; n];
        let mut unreached = 0usize;
        for (v, infos) in bfs_outputs.iter().enumerate() {
            let info = &infos[c];
            if !info.reached {
                unreached += 1;
                continue;
            }
            depth[v] = info.depth;
            if let Some(pp) = info.parent_port {
                parent[v] = g.neighbor_at(v as Node, pp);
                parent_edge[v] = g.edge_at(v as Node, pp);
            }
        }
        if unreached > 0 {
            return Err(DistPackingError::NotSpanning(NotSpanning {
                subgraph: c as u32,
                unreached,
            }));
        }
        trees.push(BfsTree {
            root,
            parent,
            parent_edge,
            depth,
        });
    }
    Ok((TreePacking::new(trees), phases))
}

/// Errors from the distributed construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistPackingError {
    NotSpanning(NotSpanning),
    Engine(EngineError),
}

impl From<EngineError> for DistPackingError {
    fn from(e: EngineError) -> Self {
        DistPackingError::Engine(e)
    }
}

impl std::fmt::Display for DistPackingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistPackingError::NotSpanning(ns) => ns.fmt(f),
            DistPackingError::Engine(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for DistPackingError {}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{complete, harary, thick_path};

    #[test]
    fn centralized_packing_is_valid_and_disjoint() {
        let g = harary(16, 64);
        let (packing, part, _) = partition_packing_retrying(&g, 3, 0, 42, 20).unwrap();
        packing.validate(&g).unwrap();
        let stats = packing.stats(&g);
        assert_eq!(stats.num_trees, 3);
        assert!(stats.edge_disjoint, "partition classes are edge-disjoint");
        assert!(part.all_spanning(&g));
    }

    #[test]
    fn distributed_matches_centralized_depths() {
        let g = harary(12, 36);
        let seed = 7;
        let (central, _) = partition_packing(&g, 2, 0, seed).unwrap();
        let (dist, phases) = partition_packing_distributed(&g, 2, 0, seed).unwrap();
        dist.validate(&g).unwrap();
        assert_eq!(phases.rounds_of("edge-partition"), Some(1));
        // Same partition (a shared pure function of the seed) ⇒ identical
        // per-class distances. Parent *choices* may differ (both resolve
        // equal-distance ties, but by different deterministic rules), so we
        // compare depths — the quantity Theorem 2 bounds — not shapes.
        for (tc, td) in central.trees.iter().zip(dist.trees.iter()) {
            assert_eq!(tc.depth, td.depth);
        }
    }

    #[test]
    fn theorem2_diameter_bound_on_thick_path() {
        // thick_path(L, λ): δ = λ, n = Lλ. Theorem 2: tree diameters
        // should be O((C n ln n)/δ) = O(C·L·ln n). Verify within a
        // moderate constant.
        let lambda = 12;
        let cols = 8;
        let g = thick_path(cols, lambda);
        let (packing, _, _) = partition_packing_retrying(&g, 2, 0, 3, 20).unwrap();
        let stats = packing.stats(&g);
        let n = g.n() as f64;
        let delta = g.min_degree() as f64;
        let bound = 4.0 * n * n.ln() / delta;
        assert!(
            (stats.max_diameter as f64) <= bound,
            "max diameter {} exceeds Theorem 2 bound {bound:.1}",
            stats.max_diameter
        );
    }

    #[test]
    fn failure_reported_not_hidden() {
        // cycle has λ = 2; 8 classes cannot all span.
        let g = congest_graph::generators::cycle(12);
        let err = partition_packing(&g, 8, 0, 1).unwrap_err();
        assert!(err.unreached > 0);
        let err2 = partition_packing_distributed(&g, 8, 0, 1).unwrap_err();
        assert!(matches!(err2, DistPackingError::NotSpanning(_)));
    }

    #[test]
    fn complete_graph_many_trees() {
        let g = complete(64);
        let (packing, _, _) = partition_packing_retrying(&g, 8, 0, 5, 10).unwrap();
        let stats = packing.stats(&g);
        assert_eq!(stats.num_trees, 8);
        assert!(stats.edge_disjoint);
        // Each class ≈ G(64, 1/8) has diameter ~3; its BFS *tree* diameter
        // is at most twice that.
        assert!(
            stats.max_diameter <= 10,
            "K_64 class tree diameter {} should be tiny",
            stats.max_diameter
        );
    }
}
