//! # congest-packing — low-diameter tree packings
//!
//! The paper's Theorem 2 partition immediately yields (§3.1) a **tree
//! packing**: `Ω(λ/log n)` edge-disjoint spanning trees, each of diameter
//! `O((n log n)/δ)` — parameters that were not known to be achievable
//! before this paper, and that nearly match the Ghaffari–Kuhn existential
//! lower bounds (Appendix B).
//!
//! This crate materializes packings and measures them:
//!
//! * [`packing`] — the [`packing::TreePacking`] container with validators
//!   (spanning? edge-disjoint? congestion? exact per-tree diameters).
//! * [`random_partition`] — packings from the Theorem 2 partition, both
//!   centralized and via the real distributed protocols.
//! * [`sampled`] — the congestion-`O(log n)` variant with **λ** trees
//!   (the Theorem 10 / Appendix A parameter point), obtained by λ
//!   independent Lemma 5 samplings.
//! * [`fractional`] — the fractional-packing view and the comparison
//!   against Ghaffari's \[Gha15a\] parameters (paper Question 2).
//! * [`kd_connectivity`] — empirical Lemma 9 certificates: every simple
//!   graph is `(λ/5, 16n/δ)`-connected.
//! * [`lower_bound_family`] — measurements on the GK13-style family
//!   showing packing diameters are forced to `Ω(n/λ)` even where the
//!   graph diameter is `O(log n)` (Theorem 13's tension).

pub mod fractional;
pub mod greedy;
pub mod kd_connectivity;
pub mod lower_bound_family;
pub mod matroid;
pub mod packing;
pub mod random_partition;
pub mod sampled;
pub mod scheduled_broadcast;

pub use packing::{PackingStats, TreePacking};
pub use random_partition::{partition_packing, partition_packing_distributed};
pub use sampled::sampled_packing;
pub use scheduled_broadcast::scheduled_packing_broadcast;
