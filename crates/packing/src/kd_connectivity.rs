//! Empirical (k,d)-connectivity certificates (paper Lemma 9, Appendix A).
//!
//! Lemma 9: every simple graph with edge connectivity λ and min degree δ
//! is `(λ/5, 16n/δ)`-connected — any two nodes are joined by ≥ λ/5
//! edge-disjoint paths of length ≤ 16n/δ.
//!
//! Exact length-bounded disjoint-path packing is NP-hard, so this module
//! gathers **greedy lower-bound certificates**
//! ([`congest_graph::algo::paths::greedy_disjoint_paths`]) across many
//! node pairs — a witness that at least the claimed number of short
//! disjoint paths exists, which is the direction Lemma 9 asserts
//! (substitution documented in DESIGN.md §2).

use congest_graph::algo::paths::greedy_disjoint_paths;
use congest_graph::{Graph, Node};
use congest_sim::rng::mix64;

/// Lemma 9's claimed parameters for a graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lemma9Claim {
    /// `k = λ/5` (at least 1).
    pub k: usize,
    /// `d = 16n/δ`.
    pub d: u32,
}

impl Lemma9Claim {
    pub fn for_graph(n: usize, lambda: usize, delta: usize) -> Self {
        assert!(delta > 0);
        Lemma9Claim {
            k: (lambda / 5).max(1),
            d: ((16 * n) as f64 / delta as f64).ceil() as u32,
        }
    }
}

/// Result of testing Lemma 9 on a set of node pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct KdReport {
    pub claim: Lemma9Claim,
    /// Pairs tested.
    pub pairs: usize,
    /// Pairs for which the greedy certificate met the claim.
    pub certified: usize,
    /// Worst observed "(number of paths within d)" over the tested pairs.
    pub min_paths_within_d: usize,
    /// The largest d' that would still certify `k` paths for every pair
    /// (i.e. max over pairs of the k-th shortest greedy path length).
    pub max_needed_length: u32,
}

impl KdReport {
    /// Did every tested pair meet the Lemma 9 claim?
    pub fn all_certified(&self) -> bool {
        self.certified == self.pairs
    }
}

/// Test Lemma 9's claim on `num_pairs` pseudo-random node pairs.
pub fn kd_certificates(g: &Graph, lambda: usize, num_pairs: usize, seed: u64) -> KdReport {
    let n = g.n();
    assert!(n >= 2);
    let claim = Lemma9Claim::for_graph(n, lambda, g.min_degree());
    let mut certified = 0usize;
    let mut min_paths = usize::MAX;
    let mut max_needed = 0u32;
    for i in 0..num_pairs {
        let h = mix64(seed ^ mix64(i as u64));
        let s = (h % n as u64) as Node;
        let mut t = ((h >> 32) % n as u64) as Node;
        if s == t {
            t = (t + 1) % n as Node;
        }
        // Greedy needs a few extra paths of slack beyond k since greedy
        // choices are not optimal.
        let cert = greedy_disjoint_paths(g, s, t, claim.k + lambda);
        let within = cert.count_within(claim.d);
        min_paths = min_paths.min(within);
        if within >= claim.k {
            certified += 1;
        }
        if let Some(len) = cert.max_length_of_first(claim.k) {
            max_needed = max_needed.max(len);
        } else {
            // Fewer than k paths at any length: record "infinite" need.
            max_needed = u32::MAX;
        }
    }
    KdReport {
        claim,
        pairs: num_pairs,
        certified,
        min_paths_within_d: if min_paths == usize::MAX {
            0
        } else {
            min_paths
        },
        max_needed_length: max_needed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{clique_chain, complete, harary, thick_path, torus2d};

    #[test]
    fn claim_values() {
        let c = Lemma9Claim::for_graph(100, 10, 20);
        assert_eq!(c.k, 2);
        assert_eq!(c.d, 80);
        // λ < 5 clamps k to 1.
        assert_eq!(Lemma9Claim::for_graph(100, 3, 20).k, 1);
    }

    #[test]
    fn lemma9_certified_on_families() {
        for (g, lambda) in [
            (harary(10, 40), 10),
            (complete(20), 19),
            (torus2d(5, 6), 4),
            (thick_path(6, 10), 10),
            (clique_chain(3, 8, 5), 5),
        ] {
            let report = kd_certificates(&g, lambda, 12, 99);
            assert!(
                report.all_certified(),
                "Lemma 9 claim failed on a family: {report:?}"
            );
        }
    }

    #[test]
    fn needed_length_is_finite_and_within_claim() {
        let g = harary(10, 50);
        let report = kd_certificates(&g, 10, 10, 3);
        assert!(report.max_needed_length <= report.claim.d);
        assert!(report.min_paths_within_d >= report.claim.k);
    }
}
