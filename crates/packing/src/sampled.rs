//! The congestion-`O(log n)` packing with **λ trees** (paper §3.1 last
//! paragraph + Appendix A / Theorem 10 parameter point).
//!
//! §3.1: *"The decomposition of Theorem 2 also yields a tree packing of at
//! least λ spanning trees with diameter O((n log n)/δ) where each edge
//! belongs to O(log n) trees."* Construction: draw λ **independent**
//! Lemma 5 samples, each keeping every edge with probability
//! `p = C log n/λ`; each sample spans with diameter `Õ(n/δ)` w.h.p.
//! (Lemma 5), and each edge lands in `Binomial(λ, p) ≈ C log n` trees.
//!
//! This is our constructive stand-in for the Chuzhoy–Parter–Tan algorithm
//! of Lemma 8 (see DESIGN.md §2): identical output guarantees, and the
//! route the paper itself notes Theorem 2 subsumes.

use crate::packing::TreePacking;
use congest_core::partition::sample_edges;
use congest_graph::algo::bfs::bfs_tree_restricted;
use congest_graph::{Graph, Node};

/// Result of a sampled-packing construction.
#[derive(Debug, Clone)]
pub struct SampledPackingReport {
    pub packing: TreePacking,
    /// Trees that failed to span and were re-drawn (count per tree index).
    pub redraws: usize,
    /// The sampling probability used.
    pub p: f64,
}

/// Build `num_trees` spanning trees by independent `p`-sampling + BFS,
/// re-drawing any sample that fails to span (bounded retries).
///
/// With `p = C·ln n/λ` and `num_trees = λ` this realizes the Theorem 10
/// parameter point: λ trees, diameter `O((n log n)/δ)`, congestion
/// `O(log n)` w.h.p.
pub fn sampled_packing(
    g: &Graph,
    num_trees: usize,
    p: f64,
    root: Node,
    seed: u64,
) -> Result<SampledPackingReport, String> {
    let mut trees = Vec::with_capacity(num_trees);
    let mut redraws = 0usize;
    for i in 0..num_trees {
        let mut found = false;
        for attempt in 0..64u64 {
            let s = seed
                .wrapping_add((i as u64) << 32)
                .wrapping_add(attempt * 0x9E37_79B9);
            let mask = sample_edges(g, p, s);
            let t = bfs_tree_restricted(g, root, |e| mask[e as usize]);
            if t.is_spanning() {
                trees.push(t);
                found = true;
                redraws += attempt as usize;
                break;
            }
        }
        if !found {
            return Err(format!(
                "tree {i}: no spanning sample in 64 draws (p = {p} too small for λ of this graph)"
            ));
        }
    }
    Ok(SampledPackingReport {
        packing: TreePacking::new(trees),
        redraws,
        p,
    })
}

/// The paper's sampling probability `p = C·ln n / λ` (Lemma 5).
pub fn lemma5_probability(n: usize, lambda: usize, c: f64) -> f64 {
    assert!(lambda > 0 && c > 0.0);
    (c * (n.max(2) as f64).ln() / lambda as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{complete, harary};

    #[test]
    fn lambda_trees_with_log_congestion() {
        let lambda = 16;
        let n = 64;
        let g = harary(lambda, n);
        let p = lemma5_probability(n, lambda, 2.0);
        let report = sampled_packing(&g, lambda, p, 0, 11).unwrap();
        report.packing.validate(&g).unwrap();
        let stats = report.packing.stats(&g);
        assert_eq!(stats.num_trees, lambda);
        // Congestion O(log n): expected C·ln n ≈ 8.3; allow concentration
        // slack. Must be well below λ (the trivial bound).
        assert!(
            stats.congestion <= 3 * (2.0 * (n as f64).ln()) as usize,
            "congestion {} should be O(log n)",
            stats.congestion
        );
        assert!(!stats.edge_disjoint, "sampled trees share edges by design");
    }

    #[test]
    fn diameter_bound_holds() {
        let lambda = 16;
        let n = 64;
        let g = harary(lambda, n);
        let p = lemma5_probability(n, lambda, 2.0);
        let report = sampled_packing(&g, 8, p, 0, 3).unwrap();
        let stats = report.packing.stats(&g);
        let delta = g.min_degree() as f64;
        let bound = 6.0 * (n as f64) * (n as f64).ln() / delta;
        assert!(
            (stats.max_diameter as f64) <= bound,
            "diameter {} > Lemma 5 bound {bound:.1}",
            stats.max_diameter
        );
    }

    #[test]
    fn p_one_gives_full_graph_bfs() {
        let g = complete(10);
        let report = sampled_packing(&g, 2, 1.0, 0, 1).unwrap();
        let stats = report.packing.stats(&g);
        assert_eq!(stats.max_diameter, 2);
        assert_eq!(report.redraws, 0);
    }

    #[test]
    fn too_small_p_errors() {
        let g = harary(4, 32);
        let err = sampled_packing(&g, 1, 0.01, 0, 1).unwrap_err();
        assert!(err.contains("no spanning sample"));
    }

    #[test]
    fn probability_formula() {
        let p = lemma5_probability(1024, 64, 1.0);
        assert!((p - (1024f64).ln() / 64.0).abs() < 1e-12);
        assert_eq!(lemma5_probability(10, 1, 100.0), 1.0); // clamped
    }
}
