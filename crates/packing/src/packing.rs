//! The tree-packing container and its validators.

use congest_graph::algo::bfs::BfsTree;
use congest_graph::{Graph, Node, INVALID_NODE};

/// A collection of rooted spanning trees of one graph.
///
/// Trees are stored as parent/parent-edge arrays ([`BfsTree`]), which is
/// what both the centralized and the distributed constructions naturally
/// produce.
#[derive(Debug, Clone)]
pub struct TreePacking {
    pub trees: Vec<BfsTree>,
}

/// Summary statistics of a packing — the quantities Theorems 2/10/13 talk
/// about.
#[derive(Debug, Clone, PartialEq)]
pub struct PackingStats {
    pub num_trees: usize,
    /// Exact diameter of each tree (as a subgraph, not just 2×height).
    pub tree_diameters: Vec<u32>,
    pub max_diameter: u32,
    pub mean_diameter: f64,
    /// Max number of trees any single edge participates in.
    pub congestion: usize,
    /// True iff no edge is used by two trees.
    pub edge_disjoint: bool,
}

impl TreePacking {
    pub fn new(trees: Vec<BfsTree>) -> Self {
        TreePacking { trees }
    }

    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Check structural validity against `g`: every tree must span all of
    /// `g`'s nodes and use only edges of `g` (parent edges are edge ids of
    /// `g` by construction; we verify endpoints match).
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        for (i, t) in self.trees.iter().enumerate() {
            if !t.is_spanning() {
                return Err(format!(
                    "tree {i} is not spanning ({} reached)",
                    t.reached()
                ));
            }
            for v in 0..g.n() as Node {
                let p = t.parent[v as usize];
                if p == INVALID_NODE {
                    if v != t.root {
                        return Err(format!("tree {i}: non-root node {v} has no parent"));
                    }
                    continue;
                }
                let e = t.parent_edge[v as usize];
                let (a, b) = g.endpoints(e);
                if (a, b) != (v.min(p), v.max(p)) {
                    return Err(format!(
                        "tree {i}: node {v}'s parent edge {e} does not connect {v}-{p}"
                    ));
                }
                if t.depth[v as usize] != t.depth[p as usize] + 1 {
                    return Err(format!("tree {i}: depth inconsistency at node {v}"));
                }
            }
        }
        Ok(())
    }

    /// Per-edge usage counts across trees.
    pub fn edge_usage(&self, g: &Graph) -> Vec<usize> {
        let mut usage = vec![0usize; g.m()];
        for t in &self.trees {
            for v in 0..g.n() {
                if t.parent[v] != INVALID_NODE {
                    usage[t.parent_edge[v] as usize] += 1;
                }
            }
        }
        usage
    }

    /// Exact diameter of tree `i` measured inside the tree's edge set
    /// (double-BFS on a tree is exact).
    pub fn tree_diameter(&self, g: &Graph, i: usize) -> u32 {
        let t = &self.trees[i];
        let mut allowed = vec![false; g.m()];
        for v in 0..g.n() {
            if t.parent[v] != INVALID_NODE {
                allowed[t.parent_edge[v] as usize] = true;
            }
        }
        congest_graph::algo::diameter::two_sweep_lower_bound_restricted(g, t.root, &allowed)
            .expect("spanning tree is connected")
    }

    /// Full statistics.
    pub fn stats(&self, g: &Graph) -> PackingStats {
        let usage = self.edge_usage(g);
        let congestion = usage.iter().copied().max().unwrap_or(0);
        let tree_diameters: Vec<u32> = (0..self.trees.len())
            .map(|i| self.tree_diameter(g, i))
            .collect();
        let max_diameter = tree_diameters.iter().copied().max().unwrap_or(0);
        let mean_diameter = if tree_diameters.is_empty() {
            0.0
        } else {
            tree_diameters.iter().map(|&d| d as f64).sum::<f64>() / tree_diameters.len() as f64
        };
        PackingStats {
            num_trees: self.trees.len(),
            tree_diameters,
            max_diameter,
            mean_diameter,
            congestion,
            edge_disjoint: congestion <= 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::algo::bfs::bfs_tree;
    use congest_graph::generators::{complete, cycle};

    #[test]
    fn single_bfs_tree_is_valid_packing() {
        let g = complete(8);
        let packing = TreePacking::new(vec![bfs_tree(&g, 0)]);
        packing.validate(&g).unwrap();
        let stats = packing.stats(&g);
        assert_eq!(stats.num_trees, 1);
        assert!(stats.edge_disjoint);
        assert_eq!(stats.max_diameter, 2); // BFS star on K_8
        assert_eq!(stats.congestion, 1);
    }

    #[test]
    fn duplicate_trees_have_congestion_two() {
        let g = cycle(6);
        let t = bfs_tree(&g, 0);
        let packing = TreePacking::new(vec![t.clone(), t]);
        packing.validate(&g).unwrap();
        let stats = packing.stats(&g);
        assert_eq!(stats.congestion, 2);
        assert!(!stats.edge_disjoint);
    }

    #[test]
    fn non_spanning_tree_rejected() {
        let g = congest_graph::GraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 2)
            .build()
            .unwrap();
        let t = congest_graph::algo::bfs::bfs_tree_restricted(&g, 0, |e| e == 0);
        let packing = TreePacking::new(vec![t]);
        assert!(packing.validate(&g).is_err());
    }

    #[test]
    fn tree_diameter_exact_on_path_tree() {
        // BFS tree of a cycle from node 0 is a path-ish tree: diameter n-1
        // ... actually two branches of length n/2 ⇒ diameter = n - 1 for
        // even splits? For cycle(6): branches 0-1-2-3 and 0-5-4 share root;
        // diameter = depth(3) + depth(4) = 3 + 2 = 5.
        let g = cycle(6);
        let packing = TreePacking::new(vec![bfs_tree(&g, 0)]);
        assert_eq!(packing.stats(&g).max_diameter, 5);
    }
}
