//! Measurements on the GK13-style lower-bound family (paper Appendix B,
//! Theorem 13).
//!
//! Theorem 13: for λ ≥ log⁴n there are λ-edge-connected graphs with
//! diameter `O(log n)` where **any** decomposition into λ spanning
//! subgraphs with congestion ≤ λ/log⁴n contains a subgraph of diameter
//! `Ω̃(n/λ)`. GK13's original form adds the fine print: *all* trees are
//! long except at most `O(log n)` lucky ones. Together with Theorem 2's
//! `O((n log n)/δ)` upper bound, the packing diameter on this family is
//! pinned to `Θ̃(n/λ)` — far above the graph's own diameter.
//!
//! We build the family
//! ([`congest_graph::generators::gk13_lower_bound`]) and extract
//! edge-disjoint spanning trees with the **exact matroid-union packing**
//! ([`crate::matroid::exact_tree_packing`]): the family's λ is
//! deliberately small relative to `log n`, so the Theorem 2 partition is
//! out of its parameter regime here, and greedy extraction strands the
//! overlay hubs — the exact algorithm needs no slack of either kind.
//! Because the packing is optimal, the measured diameters witness the
//! lower bound against the *best possible* edge-disjoint decomposition of
//! this width, including GK13's fine print: at most `O(log n)` trees can
//! stay short (the thin overlay cannot serve more).

use crate::matroid::exact_tree_packing;
use crate::packing::PackingStats;
use congest_graph::algo::diameter::diameter_exact;
use congest_graph::generators::{gk13_lower_bound, Gk13Layout};

/// The Theorem 13 tension, measured.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerBoundReport {
    pub layout: Gk13Layout,
    /// Exact diameter of the graph itself — should be O(log n).
    pub graph_diameter: u32,
    /// Stats of the greedy edge-disjoint packing on it.
    pub packing: PackingStats,
    /// The forced scale `n/λ`.
    pub n_over_lambda: f64,
    /// `packing.max_diameter / graph_diameter` — Theorem 13 predicts this
    /// ratio grows with `n/(λ·log n)`.
    pub blowup: f64,
    /// How many trees stayed "short" (diameter ≤ 4× graph diameter) —
    /// GK13 predict at most O(log n) can.
    pub short_trees: usize,
}

/// Build the family, pack it greedily with `num_trees` trees, and measure
/// (see module docs).
pub fn measure_gk13(
    columns: usize,
    lambda: usize,
    num_trees: usize,
    _seed: u64,
) -> Result<LowerBoundReport, String> {
    let (g, layout) = gk13_lower_bound(columns, lambda);
    let graph_diameter = diameter_exact(&g).ok_or("family must be connected")?;
    let packing = exact_tree_packing(&g, num_trees, 0)
        .ok_or_else(|| format!("no edge-disjoint packing of {num_trees} spanning trees exists"))?;
    packing.validate(&g)?;
    let stats = packing.stats(&g);
    let n_over_lambda = layout.n as f64 / lambda as f64;
    let blowup = stats.max_diameter as f64 / graph_diameter.max(1) as f64;
    let short_trees = stats
        .tree_diameters
        .iter()
        .filter(|&&d| d <= 4 * graph_diameter)
        .count();
    Ok(LowerBoundReport {
        layout,
        graph_diameter,
        packing: stats,
        n_over_lambda,
        blowup,
        short_trees,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_diameter_far_exceeds_graph_diameter() {
        // 48 columns of width 6: n ≈ 351, graph diameter O(log n) ≈ small,
        // but edge-disjoint spanning trees must mostly traverse the bulk.
        let report = measure_gk13(48, 6, 2, 5).unwrap();
        assert!(
            report.graph_diameter <= 16,
            "overlay keeps D small, got {}",
            report.graph_diameter
        );
        assert!(
            report.packing.max_diameter as f64 >= 0.5 * report.layout.columns as f64,
            "trees must traverse Ω(columns) of the bulk: {} vs {} columns",
            report.packing.max_diameter,
            report.layout.columns
        );
        assert!(report.blowup >= 2.0, "blowup {}", report.blowup);
    }

    #[test]
    fn blowup_grows_with_columns() {
        let small = measure_gk13(16, 6, 2, 7).unwrap();
        let large = measure_gk13(64, 6, 2, 7).unwrap();
        assert!(
            large.blowup > small.blowup,
            "Theorem 13 tension must grow with n/λ: {} vs {}",
            large.blowup,
            small.blowup
        );
    }

    #[test]
    fn only_few_trees_stay_short() {
        // GK13's fine print: all but O(log n) trees are long. With 3
        // greedy trees on a thin-overlay family, at most one can stay
        // short.
        let report = measure_gk13(48, 8, 3, 1).unwrap();
        assert!(
            report.short_trees <= 1,
            "{} short trees — the overlay can't serve more than ~1",
            report.short_trees
        );
    }

    #[test]
    fn large_instance_now_measurable() {
        // The regression that motivated exact extraction: wide instances
        // are out of the random partition's parameter regime (λ ≪ log n)
        // and greedy extraction strands the overlay hubs. (96 columns run
        // in the release-mode E6 binary; 72 keeps the debug suite quick.)
        let report = measure_gk13(72, 6, 2, 0).unwrap();
        assert!(report.packing.max_diameter as f64 >= 0.5 * 72.0);
        assert!(report.graph_diameter <= 20);
    }
}
