//! Broadcasting over a tree packing **with shared edges**, via the
//! random-delay scheduler (paper Theorem 12 + Appendix B's use of it).
//!
//! Theorem 1 routes over *edge-disjoint* trees, needing no scheduling.
//! The congestion-`O(log n)` packings of Theorem 10, however, share edges
//! between trees — running one Lemma 1 pipeline per tree naively could
//! collide on the shared edges. The paper's own proof of Theorem 13 runs
//! exactly this composition through the scheduler of \[Gha15b\]:
//! per-edge FIFO queues plus random start delays execute all pipelines in
//! `O(congestion + dilation·log² n)` rounds.
//!
//! [`scheduled_packing_broadcast`] realizes that composition: one
//! message-driven [`TreePipeline`] per tree, multiplexed by
//! [`congest_sim::sched::Multiplexed`].

use crate::packing::TreePacking;
use congest_core::broadcast::BroadcastInput;
use congest_core::convergecast::TreeView;
use congest_core::pipeline::{expected_checksums, PipeMsg, PipeResult, TreePipeline};
use congest_graph::{Graph, Node, INVALID_NODE};
use congest_sim::sched::{random_delays, Multiplexed};
use congest_sim::{run_protocol, EngineConfig, EngineError, RunStats};

/// Outcome of a scheduled multi-tree broadcast.
#[derive(Debug, Clone)]
pub struct ScheduledBroadcastOutcome {
    pub stats: RunStats,
    /// Per node: per-tree pipeline results plus the node's peak queue
    /// length (a scheduling-quality signal).
    pub per_node: Vec<(Vec<PipeResult>, usize)>,
    /// Messages assigned to each tree.
    pub k_per_tree: Vec<u64>,
    /// Expected checksums per tree.
    pub expected_per_tree: Vec<(u64, u64)>,
    /// The start delays used.
    pub delays: Vec<u64>,
}

impl ScheduledBroadcastOutcome {
    /// Every node received every message of every tree.
    pub fn all_delivered(&self) -> bool {
        self.per_node.iter().all(|(results, _)| {
            results.iter().enumerate().all(|(t, r)| {
                r.delivered == self.k_per_tree[t]
                    && (r.xor_check, r.sum_check) == self.expected_per_tree[t]
            })
        })
    }

    /// Max queue length observed anywhere (≈ scheduling slack used).
    pub fn peak_queue(&self) -> usize {
        self.per_node.iter().map(|&(_, q)| q).max().unwrap_or(0)
    }
}

/// Convert a packing tree into per-node [`TreeView`]s (port form).
fn tree_views(g: &Graph, tree: &congest_graph::algo::bfs::BfsTree) -> Vec<TreeView> {
    let n = g.n();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n {
        let p = tree.parent[v];
        if p != INVALID_NODE {
            let port = g
                .port_to(p, v as Node)
                .expect("tree edge must exist in graph");
            children[p as usize].push(port);
        }
    }
    (0..n)
        .map(|v| {
            let parent_port = if tree.parent[v] == INVALID_NODE {
                None
            } else {
                g.port_to(v as Node, tree.parent[v])
            };
            let mut ch = std::mem::take(&mut children[v]);
            ch.sort_unstable();
            TreeView {
                parent_port,
                children_ports: ch,
            }
        })
        .collect()
}

/// Run one Lemma 1 pipeline per packing tree, multiplexed with random
/// delays in `[0, max_delay]`. Message `j` is assigned to tree
/// `j mod #trees`.
pub fn scheduled_packing_broadcast(
    g: &Graph,
    packing: &TreePacking,
    input: &BroadcastInput,
    max_delay: u64,
    seed: u64,
) -> Result<ScheduledBroadcastOutcome, EngineError> {
    let n = g.n();
    let t_count = packing.num_trees();
    assert!(t_count >= 1);
    let views: Vec<Vec<TreeView>> = packing.trees.iter().map(|t| tree_views(g, t)).collect();

    // Assign messages round-robin to trees.
    let mut k_per_tree = vec![0u64; t_count];
    let mut own: Vec<Vec<Vec<PipeMsg>>> = vec![vec![Vec::new(); t_count]; n];
    let mut msgs_per_tree: Vec<Vec<(u32, u64)>> = vec![Vec::new(); t_count];
    for (j, &(holder, payload)) in input.messages.iter().enumerate() {
        let t = j % t_count;
        k_per_tree[t] += 1;
        own[holder as usize][t].push(PipeMsg {
            id: j as u32,
            payload,
        });
        msgs_per_tree[t].push((j as u32, payload));
    }
    let expected_per_tree: Vec<(u64, u64)> = msgs_per_tree
        .iter()
        .map(|m| expected_checksums(m.iter()))
        .collect();

    let delays = random_delays(t_count, max_delay, seed ^ 0xD31A);
    // Ring capacity = the collection's per-edge congestion bound
    // (Theorem 12's parameter): every message crosses a shared edge at
    // most twice (convergecast up, broadcast down), summed over trees.
    let queue_capacity = 2 * input.messages.len() + 2;
    let run = run_protocol(
        g,
        |v, gr: &Graph| {
            let vi = v as usize;
            let pipes: Vec<TreePipeline> = (0..t_count)
                .map(|t| {
                    TreePipeline::new(
                        views[t][vi].clone(),
                        k_per_tree[t],
                        own[vi][t].clone(),
                        false,
                    )
                })
                .collect();
            Multiplexed::new(pipes, &delays, gr.degree(v), queue_capacity)
        },
        EngineConfig::with_seed(seed),
    )?;

    Ok(ScheduledBroadcastOutcome {
        stats: run.stats,
        per_node: run.outputs,
        k_per_tree,
        expected_per_tree,
        delays,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_partition::partition_packing_retrying;
    use crate::sampled::{lemma5_probability, sampled_packing};
    use congest_graph::generators::harary;

    #[test]
    fn edge_disjoint_packing_schedules_cleanly() {
        let g = harary(16, 64);
        let (packing, _, _) = partition_packing_retrying(&g, 3, 0, 5, 20).unwrap();
        let input = BroadcastInput::random_spread(&g, 90, 1);
        let out = scheduled_packing_broadcast(&g, &packing, &input, 4, 9).unwrap();
        assert!(out.all_delivered());
        // Disjoint trees never contend: queues stay tiny.
        assert!(out.peak_queue() <= 4, "peak queue {}", out.peak_queue());
    }

    #[test]
    fn congested_sampled_packing_still_delivers() {
        let lambda = 12;
        let g = harary(lambda, 48);
        let p = lemma5_probability(48, lambda, 2.0);
        let report = sampled_packing(&g, 6, p, 0, 3).unwrap();
        let stats = report.packing.stats(&g);
        assert!(stats.congestion > 1, "want a genuinely shared packing");
        let input = BroadcastInput::random_spread(&g, 60, 2);
        let out = scheduled_packing_broadcast(&g, &report.packing, &input, 8, 4).unwrap();
        assert!(out.all_delivered());
        assert!(out.peak_queue() >= 1, "shared edges must queue sometimes");
    }

    #[test]
    fn scheduling_beats_sequential_execution() {
        // Theorem 12's point: running the q pipelines together costs far
        // less than q solo runs back to back.
        let g = harary(16, 64);
        let (packing, _, _) = partition_packing_retrying(&g, 3, 0, 7, 20).unwrap();
        let input = BroadcastInput::random_spread(&g, 120, 5);
        let together = scheduled_packing_broadcast(&g, &packing, &input, 4, 11).unwrap();
        assert!(together.all_delivered());
        // Sequential baseline: run each tree's share alone and sum rounds.
        let mut sequential = 0u64;
        for t in 0..packing.num_trees() {
            let sub_input = BroadcastInput {
                messages: input
                    .messages
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| j % packing.num_trees() == t)
                    .map(|(_, &m)| m)
                    .collect(),
            };
            let single = TreePacking::new(vec![packing.trees[t].clone()]);
            let solo = scheduled_packing_broadcast(&g, &single, &sub_input, 0, 13).unwrap();
            assert!(solo.all_delivered());
            sequential += solo.stats.rounds;
        }
        assert!(
            together.stats.rounds < sequential,
            "scheduled {} must beat sequential {}",
            together.stats.rounds,
            sequential
        );
    }
}
