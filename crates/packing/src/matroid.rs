//! Exact edge-disjoint spanning-tree packing via matroid union
//! (Edmonds' matroid partition / Roskind–Tarjan augmentation).
//!
//! Tutte \[Tut61\] and Nash-Williams \[NW61\] — the results the paper's
//! introduction builds on — guarantee ⌊λ/2⌋ edge-disjoint spanning trees
//! in every λ-edge-connected graph. Greedy extraction cannot certify
//! that number (it strands residual components); the matroid-union
//! augmenting-path algorithm can: it maintains `k` forests and, for each
//! new edge, searches the *exchange graph* (labels an edge `h` from `f`
//! when `h` lies on the cycle `f` closes in some forest, i.e. `F − h + f`
//! is again a forest) for a sequence of swaps that makes room. The result
//! is a **maximum** `k`-forest packing; when the graph is
//! `2k`-edge-connected, all `k` forests are spanning trees — the
//! Tutte/Nash-Williams bound, constructively.
//!
//! Complexity: each augmentation labels each edge at most once and pays
//! `O(k·n)` per labeled edge — fine for the verification scales here
//! (thousands of edges). The search stops early once all forests span.

use crate::packing::TreePacking;
use congest_graph::algo::bfs::BfsTree;
use congest_graph::{Edge, Graph, Node, INVALID_NODE};
use std::collections::VecDeque;

/// A maximum packing of `k` edge-disjoint forests.
#[derive(Debug, Clone)]
pub struct ForestPacking {
    pub k: usize,
    /// Edge ids per forest.
    pub forests: Vec<Vec<Edge>>,
}

impl ForestPacking {
    /// Total edges across forests (the matroid-union rank achieved).
    pub fn total_edges(&self) -> usize {
        self.forests.iter().map(Vec::len).sum()
    }

    /// Whether every forest is a spanning tree of an `n`-node graph.
    pub fn all_spanning(&self, n: usize) -> bool {
        self.forests.iter().all(|f| f.len() + 1 == n)
    }
}

/// Internal forest representation with adjacency for path queries.
struct Forests {
    k: usize,
    n: usize,
    /// `adj[i][v]` = (neighbor, edge) pairs of forest i.
    adj: Vec<Vec<Vec<(Node, Edge)>>>,
    /// `member[e]` = forest currently containing edge e (k = none).
    member: Vec<u8>,
    sizes: Vec<usize>,
}

impl Forests {
    fn new(k: usize, n: usize, m: usize) -> Self {
        assert!(k < u8::MAX as usize);
        Forests {
            k,
            n,
            adj: vec![vec![Vec::new(); n]; k],
            member: vec![k as u8; m],
            sizes: vec![0; k],
        }
    }

    fn insert(&mut self, i: usize, e: Edge, g: &Graph) {
        let (u, v) = g.endpoints(e);
        self.adj[i][u as usize].push((v, e));
        self.adj[i][v as usize].push((u, e));
        self.member[e as usize] = i as u8;
        self.sizes[i] += 1;
    }

    fn remove(&mut self, i: usize, e: Edge, g: &Graph) {
        let (u, v) = g.endpoints(e);
        self.adj[i][u as usize].retain(|&(_, ee)| ee != e);
        self.adj[i][v as usize].retain(|&(_, ee)| ee != e);
        self.member[e as usize] = self.k as u8;
        self.sizes[i] -= 1;
    }

    /// The tree path between `u` and `v` in forest `i`, or `None` if they
    /// are in different components (⇒ inserting `{u,v}` keeps it a forest).
    fn tree_path(
        &self,
        i: usize,
        u: Node,
        v: Node,
        scratch: &mut PathScratch,
    ) -> Option<Vec<Edge>> {
        scratch.reset(self.n);
        let mut queue = VecDeque::new();
        scratch.visit(u, INVALID_NODE, u32::MAX);
        queue.push_back(u);
        while let Some(x) = queue.pop_front() {
            if x == v {
                // Walk back.
                let mut path = Vec::new();
                let mut cur = v;
                while cur != u {
                    let (p, pe) = scratch.parent(cur);
                    path.push(pe);
                    cur = p;
                }
                return Some(path);
            }
            for &(y, e) in &self.adj[i][x as usize] {
                if !scratch.visited(y) {
                    scratch.visit(y, x, e);
                    queue.push_back(y);
                }
            }
        }
        None
    }
}

/// Reusable BFS scratch with epoch-based clearing (no per-call allocation
/// or O(n) reset).
struct PathScratch {
    epoch: u32,
    mark: Vec<u32>,
    parent: Vec<(Node, Edge)>,
}

impl PathScratch {
    fn new(n: usize) -> Self {
        PathScratch {
            epoch: 0,
            mark: vec![0; n],
            parent: vec![(INVALID_NODE, u32::MAX); n],
        }
    }

    fn reset(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
            self.parent.resize(n, (INVALID_NODE, u32::MAX));
        }
        self.epoch += 1;
    }

    #[inline]
    fn visited(&self, v: Node) -> bool {
        self.mark[v as usize] == self.epoch
    }

    #[inline]
    fn visit(&mut self, v: Node, parent: Node, e: Edge) {
        self.mark[v as usize] = self.epoch;
        self.parent[v as usize] = (parent, e);
    }

    #[inline]
    fn parent(&self, v: Node) -> (Node, Edge) {
        self.parent[v as usize]
    }
}

/// Compute a **maximum** packing of `k` edge-disjoint forests of `g`
/// (Edmonds/Roskind–Tarjan matroid-union augmentation).
pub fn matroid_forest_packing(g: &Graph, k: usize) -> ForestPacking {
    assert!(k >= 1);
    let n = g.n();
    let m = g.m();
    let mut forests = Forests::new(k, n, m);
    let mut scratch = PathScratch::new(n);
    // Labels for the augmentation BFS.
    let mut visited_epoch = vec![0u32; m];
    let mut pred: Vec<(Edge, u8)> = vec![(u32::MAX, 0); m];
    let mut epoch = 0u32;
    let target = k * n.saturating_sub(1);

    for e0 in 0..m as Edge {
        if forests.sizes.iter().sum::<usize>() >= target {
            break; // all forests span already
        }
        epoch += 1;
        let mut queue = VecDeque::new();
        visited_epoch[e0 as usize] = epoch;
        queue.push_back(e0);
        'search: while let Some(f) = queue.pop_front() {
            let (u, v) = g.endpoints(f);
            for i in 0..k {
                // Skip the forest currently holding f: its endpoints are
                // trivially connected through f itself there.
                if forests.member[f as usize] == i as u8 {
                    continue;
                }
                match forests.tree_path(i, u, v, &mut scratch) {
                    None => {
                        // f is independent in forest i: apply the swap
                        // chain back to e0. Each labeled edge `cur` moves
                        // from the forest whose cycle labeled it into the
                        // forest vacated by its successor; e0 (in no
                        // forest yet) fills the last vacancy.
                        let mut cur = f;
                        let mut dest = i;
                        loop {
                            if cur == e0 {
                                forests.insert(dest, cur, g);
                                break;
                            }
                            let (p, j) = pred[cur as usize];
                            forests.remove(j as usize, cur, g);
                            forests.insert(dest, cur, g);
                            cur = p;
                            dest = j as usize;
                        }
                        break 'search;
                    }
                    Some(path) => {
                        for h in path {
                            if visited_epoch[h as usize] != epoch {
                                visited_epoch[h as usize] = epoch;
                                pred[h as usize] = (f, i as u8);
                                queue.push_back(h);
                            }
                        }
                    }
                }
            }
        }
    }

    ForestPacking {
        k,
        forests: (0..k)
            .map(|i| {
                let mut edges: Vec<Edge> = (0..m as Edge)
                    .filter(|&e| forests.member[e as usize] == i as u8)
                    .collect();
                edges.sort_unstable();
                edges
            })
            .collect(),
    }
}

/// Exact packing of `k` edge-disjoint **spanning trees**, or `None` if no
/// such packing exists (by matroid union, the algorithm finds one exactly
/// when it exists; Nash-Williams guarantees existence for `k ≤ ⌊λ/2⌋`).
pub fn exact_tree_packing(g: &Graph, k: usize, root: Node) -> Option<TreePacking> {
    let packing = matroid_forest_packing(g, k);
    if !packing.all_spanning(g.n()) {
        return None;
    }
    let trees: Vec<BfsTree> = packing
        .forests
        .iter()
        .map(|edges| {
            let mut in_tree = vec![false; g.m()];
            for &e in edges {
                in_tree[e as usize] = true;
            }
            let t = congest_graph::algo::bfs::bfs_tree_restricted(g, root, |e| in_tree[e as usize]);
            debug_assert!(t.is_spanning());
            t
        })
        .collect();
    Some(TreePacking::new(trees))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::algo::components::UnionFind;
    use congest_graph::generators::{complete, cycle, harary, hypercube, thick_path};

    /// Independent validity check of a forest packing.
    fn validate(g: &Graph, p: &ForestPacking) {
        let mut seen = vec![false; g.m()];
        for f in &p.forests {
            let mut uf = UnionFind::new(g.n());
            for &e in f {
                assert!(!seen[e as usize], "edge {e} in two forests");
                seen[e as usize] = true;
                let (u, v) = g.endpoints(e);
                assert!(uf.union(u, v), "cycle within a forest at edge {e}");
            }
        }
    }

    #[test]
    fn nash_williams_bound_on_harary() {
        // λ = 8 ⇒ exactly ⌊λ/2⌋ = 4 spanning trees; the greedy methods
        // fail this instance (m = 160 leaves only 4 spare edges), the
        // exact algorithm must not.
        let g = harary(8, 40);
        let packing = exact_tree_packing(&g, 4, 0).expect("Nash-Williams guarantees 4 trees");
        packing.validate(&g).unwrap();
        assert!(packing.stats(&g).edge_disjoint);
        assert_eq!(packing.num_trees(), 4);
    }

    #[test]
    fn complete_graph_floor_n_half_trees() {
        // K_n is (n−1)-edge-connected ⇒ ⌊(n−1)/2⌋ spanning trees; K_9
        // has m = 36 = 4·(9−1) + 4 — nearly perfect packing.
        let g = complete(9);
        let packing = exact_tree_packing(&g, 4, 0).expect("4 trees in K_9");
        packing.validate(&g).unwrap();
    }

    #[test]
    fn forest_packing_is_maximum_on_cycle() {
        // Cycle: k = 2 forests can hold all n edges (tree + one edge).
        let g = cycle(8);
        let p = matroid_forest_packing(&g, 2);
        validate(&g, &p);
        assert_eq!(p.total_edges(), 8, "both forests together hold all edges");
        assert!(!p.all_spanning(8), "second forest is not a spanning tree");
        assert!(exact_tree_packing(&g, 2, 0).is_none());
    }

    #[test]
    fn hypercube_two_trees() {
        let g = hypercube(4); // λ = 4
        let packing = exact_tree_packing(&g, 2, 0).expect("2 trees in Q4");
        packing.validate(&g).unwrap();
    }

    #[test]
    fn thick_path_packs_half_lambda() {
        let g = thick_path(6, 8); // λ = 8
        let packing = exact_tree_packing(&g, 4, 0).expect("4 trees");
        packing.validate(&g).unwrap();
        assert!(packing.stats(&g).edge_disjoint);
    }

    #[test]
    fn overfull_request_returns_none() {
        let g = harary(4, 20); // λ = 4 ⇒ at most 2 trees
        assert!(exact_tree_packing(&g, 3, 0).is_none());
        // But the forest packing still maximizes total edges.
        let p = matroid_forest_packing(&g, 3);
        validate(&g, &p);
        assert!(p.total_edges() <= g.m());
        assert!(p.total_edges() >= 2 * 19); // ≥ the two spanning trees
    }

    #[test]
    fn single_forest_is_a_spanning_tree() {
        let g = harary(6, 24);
        let p = matroid_forest_packing(&g, 1);
        validate(&g, &p);
        assert_eq!(p.forests[0].len(), 23);
    }
}
