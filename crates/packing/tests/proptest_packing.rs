//! Property-based tests for tree packings: matroid-union optimality
//! relations, greedy validity, and partition packing invariants on
//! arbitrary connected graphs.

use congest_graph::algo::components::{is_connected, UnionFind};
use congest_graph::algo::connectivity::edge_connectivity;
use congest_graph::{Graph, GraphBuilder};
use congest_packing::greedy::{greedy_disjoint_spanning_trees, random_disjoint_spanning_trees};
use congest_packing::matroid::{exact_tree_packing, matroid_forest_packing};
use proptest::prelude::*;

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4..max_n, any::<u64>(), 30u64..90).prop_map(|(n, seed, density)| {
        let mix = |mut z: u64| {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        };
        let mut b = GraphBuilder::new(n);
        let mut edges = std::collections::BTreeSet::new();
        for v in 1..n as u32 {
            let u = (mix(seed ^ v as u64) % v as u64) as u32;
            edges.insert((u, v));
        }
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if mix(seed ^ (((u as u64) << 32) | v as u64)) % 100 < density {
                    edges.insert((u, v));
                }
            }
        }
        for (u, v) in edges {
            b.push_edge(u, v);
        }
        b.build().unwrap()
    })
}

fn validate_forests(g: &Graph, forests: &[Vec<u32>]) {
    let mut seen = vec![false; g.m()];
    for f in forests {
        let mut uf = UnionFind::new(g.n());
        for &e in f {
            assert!(!seen[e as usize], "edge reuse");
            seen[e as usize] = true;
            let (u, v) = g.endpoints(e);
            assert!(uf.union(u, v), "cycle in forest");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Matroid forest packings are always valid, dominate greedy in total
    /// edges, and k=1 recovers a spanning tree.
    #[test]
    fn matroid_dominates_greedy(g in arb_connected_graph(16), k in 1usize..4) {
        prop_assume!(is_connected(&g));
        let exact = matroid_forest_packing(&g, k);
        validate_forests(&g, &exact.forests);
        let greedy = random_disjoint_spanning_trees(&g, k, 7);
        let greedy_total: usize = greedy.trees.iter()
            .map(|t| t.parent.iter().filter(|&&p| p != u32::MAX).count())
            .sum();
        prop_assert!(exact.total_edges() >= greedy_total,
            "matroid union must be maximum: {} < {}", exact.total_edges(), greedy_total);
        if k == 1 {
            prop_assert_eq!(exact.forests[0].len(), g.n() - 1);
        }
    }

    /// Nash-Williams/Tutte realized: any ⌊λ/2⌋-tree request succeeds.
    #[test]
    fn nash_williams_always_satisfied(g in arb_connected_graph(14)) {
        prop_assume!(is_connected(&g));
        let lam = edge_connectivity(&g);
        let k = lam / 2;
        prop_assume!(k >= 1);
        let packing = exact_tree_packing(&g, k, 0);
        prop_assert!(
            packing.is_some(),
            "⌊λ/2⌋ = {k} trees must exist at λ = {lam}"
        );
        let packing = packing.unwrap();
        packing.validate(&g).unwrap();
        prop_assert!(packing.stats(&g).edge_disjoint);
    }

    /// A packing of k spanning trees requires k·(n−1) edges and λ ≥ k;
    /// when the exact algorithm says None for k = ⌊λ/2⌋ + overshoot,
    /// the shortage must be structural (too few edges or λ < k... we
    /// check the edge-count certificate).
    #[test]
    fn impossibility_certificates(g in arb_connected_graph(12)) {
        prop_assume!(is_connected(&g));
        let n = g.n();
        let k_too_big = g.m() / (n - 1) + 1; // more trees than edges allow
        prop_assert!(exact_tree_packing(&g, k_too_big, 0).is_none());
    }

    /// BFS-greedy trees, when produced, are valid and edge-disjoint.
    #[test]
    fn greedy_output_always_valid(g in arb_connected_graph(14), k in 1usize..4) {
        prop_assume!(is_connected(&g));
        let packing = greedy_disjoint_spanning_trees(&g, k, 0);
        prop_assert!(packing.num_trees() >= 1);
        packing.validate(&g).unwrap();
        prop_assert!(packing.stats(&g).edge_disjoint);
    }
}
