//! Vendored offline shim for the subset of `proptest` this workspace uses.
//!
//! Deterministic seeded case generation, no shrinking: each `proptest!`
//! test runs `cases` iterations with inputs drawn from a per-test
//! SplitMix64 stream (stable across runs and platforms). On failure the
//! panic message includes the case index so the exact input is
//! reproducible by construction.
//!
//! Supported: range strategies over primitive ints, `any::<T>()`,
//! `prop_map`, tuple strategies, `collection::vec`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`,
//! `ProptestConfig::with_cases`, and the `PROPTEST_CASES` environment
//! override (CI's proptest-heavy lane raises every harness's case count
//! through it, as with real proptest).

/// The per-test deterministic generator handed to strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let threshold = span.wrapping_neg() % span;
        loop {
            let m = (self.next_u64() as u128).wrapping_mul(span as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A value generator. No shrinking — `generate` is the whole contract.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Whole-domain strategies, as in `any::<u64>()`.
pub struct Any<T>(core::marker::PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Constant strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

pub mod collection {
    use super::{Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count actually run: the `PROPTEST_CASES` environment
    /// variable overrides the configured count when set (mirroring real
    /// proptest), so CI's proptest-heavy lane can crank every harness up
    /// without touching source.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(self.cases)
    }
}

/// FNV-1a over the test name: stable per-test seed base.
#[doc(hidden)]
pub fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Reject the current case (skip it) when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// The test harness macro. Each listed function becomes a `#[test]` whose
/// arguments are drawn `cases` times from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __seed = $crate::name_seed(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.resolved_cases() as u64 {
                    $crate::__proptest_case(__seed, __case, |__rng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                        $body
                    });
                }
            }
        )*
    };
}

/// Runs one case, annotating panics with the case index.
#[doc(hidden)]
pub fn __proptest_case(seed: u64, case: u64, body: impl FnOnce(&mut TestRng)) {
    let mut rng = TestRng::new(seed ^ case.wrapping_mul(0xA24B_AED4_963E_E407));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
    if let Err(payload) = result {
        eprintln!("proptest case {case} (seed {seed:#x}) failed");
        std::panic::resume_unwind(payload);
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respected(x in 3usize..10, y in any::<u64>(), v in collection::vec(0u32..5, 1..4)) {
            prop_assert!((3..10).contains(&x));
            let _ = y;
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x < 5);
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn env_override_parses_and_falls_back() {
        // Note: no test here mutates the process environment (that would
        // race other tests); this covers the parse/fallback logic.
        let cfg = super::ProptestConfig::with_cases(7);
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(cfg.resolved_cases(), 7);
        } else {
            assert!(cfg.resolved_cases() >= 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::new(1);
        let mut b = super::TestRng::new(1);
        let s = (0u32..100, super::any::<u64>());
        assert_eq!(
            super::Strategy::generate(&s, &mut a),
            super::Strategy::generate(&s, &mut b)
        );
    }
}
