//! Vendored offline shim for the subset of `rayon` this workspace uses,
//! backed by the [`congest_par`] persistent pool.
//!
//! Supported surface: `(range).into_par_iter().map(f)` followed by
//! `.collect()`, `.min()`, `.min_by_key()`, or `.try_reduce()` (for
//! `Option` items), plus `ThreadPoolBuilder::num_threads(..).build()` and
//! `ThreadPool::install(..)` (which installs a scoped [`congest_par`]
//! pool, so the engine and these iterators both honor it).

/// An indexed parallel pipeline: `len` items produced by `f(0..len)`.
pub struct ParIter<F> {
    len: usize,
    offset: u64,
    f: F,
}

/// Sources convertible into a parallel iterator.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            type Iter = ParIter<fn(u64) -> $t>;
            fn into_par_iter(self) -> Self::Iter {
                ParIter {
                    len: (self.end.saturating_sub(self.start)) as usize,
                    offset: self.start as u64,
                    f: |i| i as $t,
                }
            }
        }
    )*};
}
impl_range_source!(u32, u64, usize);

impl<F, T> ParIter<F>
where
    F: Fn(u64) -> T + Sync,
    T: Send,
{
    #[inline]
    fn item(&self, i: usize) -> T {
        (self.f)(self.offset + i as u64)
    }

    fn collect_vec(&self) -> Vec<T> {
        congest_par::par_map_collect(self.len, |i| self.item(i))
    }

    pub fn map<G, U>(self, g: G) -> ParIter<impl Fn(u64) -> U + Sync>
    where
        G: Fn(T) -> U + Sync,
        U: Send,
    {
        let ParIter { len, offset, f } = self;
        ParIter {
            len,
            offset,
            f: move |i| g(f(i)),
        }
    }

    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.collect_vec())
    }

    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        self.collect_vec().into_iter().min()
    }

    pub fn min_by_key<K: Ord, G: FnMut(&T) -> K>(self, key: G) -> Option<T> {
        self.collect_vec().into_iter().min_by_key(key)
    }

    pub fn for_each<G: Fn(T) + Sync>(self, g: G) {
        congest_par::run(self.len, |i| g(self.item(i)));
    }
}

impl<F, U> ParIter<F>
where
    F: Fn(u64) -> Option<U> + Sync,
    U: Send,
{
    /// rayon-compatible `try_reduce` for `Option` items: short-circuits on
    /// `None`, otherwise folds with `op` from `identity()`.
    pub fn try_reduce<ID, OP>(self, identity: ID, op: OP) -> Option<U>
    where
        ID: Fn() -> U,
        OP: Fn(U, U) -> Option<U>,
    {
        let mut acc = identity();
        for item in self.collect_vec() {
            acc = op(acc, item?)?;
        }
        Some(acc)
    }
}

/// Builder for an explicitly-sized pool.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.num_threads.unwrap_or(0),
        })
    }
}

/// A handle whose `install` scopes all shim + engine parallelism to a pool
/// of the requested width.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let t = if self.threads == 0 {
            congest_par::num_threads()
        } else {
            self.threads
        };
        congest_par::with_threads(t, f)
    }

    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

pub mod prelude {
    pub use super::{IntoParallelIterator, ParIter, ThreadPoolBuilder};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_serial() {
        let v: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * 3).collect();
        let s: Vec<u64> = (0u64..100).map(|x| x * 3).collect();
        assert_eq!(v, s);
    }

    #[test]
    fn min_and_min_by_key() {
        let m = (5u32..50).into_par_iter().map(|x| (x * 7) % 13).min();
        let s = (5u32..50).map(|x| (x * 7) % 13).min();
        assert_eq!(m, s);
        let k = (0usize..40)
            .into_par_iter()
            .map(|x| (x, 100 - x))
            .min_by_key(|&(_, y)| y);
        assert_eq!(k, Some((39, 61)));
    }

    #[test]
    fn try_reduce_short_circuits_on_none() {
        let all: Option<u32> = (0u32..10)
            .into_par_iter()
            .map(Some)
            .try_reduce(|| 0, |a, b| Some(a.max(b)));
        assert_eq!(all, Some(9));
        let bad: Option<u32> = (0u32..10)
            .into_par_iter()
            .map(|x| if x == 5 { None } else { Some(x) })
            .try_reduce(|| 0, |a, b| Some(a.max(b)));
        assert_eq!(bad, None);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            assert_eq!(congest_par::num_threads(), 2);
        });
    }
}
