//! Vendored offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build container has no crates.io access, so instead of the real
//! `rand` we ship a tiny API-compatible replacement: [`rngs::SmallRng`]
//! (xoshiro256++ seeded via SplitMix64 — the same construction the real
//! `SmallRng` uses on 64-bit targets), the [`Rng`] extension trait with
//! `gen` / `gen_range` / `gen_bool`, and [`SeedableRng::seed_from_u64`].
//!
//! Streams are deterministic and portable but are **not** bit-compatible
//! with the real crate — everything in this workspace derives expectations
//! from these streams, so that is invisible here.

/// Core uniform-bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling helpers (auto-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Sample a uniform value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p ∈ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits, exactly like rand's f64 sampling.
        f64_unit(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[inline]
fn f64_unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly over their whole domain.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64_unit(rng.next_u64())
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64 range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64_unit(rng.next_u64()) * (self.end - self.start)
    }
}

/// Uniform value in `[0, span)` via Lemire-style widening multiply with a
/// rejection pass for exactness (`span > 0`).
#[inline]
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = (rng.next_u64() as u128).wrapping_mul(span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and excellent statistically; the same
    /// algorithm the real `SmallRng` uses on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::prelude` lookalike.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let x: u64 = a.gen();
        assert_eq!(x, b.gen::<u64>());
        assert_ne!(x, c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0..=5u64);
            assert!(w <= 5);
            let f = r.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = r.gen_range(1..100);
            assert!((1..100).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2600..3400).contains(&hits), "hits = {hits}");
    }
}
