//! Vendored offline shim for the subset of `criterion` this workspace
//! uses: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, and `Bencher::iter`.
//!
//! Measurement model: after one warm-up call, every benchmark takes
//! `sample_size` wall-clock samples (default 10) of single invocations and
//! reports min/median/mean. No plots, no statistics beyond that — just
//! honest numbers on stdout, which is what the experiment harness needs
//! offline. The last measurement of every benchmark is retrievable via
//! [`Criterion::reports`] so harness code can export machine-readable
//! summaries (e.g. `BENCH_sim.json`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Report {
    pub id: String,
    pub samples: usize,
    pub min: Duration,
    pub median: Duration,
    pub mean: Duration,
}

/// Entry point object handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
    reports: Vec<Report>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            parent: self,
            sample_size: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let samples = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        let report = run_bench(&id, samples, |b| f(b));
        self.reports.push(report);
    }

    /// All measurements taken so far, in execution order.
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }
}

/// A named group; `sample_size` overrides the parent default.
pub struct BenchmarkGroup<'a> {
    name: String,
    parent: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(10);
        let report = run_bench(&full, samples, |b| f(b));
        self.parent.reports.push(report);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.0);
        let samples = self.sample_size.unwrap_or(10);
        let report = run_bench(&full, samples, |b| f(b, input));
        self.parent.reports.push(report);
    }

    pub fn finish(self) {}
}

/// Benchmark identifier: `BenchmarkId::new(function, parameter)`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    elapsed: Option<Duration>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed = Some(start.elapsed());
    }
}

fn run_bench(id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) -> Report {
    // Warm-up.
    let mut b = Bencher { elapsed: None };
    f(&mut b);
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { elapsed: None };
        f(&mut b);
        times.push(b.elapsed.expect("benchmark closure must call iter()"));
    }
    times.sort_unstable();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!(
        "bench {id:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({samples} samples)",
        min, median, mean
    );
    Report {
        id: id.to_string(),
        samples,
        min,
        median,
        mean,
    }
}

/// Mirrors criterion's macro: defines a function running all listed
/// benchmark functions against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors criterion's macro: the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_produce_reports() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
                b.iter(|| x * x)
            });
            g.finish();
        }
        c.bench_function("lone", |b| b.iter(|| 1 + 1));
        assert_eq!(c.reports().len(), 2);
        assert!(c.reports()[0].id.contains("demo/square/7"));
    }
}
