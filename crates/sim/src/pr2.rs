//! The **PR 2 single-tier ring multiplexer, frozen** — the bench
//! comparison arm for the two-tier queue rework.
//!
//! PR 2 rehosted the random-delay scheduler on fixed-capacity ring
//! buffers carved uniformly from one `u128` slab: port `p` owned slots
//! `p·cap..(p+1)·cap`, capacity rounded to a power of two. That layout
//! goes cache-cold at large `n × capacity` — every port's ring base is
//! `cap` words apart, so even depth-1 queues stride the whole slab — and
//! the serve loop probed every port every round. [`crate::sched::PortRings`]
//! replaced it with a two-tier (inline head + spill arena) queue; this
//! module keeps the PR 2 hot path verbatim (the same way [`crate::pr1`]
//! freezes the PR 1 engine) so `benches/sim_throughput.rs` can report the
//! two-tier ring's speedup *over the single-tier ring* on the live
//! engine, isolating the queue layout from everything else.
//!
//! Nothing outside the bench and its cross-check tests should use this.

use crate::message::PackedMsg;
use crate::protocol::{InSlot, NodeCtx, OutSlot, Protocol};
use crate::sched::Tagged;
use crate::slab;

/// The PR 2 single-tier packed ring buffers, verbatim.
struct SingleTierRings {
    slab: Vec<u128>,
    head: Vec<u32>,
    len: Vec<u32>,
    cap: u32,
    queued: usize,
    peak: usize,
}

impl SingleTierRings {
    fn new(degree: usize, cap: usize) -> Self {
        let cap = cap.max(1).next_power_of_two();
        SingleTierRings {
            slab: vec![0; degree * cap],
            head: vec![0; degree],
            len: vec![0; degree],
            cap: cap as u32,
            queued: 0,
            peak: 0,
        }
    }

    #[inline]
    fn push(&mut self, port: usize, word: u128) {
        let len = self.len[port];
        assert!(
            len < self.cap,
            "multiplexer ring overflow on port {port}: capacity {} exhausted — \
             the queue capacity must be at least the per-edge congestion bound \
             (Theorem 12) of the multiplexed collection",
            self.cap
        );
        let slot = port as u32 * self.cap + ((self.head[port] + len) & (self.cap - 1));
        self.slab[slot as usize] = word;
        self.len[port] = len + 1;
        self.queued += 1;
        if (len + 1) as usize > self.peak {
            self.peak = (len + 1) as usize;
        }
    }

    #[inline]
    fn pop(&mut self, port: usize) -> Option<u128> {
        let len = self.len[port];
        if len == 0 {
            return None;
        }
        let head = self.head[port];
        let word = self.slab[(port as u32 * self.cap + head) as usize];
        self.head[port] = (head + 1) & (self.cap - 1);
        self.len[port] = len - 1;
        self.queued -= 1;
        Some(word)
    }
}

struct Pr2Sub<P: Protocol> {
    proto: P,
    delay: u64,
    virtual_round: u64,
    done: bool,
    woke: bool,
    in_words: Vec<<P::Msg as PackedMsg>::Word>,
    in_occ: Vec<u64>,
    out_words: Vec<<P::Msg as PackedMsg>::Word>,
    out_occ: Vec<u64>,
}

/// The PR 2 multiplexer: identical hosting logic to
/// [`crate::sched::Multiplexed`] (same sub-stepping, same done-sub
/// skipping, same tags), but over the frozen single-tier rings and the
/// PR 2 probe-every-port serve loop.
pub struct Pr2Multiplexed<P: Protocol> {
    subs: Vec<Pr2Sub<P>>,
    rings: SingleTierRings,
}

impl<P: Protocol> Pr2Multiplexed<P> {
    /// Mirror of [`crate::sched::Multiplexed::new`].
    pub fn new(instances: Vec<P>, delays: &[u64], degree: usize, queue_capacity: usize) -> Self {
        assert_eq!(instances.len(), delays.len());
        let subs = instances
            .into_iter()
            .zip(delays.iter())
            .map(|(proto, &delay)| Pr2Sub {
                proto,
                delay,
                virtual_round: 0,
                done: false,
                woke: false,
                in_words: vec![Default::default(); degree],
                in_occ: vec![0; slab::words_for(degree)],
                out_words: vec![Default::default(); degree],
                out_occ: vec![0; slab::words_for(degree)],
            })
            .collect();
        Pr2Multiplexed {
            subs,
            rings: SingleTierRings::new(degree, queue_capacity),
        }
    }
}

impl<P: Protocol> Protocol for Pr2Multiplexed<P> {
    type Msg = Tagged<P::Msg>;
    type Output = (Vec<P::Output>, usize);

    fn round(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>) {
        let graph = ctx.graph();
        for (p, t) in ctx.inbox() {
            let sub = &mut self.subs[t.algo as usize];
            debug_assert!(!slab::test(&sub.in_occ, p as usize));
            slab::set(&mut sub.in_occ, p as usize);
            sub.in_words[p as usize] = t.msg.pack();
            sub.woke = true;
        }
        for (i, sub) in self.subs.iter_mut().enumerate() {
            if ctx.round < sub.delay || (sub.done && !sub.woke) {
                continue;
            }
            sub.woke = false;
            {
                let mut sub_ctx = NodeCtx {
                    node: ctx.node,
                    round: sub.virtual_round,
                    inbox: InSlot {
                        words: &sub.in_words,
                        occ: &sub.in_occ,
                        bit0: 0,
                        bcast: None,
                    },
                    outbox: OutSlot::Local {
                        words: &mut sub.out_words,
                        occ: &mut sub.out_occ,
                        graph,
                    },
                    bcast_staged: false,
                    rng: ctx.rng,
                    done: &mut sub.done,
                    max_bits: ctx.max_bits,
                };
                sub.proto.round(&mut sub_ctx);
            }
            sub.virtual_round += 1;
            for (wi, occ_word) in sub.out_occ.iter_mut().enumerate() {
                let mut bits = *occ_word;
                *occ_word = 0;
                while bits != 0 {
                    let p = wi * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let tagged = Tagged {
                        algo: i as u32,
                        msg: P::Msg::unpack(sub.out_words[p]),
                    };
                    self.rings.push(p, tagged.pack());
                }
            }
            slab::clear_all(&mut sub.in_occ);
        }
        // The PR 2 serve loop, verbatim: probe every port.
        for p in 0..ctx.degree() {
            if let Some(word) = self.rings.pop(p) {
                ctx.send(p as u32, Tagged::unpack(word));
            }
        }
        let all_done = self.subs.iter().all(|s| s.done);
        ctx.set_done(all_done && self.rings.queued == 0);
    }

    fn finish(self) -> Self::Output {
        (
            self.subs.into_iter().map(|s| s.proto.finish()).collect(),
            self.rings.peak,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_protocol, EngineConfig};
    use crate::sched::{random_delays, Multiplexed};
    use congest_graph::{Graph, Node};

    /// Message-driven flood (tolerates queuing delays).
    struct Flood {
        informed: bool,
        relayed: bool,
    }
    impl Protocol for Flood {
        type Msg = ();
        type Output = bool;
        fn round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
            if ctx.inbox_len() > 0 {
                self.informed = true;
            }
            if self.informed && !self.relayed {
                ctx.send_all(());
                self.relayed = true;
            }
            ctx.set_done(self.relayed);
        }
        fn finish(self) -> bool {
            self.informed
        }
    }

    /// The frozen single-tier arm must agree with the live two-tier
    /// multiplexer bit-for-bit: same outputs, same stats, same peak
    /// queue depths — the tiers are a layout change, not a schedule
    /// change.
    #[test]
    fn frozen_single_tier_agrees_with_two_tier() {
        let g = congest_graph::generators::harary(6, 64);
        let k = 5;
        let delays = random_delays(k, 4, 11);
        let mk = |v: Node| -> Vec<Flood> {
            (0..k)
                .map(|i| Flood {
                    informed: i as Node == v,
                    relayed: false,
                })
                .collect()
        };
        let live = run_protocol(
            &g,
            |v, gr: &Graph| Multiplexed::new(mk(v), &delays, gr.degree(v), 2 * k),
            EngineConfig::with_seed(3),
        )
        .unwrap();
        let frozen = run_protocol(
            &g,
            |v, gr: &Graph| Pr2Multiplexed::new(mk(v), &delays, gr.degree(v), 2 * k),
            EngineConfig::with_seed(3),
        )
        .unwrap();
        assert_eq!(live.outputs, frozen.outputs);
        assert_eq!(live.stats, frozen.stats);
        assert_eq!(live.edge_congestion, frozen.edge_congestion);
    }
}
