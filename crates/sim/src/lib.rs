//! # congest-sim — a deterministic synchronous CONGEST-model simulator
//!
//! The paper's model (§2): an undirected network `G = (V, E)` where nodes
//! compute in **synchronous rounds**, and per round each node may send one
//! `O(log n)`-bit message to each of its neighbors. This crate executes
//! node programs ([`Protocol`]s) under exactly that discipline and meters
//! what the theorems bound:
//!
//! * **rounds** — the quantity every theorem in the paper is about;
//! * **per-edge congestion** — the maximum number of messages that crossed
//!   any single edge (Lemma 1's O(k) congestion, Theorem 10's O(log n)
//!   tree-packing congestion);
//! * **message size in bits** — so the O(log n)-bit discipline is checked,
//!   not assumed (see [`message::MsgBits`]).
//!
//! ## Execution model
//!
//! One engine iteration = one CONGEST round: every node reads the messages
//! delivered to it, mutates its state, and writes at most one message per
//! incident port; then all messages are delivered simultaneously. Nodes
//! step **in parallel** (on the `congest_par` pool) — each node touches
//! only its own state and its own slots of the packed message slabs, so
//! results are bit-identical for any thread count.
//!
//! ## Packed message plane
//!
//! Wire messages implement [`message::PackedMsg`]: every message encodes
//! into a fixed-width `u64`/`u128` word (the model's O(log n) bits made
//! literal). The slabs are flat word vectors with a word-packed occupancy
//! bitset; sends scatter through the precomputed reverse-arc permutation
//! straight into the receiver's slot, so delivery is a buffer *swap* and
//! the round loop allocates nothing (see [`engine`]). Rounds whose staged
//! traffic is sparse take a worklist fast path — deliver cost is
//! O(traffic), not O(arcs) (see [`engine::EngineConfig::sparse_threshold`]).
//! The pre-packing `Vec<Option<Msg>>` engine survives in [`baseline`],
//! the PR 1 round loop in [`pr1`], and the PR 2 single-tier ring
//! multiplexer in [`pr2`] — the frozen comparison arms of
//! `benches/sim_throughput.rs` and the differential test harnesses.
//!
//! Per-node randomness comes from a counter-based RNG seeded by
//! `mix(run_seed, node_id)` ([`rng::node_rng`]), making whole runs
//! reproducible from a single `u64`.
//!
//! ## Composition
//!
//! Paper algorithms are sequential compositions of phases (elect a leader,
//! build a BFS tree, number the messages, partition the edges, …, route).
//! [`phase::PhaseLog`] chains runs and accumulates the round counts the
//! same way the proofs sum complexities.
//!
//! The random-delay scheduler of Ghaffari \[Gha15b\] (paper Theorem 12) is
//! provided by [`sched`]: it multiplexes many *delay-tolerant* protocols
//! over one network with per-port FIFO queues, realizing
//! `O(congestion + dilation·log² n)` composition.

pub mod baseline;
pub mod churn;
pub mod engine;
pub mod fault;
pub mod message;
pub mod phase;
pub mod pool;
pub mod pr1;
pub mod pr2;
pub mod protocol;
pub mod rng;
pub mod sched;
pub mod session;
mod slab;
pub mod snapshot;
pub mod wide;

pub use churn::{ChurnError, ChurnReport, ChurnSession, ChurnStats, Mutation, MutationQueue};
pub use engine::{run_protocol, EngineConfig, EngineError, MeterMode, RunOutcome, RunStats};
pub use fault::{ChurnPlan, EdgeMarks, FaultPlan};
pub use message::{MsgBits, MsgWord, PackedMsg};
pub use phase::PhaseLog;
pub use pool::{
    run_job_isolated, EvictionPolicy, GraphKey, Job, JobId, JobOutput, JobSpec, JobStatus,
    PoolError, PoolServer, SessionPool, Tenant, TenantMeter,
};
pub use protocol::{InboxIter, NodeCtx, Protocol};
pub use session::{PhaseHost, PhaseOutcome, Session};
pub use snapshot::{SnapshotError, SnapshotHeader, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use wide::{LaneRetire, LaneSpec, WideOutcome, WideSession, MAX_LANES};
