//! The **PR 1 round loop, frozen** — the bench comparison arm.
//!
//! `benches/sim_throughput.rs` reports the sharded engine's round-loop
//! speedup *over the PR 1 engine*; for that ratio to stay meaningful as
//! the live engine evolves, the PR 1 hot path is kept here verbatim (the
//! same way [`crate::baseline`] preserves the seed-style `Option`-slab
//! engine). Frozen pieces:
//!
//! * the **sequential deliver sweep** with per-round `u32` per-arc
//!   congestion increments (the live engine meters through bit-sliced
//!   planes, sharded);
//! * the **PR 1 node context** (bounds-checked inbox walk, asserting
//!   `send_all`) — so later context micro-optimizations don't silently
//!   flatter the comparison;
//! * the **`VecDeque` port-queue multiplexer** that PR 2 replaced with
//!   packed ring buffers.
//!
//! Benchmark workloads implement [`Pr1Protocol`] alongside the live
//! [`crate::Protocol`] with identical logic, mirroring how baseline
//! workloads implement `BaselineProtocol`. Nothing outside the bench and
//! its cross-check tests should use this module.

use crate::engine::{EngineConfig, EngineError, RunOutcome, RunStats};
use crate::message::PackedMsg;
use crate::rng::node_rng;
use crate::sched::Tagged;
use crate::slab;
use congest_graph::{Graph, Node, Port};
use congest_par::RacyCells;
use rand::rngs::SmallRng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

const STAGED: u8 = 1;
const PARALLEL_MIN_NODES: usize = 256;

/// The PR 1 node program trait (identical shape to [`crate::Protocol`]).
pub trait Pr1Protocol: Send {
    type Msg: PackedMsg;
    type Output: Send;
    fn round(&mut self, ctx: &mut Pr1NodeCtx<'_, Self::Msg>);
    fn finish(self) -> Self::Output;
}

struct InSlot<'a, M: PackedMsg> {
    words: &'a [M::Word],
    occ: &'a [u64],
    bit0: usize,
}

enum OutSlot<'a, M: PackedMsg> {
    Scatter {
        words: &'a RacyCells<'a, M::Word>,
        mask: &'a RacyCells<'a, u8>,
        rev: &'a [u32],
        lo: usize,
        deg: usize,
    },
    Local {
        words: &'a mut [M::Word],
        occ: &'a mut [u64],
    },
}

/// Frozen PR 1 context: the API subset the bench workloads use.
pub struct Pr1NodeCtx<'a, M: PackedMsg> {
    pub node: Node,
    pub round: u64,
    graph: &'a Graph,
    inbox: InSlot<'a, M>,
    outbox: OutSlot<'a, M>,
    rng: &'a mut SmallRng,
    done: &'a mut bool,
    max_bits: &'a mut usize,
}

impl<M: PackedMsg> Pr1NodeCtx<'_, M> {
    #[inline]
    pub fn degree(&self) -> usize {
        self.inbox.words.len()
    }

    #[inline]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The PR 1 inbox walk: occupancy-word scan with bounds-checked word
    /// loads (the live engine's walk elides the per-message bounds check).
    pub fn inbox(&self) -> impl Iterator<Item = (Port, M)> + '_ {
        let deg = self.degree();
        let bit0 = self.inbox.bit0;
        let words = self.inbox.words;
        let occ = self.inbox.occ;
        let first_w = bit0 >> 6;
        let last_w = if deg == 0 {
            first_w
        } else {
            (bit0 + deg - 1) >> 6
        };
        let mut w = first_w;
        let mut current: u64 = 0;
        if deg > 0 {
            current = occ[w] & (!0u64 << (bit0 & 63));
            if w == last_w {
                let top = (bit0 + deg - 1) & 63;
                current &= !0u64 >> (63 - top);
            }
        }
        std::iter::from_fn(move || {
            if deg == 0 {
                return None;
            }
            loop {
                if current != 0 {
                    let bit = (w << 6) + current.trailing_zeros() as usize;
                    current &= current - 1;
                    let port = (bit - bit0) as Port;
                    return Some((port, M::unpack(words[port as usize])));
                }
                if w >= last_w {
                    return None;
                }
                w += 1;
                current = occ[w];
                if w == last_w {
                    let top = (bit0 + deg - 1) & 63;
                    current &= !0u64 >> (63 - top);
                }
            }
        })
    }

    pub fn inbox_len(&self) -> usize {
        slab::popcount_range(self.inbox.occ, self.inbox.bit0, self.degree())
    }

    #[inline]
    pub fn send(&mut self, port: Port, msg: M) {
        let bits = msg.bits();
        if bits > *self.max_bits {
            *self.max_bits = bits;
        }
        let word = msg.pack();
        let already = match &mut self.outbox {
            OutSlot::Scatter {
                words,
                mask,
                rev,
                lo,
                deg,
            } => {
                assert!((port as usize) < *deg, "send on nonexistent port {port}");
                let dest = rev[*lo + port as usize] as usize;
                let already = unsafe { mask.read(dest) } != 0;
                if !already {
                    unsafe {
                        mask.write(dest, 1);
                        words.write(dest, word);
                    }
                }
                already
            }
            OutSlot::Local { words, occ } => {
                let already = slab::set(occ, port as usize);
                if !already {
                    words[port as usize] = word;
                }
                already
            }
        };
        assert!(
            !already,
            "CONGEST violation: node {} sent twice on port {} in round {}",
            self.node, port, self.round
        );
    }

    /// The PR 1 `send_all`: per-arc asserting mask probe before each store.
    pub fn send_all(&mut self, msg: M) {
        match &mut self.outbox {
            OutSlot::Scatter {
                words,
                mask,
                rev,
                lo,
                deg,
            } => {
                let bits = msg.bits();
                if bits > *self.max_bits {
                    *self.max_bits = bits;
                }
                let word = msg.pack();
                for &dest in &rev[*lo..*lo + *deg] {
                    let dest = dest as usize;
                    unsafe {
                        assert!(
                            mask.read(dest) == 0,
                            "CONGEST violation: node {} double-sent in round {}",
                            self.node,
                            self.round
                        );
                        mask.write(dest, 1);
                        words.write(dest, word);
                    }
                }
            }
            OutSlot::Local { .. } => {
                for p in 0..self.degree() as Port {
                    self.send(p, msg);
                }
            }
        }
    }

    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    #[inline]
    pub fn set_done(&mut self, done: bool) {
        *self.done = done;
    }
}

struct NodeCell<P> {
    state: P,
    rng: SmallRng,
    done: bool,
    max_bits: usize,
}

/// The PR 1 engine: chunk-parallel step, **sequential-shape deliver sweep**
/// with per-round per-arc `u32` congestion increments, lazy whole-`Vec`
/// done-scan. Body frozen from PR 1's `run_protocol`.
pub fn run_pr1<P, F>(
    graph: &Graph,
    mut factory: F,
    config: EngineConfig,
) -> Result<RunOutcome<P::Output>, EngineError>
where
    P: Pr1Protocol,
    F: FnMut(Node, &Graph) -> P,
{
    let n = graph.n();
    let arcs = graph.num_arcs();
    let mut cells: Vec<NodeCell<P>> = (0..n as Node)
        .map(|v| NodeCell {
            state: factory(v, graph),
            rng: node_rng(config.seed, v),
            done: false,
            max_bits: 0,
        })
        .collect();

    let mut in_words: Vec<<P::Msg as PackedMsg>::Word> = vec![Default::default(); arcs];
    let mut out_words: Vec<<P::Msg as PackedMsg>::Word> = vec![Default::default(); arcs];
    let mut in_occ: Vec<u64> = vec![0; arcs.div_ceil(64)];
    let mut out_mask: Vec<u8> = vec![0; arcs];
    let mut arc_traffic: Vec<u32> = vec![0; arcs];
    let mut blocked: Vec<congest_graph::Edge> = Vec::new();
    if let Some(plan) = &config.faults {
        blocked.reserve(plan.edges_per_round);
    }

    let parallel = config.parallel && n >= PARALLEL_MIN_NODES && congest_par::num_threads() > 1;
    let step_chunk = n.div_ceil((congest_par::num_threads() * 4).max(1)).max(1);

    let mut stats = RunStats::default();
    let mut trace: Option<Vec<u64>> = config.collect_trace.then(Vec::new);
    let mut round: u64 = 0;
    loop {
        if round >= config.max_rounds {
            return Err(EngineError::RoundLimitExceeded {
                limit: config.max_rounds,
            });
        }
        {
            let racy_out = RacyCells::new(&mut out_words);
            let racy_mask = RacyCells::new(&mut out_mask);
            let in_words = &in_words[..];
            let in_occ = &in_occ[..];
            let step_node = |base: usize, i: usize, cell: &mut NodeCell<P>| {
                let v = (base + i) as Node;
                let lo = graph.arc_offset(v);
                let deg = graph.degree(v);
                let mut ctx = Pr1NodeCtx {
                    node: v,
                    round,
                    graph,
                    inbox: InSlot {
                        words: &in_words[lo..lo + deg],
                        occ: in_occ,
                        bit0: lo,
                    },
                    outbox: OutSlot::Scatter {
                        words: &racy_out,
                        mask: &racy_mask,
                        rev: graph.reverse_arcs(),
                        lo,
                        deg,
                    },
                    rng: &mut cell.rng,
                    done: &mut cell.done,
                    max_bits: &mut cell.max_bits,
                };
                cell.state.round(&mut ctx);
            };
            if parallel {
                congest_par::par_chunks_mut(&mut cells, step_chunk, |ci, chunk| {
                    let base = ci * step_chunk;
                    for (i, cell) in chunk.iter_mut().enumerate() {
                        step_node(base, i, cell);
                    }
                });
            } else {
                for (v, cell) in cells.iter_mut().enumerate() {
                    step_node(v, 0, cell);
                }
            }
        }
        if let Some(plan) = &config.faults {
            if plan.edges_per_round > 0 {
                plan.blocked_edges_into(round, graph.m(), &mut blocked);
                for &e in &blocked {
                    let (u, v) = graph.endpoints(e);
                    for (from, to) in [(u, v), (v, u)] {
                        let port = graph
                            .port_to(to, from)
                            .expect("edge endpoints are adjacent");
                        let dest = graph.arc_offset(to) + port as usize;
                        if out_mask[dest] == STAGED {
                            out_mask[dest] = 0;
                            stats.dropped_messages += 1;
                        }
                    }
                }
            }
        }
        std::mem::swap(&mut in_words, &mut out_words);
        let delivered = deliver_and_account(&mut out_mask, &mut in_occ, &mut arc_traffic, parallel);
        stats.total_messages += delivered;
        if let Some(t) = &mut trace {
            t.push(delivered);
        }
        round += 1;
        if delivered > 0 {
            stats.rounds = round;
        }
        if delivered == 0 && cells.iter().all(|c| c.done) {
            stats.iterations = round;
            break;
        }
    }
    if let Some(t) = &mut trace {
        t.truncate(stats.rounds as usize);
    }
    stats.max_message_bits = cells.iter().map(|c| c.max_bits).max().unwrap_or(0);

    let mut per_edge: Vec<u64> = vec![0; graph.m()];
    for v in 0..n as Node {
        let lo = graph.arc_offset(v);
        for (i, &e) in graph.incident_edges(v).iter().enumerate() {
            per_edge[e as usize] += arc_traffic[lo + i] as u64;
        }
    }
    stats.max_edge_congestion = per_edge.iter().copied().max().unwrap_or(0);

    let outputs: Vec<P::Output> = cells.into_iter().map(|c| c.state.finish()).collect();
    Ok(RunOutcome {
        outputs,
        stats,
        trace,
        edge_congestion: per_edge,
    })
}

/// The PR 1 delivery sweep, verbatim: fold the staging byte-mask into the
/// occupancy bitset and bump a `u32` per delivered arc, every round.
fn deliver_and_account(
    staged: &mut [u8],
    in_occ: &mut [u64],
    arc_traffic: &mut [u32],
    parallel: bool,
) -> u64 {
    let arcs = staged.len();
    let sweep_word = |mask_bytes: &mut [u8], traffic: &mut [u32]| -> (u64, u64) {
        let bits = slab::pack_bytes(mask_bytes);
        if bits != 0 {
            mask_bytes.fill(0);
            if bits == u64::MAX {
                for t in traffic.iter_mut() {
                    *t = t.saturating_add(1);
                }
            } else {
                let mut b = bits;
                while b != 0 {
                    let t = &mut traffic[b.trailing_zeros() as usize];
                    *t = t.saturating_add(1);
                    b &= b - 1;
                }
            }
        }
        (bits, bits.count_ones() as u64)
    };
    if parallel && in_occ.len() >= 64 {
        let words_per_task = in_occ
            .len()
            .div_ceil((congest_par::num_threads() * 4).max(1))
            .max(1);
        let delivered = AtomicU64::new(0);
        let racy_mask = RacyCells::new(staged);
        let racy_traffic = RacyCells::new(arc_traffic);
        congest_par::par_chunks_mut(in_occ, words_per_task, |ci, occ_chunk| {
            let first_arc = ci * words_per_task * 64;
            let mut local = 0u64;
            for (i, occ_word) in occ_chunk.iter_mut().enumerate() {
                let lo = first_arc + i * 64;
                let hi = (lo + 64).min(arcs);
                let (mask_bytes, traffic) =
                    unsafe { (racy_mask.slice_mut(lo, hi), racy_traffic.slice_mut(lo, hi)) };
                let (bits, count) = sweep_word(mask_bytes, traffic);
                *occ_word = bits;
                local += count;
            }
            delivered.fetch_add(local, Ordering::Relaxed);
        });
        delivered.load(Ordering::Relaxed)
    } else {
        let mut delivered = 0u64;
        for (w, occ_word) in in_occ.iter_mut().enumerate() {
            let lo = w * 64;
            let hi = (lo + 64).min(arcs);
            let (bits, count) = sweep_word(&mut staged[lo..hi], &mut arc_traffic[lo..hi]);
            *occ_word = bits;
            delivered += count;
        }
        delivered
    }
}

/// The PR 1 random-delay multiplexer: heap `VecDeque` port queues, frozen
/// as the comparison arm for the packed ring-buffer scheduler.
pub struct Pr1Multiplexed<P: Pr1Protocol> {
    subs: Vec<Pr1Sub<P>>,
    queues: Vec<VecDeque<(u32, P::Msg)>>,
    peak_queue: usize,
}

struct Pr1Sub<P: Pr1Protocol> {
    proto: P,
    delay: u64,
    virtual_round: u64,
    done: bool,
    in_words: Vec<<P::Msg as PackedMsg>::Word>,
    in_occ: Vec<u64>,
    out_words: Vec<<P::Msg as PackedMsg>::Word>,
    out_occ: Vec<u64>,
}

impl<P: Pr1Protocol> Pr1Multiplexed<P> {
    pub fn new(instances: Vec<P>, delays: &[u64], degree: usize) -> Self {
        assert_eq!(instances.len(), delays.len());
        let subs = instances
            .into_iter()
            .zip(delays.iter())
            .map(|(proto, &delay)| Pr1Sub {
                proto,
                delay,
                virtual_round: 0,
                done: false,
                in_words: vec![Default::default(); degree],
                in_occ: vec![0; degree.div_ceil(64)],
                out_words: vec![Default::default(); degree],
                out_occ: vec![0; degree.div_ceil(64)],
            })
            .collect();
        Pr1Multiplexed {
            subs,
            queues: (0..degree).map(|_| VecDeque::new()).collect(),
            peak_queue: 0,
        }
    }
}

impl<P: Pr1Protocol> Pr1Protocol for Pr1Multiplexed<P> {
    type Msg = Tagged<P::Msg>;
    type Output = (Vec<P::Output>, usize);

    fn round(&mut self, ctx: &mut Pr1NodeCtx<'_, Self::Msg>) {
        for (p, t) in ctx.inbox() {
            let sub = &mut self.subs[t.algo as usize];
            debug_assert!(!slab::test(&sub.in_occ, p as usize));
            slab::set(&mut sub.in_occ, p as usize);
            sub.in_words[p as usize] = t.msg.pack();
        }
        for (i, sub) in self.subs.iter_mut().enumerate() {
            if ctx.round < sub.delay {
                continue;
            }
            {
                let mut sub_ctx = Pr1NodeCtx {
                    node: ctx.node,
                    round: sub.virtual_round,
                    graph: ctx.graph,
                    inbox: InSlot {
                        words: &sub.in_words,
                        occ: &sub.in_occ,
                        bit0: 0,
                    },
                    outbox: OutSlot::Local {
                        words: &mut sub.out_words,
                        occ: &mut sub.out_occ,
                    },
                    rng: ctx.rng,
                    done: &mut sub.done,
                    max_bits: ctx.max_bits,
                };
                sub.proto.round(&mut sub_ctx);
            }
            sub.virtual_round += 1;
            for p in 0..sub.out_words.len() {
                if slab::test(&sub.out_occ, p) {
                    self.queues[p].push_back((i as u32, P::Msg::unpack(sub.out_words[p])));
                }
            }
            slab::clear_all(&mut sub.in_occ);
            slab::clear_all(&mut sub.out_occ);
        }
        let mut peak = self.peak_queue;
        for p in 0..self.queues.len() {
            peak = peak.max(self.queues[p].len());
            if let Some((algo, msg)) = self.queues[p].pop_front() {
                ctx.send(p as u32, Tagged { algo, msg });
            }
        }
        self.peak_queue = peak;
        let all_done = self.subs.iter().all(|s| s.done);
        let queues_empty = self.queues.iter().all(|q| q.is_empty());
        ctx.set_done(all_done && queues_empty);
    }

    fn finish(self) -> Self::Output {
        (
            self.subs.into_iter().map(|s| s.proto.finish()).collect(),
            self.peak_queue,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_protocol, EngineConfig};
    use crate::protocol::{NodeCtx, Protocol};
    use congest_graph::generators::harary;

    /// Same chatter logic against both engines; the frozen arm must agree
    /// with the live engine on outputs and every metered stat.
    #[derive(Clone)]
    struct Chatter {
        acc: u64,
        until: u64,
    }
    impl Chatter {
        fn step(&mut self, round: u64, inbox_sum: u64) -> Option<u64> {
            self.acc = self.acc.wrapping_add(inbox_sum);
            (round < self.until).then_some(self.acc.wrapping_add(round))
        }
    }
    impl Protocol for Chatter {
        type Msg = u64;
        type Output = u64;
        fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
            let sum = ctx.inbox().map(|(_, m)| m).fold(0u64, u64::wrapping_add);
            match self.step(ctx.round, sum) {
                Some(m) => ctx.send_all(m),
                None => ctx.set_done(true),
            }
        }
        fn finish(self) -> u64 {
            self.acc
        }
    }
    impl Pr1Protocol for Chatter {
        type Msg = u64;
        type Output = u64;
        fn round(&mut self, ctx: &mut Pr1NodeCtx<'_, u64>) {
            let sum = ctx.inbox().map(|(_, m)| m).fold(0u64, u64::wrapping_add);
            match self.step(ctx.round, sum) {
                Some(m) => ctx.send_all(m),
                None => ctx.set_done(true),
            }
        }
        fn finish(self) -> u64 {
            self.acc
        }
    }

    #[test]
    fn frozen_arm_agrees_with_live_engine() {
        let g = harary(8, 300);
        let mk = |_: u32| Chatter { acc: 1, until: 70 };
        let live = run_protocol(&g, |v, _| mk(v), EngineConfig::with_seed(5)).unwrap();
        let frozen = run_pr1(&g, |v, _| mk(v), EngineConfig::with_seed(5)).unwrap();
        assert_eq!(live.outputs, frozen.outputs);
        assert_eq!(live.stats, frozen.stats);
    }
}
