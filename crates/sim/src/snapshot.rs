//! Snapshot, replay, and per-phase state hashing.
//!
//! Long compositions — soak runs, churn scenarios, `fastbcast serve`
//! sessions — need two things the round loop itself cannot give them:
//! **checkpointing** (stop at a phase boundary, move the engine to
//! another process or host, continue bit-identically) and a **cheap
//! cross-host differential signal** (compare two runs without shipping
//! gigabytes of buffers). This module provides both.
//!
//! ## The snapshot format
//!
//! A snapshot is a single flat byte frame, version-stamped and
//! checksummed. Because the engine's live state is already flat words —
//! packed `u64`/`u128` message slabs, word-packed occupancy bitsets,
//! plane counters, per-edge congestion — encoding is a near-memcpy walk
//! over those vectors. Layout (all integers little-endian):
//!
//! ```text
//! offset  field
//! 0       magic      u64   "FBCSNAP1"
//! 8       version    u32   SNAPSHOT_VERSION
//! 12      flags      u32   bit 0 clean, bit 1 graph section, bit 2 churn section
//! 16      checksum   u64   splitmix64 fold over every byte after this field
//! 24      fingerprint u64  Graph::fingerprint of the graph the state is keyed to
//! 32      n, m, arcs u64×3 graph shape (restore-time size validation)
//! 56      plan_key   u64   cached shard-plan key (0 = none); the plan itself
//!                          is a pure function of (graph, key) and is recomputed
//! 64      state_hash u64   state_hash() at encode time (restore re-verifies)
//! 72      capacities u64×6 byte high-water marks of the arc/broadcast slabs
//!                          and the cell/output arenas (restored so the
//!                          zero-alloc warm-up survives migration)
//! 120     body             [graph section][churn section][engine payload]
//! ```
//!
//! The engine payload serializes exactly the buffers that carry state
//! *across* a phase boundary: inbox occupancy, staging mask, traffic
//! counters, meter planes, broadcast bookkeeping, per-edge congestion,
//! and the last trace. **Not captured** (and why):
//!
//! * **slab and arena contents** — between phases only occupancy-gated
//!   slots are ever read and the occupancy bitset is zero, so the words
//!   are unreachable by construction; only their byte capacities matter
//!   (they are restored, so a warm session stays warm);
//! * **per-phase scratch** (shard meters, worklists, aggregation and
//!   fault buffers) — rebuilt at the start of every run;
//! * **the [`congest_graph::ShardPlan`]** — a pure function of the graph
//!   and the recorded `plan_key`, recomputed on restore;
//! * **wide-lane buffers** — zero at rest under the same breadcrumb
//!   discipline; they re-grow on the first wide run after restore;
//! * **mid-phase node state** — protocol cells are arbitrary user types;
//!   snapshots are a *phase-boundary* operation by design.
//!
//! ## Restore validation
//!
//! [`crate::Session::restore`] refuses to marry a payload to the wrong graph:
//! magic/version are checked first, then the checksum, then the graph
//! fingerprint and the `n`/`m`/`arcs` shape, then every decoded buffer
//! length, and finally the recomputed [`crate::Session::state_hash`] must equal
//! the recorded one — a restored engine is bit-identical or it is an
//! error, never silently wrong. Churn snapshots additionally carry the
//! mutated topology as an edge list; the CSR is rebuilt through
//! [`congest_graph::GraphBuilder`] (edge ids are canonical, so the
//! rebuild is exact), re-validated structurally
//! ([`congest_graph::Graph::validate_csr`]), and checked against the
//! recorded fingerprint.
//!
//! ## State hashing
//!
//! [`crate::Session::state_hash`] folds every **nonzero** word of the resident
//! buffers (tagged by buffer and index) through the same splitmix64
//! finalizer the graph fingerprint uses. Folding only nonzero words
//! makes the hash invariant across everything that must not matter:
//! serial vs parallel execution, shard counts, meter modes, lazily-sized
//! buffers, and resident vs per-phase hosting. At a clean phase boundary
//! the breadcrumb-zero contract means the hash effectively signs the
//! last phase's per-edge congestion profile and trace — recorded into
//! [`crate::PhaseLog`] via [`crate::PhaseLog::record_hashed`], two hosts
//! can diff a long composition phase by phase with eight bytes per
//! phase.
//!
//! ## Example
//!
//! Snapshot after one phase, restore into a second session, and watch
//! both continue in lockstep:
//!
//! ```
//! use congest_graph::generators::complete;
//! use congest_sim::{EngineConfig, NodeCtx, Protocol, Session};
//!
//! struct FloodMax {
//!     best: u64,
//! }
//! impl Protocol for FloodMax {
//!     type Msg = u64;
//!     type Output = u64;
//!     fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
//!         let before = self.best;
//!         for (_, m) in ctx.inbox() {
//!             self.best = self.best.max(m);
//!         }
//!         if ctx.round == 0 || self.best > before {
//!             ctx.send_all(self.best);
//!         }
//!         ctx.set_done(ctx.round > 0 && self.best == before);
//!     }
//!     fn finish(self) -> u64 {
//!         self.best
//!     }
//! }
//!
//! let g = complete(8);
//! let phase = |k: u64| EngineConfig::serial().seed(k);
//! let mut original = Session::new(&g);
//! original.run(|v, _| FloodMax { best: v as u64 }, phase(1)).unwrap();
//!
//! // Checkpoint at the phase boundary and restore into a fresh engine.
//! let bytes = original.snapshot();
//! let mut restored = Session::restore(&g, &bytes).unwrap();
//! assert_eq!(original.state_hash(), restored.state_hash());
//!
//! // Both sessions continue bit-identically.
//! let a = original.run(|v, _| FloodMax { best: v as u64 }, phase(2)).unwrap().take_outputs();
//! let b = restored.run(|v, _| FloodMax { best: v as u64 }, phase(2)).unwrap().take_outputs();
//! assert_eq!(a, b);
//! assert_eq!(original.state_hash(), restored.state_hash());
//! ```

use crate::rng::mix64;
use congest_graph::{Graph, GraphBuilder};
use std::fmt;

/// First 8 bytes of every snapshot: `b"FBCSNAP1"` read as a
/// little-endian `u64`.
pub const SNAPSHOT_MAGIC: u64 = u64::from_le_bytes(*b"FBCSNAP1");

/// Format version written by this build; [`crate::Session::restore`] rejects
/// any other value.
///
/// [`crate::Session::restore`]: crate::Session::restore
pub const SNAPSHOT_VERSION: u32 = 1;

pub(crate) const FLAG_CLEAN: u32 = 1;
pub(crate) const FLAG_GRAPH: u32 = 2;
pub(crate) const FLAG_CHURN: u32 = 4;

/// Fixed header size in bytes; the body starts here.
pub(crate) const HEADER_BYTES: usize = 120;

/// Why a snapshot frame was rejected. Every variant is a *refusal to
/// restore*: the engine is never left in a partially-restored state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The frame does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The frame's version is not [`SNAPSHOT_VERSION`].
    BadVersion(u32),
    /// The frame ended before a declared field.
    Truncated,
    /// The stored checksum does not match the frame contents.
    Checksum,
    /// The frame is keyed to a different graph than the restore target.
    FingerprintMismatch { expected: u64, found: u64 },
    /// This frame kind cannot restore into the requested session type
    /// (e.g. a churn frame into a plain [`crate::Session`]).
    WrongKind,
    /// A decoded buffer length disagrees with the recorded graph shape.
    SizeMismatch(&'static str),
    /// The embedded graph section failed to rebuild or re-validate.
    Graph(String),
    /// The restored state's recomputed hash differs from the recorded
    /// one — the frame is internally inconsistent.
    StateHashMismatch { expected: u64, found: u64 },
    /// (Pool restore only.) No graph with the frame's fingerprint is
    /// registered in the pool.
    UnknownGraph(u64),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot frame (bad magic)"),
            SnapshotError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot frame is truncated"),
            SnapshotError::Checksum => write!(f, "snapshot checksum mismatch (corrupt frame)"),
            SnapshotError::FingerprintMismatch { expected, found } => write!(
                f,
                "snapshot is keyed to graph {found:#018x}, not {expected:#018x}"
            ),
            SnapshotError::WrongKind => {
                write!(f, "snapshot kind does not match the restore target")
            }
            SnapshotError::SizeMismatch(what) => {
                write!(f, "snapshot buffer `{what}` disagrees with the graph shape")
            }
            SnapshotError::Graph(e) => write!(f, "embedded graph rejected: {e}"),
            SnapshotError::StateHashMismatch { expected, found } => write!(
                f,
                "restored state hashes to {found:#018x}, frame recorded {expected:#018x}"
            ),
            SnapshotError::UnknownGraph(fp) => {
                write!(f, "no graph with fingerprint {fp:#018x} is registered")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The decoded fixed header of a snapshot frame — everything a tool
/// needs to route, validate, or display a checkpoint without decoding
/// the payload. Obtain one with [`peek`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version of the frame.
    pub version: u32,
    /// Whether the captured state was breadcrumb-clean (it always is for
    /// frames produced by this crate; snapshots are phase-boundary only).
    pub clean: bool,
    /// Whether the frame embeds the graph topology (churn snapshots do).
    pub has_graph: bool,
    /// Whether the frame carries churn bookkeeping (crash flags, parked
    /// edges, cumulative counters).
    pub has_churn: bool,
    /// [`congest_graph::Graph::fingerprint`] of the keyed graph.
    pub fingerprint: u64,
    /// Node count of the keyed graph.
    pub n: u64,
    /// Undirected edge count of the keyed graph.
    pub m: u64,
    /// Directed arc count of the keyed graph.
    pub arcs: u64,
    /// Cached shard-plan key (0 = no plan was cached).
    pub plan_key: u64,
    /// [`crate::Session::state_hash`] at encode time.
    pub state_hash: u64,
    /// Byte high-water marks: arc slabs ×2, broadcast slabs ×2, cell
    /// arena, output arena.
    pub capacities: [u64; 6],
}

/// Decode and fully validate a frame's fixed header (magic, version,
/// length, checksum) without touching the payload.
pub fn peek(bytes: &[u8]) -> Result<SnapshotHeader, SnapshotError> {
    open(bytes).map(|(h, _)| h)
}

/// Splitmix64 fold over a byte stream, 8 bytes at a time (zero-padded
/// tail), each chunk salted by its position.
pub(crate) fn checksum(bytes: &[u8]) -> u64 {
    let mut h = mix64(0xC0DE_C4EC ^ bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for (i, c) in chunks.by_ref().enumerate() {
        let w = u64::from_le_bytes(c.try_into().unwrap());
        h = h.wrapping_add(mix64(w ^ mix64(i as u64)));
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut pad = [0u8; 8];
        pad[..rest.len()].copy_from_slice(rest);
        h = h.wrapping_add(mix64(
            u64::from_le_bytes(pad) ^ mix64(bytes.len() as u64 / 8),
        ));
    }
    mix64(h)
}

pub(crate) fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

/// Length-prefixed `u64` slice.
pub(crate) fn put_u64s(out: &mut Vec<u8>, ws: &[u64]) {
    put_u64(out, ws.len() as u64);
    for &w in ws {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Length-prefixed `u32` slice.
pub(crate) fn put_u32s(out: &mut Vec<u8>, ws: &[u32]) {
    put_u64(out, ws.len() as u64);
    for &w in ws {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Length-prefixed raw byte slice.
pub(crate) fn put_u8s(out: &mut Vec<u8>, bs: &[u8]) {
    put_u64(out, bs.len() as u64);
    out.extend_from_slice(bs);
}

/// A bounds-checked cursor over a frame body; every read can fail with
/// [`SnapshotError::Truncated`], never panic.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(len).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn len_prefix(&mut self, elem_bytes: usize) -> Result<usize, SnapshotError> {
        let len = self.u64()? as usize;
        // Reject absurd lengths before allocating (a corrupt frame must
        // not become an OOM).
        if len
            .checked_mul(elem_bytes)
            .is_none_or(|b| b > self.buf.len())
        {
            return Err(SnapshotError::Truncated);
        }
        Ok(len)
    }

    pub(crate) fn u64s(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let len = self.len_prefix(8)?;
        let raw = self.take(len * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    pub(crate) fn u32s(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let len = self.len_prefix(4)?;
        let raw = self.take(len * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    pub(crate) fn u8s(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let len = self.len_prefix(1)?;
        Ok(self.take(len)?.to_vec())
    }
}

/// Header fields the encoder stamps (checksum is patched by [`finish`]).
pub(crate) struct Frame {
    pub(crate) flags: u32,
    pub(crate) fingerprint: u64,
    pub(crate) n: u64,
    pub(crate) m: u64,
    pub(crate) arcs: u64,
    pub(crate) plan_key: u64,
    pub(crate) state_hash: u64,
    pub(crate) capacities: [u64; 6],
}

/// Write the fixed header with a zero checksum; body bytes follow.
pub(crate) fn begin(out: &mut Vec<u8>, f: &Frame) {
    put_u64(out, SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&f.flags.to_le_bytes());
    put_u64(out, 0); // checksum placeholder
    put_u64(out, f.fingerprint);
    put_u64(out, f.n);
    put_u64(out, f.m);
    put_u64(out, f.arcs);
    put_u64(out, f.plan_key);
    put_u64(out, f.state_hash);
    for &c in &f.capacities {
        put_u64(out, c);
    }
    debug_assert_eq!(out.len(), HEADER_BYTES);
}

/// Compute the checksum over everything after the checksum field and
/// patch it into the header. Must be the encoder's last step.
pub(crate) fn finish(out: &mut [u8]) {
    let sum = checksum(&out[24..]);
    out[16..24].copy_from_slice(&sum.to_le_bytes());
}

/// Validate magic, version, length, and checksum; return the decoded
/// header plus a reader positioned at the body.
pub(crate) fn open(bytes: &[u8]) -> Result<(SnapshotHeader, Reader<'_>), SnapshotError> {
    if bytes.len() < HEADER_BYTES {
        if bytes.len() >= 8 && u64::from_le_bytes(bytes[..8].try_into().unwrap()) != SNAPSHOT_MAGIC
        {
            return Err(SnapshotError::BadMagic);
        }
        return Err(SnapshotError::Truncated);
    }
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.u64()? != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(r.take(4)?.try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let flags = u32::from_le_bytes(r.take(4)?.try_into().unwrap());
    let recorded = r.u64()?;
    if checksum(&bytes[24..]) != recorded {
        return Err(SnapshotError::Checksum);
    }
    let fingerprint = r.u64()?;
    let n = r.u64()?;
    let m = r.u64()?;
    let arcs = r.u64()?;
    let plan_key = r.u64()?;
    let state_hash = r.u64()?;
    let mut capacities = [0u64; 6];
    for c in &mut capacities {
        *c = r.u64()?;
    }
    let header = SnapshotHeader {
        version,
        clean: flags & FLAG_CLEAN != 0,
        has_graph: flags & FLAG_GRAPH != 0,
        has_churn: flags & FLAG_CHURN != 0,
        fingerprint,
        n,
        m,
        arcs,
        plan_key,
        state_hash,
        capacities,
    };
    Ok((header, r))
}

/// Serialize a graph as its canonical edge list. Edge ids are assigned
/// in canonical `(min, max)`-sorted order by [`GraphBuilder::build`], so
/// the list round-trips to the *identical* CSR.
pub(crate) fn put_graph(out: &mut Vec<u8>, g: &Graph) {
    put_u64(out, g.n() as u64);
    put_u64(out, g.m() as u64);
    for (_, u, v) in g.edge_list() {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Rebuild the embedded graph, re-validating the CSR invariants and the
/// recorded fingerprint on the way.
pub(crate) fn read_graph(r: &mut Reader<'_>, fingerprint: u64) -> Result<Graph, SnapshotError> {
    let n = r.u64()? as usize;
    let m = r.len_prefix(8)?;
    let mut b = GraphBuilder::new(n);
    for _ in 0..m {
        let raw = r.take(8)?;
        let u = u32::from_le_bytes(raw[..4].try_into().unwrap());
        let v = u32::from_le_bytes(raw[4..].try_into().unwrap());
        b.push_edge(u, v);
    }
    let g = b.build().map_err(|e| SnapshotError::Graph(e.to_string()))?;
    g.validate_csr()
        .map_err(|e| SnapshotError::Graph(e.to_string()))?;
    let found = g.fingerprint();
    if found != fingerprint {
        return Err(SnapshotError::FingerprintMismatch {
            expected: fingerprint,
            found,
        });
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_position_sensitive() {
        let a = checksum(&[1, 0, 0, 0, 0, 0, 0, 0, 2]);
        let b = checksum(&[2, 0, 0, 0, 0, 0, 0, 0, 1]);
        assert_ne!(a, b);
        assert_ne!(checksum(&[]), checksum(&[0]));
    }

    #[test]
    fn reader_never_reads_past_the_end() {
        let mut out = Vec::new();
        put_u64s(&mut out, &[1, 2, 3]);
        let mut r = Reader { buf: &out, pos: 0 };
        assert_eq!(r.u64s().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.u64(), Err(SnapshotError::Truncated));
        // A declared length far beyond the buffer is refused before any
        // allocation happens.
        let mut bogus = Vec::new();
        put_u64(&mut bogus, u64::MAX);
        let mut r = Reader {
            buf: &bogus,
            pos: 0,
        };
        assert_eq!(r.u64s(), Err(SnapshotError::Truncated));
    }

    #[test]
    fn header_round_trips() {
        let f = Frame {
            flags: FLAG_CLEAN,
            fingerprint: 0xABCD,
            n: 10,
            m: 20,
            arcs: 40,
            plan_key: 3,
            state_hash: 0x5EED,
            capacities: [1, 2, 3, 4, 5, 6],
        };
        let mut out = Vec::new();
        begin(&mut out, &f);
        put_u64(&mut out, 99); // body
        finish(&mut out);
        let h = peek(&out).unwrap();
        assert_eq!(h.version, SNAPSHOT_VERSION);
        assert!(h.clean);
        assert!(!h.has_graph);
        assert_eq!(h.fingerprint, 0xABCD);
        assert_eq!((h.n, h.m, h.arcs), (10, 20, 40));
        assert_eq!(h.plan_key, 3);
        assert_eq!(h.capacities, [1, 2, 3, 4, 5, 6]);

        // Any flipped body byte fails the checksum.
        let mut bad = out.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert_eq!(peek(&bad), Err(SnapshotError::Checksum));
        // A flipped magic byte is a different refusal.
        let mut bad = out.clone();
        bad[0] ^= 1;
        assert_eq!(peek(&bad), Err(SnapshotError::BadMagic));
        // Truncation is caught.
        assert_eq!(peek(&out[..40]), Err(SnapshotError::Truncated));
    }
}
