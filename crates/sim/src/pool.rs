//! Broadcast-as-a-service: a multi-tenant session pool with a batching
//! job plane.
//!
//! ## The serving problem
//!
//! The engine amortizes state per graph ([`crate::Session`], PR 4) and
//! bit-parallelizes instances per sweep ([`crate::WideSession`], PR 7),
//! but both are *libraries*: every caller owns its own engine. Serving
//! many concurrent runs — the heavy-traffic workload PAPERS.md frames via
//! Paramonov–Wattenhofer's congested random graphs — needs the layer
//! above: warm state shared across callers, and independent submissions
//! coalesced onto the wide kernel.
//!
//! ## The pool
//!
//! A [`SessionPool`] holds warm `SessionState`s keyed by
//! [`Graph::fingerprint`] (a hash of the canonical CSR, so two tenants
//! registering equal graphs share one entry). Checkout is closure-scoped:
//! [`SessionPool::with_session`] / [`SessionPool::with_wide`] pop a warm
//! state (or build one on a miss), marry it to the entry's graph, run the
//! closure, and push the state back. A warm checkout cycle allocates
//! nothing (pinned by `tests/zero_alloc.rs`), so steady-state serving has
//! zero engine churn.
//!
//! ## The job plane
//!
//! A [`PoolServer`] admits [`Job`] submissions into a bounded queue and
//! executes them on [`PoolServer::drain`]. Batching policy:
//!
//! * jobs group by **(graph key, protocol family)**;
//! * a wide-worthy (quiescent) group runs **continuously batched** by
//!   default ([`PoolServer::set_refill`]): one
//!   [`WideSession::run_refill`] sweep at most [`MAX_LANES`] wide, where
//!   every lane that finishes frees a slot that is refilled from the
//!   group's tail mid-sweep — so a group of hundreds of jobs keeps the
//!   sweep full instead of draining batch by batch. Each job keeps its
//!   own seed and fault plan via [`LaneSpec`], and rounds are
//!   lane-local, so a refilled job is oblivious to when it was admitted.
//!   With refill disabled the group is chunked into fixed
//!   [`MAX_LANES`]-wide [`WideSession::run`] batches;
//! * singletons and dense (non-quiescent) families fall back to a
//!   sequential [`crate::Session`] — a dense lane would step every round
//!   anyway, so it only dilutes the shared sweep.
//!
//! Because the wide kernel is bit-identical per lane to a sequential run,
//! **any interleaving of submissions produces outputs bit-identical to
//! running each job alone on a fresh `Session`**
//! ([`run_job_isolated`] is that oracle; `tests/proptest_pool.rs` pins
//! the equivalence). Backpressure is bounded-queue: [`PoolServer::try_submit`]
//! refuses when full, [`PoolServer::submit`] drains the backlog first.
//! Engine-level parallelism still applies inside each run — sharded
//! step/deliver on the `congest-par` workers — so the serving loop stays
//! single-threaded and deterministic while the sweeps are not.
//!
//! The job plane is a *closed* protocol menu ([`JobSpec`]): `Protocol` is
//! generic over message and output types, so heterogeneous lanes in one
//! sweep require a concrete family enum (type erasure cannot cross
//! [`WideSession::run`]'s `P`). Refill is therefore *within-group* only
//! — a freed slot is never handed to a different family or graph, which
//! would need cross-`P` type erasure; such a job waits for its own
//! group's sweep.
//!
//! ## Aging
//!
//! A long-lived server accumulates graph entries and warm states for
//! traffic that may never return. [`EvictionPolicy`] bounds both — live
//! graph count and total warm-state bytes — evicted LRU-first by a
//! logical clock stamped per checkout. [`PoolServer::drain`] enforces
//! the policy each time the queue empties; eviction counters sit next
//! to hit/miss ([`SessionPool::graph_evictions`],
//! [`SessionPool::warm_evictions`]), and `fastbcast serve` exposes the
//! budgets as `--max-graphs` / `--max-warm-bytes` / `--warm-limit`.

use crate::engine::{EngineConfig, EngineError, RunStats};
use crate::fault::FaultPlan;
use crate::protocol::{NodeCtx, Protocol};
use crate::session::{Session, SessionState};
use crate::wide::{LaneRetire, LaneSpec, WideSession, MAX_LANES};
use congest_graph::{Graph, Node};
use rand::Rng;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Identifies a registered graph inside a pool: the
/// [`Graph::fingerprint`] of its canonical CSR. Equal graphs registered
/// by different tenants yield the same key and share warm state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphKey(u64);

impl GraphKey {
    /// The underlying CSR fingerprint.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.0
    }
}

/// Bounds on a [`SessionPool`]'s retained footprint, enforced by
/// [`SessionPool::enforce_eviction`] (a [`PoolServer`] enforces it at the
/// end of every drain). Both budgets evict **least-recently-used first**,
/// by a logical clock stamped at every checkout/registration — a
/// long-lived server sheds the graphs and warm states its traffic no
/// longer touches.
///
/// * `max_graphs` bounds live registered graphs. Evicting a graph drops
///   its entry *and* its warm states; the key becomes unregistered
///   (submissions for it get [`PoolError::UnknownGraph`]) until someone
///   re-registers the graph — which yields the **same key**, since keys
///   are content fingerprints.
/// * `max_warm_bytes` bounds the summed [estimated footprint] of parked
///   warm states across all entries. Only warm states are dropped for
///   this budget (oldest entry first), never registrations — the next
///   checkout of an affected graph is simply a cold build.
///
/// [estimated footprint]: SessionPool::warm_bytes
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionPolicy {
    /// Most registered graphs kept live. `usize::MAX` = unbounded.
    pub max_graphs: usize,
    /// Most bytes of parked warm state kept, summed over all entries.
    /// `usize::MAX` = unbounded.
    pub max_warm_bytes: usize,
}

impl Default for EvictionPolicy {
    /// Unbounded: nothing is ever evicted until a budget is set.
    fn default() -> EvictionPolicy {
        EvictionPolicy {
            max_graphs: usize::MAX,
            max_warm_bytes: usize::MAX,
        }
    }
}

/// A pool of warm, graph-keyed engine states. See the module docs for
/// the checkout discipline.
///
/// # Example
///
/// Two tenants registering equal graphs share one warm entry; every
/// checkout after the first reuses the state the previous one parked:
///
/// ```
/// use congest_graph::generators::complete;
/// use congest_sim::{EngineConfig, NodeCtx, Protocol, SessionPool};
///
/// struct Ping;
/// impl Protocol for Ping {
///     type Msg = u64;
///     type Output = u64;
///     fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
///         if ctx.round == 0 {
///             ctx.send_all(1);
///         } else {
///             ctx.set_done(true);
///         }
///     }
///     fn finish(self) -> u64 {
///         0
///     }
/// }
///
/// let mut pool = SessionPool::new();
/// let a = pool.register(complete(6));
/// let b = pool.register(complete(6)); // same canonical CSR, same key
/// assert_eq!(a, b);
/// for _ in 0..3 {
///     pool.with_session(a, |session| {
///         session.run(|_, _| Ping, EngineConfig::serial()).unwrap();
///     });
/// }
/// assert_eq!(pool.misses(), 1); // only the first checkout built state
/// assert_eq!(pool.hits(), 2);
/// ```
#[derive(Default)]
pub struct SessionPool {
    /// Slot-stable entry table: eviction tombstones a slot (`None`) and
    /// parks its index on `free` for the next registration, so live
    /// indices never move and the fingerprint map never rehashes in
    /// steady state.
    entries: Vec<Option<PoolEntry>>,
    free: Vec<usize>,
    /// fingerprint → index into `entries`.
    index: HashMap<u64, usize>,
    warm_limit: usize,
    policy: EvictionPolicy,
    /// Logical LRU clock: bumped on every checkout/registration, stamped
    /// into the touched entry. No wall time — eviction order is a
    /// deterministic function of the access sequence.
    clock: u64,
    hits: u64,
    misses: u64,
    graph_evictions: u64,
    warm_evictions: u64,
}

struct PoolEntry {
    graph: Graph,
    warm: Vec<SessionState>,
    /// Clock stamp of the last checkout/registration of this entry.
    last_used: u64,
}

impl SessionPool {
    /// An empty pool keeping up to 4 warm states per graph.
    pub fn new() -> SessionPool {
        SessionPool::with_warm_limit(4)
    }

    /// An empty pool keeping up to `warm_limit` warm states per graph;
    /// states released beyond the limit are dropped.
    pub fn with_warm_limit(warm_limit: usize) -> SessionPool {
        SessionPool {
            warm_limit,
            ..SessionPool::default()
        }
    }

    /// Register `graph`, returning its key. Registering an equal graph
    /// again (any tenant) returns the same key and keeps the existing
    /// warm state; re-registering an **evicted** graph also returns the
    /// same key (keys are content fingerprints), just cold. Panics on a
    /// fingerprint collision between *unequal* graphs — with a 64-bit
    /// avalanche hash that is a program error, not an operational
    /// condition.
    pub fn register(&mut self, graph: Graph) -> GraphKey {
        let fp = graph.fingerprint();
        self.clock += 1;
        match self.index.get(&fp) {
            Some(&i) => {
                let entry = self.entries[i].as_mut().expect("indexed entries are live");
                assert!(
                    entry.graph == graph,
                    "graph fingerprint collision: unequal graphs hash to {fp:#x}"
                );
                entry.last_used = self.clock;
            }
            None => {
                let entry = PoolEntry {
                    graph,
                    warm: Vec::with_capacity(self.warm_limit),
                    last_used: self.clock,
                };
                let i = match self.free.pop() {
                    Some(i) => {
                        self.entries[i] = Some(entry);
                        i
                    }
                    None => {
                        self.entries.push(Some(entry));
                        self.entries.len() - 1
                    }
                };
                self.index.insert(fp, i);
            }
        }
        GraphKey(fp)
    }

    /// Replace the eviction policy. Takes effect at the next
    /// [`SessionPool::enforce_eviction`] — setting a tighter budget does
    /// not evict anything by itself.
    pub fn set_policy(&mut self, policy: EvictionPolicy) {
        self.policy = policy;
    }

    /// The current eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Change the per-graph warm-state cap, immediately dropping parked
    /// states beyond the new limit (counted as warm evictions).
    pub fn set_warm_limit(&mut self, warm_limit: usize) {
        self.warm_limit = warm_limit;
        for entry in self.entries.iter_mut().flatten() {
            if entry.warm.len() > warm_limit {
                self.warm_evictions += (entry.warm.len() - warm_limit) as u64;
                entry.warm.truncate(warm_limit);
            }
        }
    }

    /// Live (non-evicted) registered graphs.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no graph is currently registered.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Estimated heap footprint of the warm states parked for `key`, in
    /// bytes — capacity-based (slabs, arenas, scratch vectors), so it
    /// reflects what eviction would actually free.
    ///
    /// # Panics
    /// If `key` was not registered (or was evicted) on this pool.
    pub fn warm_bytes(&self, key: GraphKey) -> usize {
        self.entry(self.entry_index(key))
            .warm
            .iter()
            .map(SessionState::warm_bytes)
            .sum()
    }

    /// Estimated heap footprint of all parked warm states, in bytes —
    /// the quantity [`EvictionPolicy::max_warm_bytes`] budgets.
    pub fn warm_bytes_total(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .flat_map(|e| e.warm.iter().map(SessionState::warm_bytes))
            .sum()
    }

    /// Graph entries evicted so far (the LRU `max_graphs` budget).
    pub fn graph_evictions(&self) -> u64 {
        self.graph_evictions
    }

    /// Warm states dropped by eviction so far — by the `max_warm_bytes`
    /// budget, by riding on an evicted graph entry, or by a
    /// [`SessionPool::set_warm_limit`] tightening.
    pub fn warm_evictions(&self) -> u64 {
        self.warm_evictions
    }

    /// Apply the eviction policy now: drop least-recently-used graph
    /// entries until at most `max_graphs` remain, then drop warm states
    /// (oldest entry first, oldest-parked state first) until the warm
    /// footprint fits `max_warm_bytes`. Under-budget pools pay one scan
    /// and allocate nothing. [`PoolServer::drain`] calls this after the
    /// queue empties, so a serving loop ages out cold graphs without any
    /// explicit management.
    pub fn enforce_eviction(&mut self) {
        while self.index.len() > self.policy.max_graphs {
            let (&fp, &i) = self
                .index
                .iter()
                .min_by_key(|(_, &i)| self.entry(i).last_used)
                .expect("len > max_graphs ≥ 0 entries");
            self.index.remove(&fp);
            let entry = self.entries[i].take().expect("indexed entries are live");
            self.free.push(i);
            self.graph_evictions += 1;
            self.warm_evictions += entry.warm.len() as u64;
        }
        let mut total = self.warm_bytes_total();
        while total > self.policy.max_warm_bytes {
            let Some(i) = self
                .index
                .values()
                .copied()
                .filter(|&i| !self.entry(i).warm.is_empty())
                .min_by_key(|&i| self.entry(i).last_used)
            else {
                break; // nothing warm left to shed
            };
            let entry = self.entries[i].as_mut().expect("indexed entries are live");
            let state = entry.warm.remove(0); // oldest-parked first
            total -= state.warm_bytes().min(total);
            self.warm_evictions += 1;
        }
    }

    /// Whether `key` is registered (and not evicted).
    pub fn contains(&self, key: GraphKey) -> bool {
        self.index.contains_key(&key.0)
    }

    /// The registered graph behind `key`.
    ///
    /// # Panics
    /// If `key` was not returned by [`SessionPool::register`] on this
    /// pool, or its entry has been evicted.
    pub fn graph(&self, key: GraphKey) -> &Graph {
        &self.entry(self.entry_index(key)).graph
    }

    /// Warm states currently parked for `key`.
    pub fn warm_count(&self, key: GraphKey) -> usize {
        self.entry(self.entry_index(key)).warm.len()
    }

    /// Checkouts served from a warm state.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Checkouts that had to build fresh state.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn entry_index(&self, key: GraphKey) -> usize {
        *self
            .index
            .get(&key.0)
            .expect("graph key not registered with this pool")
    }

    fn entry(&self, i: usize) -> &PoolEntry {
        self.entries[i].as_ref().expect("indexed entries are live")
    }

    /// Checkout front half shared by the session/wide paths: stamp the
    /// LRU clock, pop a warm state or build one.
    fn checkout(&mut self, key: GraphKey) -> (usize, SessionState) {
        let i = self.entry_index(key);
        self.clock += 1;
        let clock = self.clock;
        let entry = self.entries[i].as_mut().expect("indexed entries are live");
        entry.last_used = clock;
        let state = match entry.warm.pop() {
            Some(s) => {
                self.hits += 1;
                s
            }
            None => {
                self.misses += 1;
                SessionState::new(&entry.graph)
            }
        };
        (i, state)
    }

    /// Check out a sequential [`Session`] for `key`: pop a warm state (or
    /// build one), run `f`, release the state back. The closure is
    /// higher-ranked over the session lifetime, so results must be moved
    /// out (e.g. [`crate::PhaseOutcome::take_outputs`]) — nothing can
    /// keep borrowing the pooled buffers after release.
    ///
    /// # Panics
    /// If `key` was not registered on this pool. A panic inside `f`
    /// drops the checked-out state instead of re-pooling it.
    pub fn with_session<R>(&mut self, key: GraphKey, f: impl FnOnce(&mut Session<'_>) -> R) -> R {
        let (i, state) = self.checkout(key);
        let entry = self.entries[i].as_mut().expect("indexed entries are live");
        let mut session = Session::from_state(&entry.graph, state);
        let r = f(&mut session);
        let state = session.into_state();
        if entry.warm.len() < self.warm_limit {
            entry.warm.push(state);
        }
        r
    }

    /// Check out a [`WideSession`] for `key` — same discipline as
    /// [`SessionPool::with_session`]. Wide and sequential checkouts draw
    /// from the same warm list: a `SessionState` carries both kernels'
    /// buffers, so a state warmed by one serves the other.
    pub fn with_wide<R>(&mut self, key: GraphKey, f: impl FnOnce(&mut WideSession<'_>) -> R) -> R {
        let (i, state) = self.checkout(key);
        let entry = self.entries[i].as_mut().expect("indexed entries are live");
        let mut session = WideSession::from_state(&entry.graph, state);
        let r = f(&mut session);
        let state = session.into_state();
        if entry.warm.len() < self.warm_limit {
            entry.warm.push(state);
        }
        r
    }

    /// Park `key`'s warm states as snapshot frames: each is married to
    /// the registered graph, encoded ([`Session::snapshot_into`]), and
    /// dropped. Returns the number of frames appended to `out`. Together
    /// with [`SessionPool::restore_warm`] this migrates a pool's warm
    /// set across processes — the serving loop restarts warm.
    ///
    /// # Panics
    /// If `key` was not registered on this pool.
    pub fn park_warm(&mut self, key: GraphKey, out: &mut Vec<Vec<u8>>) -> usize {
        let i = self.entry_index(key);
        let entry = self.entries[i].as_mut().expect("indexed entries are live");
        let parked = entry.warm.len();
        for state in entry.warm.drain(..) {
            let session = Session::from_state(&entry.graph, state);
            out.push(session.snapshot());
        }
        parked
    }

    /// Restore one parked frame into the pool: the embedded fingerprint
    /// selects the registered graph ([`SnapshotError::UnknownGraph`] if
    /// none matches), the payload goes through the full
    /// [`Session::restore`] validation chain, and the state joins the
    /// warm list (dropped silently if the list is at its limit — the
    /// frame is a cache entry, not data). Returns the graph key the
    /// state now serves.
    ///
    /// [`SnapshotError::UnknownGraph`]: crate::snapshot::SnapshotError::UnknownGraph
    pub fn restore_warm(
        &mut self,
        bytes: &[u8],
    ) -> Result<GraphKey, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let header = crate::snapshot::peek(bytes)?;
        let &i = self
            .index
            .get(&header.fingerprint)
            .ok_or(SnapshotError::UnknownGraph(header.fingerprint))?;
        self.clock += 1;
        let clock = self.clock;
        let entry = self.entries[i].as_mut().expect("indexed entries are live");
        entry.last_used = clock;
        let session = Session::restore(&entry.graph, bytes)?;
        let state = session.into_state();
        if entry.warm.len() < self.warm_limit {
            entry.warm.push(state);
        }
        Ok(GraphKey(header.fingerprint))
    }
}

/// A tenant identifier — opaque to the pool, used only for metering.
pub type Tenant = u32;

/// The closed protocol menu the job plane serves. `Protocol` is generic
/// over message and output types, so a lane group must be monomorphic;
/// a closed family enum is what lets heterogeneous *parameters* (per-job
/// sources, budgets, seeds, faults) share one sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSpec {
    /// Leader election by flood-max: every node outputs the maximum node
    /// id. Quiescent — batches well.
    FloodMax,
    /// Single-source rumor spreading from `source`: every node outputs
    /// the round it first heard the rumor (`u64::MAX` if never, e.g.
    /// when the fault adversary cut every path). Quiescent.
    Rumor { source: Node },
    /// Seeded dense gossip for `rounds` rounds: every node stirs its RNG
    /// and inbox into an accumulator and chatters to all neighbors. Not
    /// quiescent — the batching policy evicts this family to a
    /// sequential session.
    Gossip { rounds: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    FloodMax = 0,
    Rumor = 1,
    Gossip = 2,
}

impl JobSpec {
    fn family(&self) -> Family {
        match self {
            JobSpec::FloodMax => Family::FloodMax,
            JobSpec::Rumor { .. } => Family::Rumor,
            JobSpec::Gossip { .. } => Family::Gossip,
        }
    }

    /// Whether a group of this family earns a wide lane group. Dense
    /// (non-quiescent) families step every (node, lane) every round, so
    /// sharing a sweep buys nothing and dilutes the quiescent lanes.
    ///
    /// Within the quiescent families the win is activity-shaped:
    /// thin-wavefront runs (rumor spreading) amortize the arc sweep
    /// across mostly-idle lanes (measured ~3.7x at 32 lanes on
    /// `harary(6, 1024)` in the `serve_throughput` bench), while
    /// dense-head runs (flood-max's first few rounds, where every lane
    /// is hot simultaneously) batch roughly latency-neutral. Flood-max
    /// stays wide-worthy — results are identical either way and one
    /// sweep still beats per-job scheduling overhead at scale — but the
    /// throughput headline belongs to the sparse families.
    fn wide_worthy(&self) -> bool {
        self.family() != Family::Gossip
    }
}

/// One unit of serving work: a protocol family on a registered graph,
/// with the job's own seed and fault plan, attributed to a tenant.
#[derive(Debug, Clone)]
pub struct Job {
    pub graph: GraphKey,
    pub protocol: JobSpec,
    pub seed: u64,
    pub faults: Option<FaultPlan>,
    pub tenant: Tenant,
}

/// Server-assigned submission id; outputs come back ordered by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

impl JobId {
    /// The raw submission counter value.
    #[inline]
    pub fn index(&self) -> u64 {
        self.0
    }
}

/// How a job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to termination; `outputs` and `stats` are authoritative.
    Done,
    /// Exceeded the server's shared `max_rounds` budget (its isolated
    /// run would too); `outputs` is empty and `stats` zeroed.
    RoundLimit { limit: u64 },
}

/// One completed job: per-node outputs (a family-specific `u64` per
/// node) plus the run's meters — bit-identical to what the job's
/// isolated run on a fresh [`Session`] would report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutput {
    pub id: JobId,
    pub tenant: Tenant,
    pub status: JobStatus,
    /// Per-node outputs, indexed by node id.
    pub outputs: Vec<u64>,
    pub stats: RunStats,
    /// Whether this job rode a wide lane group (false = sequential
    /// fallback). Purely informational — results are identical.
    pub batched: bool,
    /// Whether this job was admitted into a slot freed mid-sweep by a
    /// retiring lane (continuous batching), rather than starting with
    /// the sweep. Implies `batched`; purely informational.
    pub refilled: bool,
}

/// Aggregate congestion/bit meters for one tenant, summed over its jobs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantMeter {
    /// Jobs completed (including round-limit failures).
    pub jobs: u64,
    /// Total CONGEST rounds across the tenant's jobs.
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Messages destroyed by the tenant's fault plans.
    pub dropped: u64,
    /// Worst per-edge congestion any of the tenant's jobs caused.
    pub max_edge_congestion: u64,
    /// Largest message any of the tenant's jobs put on a wire, in bits.
    pub max_message_bits: usize,
    /// Of `jobs`, how many were admitted into a mid-sweep slot freed by
    /// a retiring lane (see [`JobOutput::refilled`]).
    pub refilled_jobs: u64,
}

impl TenantMeter {
    fn absorb(&mut self, stats: &RunStats) {
        self.jobs += 1;
        self.rounds += stats.rounds;
        self.messages += stats.total_messages;
        self.dropped += stats.dropped_messages;
        self.max_edge_congestion = self.max_edge_congestion.max(stats.max_edge_congestion);
        self.max_message_bits = self.max_message_bits.max(stats.max_message_bits);
    }
}

/// Submission failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The job names a graph key never registered on this server.
    UnknownGraph(GraphKey),
    /// The bounded queue is full; drain (or use [`PoolServer::submit`],
    /// which drains for you) and resubmit.
    Backpressure { capacity: usize },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::UnknownGraph(k) => {
                write!(f, "graph {:#018x} is not registered", k.fingerprint())
            }
            PoolError::Backpressure { capacity } => {
                write!(f, "job queue full (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// The in-process job plane: a [`SessionPool`] plus a bounded submission
/// queue, batching policy, and per-tenant meters. See the module docs.
pub struct PoolServer {
    pool: SessionPool,
    queue: VecDeque<(JobId, Job)>,
    capacity: usize,
    config: EngineConfig,
    /// Steady-state continuous batching: run each wide-worthy group as
    /// one [`WideSession::run_refill`] sweep (any size), refilling freed
    /// slots mid-sweep, instead of chunked [`WideSession::run`] batches.
    refill: bool,
    next_id: u64,
    meters: HashMap<Tenant, TenantMeter>,
    batched_jobs: u64,
    solo_jobs: u64,
    refilled_jobs: u64,
}

impl PoolServer {
    /// A server whose runs share `config` (each job's `seed`/`faults`
    /// supersede the config's) and whose queue holds at most
    /// `queue_capacity` pending jobs. Continuous batching
    /// ([`PoolServer::set_refill`]) is on by default.
    pub fn new(config: EngineConfig, queue_capacity: usize) -> PoolServer {
        assert!(queue_capacity > 0, "queue capacity must be positive");
        PoolServer {
            pool: SessionPool::new(),
            queue: VecDeque::with_capacity(queue_capacity),
            capacity: queue_capacity,
            config,
            refill: true,
            next_id: 0,
            meters: HashMap::new(),
            batched_jobs: 0,
            solo_jobs: 0,
            refilled_jobs: 0,
        }
    }

    /// Register a graph for serving (delegates to
    /// [`SessionPool::register`]).
    pub fn register_graph(&mut self, graph: Graph) -> GraphKey {
        self.pool.register(graph)
    }

    /// The underlying pool (hit/miss/eviction counters, warm counts).
    pub fn pool(&self) -> &SessionPool {
        &self.pool
    }

    /// Mutable access to the underlying pool — the knob panel for
    /// [`SessionPool::set_warm_limit`] and [`SessionPool::set_policy`].
    pub fn pool_mut(&mut self) -> &mut SessionPool {
        &mut self.pool
    }

    /// Toggle continuous batching. On (the default), each wide-worthy
    /// group drains as **one** [`WideSession::run_refill`] sweep — lanes
    /// that finish free slots that are refilled from the group
    /// mid-sweep, and a lane that blows the round budget retires alone
    /// (per-lane failure) instead of failing its whole batch. Off, the
    /// group is chunked into fixed [`MAX_LANES`]-wide [`WideSession::run`]
    /// batches with the whole-batch-fail + solo-retry fallback. Results
    /// are bit-identical either way (both are pinned to the isolated
    /// oracle); the difference is throughput under staggered
    /// termination and how failures are executed.
    pub fn set_refill(&mut self, refill: bool) {
        self.refill = refill;
    }

    /// Whether continuous batching is enabled.
    pub fn refill_enabled(&self) -> bool {
        self.refill
    }

    /// Jobs waiting in the queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The bounded queue's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs that rode a wide lane group so far.
    pub fn batched_jobs(&self) -> u64 {
        self.batched_jobs
    }

    /// Jobs that ran on the sequential fallback so far.
    pub fn solo_jobs(&self) -> u64 {
        self.solo_jobs
    }

    /// Jobs admitted into mid-sweep freed slots so far (a subset of
    /// [`PoolServer::batched_jobs`]).
    pub fn refilled_jobs(&self) -> u64 {
        self.refilled_jobs
    }

    /// Admit `job` if the queue has room; [`PoolError::Backpressure`]
    /// otherwise. The job is validated (graph key known) either way.
    pub fn try_submit(&mut self, job: Job) -> Result<JobId, PoolError> {
        if !self.pool.contains(job.graph) {
            return Err(PoolError::UnknownGraph(job.graph));
        }
        if self.queue.len() >= self.capacity {
            return Err(PoolError::Backpressure {
                capacity: self.capacity,
            });
        }
        Ok(self.enqueue(job))
    }

    /// Admit `job`, draining the backlog into `completed` first if the
    /// queue is full — the blocking face of the bounded queue.
    pub fn submit(&mut self, job: Job, completed: &mut Vec<JobOutput>) -> Result<JobId, PoolError> {
        if !self.pool.contains(job.graph) {
            return Err(PoolError::UnknownGraph(job.graph));
        }
        if self.queue.len() >= self.capacity {
            self.drain(completed);
        }
        Ok(self.enqueue(job))
    }

    fn enqueue(&mut self, job: Job) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.queue.push_back((id, job));
        id
    }

    /// The per-tenant aggregate meter (zero if the tenant never ran).
    pub fn meter(&self, tenant: Tenant) -> TenantMeter {
        self.meters.get(&tenant).copied().unwrap_or_default()
    }

    /// All tenant meters, sorted by tenant id.
    pub fn meters(&self) -> Vec<(Tenant, TenantMeter)> {
        let mut v: Vec<_> = self.meters.iter().map(|(&t, &m)| (t, m)).collect();
        v.sort_by_key(|&(t, _)| t);
        v
    }

    /// Run everything queued, appending one [`JobOutput`] per job to
    /// `out` in submission (id) order, then enforce the pool's eviction
    /// policy ([`SessionPool::enforce_eviction`]) while the queue is
    /// empty. Grouping, chunking, and execution order are deterministic
    /// functions of the queue contents, and every output is
    /// bit-identical to the job's isolated run.
    pub fn drain(&mut self, out: &mut Vec<JobOutput>) {
        let start = out.len();
        let mut jobs: Vec<(JobId, Job)> = self.queue.drain(..).collect();
        // Group compatible jobs: same graph, same family. The sort is
        // stable in effect (ids are unique), so lane order inside a
        // group is submission order.
        jobs.sort_by_key(|(id, j)| (j.graph.0, j.protocol.family() as u8, id.0));
        let mut i = 0;
        while i < jobs.len() {
            let graph = jobs[i].1.graph;
            let family = jobs[i].1.protocol.family();
            let mut j = i + 1;
            while j < jobs.len()
                && jobs[j].1.graph == graph
                && jobs[j].1.protocol.family() == family
            {
                j += 1;
            }
            let group = &jobs[i..j];
            if !group[0].1.protocol.wide_worthy() || group.len() == 1 {
                for job in group {
                    self.run_solo(job, out);
                }
            } else if self.refill {
                // Continuous batching: the whole group — even past
                // MAX_LANES — is one sweep whose freed slots refill from
                // the group's tail.
                self.run_refill_group(group, out);
            } else {
                for chunk in group.chunks(MAX_LANES) {
                    if chunk.len() == 1 {
                        self.run_solo(&chunk[0], out);
                    } else {
                        self.run_wide_chunk(chunk, out);
                    }
                }
            }
            i = j;
        }
        out[start..].sort_by_key(|o| o.id);
        self.pool.enforce_eviction();
    }

    fn run_solo(&mut self, (id, job): &(JobId, Job), out: &mut Vec<JobOutput>) {
        let cfg = EngineConfig {
            seed: job.seed,
            faults: job.faults,
            ..self.config.clone()
        };
        let spec = job.protocol.clone();
        let res = self
            .pool
            .with_session(job.graph, |s| run_spec_on_session(s, &spec, cfg));
        self.solo_jobs += 1;
        self.record(*id, job, res, false, false, out);
    }

    fn run_wide_chunk(&mut self, chunk: &[(JobId, Job)], out: &mut Vec<JobOutput>) {
        let lanes: Vec<LaneSpec> = chunk
            .iter()
            .map(|(_, j)| LaneSpec {
                seed: j.seed,
                faults: j.faults,
            })
            .collect();
        let specs: Vec<JobSpec> = chunk.iter().map(|(_, j)| j.protocol.clone()).collect();
        let cfg = self.config.clone();
        let res = self
            .pool
            .with_wide(chunk[0].1.graph, |w| run_specs_wide(w, &lanes, &specs, cfg));
        match res {
            Ok(results) => {
                for ((id, job), r) in chunk.iter().zip(results) {
                    self.batched_jobs += 1;
                    self.record(*id, job, Ok(r), true, false, out);
                }
            }
            Err(_) => {
                // One lane blowing the shared round budget fails the
                // whole wide run; retry each job alone so unaffected
                // tenants still complete and the offender fails exactly
                // as its isolated run would.
                for job in chunk {
                    self.run_solo(job, out);
                }
            }
        }
    }

    /// Run one wide-worthy group as a single continuously batched sweep:
    /// the first `min(len, MAX_LANES)` jobs start as lanes, every later
    /// job is admitted into the first slot a retiring lane frees. A lane
    /// exceeding the round budget retires alone as
    /// [`JobStatus::RoundLimit`] — exactly the failure its isolated run
    /// reports — so no solo fallback pass is needed.
    fn run_refill_group(&mut self, group: &[(JobId, Job)], out: &mut Vec<JobOutput>) {
        let lane_spec = |j: &Job| LaneSpec {
            seed: j.seed,
            faults: j.faults,
        };
        let init_w = group.len().min(MAX_LANES);
        let init: Vec<LaneSpec> = group[..init_w].iter().map(|(_, j)| lane_spec(j)).collect();
        let refill = |job: usize| (job < group.len()).then(|| lane_spec(&group[job].1));
        let cfg = self.config.clone();
        // Staged per-job results, filled by the sink under admission
        // index (= group index, since refill admits in group order).
        let mut results: Vec<Option<(JobStatus, Vec<u64>, RunStats)>> = vec![None; group.len()];
        let sink = |mut r: LaneRetire<'_, u64>| {
            let (status, outputs) = match r.limit {
                Some(limit) => (JobStatus::RoundLimit { limit }, Vec::new()),
                None => {
                    let mut outputs = Vec::new();
                    r.take_outputs_into(&mut outputs);
                    (JobStatus::Done, outputs)
                }
            };
            results[r.job] = Some((status, outputs, r.stats));
        };
        let admitted = match group[0].1.protocol.family() {
            Family::FloodMax => self.pool.with_wide(group[0].1.graph, |w| {
                w.run_refill::<FloodMax, _, _, _>(
                    &init,
                    |v, _, _| FloodMax { best: v as u64 },
                    cfg,
                    refill,
                    sink,
                )
            }),
            Family::Rumor => {
                let sources: Vec<Node> = group
                    .iter()
                    .map(|(_, j)| match j.protocol {
                        JobSpec::Rumor { source } => source,
                        _ => unreachable!("mixed families in one lane group"),
                    })
                    .collect();
                self.pool.with_wide(group[0].1.graph, |w| {
                    w.run_refill::<Rumor, _, _, _>(
                        &init,
                        |v, job, _| Rumor {
                            is_source: v == sources[job],
                            heard: u64::MAX,
                        },
                        cfg,
                        refill,
                        sink,
                    )
                })
            }
            Family::Gossip => unreachable!("dense families never batch wide"),
        };
        debug_assert_eq!(admitted, group.len(), "refill drains the whole group");
        for (i, ((id, job), res)) in group.iter().zip(results).enumerate() {
            let (status, outputs, stats) = res.expect("every admitted job retires");
            let res = match status {
                JobStatus::Done => Ok((outputs, stats)),
                JobStatus::RoundLimit { limit } => Err(EngineError::RoundLimitExceeded { limit }),
            };
            self.batched_jobs += 1;
            let refilled = i >= init_w;
            if refilled {
                self.refilled_jobs += 1;
            }
            self.record(*id, job, res, true, refilled, out);
        }
    }

    fn record(
        &mut self,
        id: JobId,
        job: &Job,
        res: Result<(Vec<u64>, RunStats), EngineError>,
        batched: bool,
        refilled: bool,
        out: &mut Vec<JobOutput>,
    ) {
        let (outputs, stats, status) = match res {
            Ok((o, s)) => (o, s, JobStatus::Done),
            Err(EngineError::RoundLimitExceeded { limit }) => (
                Vec::new(),
                RunStats::default(),
                JobStatus::RoundLimit { limit },
            ),
        };
        let meter = self.meters.entry(job.tenant).or_default();
        meter.absorb(&stats);
        if refilled {
            meter.refilled_jobs += 1;
        }
        out.push(JobOutput {
            id,
            tenant: job.tenant,
            status,
            outputs,
            stats,
            batched,
            refilled,
        });
    }
}

/// Run one job alone on a **fresh** [`Session`] — the oracle the pool is
/// held to (`tests/proptest_pool.rs`) and the "one-Session-per-job" arm
/// of the `serve_throughput` bench. Per-job `seed`/`faults` supersede
/// `config`'s exactly as the server's runs do.
pub fn run_job_isolated(
    graph: &Graph,
    spec: &JobSpec,
    seed: u64,
    faults: Option<FaultPlan>,
    config: &EngineConfig,
) -> Result<(Vec<u64>, RunStats), EngineError> {
    let cfg = EngineConfig {
        seed,
        faults,
        ..config.clone()
    };
    let mut session = Session::new(graph);
    run_spec_on_session(&mut session, spec, cfg)
}

fn run_spec_on_session(
    session: &mut Session<'_>,
    spec: &JobSpec,
    cfg: EngineConfig,
) -> Result<(Vec<u64>, RunStats), EngineError> {
    match *spec {
        JobSpec::FloodMax => {
            let ph = session.run(|v, _| FloodMax { best: v as u64 }, cfg)?;
            let stats = ph.stats;
            Ok((ph.take_outputs(), stats))
        }
        JobSpec::Rumor { source } => {
            let ph = session.run(
                |v, _| Rumor {
                    is_source: v == source,
                    heard: u64::MAX,
                },
                cfg,
            )?;
            let stats = ph.stats;
            Ok((ph.take_outputs(), stats))
        }
        JobSpec::Gossip { rounds } => {
            let ph = session.run(
                |v, _| Gossip {
                    until: rounds,
                    acc: v as u64,
                },
                cfg,
            )?;
            let stats = ph.stats;
            Ok((ph.take_outputs(), stats))
        }
    }
}

fn run_specs_wide(
    w: &mut WideSession<'_>,
    lanes: &[LaneSpec],
    specs: &[JobSpec],
    cfg: EngineConfig,
) -> Result<Vec<(Vec<u64>, RunStats)>, EngineError> {
    match specs[0].family() {
        Family::FloodMax => {
            let mut o = w.run(lanes, |v, _, _| FloodMax { best: v as u64 }, cfg)?;
            Ok((0..o.lanes())
                .map(|l| (o.take_lane_outputs(l), o.stats(l)))
                .collect())
        }
        Family::Rumor => {
            let sources: Vec<Node> = specs
                .iter()
                .map(|s| match s {
                    JobSpec::Rumor { source } => *source,
                    _ => unreachable!("mixed families in one lane group"),
                })
                .collect();
            let mut o = w.run(
                lanes,
                |v, l, _| Rumor {
                    is_source: v == sources[l],
                    heard: u64::MAX,
                },
                cfg,
            )?;
            Ok((0..o.lanes())
                .map(|l| (o.take_lane_outputs(l), o.stats(l)))
                .collect())
        }
        Family::Gossip => unreachable!("dense families never batch wide"),
    }
}

/// Flood-max leader election (see [`JobSpec::FloodMax`]).
struct FloodMax {
    best: u64,
}

impl Protocol for FloodMax {
    type Msg = u64;
    type Output = u64;
    const QUIESCENT: bool = true;

    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        if ctx.round == 0 {
            ctx.send_all(self.best);
            return;
        }
        let prior = self.best;
        self.best = ctx.inbox().fold(self.best, |b, (_, m)| b.max(m));
        if self.best > prior {
            ctx.send_all(self.best);
        }
        ctx.set_done(true);
    }

    fn finish(self) -> u64 {
        self.best
    }
}

/// Single-source rumor spreading (see [`JobSpec::Rumor`]).
struct Rumor {
    is_source: bool,
    heard: u64,
}

impl Protocol for Rumor {
    type Msg = u64;
    type Output = u64;
    const QUIESCENT: bool = true;

    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        if ctx.round == 0 {
            if self.is_source {
                self.heard = 0;
                ctx.send_all(0);
            }
            ctx.set_done(true);
            return;
        }
        if self.heard == u64::MAX && ctx.inbox_len() > 0 {
            let r = ctx.round;
            self.heard = r;
            ctx.send_all(r);
        }
        ctx.set_done(true);
    }

    fn finish(self) -> u64 {
        self.heard
    }
}

/// Seeded dense gossip (see [`JobSpec::Gossip`]).
struct Gossip {
    until: u64,
    acc: u64,
}

impl Protocol for Gossip {
    type Msg = u64;
    type Output = u64;

    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        for (p, m) in ctx.inbox() {
            self.acc = self
                .acc
                .rotate_left(7)
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(m ^ p as u64);
        }
        if ctx.round < self.until {
            let stir: u64 = ctx.rng().gen();
            self.acc ^= stir;
            ctx.send_all(self.acc);
        }
        ctx.set_done(ctx.round + 1 >= self.until);
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{cycle, harary, torus2d};

    fn mk_job(graph: GraphKey, protocol: JobSpec, seed: u64, tenant: Tenant) -> Job {
        Job {
            graph,
            protocol,
            seed,
            faults: None,
            tenant,
        }
    }

    #[test]
    fn register_dedups_equal_graphs() {
        let mut pool = SessionPool::new();
        let a = pool.register(harary(4, 16));
        let b = pool.register(harary(4, 16));
        assert_eq!(a, b);
        let c = pool.register(harary(4, 18));
        assert_ne!(a, c);
    }

    #[test]
    fn warm_states_are_reused() {
        let mut pool = SessionPool::new();
        let k = pool.register(cycle(8));
        assert_eq!(pool.warm_count(k), 0);
        for _ in 0..3 {
            pool.with_session(k, |s| {
                s.run(|v, _| FloodMax { best: v as u64 }, EngineConfig::serial())
                    .unwrap()
                    .stats
            });
        }
        assert_eq!(pool.warm_count(k), 1);
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.hits(), 2);
        // Wide checkouts share the same warm list.
        pool.with_wide(k, |w| {
            w.run(
                &[LaneSpec::new(1), LaneSpec::new(2)],
                |v, _, _| FloodMax { best: v as u64 },
                EngineConfig::serial(),
            )
            .unwrap()
            .stats(0)
        });
        assert_eq!(pool.hits(), 3);
    }

    #[test]
    fn warm_limit_caps_parked_states() {
        let mut pool = SessionPool::with_warm_limit(0);
        let k = pool.register(cycle(6));
        pool.with_session(k, |_| ());
        assert_eq!(pool.warm_count(k), 0);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn foreign_key_panics() {
        let mut a = SessionPool::new();
        let mut b = SessionPool::new();
        let ka = a.register(cycle(6));
        let _kb = b.register(harary(4, 16));
        b.with_session(ka, |_| ());
    }

    /// The mini oracle: a mixed drain is bit-identical, job for job, to
    /// isolated fresh-session runs (the full version with faults,
    /// shards, and meters lives in `tests/proptest_pool.rs`).
    #[test]
    fn mixed_drain_matches_isolated_runs() {
        let cfg = EngineConfig::serial();
        let mut server = PoolServer::new(cfg.clone(), 64);
        let g1 = harary(4, 24);
        let g2 = torus2d(4, 5);
        let k1 = server.register_graph(g1.clone());
        let k2 = server.register_graph(g2.clone());
        let mut jobs = Vec::new();
        for i in 0..13u64 {
            let (key, g_n) = if i % 3 == 0 {
                (k2, g2.n())
            } else {
                (k1, g1.n())
            };
            let protocol = match i % 4 {
                0 => JobSpec::FloodMax,
                1 => JobSpec::Rumor {
                    source: (i as Node * 5) % g_n as Node,
                },
                2 => JobSpec::Gossip { rounds: 3 + i % 3 },
                _ => JobSpec::Rumor { source: 0 },
            };
            let mut job = mk_job(key, protocol, 0xAB0 + i, (i % 3) as Tenant);
            if i % 5 == 0 {
                job.faults = Some(FaultPlan::new(1, 0xFA + i));
            }
            jobs.push(job);
        }
        let mut out = Vec::new();
        for job in &jobs {
            server.submit(job.clone(), &mut out).unwrap();
        }
        server.drain(&mut out);
        assert_eq!(out.len(), jobs.len());
        assert!(server.batched_jobs() > 0 && server.solo_jobs() > 0);
        for (o, job) in out.iter().zip(&jobs) {
            let g = if job.graph == k1 { &g1 } else { &g2 };
            let (outputs, stats) =
                run_job_isolated(g, &job.protocol, job.seed, job.faults, &cfg).unwrap();
            assert_eq!(o.status, JobStatus::Done);
            assert_eq!(o.outputs, outputs, "job {:?} outputs", o.id);
            assert_eq!(o.stats, stats, "job {:?} stats", o.id);
            assert_eq!(o.tenant, job.tenant);
        }
        // Meters really aggregate the per-job stats.
        let total: u64 = out.iter().map(|o| o.stats.total_messages).sum();
        let metered: u64 = server.meters().iter().map(|(_, m)| m.messages).sum();
        assert_eq!(total, metered);
        let jobs_metered: u64 = server.meters().iter().map(|(_, m)| m.jobs).sum();
        assert_eq!(jobs_metered, out.len() as u64);
    }

    #[test]
    fn try_submit_backpressures_and_submit_drains() {
        let mut server = PoolServer::new(EngineConfig::serial(), 2);
        let k = server.register_graph(cycle(8));
        let job = mk_job(k, JobSpec::FloodMax, 1, 0);
        server.try_submit(job.clone()).unwrap();
        server.try_submit(job.clone()).unwrap();
        assert_eq!(
            server.try_submit(job.clone()),
            Err(PoolError::Backpressure { capacity: 2 })
        );
        let mut out = Vec::new();
        server.submit(job.clone(), &mut out).unwrap();
        assert_eq!(out.len(), 2, "submit drained the full queue first");
        assert_eq!(server.queued(), 1);
    }

    #[test]
    fn unknown_graph_is_rejected() {
        let mut server = PoolServer::new(EngineConfig::serial(), 4);
        let mut other = SessionPool::new();
        let foreign = other.register(cycle(8));
        let err = server.try_submit(mk_job(foreign, JobSpec::FloodMax, 1, 0));
        assert_eq!(err, Err(PoolError::UnknownGraph(foreign)));
    }

    #[test]
    fn round_limit_fails_per_job_not_per_batch() {
        // Two lanes whose isolated runs terminate inside the budget and
        // one that cannot: the wide run fails, the fallback retries each
        // alone, and only the offender reports RoundLimit.
        let mut cfg = EngineConfig::serial();
        cfg.max_rounds = 8;
        let mut server = PoolServer::new(cfg, 8);
        let k = server.register_graph(cycle(6));
        let ok1 = server
            .try_submit(mk_job(k, JobSpec::FloodMax, 1, 0))
            .unwrap();
        let ok2 = server
            .try_submit(mk_job(k, JobSpec::FloodMax, 2, 0))
            .unwrap();
        // FloodMax on a 6-cycle settles within 8 rounds; gossip for 20
        // rounds cannot.
        let bad = server
            .try_submit(mk_job(k, JobSpec::Gossip { rounds: 20 }, 3, 1))
            .unwrap();
        let mut out = Vec::new();
        server.drain(&mut out);
        let by_id = |id: JobId| out.iter().find(|o| o.id == id).unwrap();
        assert_eq!(by_id(ok1).status, JobStatus::Done);
        assert_eq!(by_id(ok2).status, JobStatus::Done);
        assert_eq!(by_id(bad).status, JobStatus::RoundLimit { limit: 8 });
        assert!(by_id(bad).outputs.is_empty());
        // The round-limited job still counts toward its tenant's meter.
        assert_eq!(server.meter(1).jobs, 1);
        assert_eq!(server.meter(1).messages, 0);
    }

    #[test]
    fn wide_group_failure_falls_back_to_solo() {
        // The legacy chunked path (refill off): FloodMax on a long cycle
        // needs ~n/2 rounds; a 3-round budget fails the wide group, and
        // the per-job fallback then fails each job exactly as its
        // isolated run would.
        let mut cfg = EngineConfig::serial();
        cfg.max_rounds = 3;
        let mut server = PoolServer::new(cfg, 8);
        server.set_refill(false);
        let k = server.register_graph(cycle(32));
        for s in 0..3 {
            server
                .try_submit(mk_job(k, JobSpec::FloodMax, s, 0))
                .unwrap();
        }
        let mut out = Vec::new();
        server.drain(&mut out);
        assert_eq!(out.len(), 3);
        for o in &out {
            assert_eq!(o.status, JobStatus::RoundLimit { limit: 3 });
            assert!(!o.batched);
        }
        assert_eq!(server.batched_jobs(), 0);
        assert_eq!(server.solo_jobs(), 3);
    }

    #[test]
    fn refill_drain_fails_round_limit_lanes_alone() {
        // Same blown-budget group under continuous batching (the
        // default): every lane retires as its own RoundLimit — same
        // statuses as the fallback path, but no solo re-runs.
        let mut cfg = EngineConfig::serial();
        cfg.max_rounds = 3;
        let mut server = PoolServer::new(cfg, 8);
        let k = server.register_graph(cycle(32));
        for s in 0..3 {
            server
                .try_submit(mk_job(k, JobSpec::FloodMax, s, 0))
                .unwrap();
        }
        let mut out = Vec::new();
        server.drain(&mut out);
        assert_eq!(out.len(), 3);
        for o in &out {
            assert_eq!(o.status, JobStatus::RoundLimit { limit: 3 });
            assert!(o.batched && !o.refilled);
            assert!(o.outputs.is_empty());
        }
        assert_eq!(server.batched_jobs(), 3);
        assert_eq!(server.solo_jobs(), 0);
    }

    #[test]
    fn refill_group_past_max_lanes_matches_isolated() {
        // A group wider than the sweep: MAX_LANES jobs start as lanes,
        // the rest are admitted into freed slots mid-sweep — and every
        // job, refilled or not, is still bit-identical to its isolated
        // run. Sources and seeds vary per job so refilled lanes genuinely
        // differ from the lanes whose slots they inherit.
        let cfg = EngineConfig::serial();
        let mut server = PoolServer::new(cfg.clone(), 256);
        let g = harary(4, 24);
        let k = server.register_graph(g.clone());
        let total = MAX_LANES + 9;
        let mut jobs = Vec::new();
        for i in 0..total as u64 {
            let mut job = mk_job(
                k,
                JobSpec::Rumor {
                    source: (i * 7 % g.n() as u64) as Node,
                },
                0x5EED ^ i,
                (i % 3) as Tenant,
            );
            if i % 4 == 1 {
                job.faults = Some(FaultPlan::new(1, 0xFA ^ i));
            }
            server.try_submit(job.clone()).unwrap();
            jobs.push(job);
        }
        let mut out = Vec::new();
        server.drain(&mut out);
        assert_eq!(out.len(), total);
        let mut refilled = 0;
        for (o, job) in out.iter().zip(&jobs) {
            let (outputs, stats) =
                run_job_isolated(&g, &job.protocol, job.seed, job.faults, &cfg).unwrap();
            assert_eq!(o.status, JobStatus::Done);
            assert_eq!(o.outputs, outputs, "job {:?} outputs", o.id);
            assert_eq!(o.stats, stats, "job {:?} stats", o.id);
            assert!(o.batched);
            refilled += o.refilled as usize;
        }
        assert_eq!(refilled, total - MAX_LANES);
        assert_eq!(server.refilled_jobs(), refilled as u64);
        let metered: u64 = server.meters().iter().map(|(_, m)| m.refilled_jobs).sum();
        assert_eq!(metered, refilled as u64);
    }

    #[test]
    fn eviction_drops_lru_graphs_and_same_key_reregisters() {
        let mut pool = SessionPool::new();
        let ga = harary(4, 16);
        let ka = pool.register(ga.clone());
        let kb = pool.register(harary(4, 18));
        let kc = pool.register(cycle(12));
        assert_eq!(pool.len(), 3);
        // Touch a and c so b is the LRU entry.
        pool.with_session(ka, |_| ());
        pool.with_session(kc, |_| ());
        pool.set_policy(EvictionPolicy {
            max_graphs: 2,
            max_warm_bytes: usize::MAX,
        });
        pool.enforce_eviction();
        assert_eq!(pool.len(), 2);
        assert!(pool.contains(ka) && pool.contains(kc) && !pool.contains(kb));
        assert_eq!(pool.graph_evictions(), 1);
        // Evict again: now a is least recently used.
        pool.set_policy(EvictionPolicy {
            max_graphs: 1,
            max_warm_bytes: usize::MAX,
        });
        pool.enforce_eviction();
        assert!(!pool.contains(ka) && pool.contains(kc));
        assert_eq!(pool.graph_evictions(), 2);
        // Re-registering an evicted graph yields the same key (content
        // fingerprint), reusing the tombstoned slot, and starts cold.
        let ka2 = pool.register(ga);
        assert_eq!(ka2, ka);
        assert_eq!(pool.warm_count(ka2), 0);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn eviction_sheds_warm_bytes_but_keeps_registrations() {
        let mut pool = SessionPool::new();
        let ka = pool.register(harary(4, 16));
        let kb = pool.register(cycle(12));
        for k in [ka, kb] {
            pool.with_session(k, |s| {
                s.run(|v, _| FloodMax { best: v as u64 }, EngineConfig::serial())
                    .unwrap()
                    .stats
            });
        }
        assert!(pool.warm_bytes(ka) > 0 && pool.warm_bytes(kb) > 0);
        let total = pool.warm_bytes_total();
        assert_eq!(total, pool.warm_bytes(ka) + pool.warm_bytes(kb));
        // Budget below one state's footprint: both warm states go, the
        // registrations stay, and later checkouts are just cold.
        pool.set_policy(EvictionPolicy {
            max_graphs: usize::MAX,
            max_warm_bytes: pool.warm_bytes(kb).saturating_sub(1),
        });
        pool.enforce_eviction();
        assert_eq!(pool.warm_bytes_total(), 0);
        assert_eq!(pool.warm_evictions(), 2);
        assert_eq!(pool.graph_evictions(), 0);
        assert!(pool.contains(ka) && pool.contains(kb));
        let misses = pool.misses();
        pool.with_session(ka, |_| ());
        assert_eq!(pool.misses(), misses + 1, "evicted warm state = cold build");
    }

    #[test]
    fn set_warm_limit_truncates_and_counts() {
        let mut pool = SessionPool::new();
        let k = pool.register(cycle(8));
        // Park two warm states via nested-free sequential checkouts: the
        // easiest way is park/restore — instead just run twice with limit
        // 4 then tighten to 1.
        pool.with_session(k, |_| ());
        let mut frames = Vec::new();
        pool.park_warm(k, &mut frames);
        pool.restore_warm(&frames[0]).unwrap();
        pool.restore_warm(&frames[0]).unwrap();
        assert_eq!(pool.warm_count(k), 2);
        pool.set_warm_limit(1);
        assert_eq!(pool.warm_count(k), 1);
        assert_eq!(pool.warm_evictions(), 1);
    }

    #[test]
    fn server_drain_enforces_the_pool_policy() {
        let mut server = PoolServer::new(EngineConfig::serial(), 16);
        let ga = harary(4, 16);
        let ka = server.register_graph(ga.clone());
        let kb = server.register_graph(cycle(10));
        server.pool_mut().set_policy(EvictionPolicy {
            max_graphs: 1,
            max_warm_bytes: usize::MAX,
        });
        let mut out = Vec::new();
        server
            .try_submit(mk_job(ka, JobSpec::FloodMax, 1, 0))
            .unwrap();
        server
            .try_submit(mk_job(kb, JobSpec::FloodMax, 2, 0))
            .unwrap();
        server.drain(&mut out);
        assert_eq!(out.len(), 2);
        // Drain ran both jobs, then aged the pool down to one graph.
        assert_eq!(server.pool().len(), 1);
        assert_eq!(server.pool().graph_evictions(), 1);
        // A submission for the evicted key is refused until re-register
        // — which returns the same key.
        let evicted = if server.pool().contains(ka) { kb } else { ka };
        assert_eq!(
            server.try_submit(mk_job(evicted, JobSpec::FloodMax, 3, 0)),
            Err(PoolError::UnknownGraph(evicted))
        );
        if evicted == ka {
            assert_eq!(server.register_graph(ga), ka);
            server
                .try_submit(mk_job(ka, JobSpec::FloodMax, 3, 0))
                .unwrap();
        }
    }

    #[test]
    fn outputs_come_back_in_submission_order() {
        let mut server = PoolServer::new(EngineConfig::serial(), 64);
        let ka = server.register_graph(harary(4, 16));
        let kb = server.register_graph(cycle(10));
        let mut ids = Vec::new();
        // Interleave graphs and families so the grouped execution order
        // differs maximally from submission order.
        for i in 0..12u64 {
            let key = if i % 2 == 0 { ka } else { kb };
            let protocol = if i % 3 == 0 {
                JobSpec::Gossip { rounds: 2 }
            } else {
                JobSpec::FloodMax
            };
            ids.push(server.try_submit(mk_job(key, protocol, i, 0)).unwrap());
        }
        let mut out = Vec::new();
        server.drain(&mut out);
        let got: Vec<JobId> = out.iter().map(|o| o.id).collect();
        assert_eq!(got, ids);
    }
}
