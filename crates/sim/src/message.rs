//! Message-size accounting.
//!
//! CONGEST allows `O(log n)` bits per message. Rather than trusting each
//! algorithm, the engine asks every delivered message for its size via
//! [`MsgBits`] and reports the maximum in [`crate::RunStats`]; tests then
//! assert the discipline (e.g. ≤ c·⌈log₂ n⌉ for a small constant c — a
//! constant number of node ids / counters per message).

/// Estimated wire size of a message in bits.
///
/// Implementations should count the *semantic* payload (ids, counters,
/// flags), not Rust's in-memory layout: a `u32` node id in an `n`-node
/// network costs `⌈log₂ n⌉` bits on the wire, but we account the full
/// declared width for simplicity and conservatism — every bound in the
/// paper tolerates constant factors.
pub trait MsgBits {
    fn bits(&self) -> usize;
}

impl MsgBits for () {
    fn bits(&self) -> usize {
        0
    }
}

impl MsgBits for u32 {
    fn bits(&self) -> usize {
        32
    }
}

impl MsgBits for u64 {
    fn bits(&self) -> usize {
        64
    }
}

impl<A: MsgBits, B: MsgBits> MsgBits for (A, B) {
    fn bits(&self) -> usize {
        self.0.bits() + self.1.bits()
    }
}

impl<T: MsgBits> MsgBits for Option<T> {
    fn bits(&self) -> usize {
        1 + self.as_ref().map_or(0, MsgBits::bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(().bits(), 0);
        assert_eq!(7u32.bits(), 32);
        assert_eq!(7u64.bits(), 64);
        assert_eq!((1u32, 2u32).bits(), 64);
        assert_eq!(Some(3u32).bits(), 33);
        assert_eq!(None::<u32>.bits(), 1);
    }
}
