//! Message-size accounting and the packed wire encoding.
//!
//! CONGEST allows `O(log n)` bits per message. Rather than trusting each
//! algorithm, the engine asks every sent message for its size via
//! [`MsgBits`] and reports the maximum in [`crate::RunStats`]; tests then
//! assert the discipline (e.g. ≤ c·⌈log₂ n⌉ for a small constant c — a
//! constant number of node ids / counters per message).
//!
//! ## Packed encoding ([`PackedMsg`])
//!
//! The model's O(log n)-bit budget means every wire message fits a machine
//! word. The engine exploits that: message slabs are flat `Vec<Word>`
//! (`Word` = `u64` or `u128`), with a word-packed occupancy bitset instead
//! of per-slot `Option` discriminants. Every protocol message type
//! therefore implements [`PackedMsg`]: a fixed-width, branch-free
//! `pack`/`unpack` pair into the low [`PackedMsg::WIDTH`] bits of its
//! word. Benefits in the round loop:
//!
//! * delivery moves raw words — no `Option` matching, no `Clone` calls,
//!   no per-message heap data;
//! * occupancy is one bit per arc, so clearing an outbox is a 64×-denser
//!   memset and quiescent ports cost nothing;
//! * the encoding *is* the bit budget: a type whose fields don't fit its
//!   word fails at `pack` time (debug assertions), keeping the O(log n)
//!   discipline honest at the representation level.

/// Estimated wire size of a message in bits.
///
/// Implementations should count the *semantic* payload (ids, counters,
/// flags), not Rust's in-memory layout: a `u32` node id in an `n`-node
/// network costs `⌈log₂ n⌉` bits on the wire, but we account the full
/// declared width for simplicity and conservatism — every bound in the
/// paper tolerates constant factors.
pub trait MsgBits {
    fn bits(&self) -> usize;
}

/// Storage word for packed messages: `u64` or `u128`.
pub trait MsgWord: Copy + Default + Send + Sync + PartialEq + 'static {
    /// Width of the word in bits.
    const BITS: u32;
    /// Widen to `u128` (for compositional encodings such as tagging).
    fn to_u128(self) -> u128;
    /// Truncating narrow from `u128`.
    fn from_u128(x: u128) -> Self;
}

impl MsgWord for u64 {
    const BITS: u32 = 64;
    #[inline]
    fn to_u128(self) -> u128 {
        self as u128
    }
    #[inline]
    fn from_u128(x: u128) -> Self {
        x as u64
    }
}

impl MsgWord for u128 {
    const BITS: u32 = 128;
    #[inline]
    fn to_u128(self) -> u128 {
        self
    }
    #[inline]
    fn from_u128(x: u128) -> Self {
        x
    }
}

/// A message with a fixed-width packed wire encoding.
///
/// Contract: `unpack(pack(m)) == m` for every value the protocol sends,
/// and `pack` only sets the low [`PackedMsg::WIDTH`] bits of the word.
/// The engine stores exactly one word per arc; the `Copy` bound is what
/// makes delivery a raw word move.
pub trait PackedMsg: MsgBits + Copy + Send + Sync + 'static {
    /// Slab storage type — smallest of `u64`/`u128` that fits `WIDTH`.
    type Word: MsgWord;
    /// Fixed encoding width in bits (`≤ Word::BITS`). This is the wire
    /// budget the type claims; [`MsgBits::bits`] of any value must not
    /// exceed it.
    const WIDTH: u32;

    fn pack(self) -> Self::Word;
    fn unpack(word: Self::Word) -> Self;
}

impl MsgBits for () {
    fn bits(&self) -> usize {
        0
    }
}

impl PackedMsg for () {
    type Word = u64;
    const WIDTH: u32 = 0;
    #[inline]
    fn pack(self) -> u64 {
        0
    }
    #[inline]
    fn unpack(_: u64) {}
}

impl MsgBits for u32 {
    fn bits(&self) -> usize {
        32
    }
}

impl PackedMsg for u32 {
    type Word = u64;
    const WIDTH: u32 = 32;
    #[inline]
    fn pack(self) -> u64 {
        self as u64
    }
    #[inline]
    fn unpack(word: u64) -> u32 {
        word as u32
    }
}

impl MsgBits for u64 {
    fn bits(&self) -> usize {
        64
    }
}

impl PackedMsg for u64 {
    type Word = u64;
    const WIDTH: u32 = 64;
    #[inline]
    fn pack(self) -> u64 {
        self
    }
    #[inline]
    fn unpack(word: u64) -> u64 {
        word
    }
}

impl<A: MsgBits, B: MsgBits> MsgBits for (A, B) {
    fn bits(&self) -> usize {
        self.0.bits() + self.1.bits()
    }
}

/// Pairs pack by concatenation into a `u128` (first element in the low
/// bits). Both components must fit `u64` words, so the pair fits 128 bits.
impl<A, B> PackedMsg for (A, B)
where
    A: PackedMsg<Word = u64>,
    B: PackedMsg<Word = u64>,
{
    type Word = u128;
    // Post-monomorphization error if the encoding can't fit the word;
    // `pack` forces the evaluation.
    const WIDTH: u32 = {
        assert!(A::WIDTH + B::WIDTH <= 128, "pair exceeds 128 bits");
        A::WIDTH + B::WIDTH
    };
    #[inline]
    fn pack(self) -> u128 {
        let _guard = Self::WIDTH;
        (self.0.pack() as u128) | ((self.1.pack() as u128) << A::WIDTH)
    }
    #[inline]
    fn unpack(word: u128) -> Self {
        let mask = low_mask(A::WIDTH);
        (
            A::unpack((word & mask) as u64),
            B::unpack((word >> A::WIDTH) as u64),
        )
    }
}

impl<T: MsgBits> MsgBits for Option<T> {
    fn bits(&self) -> usize {
        1 + self.as_ref().map_or(0, MsgBits::bits)
    }
}

/// `Option<T>` packs as a presence bit above `T`'s encoding. It always
/// occupies a `u128` word (the presence bit may not fit `T`'s own word),
/// so `T` itself must leave room: `T::WIDTH < 128`, enforced at compile
/// time (a 128-bit `T` would make the presence-bit shift overflow).
impl<T> PackedMsg for Option<T>
where
    T: PackedMsg,
{
    type Word = u128;
    // Post-monomorphization error if there is no room for the presence
    // bit; `pack`/`unpack` force the evaluation.
    const WIDTH: u32 = {
        assert!(T::WIDTH < 128, "Option<T> needs a presence bit above T");
        1 + T::WIDTH
    };
    #[inline]
    fn pack(self) -> u128 {
        let _guard = Self::WIDTH;
        match self {
            None => 0,
            Some(v) => (1u128 << T::WIDTH) | v.pack().to_u128(),
        }
    }
    #[inline]
    fn unpack(word: u128) -> Self {
        let _guard = Self::WIDTH;
        if word >> T::WIDTH & 1 == 0 {
            None
        } else {
            Some(T::unpack(MsgWord::from_u128(word & low_mask(T::WIDTH))))
        }
    }
}

/// Mask of the `width` low bits of a `u128` (`width ≤ 128`).
#[inline]
pub const fn low_mask(width: u32) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(().bits(), 0);
        assert_eq!(7u32.bits(), 32);
        assert_eq!(7u64.bits(), 64);
        assert_eq!((1u32, 2u32).bits(), 64);
        assert_eq!(Some(3u32).bits(), 33);
        assert_eq!(None::<u32>.bits(), 1);
    }

    fn roundtrip<M: PackedMsg + PartialEq + std::fmt::Debug>(m: M) {
        assert_eq!(M::unpack(m.pack()), m);
        assert!(M::WIDTH <= <M::Word as MsgWord>::BITS);
        assert!(m.bits() as u32 <= M::WIDTH, "bits() exceeds claimed WIDTH");
    }

    #[test]
    fn packing_roundtrips() {
        roundtrip(());
        roundtrip(0u32);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip((u32::MAX, 7u32));
        roundtrip((u64::MAX, u32::MAX));
        roundtrip(Some(u32::MAX));
        roundtrip(None::<u32>);
        roundtrip(Some(u64::MAX));
    }

    #[test]
    fn pair_packs_first_component_low() {
        let w = (0xAAAAu32, 0xBBBBu32).pack();
        assert_eq!(w & 0xFFFF_FFFF, 0xAAAA);
        assert_eq!(w >> 32, 0xBBBB);
    }

    #[test]
    fn low_mask_edges() {
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(1), 1);
        assert_eq!(low_mask(64), u64::MAX as u128);
        assert_eq!(low_mask(128), u128::MAX);
    }
}
