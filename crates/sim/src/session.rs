//! Phase-resident engine sessions.
//!
//! The paper's algorithms are *sequential compositions* (Theorem 1 alone
//! chains leader election → BFS → numbering → partition → per-class BFS →
//! pipelined routing). Executing each phase through a fresh
//! [`crate::run_protocol`] call re-allocates and re-zeroes the full arc
//! slabs, occupancy bitsets, broadcast planes, meter planes, and shard
//! worklists — hundreds of MB of setup churn per phase at `n = 10^6`,
//! paid again for every phase and for every iteration of
//! `exp_search`'s doubling loop.
//!
//! A [`Session`] is a **graph-keyed engine instance** that owns all of
//! that state once and runs any number of protocols to termination on
//! it, in sequence:
//!
//! * **Slab reuse across message widths.** The arc/broadcast message
//!   slabs are raw 16-byte-aligned storage keyed by the *widest*
//!   [`crate::PackedMsg::Word`] any phase has used, so a `u64` phase
//!   reuses (half of) a `u128` slab without touching the allocator.
//! * **Node state in a bump arena.** Per-node protocol cells (state +
//!   RNG + flags) and per-node outputs live in two reusable arenas sized
//!   by high-water mark — a phase whose footprint fits what an earlier
//!   phase already paid for allocates nothing.
//! * **Zeroed by breadcrumb.** The round loop's own termination
//!   discipline leaves the occupancy bitsets, staging masks, and
//!   broadcast stage bytes all-zero when a run completes (sparse rounds
//!   zero by set-word breadcrumbs, full sweeps rebuild every word, the
//!   final silent iteration clears the rest), and the end-of-run per-edge
//!   congestion fold drains the arc/node traffic counters back to zero
//!   as it reads them. The next phase starts on clean state without any
//!   O(arcs) scrub. Only a phase that *failed* (round-limit error or a
//!   panic inside a node program) marks the session dirty and pays one
//!   full scrub on the next run.
//!
//! Between two phases on the same session **zero heap allocation**
//! happens (enforced by `tests/zero_alloc.rs`), with the documented
//! growth exceptions, each sized on first use: a phase using a wider
//! message word than any before it, a phase whose shard count differs
//! from the cached [`congest_graph::ShardPlan`], a phase whose
//! node-cell/output/trace footprint exceeds the session's high-water
//! mark, and the session's first `BitPlanes` phase (meter planes) /
//! first unfaulted phase (broadcast-plane bookkeeping).
//!
//! [`crate::run_protocol`] is a thin one-phase wrapper: it builds a
//! session, runs the protocol, and returns an owned outcome.

use crate::engine::{EngineConfig, EngineError, MeterMode, RunOutcome, RunStats};
use crate::message::{MsgWord, PackedMsg};
use crate::protocol::{BcastIn, BcastOut, InSlot, NodeCtx, OutSlot, Protocol};
use crate::rng::node_rng;
use crate::slab;
use congest_graph::{Graph, Node, ShardPlan};
use congest_par::RacyCells;
use rand::rngs::SmallRng;

/// The staging byte-mask value for "this arc carries a message".
const STAGED: u8 = 1;

/// Below this many nodes the pool handoff costs more than the round; step
/// serially regardless of [`EngineConfig::parallel`] (results identical).
pub(crate) const PARALLEL_MIN_NODES: usize = 256;

/// Cap on auto-derived shard counts (explicit configs may exceed it).
pub(crate) const MAX_AUTO_SHARDS: usize = 64;

/// Per-node hot state, kept together so one cache line serves one node's
/// step and shards walk nodes without any per-round bookkeeping.
struct NodeCell<P> {
    state: P,
    rng: SmallRng,
    done: bool,
    /// Largest message (in bits) this node sent over the whole run.
    max_bits: usize,
}

/// One shard's private meter block, written only by the shard that owns it
/// during a phase and read only between phases / by the tree reduction.
#[derive(Debug, Clone, Copy, Default)]
struct ShardMeter {
    /// Messages delivered into this shard's arcs (and out of its
    /// broadcasting nodes) this round.
    delivered: u64,
    /// Whether every node of this shard reported `done` this round.
    all_done: bool,
    /// Whether any node in this shard's region broadcast this round.
    bcast_any: bool,
    /// Messages this shard's nodes staged through the per-arc mask this
    /// round (per-port sends plus scatter-fallback broadcasts). Zero lets
    /// the deliver phase skip the arc plane; a small global total takes
    /// the sparse worklist path.
    staged: u32,
    /// Whether any node of this shard staged a broadcast-plane word this
    /// round (gates the per-node plane fold).
    bcast_used: bool,
}

/// Does the inbox occupancy bitset need zeroing before this round's bits
/// land, and how cheaply can that be done?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OccState {
    /// All-zero (nothing to do).
    Clean,
    /// Nonzero only at the words listed in the engine's `set_words`
    /// scratch (sparse rounds leave this breadcrumb so the next round
    /// zeroes O(traffic) words, not O(arcs/64)).
    Tracked,
    /// Arbitrary (a full-sweep round rebuilt every word; zeroing takes a
    /// whole-bitset fill).
    Unknown,
}

/// The value the per-round tree reduction folds.
#[derive(Debug, Clone, Copy, Default)]
struct RoundAgg {
    delivered: u64,
    all_done: bool,
    /// Whether any node broadcast this round (gates receivers' broadcast
    /// scans next round).
    bcast_any: bool,
}

/// Raw 16-byte-aligned storage reused as a `&mut [W]` message slab for
/// whatever word width the current phase needs. Capacity is keyed in
/// bytes, so a `u64` phase reuses a slab a `u128` phase grew.
#[derive(Default)]
pub(crate) struct WordSlab {
    buf: Vec<u128>,
}

impl WordSlab {
    /// A `len`-word view of the slab, growing the backing storage only
    /// when `len × size_of::<W>()` exceeds every earlier phase's demand.
    /// Contents are unspecified; the engine only reads word slots whose
    /// occupancy bit was set this phase, so stale words are unreachable.
    pub(crate) fn view<W: MsgWord>(&mut self, len: usize) -> &mut [W] {
        assert!(
            std::mem::align_of::<W>() <= 16 && std::mem::size_of::<W>() <= 16,
            "message words wider than u128 are not supported"
        );
        let units = (len * std::mem::size_of::<W>()).div_ceil(16);
        if self.buf.len() < units {
            self.buf.resize(units, 0);
        }
        // Sound: the buffer is 16-byte aligned, holds at least
        // `len * size_of::<W>()` bytes, and `W` (u64/u128) is plain old
        // data valid for any bit pattern.
        unsafe { std::slice::from_raw_parts_mut(self.buf.as_mut_ptr() as *mut W, len) }
    }

    /// Current byte high-water mark (what snapshots record).
    pub(crate) fn byte_capacity(&self) -> usize {
        self.buf.len() * 16
    }

    /// Pre-grow to a recorded high-water mark (what restore replays, so
    /// a migrated warm session stays allocation-free).
    pub(crate) fn grow_to_bytes(&mut self, bytes: usize) {
        let units = bytes.div_ceil(16);
        if self.buf.len() < units {
            self.buf.resize(units, 0);
        }
    }
}

/// A reusable bump arena for per-phase typed arrays (node cells, outputs).
/// Grows to the high-water footprint and then serves every later phase
/// without touching the allocator. The arena hands out raw storage only;
/// initialization, drop, and non-overlap are the caller's contract.
#[derive(Default)]
pub(crate) struct Arena {
    buf: Vec<u128>,
}

impl Arena {
    /// Storage for `n` values of `T`, aligned for `T`.
    pub(crate) fn alloc<T>(&mut self, n: usize) -> *mut T {
        let align = std::mem::align_of::<T>();
        // Slack so any alignment can be met inside the 16-aligned buffer.
        let bytes = n * std::mem::size_of::<T>() + align;
        let units = bytes.div_ceil(16);
        if self.buf.len() < units {
            self.buf.resize(units, 0);
        }
        let base = self.buf.as_mut_ptr() as usize;
        ((base + align - 1) & !(align - 1)) as *mut T
    }

    /// Current byte high-water mark (what snapshots record).
    pub(crate) fn byte_capacity(&self) -> usize {
        self.buf.len() * 16
    }

    /// Pre-grow to a recorded high-water mark (see
    /// [`WordSlab::grow_to_bytes`]).
    pub(crate) fn grow_to_bytes(&mut self, bytes: usize) {
        let units = bytes.div_ceil(16);
        if self.buf.len() < units {
            self.buf.resize(units, 0);
        }
    }
}

/// One completed phase, borrowing the session's buffers.
///
/// Outputs live in the session's output arena; read them in place via
/// [`PhaseOutcome::outputs`] (no allocation) or move them out with
/// [`PhaseOutcome::take_outputs`]. Dropping the outcome drops any
/// outputs still in the arena, freeing it for the next phase.
pub struct PhaseOutcome<'s, O> {
    outputs: *mut O,
    n: usize,
    taken: bool,
    /// What the phase cost — the same [`RunStats`] `run_protocol` reports.
    pub stats: RunStats,
    trace: Option<&'s [u64]>,
    edge_congestion: &'s [u64],
    _borrow: std::marker::PhantomData<&'s mut O>,
}

impl<'s, O> PhaseOutcome<'s, O> {
    /// Per-node outputs, indexed by node id, in the session arena.
    #[inline]
    pub fn outputs(&self) -> &[O] {
        // Sound: `outputs..outputs+n` was fully initialized by the run
        // and `taken` moves happen only in consuming methods.
        unsafe { std::slice::from_raw_parts(self.outputs, self.n) }
    }

    /// Messages delivered per round, when the phase collected a trace.
    #[inline]
    pub fn trace(&self) -> Option<&'s [u64]> {
        self.trace
    }

    /// Per-edge congestion meters (indexed by edge id), in the session's
    /// reusable buffer.
    #[inline]
    pub fn edge_congestion(&self) -> &'s [u64] {
        self.edge_congestion
    }

    /// Move the outputs out of the arena into an owned `Vec` (the one
    /// allocation this type can perform).
    pub fn take_outputs(mut self) -> Vec<O> {
        let mut out = Vec::with_capacity(self.n);
        // Sound: each arena slot is moved out exactly once; `taken`
        // stops Drop from touching them again.
        unsafe {
            std::ptr::copy_nonoverlapping(self.outputs, out.as_mut_ptr(), self.n);
            out.set_len(self.n);
        }
        self.taken = true;
        out
    }

    /// Convert into the owned [`RunOutcome`] shape `run_protocol` returns.
    pub fn into_owned(self) -> RunOutcome<O> {
        let stats = self.stats;
        let trace = self.trace.map(|t| t.to_vec());
        let edge_congestion = self.edge_congestion.to_vec();
        RunOutcome {
            outputs: self.take_outputs(),
            stats,
            trace,
            edge_congestion,
        }
    }
}

impl<O> Drop for PhaseOutcome<'_, O> {
    fn drop(&mut self) {
        if !self.taken {
            for i in 0..self.n {
                // Sound: initialized by the run, not yet moved out.
                unsafe { std::ptr::drop_in_place(self.outputs.add(i)) };
            }
        }
    }
}

/// The graph-independent half of a [`Session`]: every buffer the round
/// loop owns, movable between graphs. A session is `graph + state`; the
/// churn subsystem ([`crate::churn`]) owns a `SessionState` next to an
/// owned mutable [`Graph`] and re-marries them per phase, repairing the
/// graph-keyed buffers in place after each mutation batch instead of
/// rebuilding the engine.
#[derive(Default)]
pub(crate) struct SessionState {
    /// Double-buffered arc message slabs (inbox / staging). The wide-batch
    /// kernel ([`crate::wide`]) reuses these byte-keyed for its `arcs × W`
    /// instance-major slabs, so sequential and wide phases on one session
    /// share the same high-water storage.
    pub(crate) slab_a: WordSlab,
    pub(crate) slab_b: WordSlab,
    /// Per-node broadcast-plane message slabs (inbox / staging).
    bcast_slab_a: WordSlab,
    bcast_slab_b: WordSlab,
    /// Word-packed inbox occupancy bitset (one bit per arc).
    in_occ: Vec<u64>,
    /// Staging byte-mask (one byte per arc).
    out_mask: Vec<u8>,
    /// Per-arc congestion totals.
    arc_traffic: Vec<u32>,
    /// Bit-sliced per-arc counters (word-major; see [`crate::engine`]).
    planes: Vec<u64>,
    /// Broadcast-plane staging bytes / presence bits / meters (per node).
    bcast_stage: Vec<u8>,
    bcast_occ: Vec<u64>,
    node_planes: Vec<u64>,
    node_traffic: Vec<u32>,
    /// Fault-adversary scratch (drawn edge ids + dedup mark-bitset).
    pub(crate) blocked: Vec<congest_graph::Edge>,
    pub(crate) fault_marks: crate::fault::EdgeMarks,
    /// Shard plan cache, keyed by the clamped requested shard count.
    pub(crate) plan: Option<(usize, ShardPlan)>,
    meters: Vec<ShardMeter>,
    agg_buf: Vec<RoundAgg>,
    wl_starts: Vec<usize>,
    worklist: Vec<u32>,
    wl_live: Vec<u32>,
    active_shards: Vec<u32>,
    set_words: Vec<u32>,
    /// Per-edge congestion fold target, exposed through [`PhaseOutcome`].
    per_edge: Vec<u64>,
    /// Per-round trace buffer (reused across phases that collect traces).
    trace_buf: Vec<u64>,
    /// Node-cell and output arenas.
    pub(crate) cell_arena: Arena,
    pub(crate) out_arena: Arena,
    /// Wide-batch lane buffers ([`crate::wide`]); empty until the first
    /// wide run on this session.
    pub(crate) wide: crate::wide::WideBuffers,
    /// Whether the previous phase completed cleanly (breadcrumb-zeroed
    /// state). A failed or panicked phase clears this and the next run
    /// pays one full scrub.
    pub(crate) clean: bool,
}

/// A graph-keyed engine instance owning all round-loop state for a whole
/// multi-phase algorithm. See the module docs for the reuse and zeroing
/// contract.
pub struct Session<'g> {
    graph: &'g Graph,
    state: SessionState,
}

impl SessionState {
    /// Freshly sized state for `graph` — what [`Session::new`] allocates.
    pub(crate) fn new(graph: &Graph) -> SessionState {
        let arcs = graph.num_arcs();
        let occ_words = arcs.div_ceil(64);
        SessionState {
            slab_a: WordSlab::default(),
            slab_b: WordSlab::default(),
            bcast_slab_a: WordSlab::default(),
            bcast_slab_b: WordSlab::default(),
            in_occ: vec![0; occ_words],
            out_mask: vec![0; arcs],
            arc_traffic: vec![0; arcs],
            // Meter planes and broadcast-plane bookkeeping are sized
            // lazily by the first phase that needs them (a BitPlanes /
            // unfaulted phase respectively), mirroring the conditional
            // allocations the pre-session engine made per call.
            planes: Vec::new(),
            bcast_stage: Vec::new(),
            bcast_occ: Vec::new(),
            node_planes: Vec::new(),
            node_traffic: Vec::new(),
            blocked: Vec::new(),
            fault_marks: crate::fault::EdgeMarks::default(),
            plan: None,
            meters: Vec::new(),
            agg_buf: Vec::new(),
            wl_starts: Vec::new(),
            worklist: Vec::new(),
            wl_live: Vec::new(),
            active_shards: Vec::new(),
            set_words: Vec::new(),
            per_edge: vec![0; graph.m()],
            trace_buf: Vec::new(),
            cell_arena: Arena::default(),
            out_arena: Arena::default(),
            wide: crate::wide::WideBuffers::default(),
            clean: true,
        }
    }

    /// Re-key the graph-sized buffers after the graph mutated: resize the
    /// arc/edge-indexed buffers to the new arc and edge counts and
    /// rebalance the cached shard plan in place. Clean state stays clean
    /// (every live region is zero, and resizing zeros grows with zeros /
    /// truncates zeros); a dirty state pays its scrub at the new sizes on
    /// the next run. Node-indexed buffers are untouched — churn never
    /// changes `n` (crashed nodes are isolated, not deleted).
    pub(crate) fn repair(&mut self, graph: &Graph) {
        let arcs = graph.num_arcs();
        let occ_words = arcs.div_ceil(64);
        self.in_occ.resize(occ_words, 0);
        self.out_mask.resize(arcs, 0);
        self.arc_traffic.resize(arcs, 0);
        self.per_edge.resize(graph.m(), 0);
        if !self.planes.is_empty() {
            self.planes.resize(occ_words * slab::PLANES, 0);
        }
        if let Some((_, plan)) = &mut self.plan {
            plan.rebalance(graph);
        }
    }

    /// Whether this state's graph-sized buffers match `graph` (the
    /// churn session's self-heal check after a hosted-closure panic).
    pub(crate) fn fits(&self, graph: &Graph) -> bool {
        self.out_mask.len() == graph.num_arcs() && self.per_edge.len() == graph.m()
    }

    /// Full scrub of every buffer a failed phase may have left dirty.
    /// Only runs after an error or a panic escaped a phase; clean phases
    /// re-zero everything they touched on their way out.
    pub(crate) fn scrub(&mut self) {
        self.in_occ.fill(0);
        self.out_mask.fill(0);
        self.arc_traffic.fill(0);
        self.planes.fill(0);
        self.bcast_stage.fill(0);
        self.node_planes.fill(0);
        self.node_traffic.fill(0);
        self.wide.scrub();
        // `bcast_occ` needs no scrub: readers are gated on a per-phase
        // `bcast_any` flag and every fold rebuilds all presence words.
    }

    /// Splitmix64-folded hash of the resident engine state.
    ///
    /// Only **nonzero** words contribute (tagged by buffer and index),
    /// which makes the hash invariant across serial/parallel execution,
    /// shard counts, meter modes, lazily-sized buffers, and resident vs
    /// per-phase hosting — everything the differential oracles prove
    /// irrelevant to results. `bcast_occ` is excluded outright: its
    /// contents are unspecified at rest (readers are gated on a
    /// per-phase flag), exactly why [`SessionState::scrub`] skips it.
    /// The buffer sizes that *are* semantic (arcs, edges) and the
    /// clean flag are folded in as a prefix.
    pub(crate) fn state_hash(&self) -> u64 {
        use crate::rng::mix64;
        #[inline]
        fn fold(mut h: u64, tag: u64, words: impl Iterator<Item = u64>) -> u64 {
            for (i, w) in words.enumerate() {
                if w != 0 {
                    h = h.wrapping_add(mix64(w ^ mix64((tag << 48) ^ i as u64)));
                }
            }
            h
        }
        let mut h = Self::hash_base(self.out_mask.len(), self.per_edge.len(), self.clean);
        h = fold(h, 1, self.in_occ.iter().copied());
        h = fold(h, 2, self.out_mask.iter().map(|&b| b as u64));
        h = fold(h, 3, self.arc_traffic.iter().map(|&w| w as u64));
        h = fold(h, 4, self.planes.iter().copied());
        h = fold(h, 5, self.bcast_stage.iter().map(|&b| b as u64));
        h = fold(h, 6, self.node_planes.iter().copied());
        h = fold(h, 7, self.node_traffic.iter().map(|&w| w as u64));
        h = fold(h, 8, self.per_edge.iter().copied());
        h = fold(h, 9, self.trace_buf.iter().copied());
        mix64(h)
    }

    /// The hash prefix shared by [`SessionState::state_hash`] and
    /// [`SessionState::fresh_hash`].
    fn hash_base(arcs: usize, m: usize, clean: bool) -> u64 {
        use crate::rng::mix64;
        mix64(0x5348_0001 ^ arcs as u64)
            ^ mix64(0x5348_0002 ^ m as u64)
            ^ mix64(0x5348_0003 ^ clean as u64)
    }

    /// What a freshly built (all-zero, clean) state for `graph` hashes
    /// to, without building one.
    pub(crate) fn fresh_hash(graph: &Graph) -> u64 {
        crate::rng::mix64(Self::hash_base(graph.num_arcs(), graph.m(), true))
    }

    /// The cached shard-plan key (0 = no plan cached). The plan itself
    /// is a pure function of the graph and this key, so snapshots store
    /// only the key.
    pub(crate) fn plan_key(&self) -> u64 {
        self.plan.as_ref().map_or(0, |(k, _)| *k as u64)
    }

    /// Byte high-water marks of the width-keyed slabs and bump arenas,
    /// in snapshot-header order.
    pub(crate) fn capacities(&self) -> [u64; 6] {
        [
            self.slab_a.byte_capacity() as u64,
            self.slab_b.byte_capacity() as u64,
            self.bcast_slab_a.byte_capacity() as u64,
            self.bcast_slab_b.byte_capacity() as u64,
            self.cell_arena.byte_capacity() as u64,
            self.out_arena.byte_capacity() as u64,
        ]
    }

    /// Estimated resident heap footprint of this state's retained
    /// buffers, in bytes — what dropping the state would actually free,
    /// and the quantity [`crate::pool::EvictionPolicy::max_warm_bytes`]
    /// budgets. Counts the slabs and arenas exactly (byte capacities)
    /// plus the capacity of every long-lived scratch vector; the few
    /// remaining per-shard bookkeeping vectors are noise next to the
    /// arc-sized buffers and are not chased.
    pub(crate) fn warm_bytes(&self) -> usize {
        self.capacities().iter().sum::<u64>() as usize
            + self.in_occ.capacity() * 8
            + self.out_mask.capacity()
            + self.arc_traffic.capacity() * 4
            + self.planes.capacity() * 8
            + self.bcast_stage.capacity()
            + self.bcast_occ.capacity() * 8
            + self.node_planes.capacity() * 8
            + self.node_traffic.capacity() * 4
            + self.per_edge.capacity() * 8
            + self.trace_buf.capacity() * 8
            + self.wide.warm_bytes()
    }

    /// Replay recorded high-water marks so the restored session's first
    /// phases allocate nothing the original's wouldn't have.
    pub(crate) fn grow_capacities(&mut self, caps: [u64; 6]) {
        self.slab_a.grow_to_bytes(caps[0] as usize);
        self.slab_b.grow_to_bytes(caps[1] as usize);
        self.bcast_slab_a.grow_to_bytes(caps[2] as usize);
        self.bcast_slab_b.grow_to_bytes(caps[3] as usize);
        self.cell_arena.grow_to_bytes(caps[4] as usize);
        self.out_arena.grow_to_bytes(caps[5] as usize);
    }

    /// Append the phase-crossing buffers to `out` as length-prefixed
    /// little-endian words — the snapshot frame's engine payload. The
    /// per-phase scratch (meters, worklists, fault buffers), the slabs,
    /// the arenas, and the wide-lane buffers are deliberately absent;
    /// see the [`crate::snapshot`] module docs for why each is safe to
    /// drop. Appends only — steady-state encoding into a warm buffer
    /// allocates nothing.
    pub(crate) fn encode_payload(&self, out: &mut Vec<u8>) {
        crate::snapshot::put_u64s(out, &self.in_occ);
        crate::snapshot::put_u8s(out, &self.out_mask);
        crate::snapshot::put_u32s(out, &self.arc_traffic);
        crate::snapshot::put_u64s(out, &self.planes);
        crate::snapshot::put_u8s(out, &self.bcast_stage);
        crate::snapshot::put_u64s(out, &self.bcast_occ);
        crate::snapshot::put_u64s(out, &self.node_planes);
        crate::snapshot::put_u32s(out, &self.node_traffic);
        crate::snapshot::put_u64s(out, &self.per_edge);
        crate::snapshot::put_u64s(out, &self.trace_buf);
    }

    /// Decode an engine payload for `graph`, validating every buffer
    /// length against the graph shape (lazily-sized buffers may be
    /// empty or full-size, nothing else). The caller stamps `clean`,
    /// the plan, and the capacities from the frame header.
    pub(crate) fn decode_payload(
        graph: &Graph,
        r: &mut crate::snapshot::Reader<'_>,
    ) -> Result<SessionState, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let n = graph.n();
        let arcs = graph.num_arcs();
        let occ_words = arcs.div_ceil(64);
        let node_words = n.div_ceil(64);
        fn expect(len: usize, allowed: &[usize], what: &'static str) -> Result<(), SnapshotError> {
            if allowed.contains(&len) {
                Ok(())
            } else {
                Err(SnapshotError::SizeMismatch(what))
            }
        }
        let in_occ = r.u64s()?;
        expect(in_occ.len(), &[occ_words], "in_occ")?;
        let out_mask = r.u8s()?;
        expect(out_mask.len(), &[arcs], "out_mask")?;
        let arc_traffic = r.u32s()?;
        expect(arc_traffic.len(), &[arcs], "arc_traffic")?;
        let planes = r.u64s()?;
        expect(planes.len(), &[0, occ_words * slab::PLANES], "planes")?;
        let bcast_stage = r.u8s()?;
        expect(bcast_stage.len(), &[0, n], "bcast_stage")?;
        let bcast_occ = r.u64s()?;
        expect(bcast_occ.len(), &[0, node_words], "bcast_occ")?;
        let node_planes = r.u64s()?;
        expect(
            node_planes.len(),
            &[0, node_words * slab::PLANES],
            "node_planes",
        )?;
        let node_traffic = r.u32s()?;
        expect(node_traffic.len(), &[0, n], "node_traffic")?;
        let per_edge = r.u64s()?;
        expect(per_edge.len(), &[graph.m()], "per_edge")?;
        let trace_buf = r.u64s()?;
        // The broadcast-plane trio is sized together by the round loop;
        // a frame where only part of it is present is inconsistent.
        if (bcast_stage.is_empty() || bcast_occ.is_empty() || node_traffic.is_empty())
            && !(bcast_stage.is_empty() && bcast_occ.is_empty() && node_traffic.is_empty())
        {
            return Err(SnapshotError::SizeMismatch("bcast planes"));
        }
        Ok(SessionState {
            in_occ,
            out_mask,
            arc_traffic,
            planes,
            bcast_stage,
            bcast_occ,
            node_planes,
            node_traffic,
            per_edge,
            trace_buf,
            ..SessionState::default()
        })
    }

    /// The round loop: run one protocol instance per node on `graph`
    /// until global termination or the round limit. [`Session::run`] is
    /// the public face; the state-level split is what lets the churn
    /// session host phases on an owned, mutating graph.
    pub(crate) fn run_phase<'s, P, F>(
        &'s mut self,
        graph: &Graph,
        mut factory: F,
        config: EngineConfig,
    ) -> Result<PhaseOutcome<'s, P::Output>, EngineError>
    where
        P: Protocol,
        F: FnMut(Node, &Graph) -> P,
    {
        debug_assert!(
            P::Msg::WIDTH <= <<P::Msg as PackedMsg>::Word as MsgWord>::BITS,
            "message WIDTH exceeds its storage word"
        );
        debug_assert!(self.fits(graph), "state sized for a different graph");
        if !self.clean {
            self.scrub();
        }
        // Any early exit (error or panic) leaves partially-built state;
        // only a completed phase restores the breadcrumb-zero invariant.
        self.clean = false;

        let n = graph.n();
        let arcs = graph.num_arcs();
        let occ_words = arcs.div_ceil(64);
        let node_words = n.div_ceil(64);
        let bcast_enabled = config.faults.is_none();

        // --- Lazily size the meter planes and broadcast-plane
        // bookkeeping on first use (an ArcCounters or faulted phase
        // never pays for them — matching the conditional allocations
        // the pre-session engine made per call). Growth happens at most
        // once per buffer per session.
        if config.meter == MeterMode::BitPlanes && self.planes.len() < occ_words * slab::PLANES {
            self.planes.resize(occ_words * slab::PLANES, 0);
        }
        if bcast_enabled {
            if self.bcast_stage.len() < n {
                self.bcast_stage.resize(n, 0);
                self.bcast_occ.resize(node_words, 0);
                self.node_traffic.resize(n, 0);
            }
            if config.meter == MeterMode::BitPlanes
                && self.node_planes.len() < node_words * slab::PLANES
            {
                self.node_planes.resize(node_words * slab::PLANES, 0);
            }
        }

        // --- Shard plan (cached across phases keyed by shard count).
        let parallel = config.parallel && n >= PARALLEL_MIN_NODES && congest_par::num_threads() > 1;
        let s_req = config
            .shards
            .unwrap_or(if parallel {
                (congest_par::num_threads() * 4).min(MAX_AUTO_SHARDS)
            } else {
                1
            })
            .clamp(1, n.max(1));
        if self.plan.as_ref().map(|(k, _)| *k) != Some(s_req) {
            self.plan = Some((s_req, graph.shard_plan(s_req)));
        }
        if let Some(fp) = &config.faults {
            self.blocked.reserve(fp.edges_per_round);
        }

        // --- Sparse fast-path worklist layout for this phase's threshold.
        let threshold = config
            .sparse_threshold
            .unwrap_or_else(|| (arcs / 32).clamp(64, 1 << 20))
            .min(arcs);

        // --- Split the state into independently borrowed buffers.
        let SessionState {
            slab_a,
            slab_b,
            bcast_slab_a,
            bcast_slab_b,
            in_occ,
            out_mask,
            arc_traffic,
            planes,
            bcast_stage,
            bcast_occ,
            node_planes,
            node_traffic,
            blocked,
            fault_marks,
            plan,
            meters,
            agg_buf,
            wl_starts,
            worklist,
            wl_live,
            active_shards,
            set_words,
            per_edge,
            trace_buf,
            cell_arena,
            out_arena,
            clean,
            ..
        } = self;
        let plan: &ShardPlan = &plan.as_ref().expect("plan built above").1;
        let s_count = plan.num_shards();

        meters.clear();
        meters.resize(s_count, ShardMeter::default());
        agg_buf.clear();
        agg_buf.resize(s_count, RoundAgg::default());
        wl_live.clear();
        wl_live.resize(s_count, 0);
        wl_starts.clear();
        wl_starts.push(0);
        for s in 0..s_count {
            let cap = threshold.min(plan.out_arc_bound(s));
            wl_starts.push(wl_starts[s] + cap);
        }
        if worklist.len() < wl_starts[s_count] {
            worklist.resize(wl_starts[s_count], 0);
        }
        active_shards.clear();
        active_shards.reserve(s_count);
        set_words.clear();
        set_words.reserve(threshold.min(occ_words));
        trace_buf.clear();

        // --- Message slabs for this phase's word width (byte-capacity
        // keyed: a u64 phase reuses a u128 phase's slab).
        let mut in_words: &mut [<P::Msg as PackedMsg>::Word] = slab_a.view(arcs);
        let mut out_words: &mut [<P::Msg as PackedMsg>::Word] = slab_b.view(arcs);
        let bcast_len = if bcast_enabled { n } else { 0 };
        let mut bcast_in_words: &mut [<P::Msg as PackedMsg>::Word] = bcast_slab_a.view(bcast_len);
        let mut bcast_out_words: &mut [<P::Msg as PackedMsg>::Word] = bcast_slab_b.view(bcast_len);

        let in_occ: &mut [u64] = in_occ;
        let out_mask: &mut [u8] = out_mask;
        let arc_traffic: &mut [u32] = arc_traffic;
        let planes: &mut [u64] = match config.meter {
            MeterMode::BitPlanes => planes,
            MeterMode::ArcCounters => &mut [],
        };
        let bcast_stage: &mut [u8] = &mut bcast_stage[..bcast_len];
        let bcast_occ: &mut [u64] = &mut bcast_occ[..if bcast_enabled { node_words } else { 0 }];
        let node_planes: &mut [u64] = match config.meter {
            MeterMode::BitPlanes if bcast_enabled => node_planes,
            _ => &mut [],
        };
        let node_traffic: &mut [u32] = &mut node_traffic[..bcast_len];
        let meters: &mut [ShardMeter] = meters;
        let agg_buf: &mut [RoundAgg] = agg_buf;
        let wl_live: &mut [u32] = wl_live;
        let worklist: &mut [u32] = &mut worklist[..wl_starts[s_count]];

        // --- Node cells in the bump arena.
        let cells_ptr: *mut NodeCell<P> = cell_arena.alloc(n);
        for v in 0..n as Node {
            // Sound: slot `v` is in-bounds, and a panic in `factory`
            // leaks only the already-written prefix (the session stays
            // dirty and the arena is plain bytes to later phases).
            unsafe {
                cells_ptr.add(v as usize).write(NodeCell {
                    state: factory(v, graph),
                    rng: node_rng(config.seed, v),
                    done: false,
                    max_bits: 0,
                });
            }
        }
        // Sound: all `n` cells initialized above; the arena is not handed
        // to anyone else while this borrow lives.
        let cells: &mut [NodeCell<P>] = unsafe { std::slice::from_raw_parts_mut(cells_ptr, n) };

        let mut bcast_any = false;
        // Adaptive plane choice: `send_all` goes through the broadcast
        // plane only in rounds following *dense* traffic (see the engine
        // module docs); round 0 starts optimistic.
        let mut last_delivered: u64 = arcs as u64;

        let mut stats = RunStats::default();
        let mut round: u64 = 0;
        let mut rounds_since_flush: u64 = 0;
        // What zeroing the inbox occupancy bitset needs before new bits
        // land. The previous phase's exit leaves the bitset all-zero.
        let mut occ_state = OccState::Clean;
        loop {
            if round >= config.max_rounds {
                // Drop the cells so their heap state is released; the
                // session stays marked dirty and scrubs on the next run.
                for i in 0..n {
                    unsafe { std::ptr::drop_in_place(cells_ptr.add(i)) };
                }
                return Err(EngineError::RoundLimitExceeded {
                    limit: config.max_rounds,
                });
            }
            // --- Step phase: each shard steps its own nodes; sends
            // scatter into the staging slab's destination slots.
            let use_plane = bcast_enabled && 4 * last_delivered >= arcs as u64;
            {
                let racy_cells = RacyCells::new(&mut *cells);
                let racy_out = RacyCells::new(&mut *out_words);
                let racy_mask = RacyCells::new(&mut *out_mask);
                let racy_bcast_out = RacyCells::new(&mut *bcast_out_words);
                let racy_bcast_stage = RacyCells::new(&mut *bcast_stage);
                let racy_meters = RacyCells::new(&mut *meters);
                let racy_wl = RacyCells::new(&mut *worklist);
                let in_words = &in_words[..];
                let in_occ = &in_occ[..];
                // One broadcast descriptor per round, shared by every
                // node's context; rounds after which nobody broadcast
                // hand receivers `None` outright.
                let bcast_in = BcastIn {
                    words: &bcast_in_words[..],
                    occ: &bcast_occ[..],
                    adj: graph.arc_targets(),
                    any: bcast_any,
                };
                let bcast_in = (bcast_enabled && bcast_any).then_some(&bcast_in);
                let bcast_out = BcastOut {
                    words: &racy_bcast_out,
                    stage: &racy_bcast_stage,
                };
                let bcast_out = use_plane.then_some(&bcast_out);
                let wl_starts = &wl_starts[..];
                let step_shard = |s: usize| {
                    let nodes = plan.nodes(s);
                    let (v_lo, v_hi) = (nodes.start as usize, nodes.end as usize);
                    // Sound: shard `s` is the unique task stepping these
                    // nodes and writing meter block `s` and worklist
                    // region `s`.
                    let cells_s = unsafe { racy_cells.slice_mut(v_lo, v_hi) };
                    let meter = unsafe { &mut racy_meters.slice_mut(s, s + 1)[0] };
                    // One scatter-plane descriptor per shard per round;
                    // node contexts carry a pointer to it instead of its
                    // fields.
                    let plane = crate::protocol::ScatterPlane {
                        graph,
                        words: &racy_out,
                        mask: &racy_mask,
                        rev: graph.reverse_arcs(),
                        bcast: bcast_out,
                        wl: &racy_wl,
                        wl_lo: wl_starts[s],
                        wl_cap: wl_starts[s + 1] - wl_starts[s],
                        staged: std::cell::Cell::new(0),
                        bcast_used: std::cell::Cell::new(false),
                    };
                    let mut all_done = true;
                    for (i, cell) in cells_s.iter_mut().enumerate() {
                        let v = (v_lo + i) as Node;
                        let lo = graph.arc_offset(v);
                        let deg = graph.degree(v);
                        let mut ctx = NodeCtx {
                            node: v,
                            round,
                            inbox: InSlot {
                                words: &in_words[lo..lo + deg],
                                occ: in_occ,
                                bit0: lo,
                                bcast: bcast_in,
                            },
                            outbox: OutSlot::Scatter { plane: &plane },
                            bcast_staged: false,
                            rng: &mut cell.rng,
                            done: &mut cell.done,
                            max_bits: &mut cell.max_bits,
                        };
                        cell.state.round(&mut ctx);
                        all_done &= cell.done;
                    }
                    meter.all_done = all_done;
                    meter.staged = plane.staged.get();
                    meter.bcast_used = plane.bcast_used.get();
                };
                if parallel {
                    congest_par::run(s_count, step_shard);
                } else {
                    for s in 0..s_count {
                        step_shard(s);
                    }
                }
            }
            // --- Adversary phase: destroy staged messages on blocked
            // edges.
            if let Some(fault_plan) = &config.faults {
                if fault_plan.edges_per_round > 0 {
                    fault_plan.blocked_edges_into_marked(round, graph.m(), blocked, fault_marks);
                    for &e in blocked.iter() {
                        let (u, v) = graph.endpoints(e);
                        for (from, to) in [(u, v), (v, u)] {
                            let port = graph
                                .port_to(to, from)
                                .expect("edge endpoints are adjacent");
                            let dest = graph.arc_offset(to) + port as usize;
                            if out_mask[dest] == STAGED {
                                out_mask[dest] = 0;
                                stats.dropped_messages += 1;
                            }
                        }
                    }
                }
            }
            // --- Deliver phase: identical three-path structure to the
            // engine (skip / sparse worklist / full sweep); see
            // `crate::engine` for the invariants.
            std::mem::swap(&mut in_words, &mut out_words);
            std::mem::swap(&mut bcast_in_words, &mut bcast_out_words);
            let flush_now = config.meter == MeterMode::BitPlanes
                && rounds_since_flush + 1 == slab::FLUSH_PERIOD;
            let staged_total: u64 = meters.iter().map(|m| m.staged as u64).sum();
            let fold_bcast = use_plane && meters.iter().any(|m| m.bcast_used);
            let wl_overflow = meters
                .iter()
                .enumerate()
                .any(|(s, m)| m.staged as usize > wl_starts[s + 1] - wl_starts[s]);
            let sparse_round = staged_total > 0 && staged_total <= threshold as u64 && !wl_overflow;
            let run_full_sweep = staged_total > 0 && !sparse_round;
            for m in meters.iter_mut() {
                m.delivered = 0;
                m.bcast_any = false;
            }
            let mut sparse_delivered: u64 = 0;
            if !run_full_sweep {
                match occ_state {
                    OccState::Clean => {}
                    OccState::Tracked => {
                        for &w in set_words.iter() {
                            in_occ[w as usize] = 0;
                        }
                        set_words.clear();
                    }
                    OccState::Unknown => {
                        if parallel && occ_words >= 4096 {
                            let chunk = occ_words.div_ceil(congest_par::num_threads().max(1));
                            congest_par::par_chunks_mut(&mut *in_occ, chunk, |_, c| c.fill(0));
                        } else {
                            in_occ.fill(0);
                        }
                        set_words.clear();
                    }
                }
                occ_state = OccState::Clean;
            }
            if sparse_round {
                // Stage A — fault prefilter over the active-shard
                // worklists (see `crate::engine`).
                active_shards.clear();
                for (s, m) in meters.iter().enumerate() {
                    if m.staged > 0 {
                        active_shards.push(s as u32);
                    }
                }
                {
                    let racy_wl = RacyCells::new(&mut *worklist);
                    let racy_mask = RacyCells::new(&mut *out_mask);
                    let racy_live = RacyCells::new(&mut *wl_live);
                    let meters = &meters[..];
                    let wl_starts = &wl_starts[..];
                    let prefilter = |s: usize| {
                        let cnt = meters[s].staged as usize;
                        let base = wl_starts[s];
                        // Sound: worklist region `s` and live-count slot
                        // `s` belong to this task alone; every staged
                        // mask byte has exactly one worklist entry
                        // pointing at it.
                        let wl = unsafe { racy_wl.slice_mut(base, base + cnt) };
                        let mut live = 0usize;
                        for k in 0..cnt {
                            let dest = wl[k] as usize;
                            if unsafe { racy_mask.read(dest) } != 0 {
                                unsafe { racy_mask.write(dest, 0) };
                                wl[live] = dest as u32;
                                live += 1;
                            }
                        }
                        unsafe { racy_live.write(s, live as u32) };
                    };
                    if parallel && staged_total >= 4096 && active_shards.len() > 1 {
                        congest_par::run_list(active_shards, prefilter);
                    } else {
                        for &s in active_shards.iter() {
                            prefilter(s as usize);
                        }
                    }
                }
                // Stage B — serial merge over the survivors.
                for &s in active_shards.iter() {
                    let base = wl_starts[s as usize];
                    let live = wl_live[s as usize] as usize;
                    for &dest in &worklist[base..base + live] {
                        let dest = dest as usize;
                        let w = dest >> 6;
                        let bit = 1u64 << (dest & 63);
                        if in_occ[w] == 0 {
                            set_words.push(w as u32);
                        }
                        in_occ[w] |= bit;
                        sparse_delivered += 1;
                        match config.meter {
                            MeterMode::BitPlanes => {
                                slab::planes_add(
                                    &mut planes[w * slab::PLANES..(w + 1) * slab::PLANES],
                                    bit,
                                );
                            }
                            MeterMode::ArcCounters => {
                                arc_traffic[dest] = arc_traffic[dest].saturating_add(1);
                            }
                        }
                    }
                }
                if !set_words.is_empty() {
                    occ_state = OccState::Tracked;
                }
            }
            if run_full_sweep || fold_bcast || flush_now {
                let racy_mask = RacyCells::new(&mut *out_mask);
                let racy_occ = RacyCells::new(&mut *in_occ);
                let racy_traffic = RacyCells::new(&mut *arc_traffic);
                let racy_planes = RacyCells::new(&mut *planes);
                let racy_bcast_stage = RacyCells::new(&mut *bcast_stage);
                let racy_bcast_occ = RacyCells::new(&mut *bcast_occ);
                let racy_node_planes = RacyCells::new(&mut *node_planes);
                let racy_node_traffic = RacyCells::new(&mut *node_traffic);
                let racy_meters = RacyCells::new(&mut *meters);
                let meter_mode = config.meter;
                let deliver_shard = |s: usize| {
                    let words = plan.words(s);
                    let arcs_range = plan.arcs_of(s);
                    let (w_lo, w_hi) = (words.start, words.end);
                    let (a_lo, a_hi) = (arcs_range.start, arcs_range.end);
                    // Sound: the plan's word/arc/meter regions are
                    // disjoint across shards by construction.
                    let (mask_s, occ_s, meter) = unsafe {
                        (
                            racy_mask.slice_mut(a_lo, a_hi),
                            racy_occ.slice_mut(w_lo, w_hi),
                            &mut racy_meters.slice_mut(s, s + 1)[0],
                        )
                    };
                    let mut delivered = 0u64;
                    if run_full_sweep {
                        match meter_mode {
                            MeterMode::BitPlanes => {
                                let planes_s = unsafe {
                                    racy_planes.slice_mut(w_lo * slab::PLANES, w_hi * slab::PLANES)
                                };
                                for (i, occ_word) in occ_s.iter_mut().enumerate() {
                                    let lo = w_lo * 64 + i * 64;
                                    let hi = (lo + 64).min(a_hi);
                                    let mask = &mut mask_s[lo - a_lo..hi - a_lo];
                                    let bits = slab::pack_bytes(mask);
                                    *occ_word = bits;
                                    if bits != 0 {
                                        mask.fill(0);
                                        delivered += bits.count_ones() as u64;
                                        slab::planes_add(
                                            &mut planes_s[i * slab::PLANES..(i + 1) * slab::PLANES],
                                            bits,
                                        );
                                    }
                                }
                            }
                            MeterMode::ArcCounters => {
                                let traffic_s = unsafe { racy_traffic.slice_mut(a_lo, a_hi) };
                                for (i, occ_word) in occ_s.iter_mut().enumerate() {
                                    let lo = w_lo * 64 + i * 64;
                                    let hi = (lo + 64).min(a_hi);
                                    let mask = &mut mask_s[lo - a_lo..hi - a_lo];
                                    let traffic = &mut traffic_s[lo - a_lo..hi - a_lo];
                                    let bits = slab::pack_bytes(mask);
                                    *occ_word = bits;
                                    if bits != 0 {
                                        mask.fill(0);
                                        delivered += bits.count_ones() as u64;
                                        if bits == u64::MAX {
                                            for t in traffic.iter_mut() {
                                                *t = t.saturating_add(1);
                                            }
                                        } else {
                                            let mut b = bits;
                                            while b != 0 {
                                                let t = &mut traffic[b.trailing_zeros() as usize];
                                                *t = t.saturating_add(1);
                                                b &= b - 1;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    // Flush cadence is independent of this round's
                    // traffic: the planes may hold counts from earlier
                    // rounds.
                    if flush_now {
                        let planes_s = unsafe {
                            racy_planes.slice_mut(w_lo * slab::PLANES, w_hi * slab::PLANES)
                        };
                        let traffic_s = unsafe { racy_traffic.slice_mut(a_lo, a_hi) };
                        for (i, w) in (w_lo..w_hi).enumerate() {
                            let lo = w * 64;
                            let hi = (lo + 64).min(a_hi);
                            slab::planes_flush(
                                &mut planes_s[i * slab::PLANES..(i + 1) * slab::PLANES],
                                &mut traffic_s[lo - a_lo..hi - a_lo],
                            );
                        }
                    }
                    // --- Broadcast fold (see `crate::engine`).
                    let mut shard_bcast = false;
                    if fold_bcast {
                        let nw = plan.node_words(s);
                        let nodes_cov = plan.node_word_nodes(s);
                        let (b_lo, b_hi) = (nodes_cov.start, nodes_cov.end);
                        // Sound: node-word regions are disjoint across
                        // shards.
                        let (stage_s, bocc_s) = unsafe {
                            (
                                racy_bcast_stage.slice_mut(b_lo, b_hi),
                                racy_bcast_occ.slice_mut(nw.start, nw.end),
                            )
                        };
                        for (i, occ_word) in bocc_s.iter_mut().enumerate() {
                            let lo = nw.start * 64 + i * 64;
                            let hi = (lo + 64).min(b_hi);
                            let bytes = &mut stage_s[lo - b_lo..hi - b_lo];
                            let bits = slab::pack_bytes(bytes);
                            *occ_word = bits;
                            if bits != 0 {
                                bytes.fill(0);
                                shard_bcast = true;
                                let mut b = bits;
                                while b != 0 {
                                    let v = lo + b.trailing_zeros() as usize;
                                    b &= b - 1;
                                    delivered += graph.degree(v as Node) as u64;
                                }
                                match meter_mode {
                                    MeterMode::BitPlanes => {
                                        let planes_w = unsafe {
                                            racy_node_planes.slice_mut(
                                                (nw.start + i) * slab::PLANES,
                                                (nw.start + i + 1) * slab::PLANES,
                                            )
                                        };
                                        slab::planes_add(planes_w, bits);
                                    }
                                    MeterMode::ArcCounters => {
                                        let traffic =
                                            unsafe { racy_node_traffic.slice_mut(lo, hi) };
                                        let mut b = bits;
                                        while b != 0 {
                                            let t = &mut traffic[b.trailing_zeros() as usize];
                                            *t = t.saturating_add(1);
                                            b &= b - 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    // Node-plane flush runs on the arc-plane cadence
                    // whether or not this round folded the plane.
                    if bcast_enabled && flush_now && meter_mode == MeterMode::BitPlanes {
                        let nw = plan.node_words(s);
                        let b_hi = plan.node_word_nodes(s).end;
                        for w in nw {
                            let lo = w * 64;
                            let hi = (lo + 64).min(b_hi);
                            let (planes_w, traffic) = unsafe {
                                (
                                    racy_node_planes
                                        .slice_mut(w * slab::PLANES, (w + 1) * slab::PLANES),
                                    racy_node_traffic.slice_mut(lo, hi),
                                )
                            };
                            slab::planes_flush(planes_w, traffic);
                        }
                    }
                    meter.delivered = delivered;
                    meter.bcast_any = shard_bcast;
                };
                if parallel {
                    congest_par::run(s_count, deliver_shard);
                } else {
                    for s in 0..s_count {
                        deliver_shard(s);
                    }
                }
            }
            rounds_since_flush = if flush_now { 0 } else { rounds_since_flush + 1 };
            if run_full_sweep {
                occ_state = OccState::Unknown;
            }
            // --- Combine the shard meter blocks.
            for (agg, m) in agg_buf.iter_mut().zip(meters.iter()) {
                *agg = RoundAgg {
                    delivered: m.delivered,
                    all_done: m.all_done,
                    bcast_any: m.bcast_any,
                };
            }
            congest_par::par_tree_reduce(agg_buf, |a, b| {
                a.delivered += b.delivered;
                a.all_done &= b.all_done;
                a.bcast_any |= b.bcast_any;
            });
            let RoundAgg {
                delivered,
                all_done,
                bcast_any: round_bcast,
            } = agg_buf[0];
            let delivered = delivered + sparse_delivered;
            bcast_any = round_bcast;
            last_delivered = delivered;
            stats.total_messages += delivered;
            if config.collect_trace {
                trace_buf.push(delivered);
            }
            round += 1;
            if delivered > 0 {
                stats.rounds = round;
            }
            if delivered == 0 && all_done {
                stats.iterations = round;
                break;
            }
        }
        trace_buf.truncate(stats.rounds as usize);
        stats.max_message_bits = cells.iter().map(|c| c.max_bits).max().unwrap_or(0);

        // Final plane flush so `arc_traffic`/`node_traffic` hold exact
        // totals (and the planes return to all-zero for the next phase).
        if config.meter == MeterMode::BitPlanes && rounds_since_flush > 0 {
            for w in 0..occ_words {
                let lo = w * 64;
                let hi = (lo + 64).min(arcs);
                slab::planes_flush(
                    &mut planes[w * slab::PLANES..(w + 1) * slab::PLANES],
                    &mut arc_traffic[lo..hi],
                );
            }
            if bcast_enabled {
                for w in 0..node_words {
                    let lo = w * 64;
                    let hi = (lo + 64).min(n);
                    slab::planes_flush(
                        &mut node_planes[w * slab::PLANES..(w + 1) * slab::PLANES],
                        &mut node_traffic[lo..hi],
                    );
                }
            }
        }

        // Fold per-arc traffic into per-edge congestion, draining the
        // arc counters back to zero as they are read (the "zeroed by
        // breadcrumb" phase-exit contract — the next phase pays nothing).
        per_edge.fill(0);
        for v in 0..n as Node {
            let lo = graph.arc_offset(v);
            let neighbors = graph.neighbors(v);
            for (i, &e) in graph.incident_edges(v).iter().enumerate() {
                let mut t = std::mem::take(&mut arc_traffic[lo + i]) as u64;
                if bcast_enabled {
                    t += node_traffic[neighbors[i] as usize] as u64;
                }
                per_edge[e as usize] += t;
            }
        }
        // Node counters are read once per incident arc above, so they
        // drain in one O(n) pass afterwards.
        node_traffic.fill(0);
        stats.max_edge_congestion = per_edge.iter().copied().max().unwrap_or(0);

        // Consume the cells into arena-resident outputs.
        let out_ptr: *mut P::Output = out_arena.alloc(n);
        for i in 0..n {
            // Sound: each cell is read (moved) exactly once; a panic in
            // `finish` leaks the tail, which the dirty flag covers.
            unsafe {
                let cell = cells_ptr.add(i).read();
                out_ptr.add(i).write(cell.state.finish());
            }
        }

        *clean = true;
        let trace: Option<&'s [u64]> = if config.collect_trace {
            Some(&trace_buf[..])
        } else {
            None
        };
        Ok(PhaseOutcome {
            outputs: out_ptr,
            n,
            taken: false,
            stats,
            trace,
            edge_congestion: &per_edge[..],
            _borrow: std::marker::PhantomData,
        })
    }
}

impl<'g> Session<'g> {
    /// Build a session for `graph`, allocating every graph-keyed buffer
    /// once. Message slabs and arenas are sized lazily by the first
    /// phase that needs them (and re-keyed upward if a later phase needs
    /// more — e.g. a `u128` phase after `u64` ones).
    pub fn new(graph: &'g Graph) -> Session<'g> {
        Session {
            graph,
            state: SessionState::new(graph),
        }
    }

    /// Re-marry a (possibly repaired) state with its graph — the churn
    /// session's way of lending its owned state out as a plain session.
    pub(crate) fn from_state(graph: &'g Graph, state: SessionState) -> Session<'g> {
        debug_assert!(state.fits(graph), "state sized for a different graph");
        Session { graph, state }
    }

    /// Take the state back out (inverse of [`Session::from_state`]).
    pub(crate) fn into_state(self) -> SessionState {
        self.state
    }

    /// The graph this session is keyed to.
    #[inline]
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Hash of the resident engine state — eight bytes that sign the
    /// state a continuation would start from. Invariant across
    /// serial/parallel execution, shard counts, meter modes, and
    /// resident vs per-phase hosting; see [`crate::snapshot`].
    pub fn state_hash(&self) -> u64 {
        self.state.state_hash()
    }

    /// Serialize the session at a phase boundary into `out` (cleared
    /// first) as a versioned, checksummed snapshot frame — see
    /// [`crate::snapshot`] for the format. Encoding into a warm
    /// (previously used) buffer allocates nothing.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        out.clear();
        crate::snapshot::begin(
            out,
            &crate::snapshot::Frame {
                flags: if self.state.clean {
                    crate::snapshot::FLAG_CLEAN
                } else {
                    0
                },
                fingerprint: self.graph.fingerprint(),
                n: self.graph.n() as u64,
                m: self.graph.m() as u64,
                arcs: self.graph.num_arcs() as u64,
                plan_key: self.state.plan_key(),
                state_hash: self.state.state_hash(),
                capacities: self.state.capacities(),
            },
        );
        self.state.encode_payload(out);
        crate::snapshot::finish(out);
    }

    /// [`Session::snapshot_into`] into a fresh buffer.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.snapshot_into(&mut out);
        out
    }

    /// Restore a snapshot frame onto `graph`, which must be the graph
    /// the frame was taken from (fingerprint and shape are verified).
    /// The restored session continues **bit-identically** to the one
    /// that was snapshotted: buffers are byte-equal, the shard-plan
    /// cache is recomputed from its recorded key, slab/arena high-water
    /// marks are replayed, and the recomputed [`Session::state_hash`]
    /// must equal the recorded one or the restore is refused.
    pub fn restore(
        graph: &'g Graph,
        bytes: &[u8],
    ) -> Result<Session<'g>, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let (header, mut r) = crate::snapshot::open(bytes)?;
        if header.has_churn {
            return Err(SnapshotError::WrongKind);
        }
        let found = graph.fingerprint();
        if header.fingerprint != found {
            return Err(SnapshotError::FingerprintMismatch {
                expected: found,
                found: header.fingerprint,
            });
        }
        if (header.n, header.m, header.arcs)
            != (graph.n() as u64, graph.m() as u64, graph.num_arcs() as u64)
        {
            return Err(SnapshotError::SizeMismatch("graph shape"));
        }
        if header.has_graph {
            // A plain-session frame may still embed the topology (it is
            // redundant here); skip over it after checking it matches.
            crate::snapshot::read_graph(&mut r, header.fingerprint)?;
        }
        let mut state = SessionState::decode_payload(graph, &mut r)?;
        state.clean = header.clean;
        if header.plan_key != 0 {
            let k = header.plan_key as usize;
            state.plan = Some((k, graph.shard_plan(k)));
        }
        state.grow_capacities(header.capacities);
        let rehash = state.state_hash();
        if rehash != header.state_hash {
            return Err(SnapshotError::StateHashMismatch {
                expected: header.state_hash,
                found: rehash,
            });
        }
        Ok(Session::from_state(graph, state))
    }

    /// Run one protocol instance per node until global termination (all
    /// nodes done and no message in flight) or the round limit — the
    /// session-resident equivalent of [`crate::run_protocol`], reusing
    /// every buffer of the previous phase. Per-node RNGs are re-derived
    /// from `config.seed` exactly as `run_protocol` derives them, so a
    /// session-hosted composition is bit-identical to the per-phase one.
    ///
    /// # Example
    ///
    /// Flood the maximum node id; every node converges on `n - 1`, and a
    /// second phase on the same session reuses every buffer of the first:
    ///
    /// ```
    /// use congest_graph::generators::complete;
    /// use congest_sim::{EngineConfig, NodeCtx, Protocol, Session};
    ///
    /// struct FloodMax {
    ///     best: u64,
    /// }
    /// impl Protocol for FloodMax {
    ///     type Msg = u64;
    ///     type Output = u64;
    ///     fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
    ///         let before = self.best;
    ///         for (_, m) in ctx.inbox() {
    ///             self.best = self.best.max(m);
    ///         }
    ///         if ctx.round == 0 || self.best > before {
    ///             ctx.send_all(self.best);
    ///         }
    ///         ctx.set_done(ctx.round > 0 && self.best == before);
    ///     }
    ///     fn finish(self) -> u64 {
    ///         self.best
    ///     }
    /// }
    ///
    /// let g = complete(8);
    /// let mut session = Session::new(&g);
    /// for phase in 0..2 {
    ///     let out = session
    ///         .run(|v, _| FloodMax { best: v as u64 }, EngineConfig::serial().seed(phase))
    ///         .unwrap();
    ///     assert!(out.outputs().iter().all(|&b| b == 7));
    /// }
    /// ```
    pub fn run<'s, P, F>(
        &'s mut self,
        factory: F,
        config: EngineConfig,
    ) -> Result<PhaseOutcome<'s, P::Output>, EngineError>
    where
        P: Protocol,
        F: FnMut(Node, &Graph) -> P,
    {
        self.state.run_phase(self.graph, factory, config)
    }
}

/// How a multi-phase driver hosts its engine: one **resident** session
/// reused by every phase (the default — zero engine churn between
/// phases), or a **fresh engine per phase** (exactly the pre-session
/// `run_protocol` composition, kept selectable so differential tests and
/// the `phase_reuse` bench can race the two compositions bit-for-bit).
pub enum PhaseHost<'g> {
    /// One session owns the engine state for the whole composition.
    Resident(Session<'g>),
    /// Every phase rebuilds the engine from scratch (slabs, bitsets,
    /// planes, plan), like a standalone `run_protocol` call does. The
    /// previous phase's engine is dropped when the next phase starts.
    PerPhase {
        graph: &'g Graph,
        current: Option<Session<'g>>,
    },
}

impl<'g> PhaseHost<'g> {
    /// A host backed by one resident session.
    pub fn resident(graph: &'g Graph) -> Self {
        PhaseHost::Resident(Session::new(graph))
    }

    /// A host that rebuilds the engine for every phase.
    pub fn per_phase(graph: &'g Graph) -> Self {
        PhaseHost::PerPhase {
            graph,
            current: None,
        }
    }

    /// Pick a host per `phase_resident` (the drivers' config knob).
    pub fn new(graph: &'g Graph, phase_resident: bool) -> Self {
        if phase_resident {
            Self::resident(graph)
        } else {
            Self::per_phase(graph)
        }
    }

    /// The graph this host executes on.
    pub fn graph(&self) -> &'g Graph {
        match self {
            PhaseHost::Resident(s) => s.graph(),
            PhaseHost::PerPhase { graph, .. } => graph,
        }
    }

    /// [`Session::state_hash`] of the hosted engine. Because the hash
    /// folds only nonzero state, both host modes report the **same**
    /// value at every phase boundary (a per-phase host's fresh engine
    /// ends a phase with exactly the state a resident one carries
    /// forward); before any phase has run it equals the fresh-state
    /// hash. Drivers record this into their [`crate::PhaseLog`] via
    /// [`crate::PhaseLog::record_hashed`] — the checkpoint signal.
    pub fn state_hash(&self) -> u64 {
        match self {
            PhaseHost::Resident(s) => s.state_hash(),
            PhaseHost::PerPhase {
                current: Some(s), ..
            } => s.state_hash(),
            PhaseHost::PerPhase { graph, .. } => SessionState::fresh_hash(graph),
        }
    }

    /// Snapshot the hosted engine at the current phase boundary (see
    /// [`Session::snapshot_into`]). Returns `false` — leaving `out`
    /// empty — when the host holds no engine yet (a per-phase host
    /// before its first phase has nothing to checkpoint).
    pub fn snapshot_into(&self, out: &mut Vec<u8>) -> bool {
        match self {
            PhaseHost::Resident(s) => {
                s.snapshot_into(out);
                true
            }
            PhaseHost::PerPhase {
                current: Some(s), ..
            } => {
                s.snapshot_into(out);
                true
            }
            PhaseHost::PerPhase { .. } => {
                out.clear();
                false
            }
        }
    }

    /// Run one phase. Identical semantics to [`Session::run`]; the
    /// per-phase variant pays a fresh engine build first.
    pub fn run<'s, P, F>(
        &'s mut self,
        factory: F,
        config: EngineConfig,
    ) -> Result<PhaseOutcome<'s, P::Output>, EngineError>
    where
        P: Protocol,
        F: FnMut(Node, &Graph) -> P,
    {
        match self {
            PhaseHost::Resident(s) => s.run(factory, config),
            PhaseHost::PerPhase { graph, current } => {
                // Drop the previous phase's engine, build a fresh one —
                // the allocation/zeroing churn the resident host avoids.
                *current = None;
                current.insert(Session::new(graph)).run(factory, config)
            }
        }
    }
}
