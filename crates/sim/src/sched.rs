//! Random-delay scheduling of many protocols over one network.
//!
//! Paper Theorem 12 (Ghaffari \[Gha15b\]): any collection of distributed
//! algorithms with given *congestion* (max messages per edge, summed over
//! all algorithms) and *dilation* (max individual round complexity) can be
//! executed together in `O(congestion + dilation·log² n)` rounds w.h.p.,
//! by starting each algorithm at a random delay and letting edges serve
//! queued messages one per round.
//!
//! [`Multiplexed`] implements exactly that: each node hosts one instance
//! of each sub-protocol; outgoing messages are tagged with their algorithm
//! index and queued per port (FIFO); each real round, every port transmits
//! at most one queued message — preserving the global CONGEST discipline.
//!
//! Sub-protocols run against node-local **packed** buffers (the same word
//! slab + occupancy bitset shape the engine uses, via
//! [`crate::protocol`]'s host mode), so a multiplexed protocol pays the
//! packed encoding exactly once per hop. The multiplexer itself is not
//! part of the engine hot path — its FIFO queues may allocate.
//!
//! **Delay tolerance.** Under queuing, a sub-protocol's messages may
//! arrive in later virtual rounds than in a solo run. Sub-protocols must
//! therefore be *message-driven* (progress when messages arrive, rather
//! than count on round-exact delivery). All tree broadcast/convergecast
//! protocols in `congest-core` satisfy this. The paper's own use (proof of
//! Theorem 13) runs Lemma 1 pipelined broadcasts, which are message-driven
//! too.

use crate::message::{low_mask, MsgBits, MsgWord, PackedMsg};
use crate::protocol::{InSlot, NodeCtx, OutSlot, Protocol};
use crate::rng::mix64;
use crate::slab;
use std::collections::VecDeque;

/// A message tagged with the index of the sub-algorithm it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tagged<M> {
    pub algo: u32,
    pub msg: M,
}

impl<M: MsgBits> MsgBits for Tagged<M> {
    fn bits(&self) -> usize {
        // The tag addresses one of the multiplexed algorithms; 16 bits is a
        // generous constant for any experiment here.
        16 + self.msg.bits()
    }
}

/// The tag rides in the 16 bits above the inner encoding. The combined
/// width must fit a `u128` word — enforced at compile time (a
/// post-monomorphization error when `M::WIDTH > 112`).
impl<M: PackedMsg> PackedMsg for Tagged<M> {
    type Word = u128;
    const WIDTH: u32 = {
        assert!(M::WIDTH + 16 <= 128, "tagged message exceeds 128 bits");
        16 + M::WIDTH
    };
    #[inline]
    fn pack(self) -> u128 {
        let _guard = Self::WIDTH;
        debug_assert!(self.algo < 1 << 16);
        self.msg.pack().to_u128() | ((self.algo as u128) << M::WIDTH)
    }
    #[inline]
    fn unpack(word: u128) -> Self {
        let _guard = Self::WIDTH;
        Tagged {
            algo: (word >> M::WIDTH) as u32 & 0xFFFF,
            msg: M::unpack(MsgWord::from_u128(word & low_mask(M::WIDTH))),
        }
    }
}

/// One hosted sub-protocol: its state plus node-local packed buffers in
/// the engine's slab shape (port-indexed words + occupancy bits).
struct Sub<P: Protocol> {
    proto: P,
    delay: u64,
    virtual_round: u64,
    done: bool,
    in_words: Vec<<P::Msg as PackedMsg>::Word>,
    in_occ: Vec<u64>,
    out_words: Vec<<P::Msg as PackedMsg>::Word>,
    out_occ: Vec<u64>,
}

/// One node's multiplexer hosting `k` sub-protocol instances.
pub struct Multiplexed<P: Protocol> {
    subs: Vec<Sub<P>>,
    /// Per-port FIFO of `(algo, message)` awaiting bandwidth.
    queues: Vec<VecDeque<(u32, P::Msg)>>,
    /// Peak queue length observed (scheduling-quality metric).
    peak_queue: usize,
}

impl<P: Protocol> Multiplexed<P> {
    /// Build a node multiplexer from per-algorithm instances and their
    /// (globally agreed) start delays. `degree` is this node's degree.
    pub fn new(instances: Vec<P>, delays: &[u64], degree: usize) -> Self {
        assert_eq!(instances.len(), delays.len());
        let subs = instances
            .into_iter()
            .zip(delays.iter())
            .map(|(proto, &delay)| Sub {
                proto,
                delay,
                virtual_round: 0,
                done: false,
                in_words: vec![Default::default(); degree],
                in_occ: vec![0; slab::words_for(degree)],
                out_words: vec![Default::default(); degree],
                out_occ: vec![0; slab::words_for(degree)],
            })
            .collect();
        Multiplexed {
            subs,
            queues: (0..degree).map(|_| VecDeque::new()).collect(),
            peak_queue: 0,
        }
    }
}

impl<P: Protocol> Protocol for Multiplexed<P> {
    type Msg = Tagged<P::Msg>;
    type Output = (Vec<P::Output>, usize);

    fn round(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>) {
        // 1. Distribute arrivals to sub-inboxes.
        for (p, t) in ctx.inbox() {
            let sub = &mut self.subs[t.algo as usize];
            debug_assert!(!slab::test(&sub.in_occ, p as usize));
            slab::set(&mut sub.in_occ, p as usize);
            sub.in_words[p as usize] = t.msg.pack();
        }
        // 2. Step every sub-protocol whose delay has elapsed, against its
        // node-local packed buffers.
        for (i, sub) in self.subs.iter_mut().enumerate() {
            if ctx.round < sub.delay {
                continue;
            }
            {
                let mut sub_ctx = NodeCtx {
                    node: ctx.node,
                    round: sub.virtual_round,
                    graph: ctx.graph,
                    inbox: InSlot {
                        words: &sub.in_words,
                        occ: &sub.in_occ,
                        bit0: 0,
                    },
                    outbox: OutSlot::Local {
                        words: &mut sub.out_words,
                        occ: &mut sub.out_occ,
                    },
                    rng: ctx.rng,
                    done: &mut sub.done,
                    max_bits: ctx.max_bits,
                };
                sub.proto.round(&mut sub_ctx);
            }
            sub.virtual_round += 1;
            for p in 0..sub.out_words.len() {
                if slab::test(&sub.out_occ, p) {
                    self.queues[p].push_back((i as u32, P::Msg::unpack(sub.out_words[p])));
                }
            }
            slab::clear_all(&mut sub.in_occ);
            slab::clear_all(&mut sub.out_occ);
        }
        // 3. Serve one queued message per port.
        let mut peak = self.peak_queue;
        for p in 0..self.queues.len() {
            peak = peak.max(self.queues[p].len());
            if let Some((algo, msg)) = self.queues[p].pop_front() {
                ctx.send(p as u32, Tagged { algo, msg });
            }
        }
        self.peak_queue = peak;
        // 4. Done when all subs are done and no message waits.
        let all_done = self.subs.iter().all(|s| s.done);
        let queues_empty = self.queues.iter().all(|q| q.is_empty());
        ctx.set_done(all_done && queues_empty);
    }

    fn finish(self) -> Self::Output {
        (
            self.subs.into_iter().map(|s| s.proto.finish()).collect(),
            self.peak_queue,
        )
    }
}

/// Globally agreed random delays for `k` algorithms, uniform in
/// `[0, max_delay]`, derived from a seed (all nodes must use the same
/// values — in CONGEST this is shared randomness or one O(D)-round
/// agreement; the paper treats it as given).
pub fn random_delays(k: usize, max_delay: u64, seed: u64) -> Vec<u64> {
    (0..k)
        .map(|i| {
            if max_delay == 0 {
                0
            } else {
                mix64(seed ^ mix64(i as u64)) % (max_delay + 1)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_protocol, EngineConfig};
    use congest_graph::generators::cycle;
    use congest_graph::{Graph, Node};

    /// Message-driven flood from a designated source (tolerates delays).
    struct Flood {
        informed: bool,
        relayed: bool,
    }
    impl Flood {
        fn new(source: Node, me: Node) -> Self {
            Flood {
                informed: source == me,
                relayed: false,
            }
        }
    }
    impl Protocol for Flood {
        type Msg = ();
        type Output = bool;
        fn round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
            if ctx.inbox_len() > 0 {
                self.informed = true;
            }
            if self.informed && !self.relayed {
                ctx.send_all(());
                self.relayed = true;
            }
            ctx.set_done(self.relayed);
        }
        fn finish(self) -> bool {
            self.informed
        }
    }

    #[test]
    fn tagged_packing_roundtrips() {
        let t = Tagged {
            algo: 0xBEEF & 0xFFFF,
            msg: 0xDEAD_CAFEu32,
        };
        assert_eq!(Tagged::<u32>::unpack(t.pack()), t);
        assert_eq!(Tagged::<u32>::WIDTH, 48);
    }

    #[test]
    fn multiplexed_floods_all_complete() {
        let g = cycle(8);
        let k = 4;
        let delays = random_delays(k, 6, 99);
        let outcome = run_protocol(
            &g,
            |v, gr: &Graph| {
                let instances: Vec<Flood> = (0..k).map(|i| Flood::new(i as Node, v)).collect();
                Multiplexed::new(instances, &delays, gr.degree(v))
            },
            EngineConfig::default(),
        )
        .unwrap();
        // Every node must end up informed in every sub-flood.
        for (v, (flags, _)) in outcome.outputs.iter().enumerate() {
            for (i, &informed) in flags.iter().enumerate() {
                assert!(informed, "node {v} missed flood {i}");
            }
        }
    }

    #[test]
    fn queues_enforce_one_message_per_edge_round() {
        // With k simultaneous floods and zero delays, an edge can carry at
        // most `rounds` messages per direction; the run must still finish.
        let g = cycle(6);
        let k = 5;
        let delays = vec![0; k];
        let outcome = run_protocol(
            &g,
            |v, gr: &Graph| {
                let instances: Vec<Flood> = (0..k).map(|i| Flood::new(i as Node, v)).collect();
                Multiplexed::new(instances, &delays, gr.degree(v))
            },
            EngineConfig::default(),
        )
        .unwrap();
        for (flags, _) in &outcome.outputs {
            assert!(flags.iter().all(|&x| x));
        }
        // The real guarantee: the engine never saw two messages on one
        // edge-direction in one round (engine would have panicked), and the
        // total rounds exceed a single flood's (queuing happened).
        assert!(outcome.stats.rounds >= 3);
    }

    #[test]
    fn random_delays_in_range_and_deterministic() {
        let d1 = random_delays(10, 7, 1);
        let d2 = random_delays(10, 7, 1);
        assert_eq!(d1, d2);
        assert!(d1.iter().all(|&d| d <= 7));
        assert_eq!(random_delays(3, 0, 5), vec![0, 0, 0]);
    }
}
