//! Random-delay scheduling of many protocols over one network.
//!
//! Paper Theorem 12 (Ghaffari \[Gha15b\]): any collection of distributed
//! algorithms with given *congestion* (max messages per edge, summed over
//! all algorithms) and *dilation* (max individual round complexity) can be
//! executed together in `O(congestion + dilation·log² n)` rounds w.h.p.,
//! by starting each algorithm at a random delay and letting edges serve
//! queued messages one per round.
//!
//! [`Multiplexed`] implements exactly that: each node hosts one instance
//! of each sub-protocol; outgoing messages are tagged with their algorithm
//! index and queued per port (FIFO); each real round, every port transmits
//! at most one queued message — preserving the global CONGEST discipline.
//!
//! ## Two-tier packed port queues
//!
//! The port FIFOs are **two-tier fixed-capacity rings** ([`PortRings`]):
//! a 4-slot **inline head** carved per-port from one `u128` slab (one
//! cache line per port) plus a shared **spill arena** whose per-port
//! blocks are claimed by a cursor bump the first time a port overflows.
//! The logical capacity is the caller's per-edge congestion bound —
//! exactly the quantity Theorem 12 is parameterized by (for `k` one-shot
//! broadcasts, `k`; for a shared tree packing, the packing's congestion ×
//! messages per tree). Push and pop are index arithmetic, spill claims
//! are cursor bumps into the pre-sized arena, so a multiplexed node
//! performs **zero heap allocation per round**: the multiplexer is
//! engine-hostable on the hot path, composable with the fault adversary,
//! and covered by `tests/zero_alloc.rs` like any other protocol. Ports
//! that stay at depth ≤ 4 never touch the arena, so at large
//! `n × capacity` the resident footprint is one line per port, not the
//! whole slab. Exceeding the declared capacity panics with the observed
//! port — an honest signal that the congestion bound fed to the scheduler
//! was wrong. (The PR 1 `VecDeque`-queue multiplexer survives as
//! [`crate::pr1::Pr1Multiplexed`] and the PR 2 single-tier ring
//! multiplexer as [`crate::pr2::Pr2Multiplexed`] — the bench comparison
//! arms.)
//!
//! Sub-protocols run against node-local **packed** buffers (the same word
//! slab + occupancy bitset shape the engine uses, via
//! [`crate::protocol`]'s host mode), so a multiplexed protocol pays the
//! packed encoding exactly once per hop. Sub-protocols that declared
//! `done` are only re-stepped when a message arrives for them. This leans
//! on the **message-driven contract below** (which this multiplexer
//! already demands for delay tolerance): a done sub may only resume
//! because traffic arrived, never by counting rounds — under that
//! contract, skipping a done sub's idle rounds changes nothing observable
//! while making quiescent algorithms free. (The plain engine, by
//! contrast, steps done nodes every round; round-counting wake-ups are
//! legal solo but out of contract under the scheduler.)
//!
//! **Delay tolerance.** Under queuing, a sub-protocol's messages may
//! arrive in later virtual rounds than in a solo run. Sub-protocols must
//! therefore be *message-driven* (progress when messages arrive, rather
//! than count on round-exact delivery). All tree broadcast/convergecast
//! protocols in `congest-core` satisfy this. The paper's own use (proof of
//! Theorem 13) runs Lemma 1 pipelined broadcasts, which are message-driven
//! too.

use crate::message::{low_mask, MsgBits, MsgWord, PackedMsg};
use crate::protocol::{InSlot, NodeCtx, OutSlot, Protocol};
use crate::rng::mix64;
use crate::slab;

/// A message tagged with the index of the sub-algorithm it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tagged<M> {
    pub algo: u32,
    pub msg: M,
}

impl<M: MsgBits> MsgBits for Tagged<M> {
    fn bits(&self) -> usize {
        // The tag addresses one of the multiplexed algorithms; 16 bits is a
        // generous constant for any experiment here.
        16 + self.msg.bits()
    }
}

/// The tag rides in the 16 bits above the inner encoding. The combined
/// width must fit a `u128` word — enforced at compile time (a
/// post-monomorphization error when `M::WIDTH > 112`).
impl<M: PackedMsg> PackedMsg for Tagged<M> {
    type Word = u128;
    const WIDTH: u32 = {
        assert!(M::WIDTH + 16 <= 128, "tagged message exceeds 128 bits");
        16 + M::WIDTH
    };
    #[inline]
    fn pack(self) -> u128 {
        let _guard = Self::WIDTH;
        debug_assert!(self.algo < 1 << 16);
        self.msg.pack().to_u128() | ((self.algo as u128) << M::WIDTH)
    }
    #[inline]
    fn unpack(word: u128) -> Self {
        let _guard = Self::WIDTH;
        Tagged {
            algo: (word >> M::WIDTH) as u32 & 0xFFFF,
            msg: M::unpack(MsgWord::from_u128(word & low_mask(M::WIDTH))),
        }
    }
}

/// Inline slots per port in the two-tier ring: 4 × `u128` = exactly one
/// 64-byte cache line, so a hot port's whole working set is one line.
pub const INLINE_CAP: u32 = 4;

/// One port's inline tier, forced to cache-line alignment so the
/// "one line per port" layout holds regardless of where the allocator
/// puts the slab (a plain `Vec<u128>` is only 16-byte aligned and could
/// make every port straddle two lines).
#[repr(align(64))]
#[derive(Clone, Copy)]
struct InlineLine([u128; INLINE_CAP as usize]);

/// Sentinel for "this port never overflowed its inline tier".
const SPILL_UNCLAIMED: u32 = u32::MAX;

/// Per-port **two-tier FIFO queues**: a small inline head carved per-port
/// from one `u128` slab, plus a shared **spill arena** claimed on
/// overflow.
///
/// * **Inline tier** — the front [`INLINE_CAP`] (= 4) elements of every
///   port's queue live in `inline[p·4..(p+1)·4]`: one cache line per
///   port, so ports whose depth never exceeds 4 (the common case — a
///   well-scheduled Theorem-12 execution drains one message per round)
///   touch nothing else. Pops always read the inline head.
/// * **Spill tier** — elements beyond the inline head live in a per-port
///   block of the shared arena, claimed by a cursor bump the first time
///   the port overflows and kept for the queue's lifetime. The arena is
///   pre-sized for the worst case (`degree` blocks), so a claim is never
///   a heap allocation — but blocks of never-overflowing ports are never
///   *touched*, so at large `n × capacity` the resident footprint is one
///   cache line per port plus the genuinely hot blocks, not the whole
///   `degree × capacity` slab the single-tier layout swept cold.
///
/// Every pop refills the vacated inline slot from the spill front, so
/// FIFO order holds across the tiers and pops stay O(1) with at most one
/// arena read. A word-packed nonempty bitset over ports lets the
/// serve-one-per-port scan skip idle ports wholesale.
///
/// The logical capacity is **exactly the declared bound**: exceeding it
/// panics with the observed port — an honest signal that the congestion
/// bound fed to the scheduler (Theorem 12's parameter) was wrong — even
/// when the physical tiers (the fixed inline line, the spill block
/// rounded to a power of two so ring wrap-around is a mask, never a
/// division) could have absorbed more.
pub struct PortRings {
    /// Inline tier: one cache-line-aligned block of `INLINE_CAP` slots
    /// per port.
    inline: Vec<InlineLine>,
    /// Spill arena: `spill_cap` slots per block, `degree` blocks.
    arena: Vec<u128>,
    /// Per-port claimed arena block base (`SPILL_UNCLAIMED` until the
    /// port first overflows).
    spill_base: Vec<u32>,
    /// Next unclaimed arena slot.
    arena_next: u32,
    /// Inline ring head per port (index of the oldest queued word,
    /// modulo `INLINE_CAP`).
    head: Vec<u8>,
    /// Spill ring head per port (modulo `spill_cap`).
    spill_head: Vec<u32>,
    /// Queue length per port (both tiers).
    len: Vec<u32>,
    /// Spill block size (power of two, or 0 when the requested capacity
    /// fits the inline tier). Physical: may exceed the logical bound.
    spill_cap: u32,
    /// Logical capacity per port — the declared Theorem-12 bound.
    cap: u32,
    /// Word-packed bitset of ports with a nonempty queue.
    nonempty: Vec<u64>,
    /// Total queued words across all ports (O(1) emptiness check).
    queued: usize,
    /// Peak per-port queue length observed (scheduling-quality metric).
    peak: usize,
}

impl PortRings {
    /// Build queues for `degree` ports, each with logical capacity
    /// exactly `cap` (the per-edge congestion bound of the multiplexed
    /// collection).
    pub fn new(degree: usize, cap: usize) -> Self {
        let cap = cap.max(1) as u32;
        let spill_cap =
            cap.saturating_sub(INLINE_CAP).next_power_of_two() * u32::from(cap > INLINE_CAP);
        PortRings {
            inline: vec![InlineLine([0; INLINE_CAP as usize]); degree],
            arena: vec![0; degree * spill_cap as usize],
            spill_base: vec![SPILL_UNCLAIMED; degree],
            arena_next: 0,
            head: vec![0; degree],
            spill_head: vec![0; degree],
            len: vec![0; degree],
            spill_cap,
            cap,
            nonempty: vec![0; crate::slab::words_for(degree)],
            queued: 0,
            peak: 0,
        }
    }

    /// Logical capacity per port — the declared bound, exactly.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap as usize
    }

    /// Queued words across all ports.
    #[inline]
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Queue length of one port.
    #[inline]
    pub fn len(&self, port: usize) -> usize {
        self.len[port] as usize
    }

    /// Peak per-port queue length observed so far.
    #[inline]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Number of ports that have claimed a spill block.
    pub fn spilled_ports(&self) -> usize {
        self.spill_base
            .iter()
            .filter(|&&b| b != SPILL_UNCLAIMED)
            .count()
    }

    /// Append `word` to `port`'s queue. Panics past the capacity bound.
    #[inline]
    pub fn push(&mut self, port: usize, word: u128) {
        let len = self.len[port];
        assert!(
            len < self.cap,
            "multiplexer ring overflow on port {port}: capacity {} exhausted — \
             the queue capacity must be at least the per-edge congestion bound \
             (Theorem 12) of the multiplexed collection",
            self.cap
        );
        if len < INLINE_CAP {
            let slot = (self.head[port] as u32 + len) & (INLINE_CAP - 1);
            self.inline[port].0[slot as usize] = word;
            if len == 0 {
                self.nonempty[port >> 6] |= 1u64 << (port & 63);
            }
        } else {
            // Overflow: claim this port's spill block on first use (a
            // cursor bump into the pre-sized arena — never a heap
            // allocation) and append at the spill tail.
            let base = if self.spill_base[port] == SPILL_UNCLAIMED {
                let base = self.arena_next;
                self.spill_base[port] = base;
                self.arena_next += self.spill_cap;
                base
            } else {
                self.spill_base[port]
            };
            let slot = (self.spill_head[port] + (len - INLINE_CAP)) & (self.spill_cap - 1);
            self.arena[(base + slot) as usize] = word;
        }
        self.len[port] = len + 1;
        self.queued += 1;
        if (len + 1) as usize > self.peak {
            self.peak = (len + 1) as usize;
        }
    }

    /// Pop the oldest word queued on `port`.
    #[inline]
    pub fn pop(&mut self, port: usize) -> Option<u128> {
        let len = self.len[port];
        if len == 0 {
            return None;
        }
        let h = self.head[port] as u32;
        let word = self.inline[port].0[h as usize];
        if len > INLINE_CAP {
            // Keep the inline tier the queue's front window: the vacated
            // slot (which becomes the new inline tail position) takes the
            // spill front. FIFO order across tiers is preserved.
            let sh = self.spill_head[port];
            self.inline[port].0[h as usize] = self.arena[(self.spill_base[port] + sh) as usize];
            self.spill_head[port] = (sh + 1) & (self.spill_cap - 1);
        }
        self.head[port] = ((h + 1) & (INLINE_CAP - 1)) as u8;
        self.len[port] = len - 1;
        self.queued -= 1;
        if len == 1 {
            self.nonempty[port >> 6] &= !(1u64 << (port & 63));
        }
        Some(word)
    }

    /// Pop one word from every nonempty port, ascending by port — the
    /// Theorem-12 "each edge serves one queued message per round" step.
    /// Idle ports cost nothing: the scan walks the nonempty bitset words,
    /// so a quiescent multiplexer pays a few word loads regardless of
    /// degree.
    #[inline]
    pub fn serve(&mut self, mut f: impl FnMut(usize, u128)) {
        if self.queued == 0 {
            return;
        }
        for wi in 0..self.nonempty.len() {
            let mut bits = self.nonempty[wi];
            while bits != 0 {
                let p = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let word = self.pop(p).expect("nonempty bit implies a queued word");
                f(p, word);
            }
        }
    }
}

/// One hosted sub-protocol: its state plus node-local packed buffers in
/// the engine's slab shape (port-indexed words + occupancy bits).
struct Sub<P: Protocol> {
    proto: P,
    delay: u64,
    virtual_round: u64,
    done: bool,
    /// A message arrived for this sub this round (re-steps a done sub).
    woke: bool,
    in_words: Vec<<P::Msg as PackedMsg>::Word>,
    in_occ: Vec<u64>,
    out_words: Vec<<P::Msg as PackedMsg>::Word>,
    out_occ: Vec<u64>,
}

/// One node's multiplexer hosting `k` sub-protocol instances over packed
/// ring-buffer port queues.
pub struct Multiplexed<P: Protocol> {
    subs: Vec<Sub<P>>,
    rings: PortRings,
}

impl<P: Protocol> Multiplexed<P> {
    /// Build a node multiplexer from per-algorithm instances and their
    /// (globally agreed) start delays. `degree` is this node's degree;
    /// `queue_capacity` bounds each port's FIFO and must be at least the
    /// per-edge congestion of the multiplexed collection — the exact
    /// quantity Theorem 12's `O(congestion + dilation·log² n)` bound is
    /// stated in terms of (`k` suffices for `k` one-shot floods; a shared
    /// tree packing needs congestion × messages per tree).
    pub fn new(instances: Vec<P>, delays: &[u64], degree: usize, queue_capacity: usize) -> Self {
        assert_eq!(instances.len(), delays.len());
        let subs = instances
            .into_iter()
            .zip(delays.iter())
            .map(|(proto, &delay)| Sub {
                proto,
                delay,
                virtual_round: 0,
                done: false,
                woke: false,
                in_words: vec![Default::default(); degree],
                in_occ: vec![0; slab::words_for(degree)],
                out_words: vec![Default::default(); degree],
                out_occ: vec![0; slab::words_for(degree)],
            })
            .collect();
        Multiplexed {
            subs,
            rings: PortRings::new(degree, queue_capacity),
        }
    }
}

impl<P: Protocol> Protocol for Multiplexed<P> {
    type Msg = Tagged<P::Msg>;
    type Output = (Vec<P::Output>, usize);

    fn round(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>) {
        let graph = ctx.graph();
        // 1. Distribute arrivals to sub-inboxes (and wake their subs).
        for (p, t) in ctx.inbox() {
            let sub = &mut self.subs[t.algo as usize];
            debug_assert!(!slab::test(&sub.in_occ, p as usize));
            slab::set(&mut sub.in_occ, p as usize);
            sub.in_words[p as usize] = t.msg.pack();
            sub.woke = true;
        }
        // 2. Step every sub-protocol whose delay has elapsed and that can
        // still make progress (not yet done, or woken by an arrival),
        // against its node-local packed buffers.
        for (i, sub) in self.subs.iter_mut().enumerate() {
            if ctx.round < sub.delay || (sub.done && !sub.woke) {
                continue;
            }
            sub.woke = false;
            {
                let mut sub_ctx = NodeCtx {
                    node: ctx.node,
                    round: sub.virtual_round,
                    inbox: InSlot {
                        words: &sub.in_words,
                        occ: &sub.in_occ,
                        bit0: 0,
                        bcast: None,
                    },
                    outbox: OutSlot::Local {
                        words: &mut sub.out_words,
                        occ: &mut sub.out_occ,
                        graph,
                    },
                    bcast_staged: false,
                    rng: ctx.rng,
                    done: &mut sub.done,
                    max_bits: ctx.max_bits,
                };
                sub.proto.round(&mut sub_ctx);
            }
            sub.virtual_round += 1;
            // Queue this sub's sends: walk the occupancy words so quiet
            // ports cost one word load, not one bit test each.
            for (wi, occ_word) in sub.out_occ.iter_mut().enumerate() {
                let mut bits = *occ_word;
                *occ_word = 0;
                while bits != 0 {
                    let p = wi * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let tagged = Tagged {
                        algo: i as u32,
                        msg: P::Msg::unpack(sub.out_words[p]),
                    };
                    self.rings.push(p, tagged.pack());
                }
            }
            slab::clear_all(&mut sub.in_occ);
        }
        // 3. Serve one queued message per port (nonempty ports only — the
        // bitset scan makes idle ports free).
        let rings = &mut self.rings;
        rings.serve(|p, word| ctx.send(p as u32, Tagged::unpack(word)));
        // 4. Done when all subs are done and no message waits.
        let all_done = self.subs.iter().all(|s| s.done);
        ctx.set_done(all_done && self.rings.queued() == 0);
    }

    fn finish(self) -> Self::Output {
        (
            self.subs.into_iter().map(|s| s.proto.finish()).collect(),
            self.rings.peak(),
        )
    }
}

/// Globally agreed random delays for `k` algorithms, uniform in
/// `[0, max_delay]`, derived from a seed (all nodes must use the same
/// values — in CONGEST this is shared randomness or one O(D)-round
/// agreement; the paper treats it as given).
pub fn random_delays(k: usize, max_delay: u64, seed: u64) -> Vec<u64> {
    (0..k)
        .map(|i| {
            if max_delay == 0 {
                0
            } else {
                mix64(seed ^ mix64(i as u64)) % (max_delay + 1)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_protocol, EngineConfig};
    use congest_graph::generators::cycle;
    use congest_graph::{Graph, Node};

    /// Message-driven flood from a designated source (tolerates delays).
    struct Flood {
        informed: bool,
        relayed: bool,
    }
    impl Flood {
        fn new(source: Node, me: Node) -> Self {
            Flood {
                informed: source == me,
                relayed: false,
            }
        }
    }
    impl Protocol for Flood {
        type Msg = ();
        type Output = bool;
        fn round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
            if ctx.inbox_len() > 0 {
                self.informed = true;
            }
            if self.informed && !self.relayed {
                ctx.send_all(());
                self.relayed = true;
            }
            ctx.set_done(self.relayed);
        }
        fn finish(self) -> bool {
            self.informed
        }
    }

    #[test]
    fn tagged_packing_roundtrips() {
        let t = Tagged {
            algo: 0xBEEF & 0xFFFF,
            msg: 0xDEAD_CAFEu32,
        };
        assert_eq!(Tagged::<u32>::unpack(t.pack()), t);
        assert_eq!(Tagged::<u32>::WIDTH, 48);
    }

    #[test]
    fn rings_fifo_per_port() {
        let mut rings = PortRings::new(3, 2);
        rings.push(0, 10);
        rings.push(0, 11);
        rings.push(2, 30);
        assert_eq!(rings.queued(), 3);
        assert_eq!(rings.peak(), 2);
        assert_eq!(rings.pop(0), Some(10));
        rings.push(0, 12); // wraps around the inline ring
        assert_eq!(rings.pop(0), Some(11));
        assert_eq!(rings.pop(0), Some(12));
        assert_eq!(rings.pop(0), None);
        assert_eq!(rings.pop(1), None);
        assert_eq!(rings.pop(2), Some(30));
        assert_eq!(rings.queued(), 0);
        assert_eq!(rings.spilled_ports(), 0, "depth ≤ inline ⇒ no claims");
    }

    #[test]
    fn rings_spill_preserves_fifo_across_tiers() {
        let mut rings = PortRings::new(2, 12);
        for i in 0..12u128 {
            rings.push(1, 100 + i);
        }
        assert_eq!(rings.spilled_ports(), 1, "only the hot port claims");
        assert_eq!(rings.peak(), 12);
        // Interleave pops and pushes across the spill boundary.
        for i in 0..6u128 {
            assert_eq!(rings.pop(1), Some(100 + i));
            rings.push(1, 200 + i);
        }
        for i in 6..12u128 {
            assert_eq!(rings.pop(1), Some(100 + i));
        }
        for i in 0..6u128 {
            assert_eq!(rings.pop(1), Some(200 + i));
        }
        assert_eq!(rings.pop(1), None);
        assert_eq!(rings.queued(), 0);
    }

    #[test]
    fn rings_serve_pops_one_per_nonempty_port_ascending() {
        let mut rings = PortRings::new(70, 3);
        for p in [0usize, 3, 64, 69] {
            rings.push(p, p as u128);
            rings.push(p, 1000 + p as u128);
        }
        let mut seen = Vec::new();
        rings.serve(|p, w| seen.push((p, w)));
        assert_eq!(seen, vec![(0, 0), (3, 3), (64, 64), (69, 69)]);
        assert_eq!(rings.queued(), 4);
        let mut seen = Vec::new();
        rings.serve(|p, w| seen.push((p, w)));
        assert_eq!(seen.len(), 4);
        assert!(seen.iter().all(|&(p, w)| w == 1000 + p as u128));
        assert_eq!(rings.queued(), 0);
        rings.serve(|_, _| panic!("empty rings serve nothing"));
    }

    #[test]
    #[should_panic(expected = "ring overflow")]
    fn ring_overflow_panics_with_congestion_hint() {
        let mut rings = PortRings::new(1, 2);
        for i in 0..=rings.capacity() as u128 {
            rings.push(0, i);
        }
    }

    #[test]
    fn multiplexed_floods_all_complete() {
        let g = cycle(8);
        let k = 4;
        let delays = random_delays(k, 6, 99);
        let outcome = run_protocol(
            &g,
            |v, gr: &Graph| {
                let instances: Vec<Flood> = (0..k).map(|i| Flood::new(i as Node, v)).collect();
                Multiplexed::new(instances, &delays, gr.degree(v), k)
            },
            EngineConfig::default(),
        )
        .unwrap();
        // Every node must end up informed in every sub-flood.
        for (v, (flags, _)) in outcome.outputs.iter().enumerate() {
            for (i, &informed) in flags.iter().enumerate() {
                assert!(informed, "node {v} missed flood {i}");
            }
        }
    }

    #[test]
    fn queues_enforce_one_message_per_edge_round() {
        // With k simultaneous floods and zero delays, an edge can carry at
        // most `rounds` messages per direction; the run must still finish.
        let g = cycle(6);
        let k = 5;
        let delays = vec![0; k];
        let outcome = run_protocol(
            &g,
            |v, gr: &Graph| {
                let instances: Vec<Flood> = (0..k).map(|i| Flood::new(i as Node, v)).collect();
                Multiplexed::new(instances, &delays, gr.degree(v), k)
            },
            EngineConfig::default(),
        )
        .unwrap();
        for (flags, _) in &outcome.outputs {
            assert!(flags.iter().all(|&x| x));
        }
        // The real guarantee: the engine never saw two messages on one
        // edge-direction in one round (engine would have panicked), and the
        // total rounds exceed a single flood's (queuing happened).
        assert!(outcome.stats.rounds >= 3);
    }

    #[test]
    fn multiplexed_survives_faults_like_any_protocol() {
        // Ring-hosted scheduling composes with the fault adversary: a
        // light adversary delays but cannot stop re-flooding subs.
        use crate::fault::FaultPlan;
        struct Stubborn {
            informed: bool,
        }
        impl Protocol for Stubborn {
            type Msg = ();
            type Output = bool;
            fn round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
                if ctx.round == 0 && ctx.node == 0 {
                    self.informed = true;
                }
                if ctx.inbox_len() > 0 {
                    self.informed = true;
                }
                if self.informed && ctx.round < 30 {
                    for p in 0..ctx.degree() as u32 {
                        if !ctx.port_used(p) {
                            ctx.send(p, ());
                        }
                    }
                }
                ctx.set_done(ctx.round >= 30);
            }
            fn finish(self) -> bool {
                self.informed
            }
        }
        let g = cycle(8);
        let k = 2;
        let delays = vec![0, 1];
        let outcome = run_protocol(
            &g,
            |_, gr: &Graph| {
                let instances: Vec<Stubborn> =
                    (0..k).map(|_| Stubborn { informed: false }).collect();
                Multiplexed::new(instances, &delays, gr.degree(0), 64)
            },
            EngineConfig::default()
                .max_rounds(500)
                .with_faults(FaultPlan::new(1, 11)),
        )
        .unwrap();
        assert!(outcome.stats.dropped_messages > 0, "adversary acted");
        for (flags, _) in &outcome.outputs {
            assert!(
                flags.iter().all(|&x| x),
                "floods must survive the adversary"
            );
        }
    }

    #[test]
    fn random_delays_in_range_and_deterministic() {
        let d1 = random_delays(10, 7, 1);
        let d2 = random_delays(10, 7, 1);
        assert_eq!(d1, d2);
        assert!(d1.iter().all(|&d| d <= 7));
        assert_eq!(random_delays(3, 0, 5), vec![0, 0, 0]);
    }
}
