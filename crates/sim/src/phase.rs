//! Sequential phase composition.
//!
//! The paper's algorithms are sums of phases (Theorem 1's proof literally
//! adds `O(D)` numbering + partition + per-subgraph BFS + pipelined
//! routing). [`PhaseLog`] records each phase's [`RunStats`] under a name
//! and exposes the composed totals, so experiment tables can show both the
//! total and the per-phase breakdown.
//!
//! A phase may additionally carry the engine's post-phase
//! [`crate::Session::state_hash`] ([`PhaseLog::record_hashed`]): eight
//! bytes per phase that let two hosts running the same composition diff
//! their logs and name the first phase where they diverged, without
//! shipping any buffer contents (see [`crate::snapshot`]).

use crate::engine::RunStats;

/// An ordered log of named phases and their costs.
#[derive(Debug, Clone, Default)]
pub struct PhaseLog {
    /// `(name, stats, post-phase state hash if recorded)`.
    entries: Vec<(String, RunStats, Option<u64>)>,
}

impl PhaseLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed phase.
    pub fn record(&mut self, name: impl Into<String>, stats: RunStats) {
        self.entries.push((name.into(), stats, None));
    }

    /// Record a completed phase together with the engine's post-phase
    /// state hash (the checkpoint signal — see [`crate::snapshot`]).
    pub fn record_hashed(&mut self, name: impl Into<String>, stats: RunStats, hash: u64) {
        self.entries.push((name.into(), stats, Some(hash)));
    }

    /// Iterate `(name, stats)` in execution order.
    pub fn phases(&self) -> impl Iterator<Item = (&str, &RunStats)> {
        self.entries.iter().map(|(n, s, _)| (n.as_str(), s))
    }

    /// Iterate `(name, state hash)` in execution order; `None` for
    /// phases recorded without a hash.
    pub fn hashes(&self) -> impl Iterator<Item = (&str, Option<u64>)> + '_ {
        self.entries.iter().map(|(n, _, h)| (n.as_str(), *h))
    }

    /// Post-phase state hash of a specific named phase (first match),
    /// when one was recorded.
    pub fn hash_of(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(n, _, _)| n == name)
            .and_then(|(_, _, h)| *h)
    }

    /// Number of recorded phases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total cost of the sequential composition.
    pub fn total(&self) -> RunStats {
        self.entries
            .iter()
            .fold(RunStats::default(), |acc, (_, s, _)| acc.then(*s))
    }

    /// Total rounds across phases — the headline number.
    pub fn total_rounds(&self) -> u64 {
        self.entries.iter().map(|(_, s, _)| s.rounds).sum()
    }

    /// Rounds of a specific named phase (first match).
    pub fn rounds_of(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, s, _)| s.rounds)
    }

    /// Human-readable multi-line breakdown.
    pub fn breakdown(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (name, st, _) in &self.entries {
            let _ = writeln!(
                s,
                "  {name:<28} {:>8} rounds  {:>10} msgs  congestion {:>6}",
                st.rounds, st.total_messages, st.max_edge_congestion
            );
        }
        let t = self.total();
        let _ = writeln!(
            s,
            "  {:<28} {:>8} rounds  {:>10} msgs  congestion {:>6}",
            "TOTAL", t.rounds, t.total_messages, t.max_edge_congestion
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(rounds: u64, msgs: u64) -> RunStats {
        RunStats {
            rounds,
            iterations: rounds,
            total_messages: msgs,
            max_edge_congestion: msgs.min(5),
            max_message_bits: 32,
            dropped_messages: 0,
        }
    }

    #[test]
    fn totals_accumulate() {
        let mut log = PhaseLog::new();
        log.record("bfs", stats(7, 100));
        log.record("broadcast", stats(20, 400));
        assert_eq!(log.total_rounds(), 27);
        assert_eq!(log.total().total_messages, 500);
        assert_eq!(log.rounds_of("bfs"), Some(7));
        assert_eq!(log.rounds_of("nope"), None);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn breakdown_mentions_each_phase() {
        let mut log = PhaseLog::new();
        log.record("alpha", stats(1, 2));
        log.record("beta", stats(3, 4));
        let text = log.breakdown();
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
        assert!(text.contains("TOTAL"));
    }

    #[test]
    fn empty_log() {
        let log = PhaseLog::new();
        assert!(log.is_empty());
        assert_eq!(log.total_rounds(), 0);
    }
}
