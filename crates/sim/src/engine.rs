//! The synchronous round engine.
//!
//! Data layout (perf-guide idioms): inboxes and outboxes are **flat,
//! arc-indexed slabs** — arc `i` is position `i` in the graph's flattened
//! adjacency, so node `v`'s ports occupy the contiguous range
//! `arc_offset(v)..arc_offset(v)+deg(v)`. Delivery is a parallel permute
//! through the precomputed reverse-arc table: `inbox[arc] =
//! outbox[reverse(arc)]`. No allocation happens inside the round loop.
//!
//! Determinism: node stepping writes only node-owned slices; delivery
//! writes each inbox slot from exactly one outbox slot; metrics are
//! associative reductions. Any rayon thread count produces identical
//! results.

use crate::protocol::{NodeCtx, Protocol};
use crate::rng::node_rng;
use congest_graph::{Graph, Node};
use rand::rngs::SmallRng;
use rayon::prelude::*;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Seed from which all per-node RNGs derive.
    pub seed: u64,
    /// Hard stop: error out if the protocol has not terminated by then.
    pub max_rounds: u64,
    /// Step nodes in parallel with rayon (results are identical either
    /// way; serial mode exists for debugging and for tests that must
    /// observe panics deterministically).
    pub parallel: bool,
    /// Record per-round traffic (messages delivered per round) — the
    /// "traffic profile" figures of the experiment harness.
    pub collect_trace: bool,
    /// Optional mobile edge adversary (paper §1.2 / \[FP23\] model; see
    /// [`crate::fault::FaultPlan`]).
    pub faults: Option<crate::fault::FaultPlan>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0x5EED_CAFE,
            max_rounds: 1_000_000,
            parallel: true,
            collect_trace: false,
            faults: None,
        }
    }
}

impl EngineConfig {
    pub fn with_seed(seed: u64) -> Self {
        EngineConfig {
            seed,
            ..Default::default()
        }
    }

    pub fn serial() -> Self {
        EngineConfig {
            parallel: false,
            ..Default::default()
        }
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    pub fn trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }

    pub fn with_faults(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// What the run cost — the quantities the paper's theorems bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Number of CONGEST rounds until the last message was delivered.
    pub rounds: u64,
    /// Engine iterations executed (≥ rounds; trailing silent iterations
    /// in which nodes only finished local computation are not "rounds").
    pub iterations: u64,
    /// Total messages delivered over the whole run.
    pub total_messages: u64,
    /// Max messages crossing any single undirected edge (both directions
    /// summed) — the paper's "congestion".
    pub max_edge_congestion: u64,
    /// Largest single message observed, in bits (see [`crate::MsgBits`]).
    pub max_message_bits: usize,
    /// Messages destroyed by the fault adversary (0 without faults).
    pub dropped_messages: u64,
}

impl RunStats {
    /// Combine sequentially-composed phases: rounds add, congestion adds
    /// (worst case: the same edge is hot in both phases), bits take max.
    pub fn then(self, later: RunStats) -> RunStats {
        RunStats {
            rounds: self.rounds + later.rounds,
            iterations: self.iterations + later.iterations,
            total_messages: self.total_messages + later.total_messages,
            max_edge_congestion: self.max_edge_congestion + later.max_edge_congestion,
            max_message_bits: self.max_message_bits.max(later.max_message_bits),
            dropped_messages: self.dropped_messages + later.dropped_messages,
        }
    }
}

/// A completed run: per-node outputs (indexed by node id) plus costs.
#[derive(Debug, Clone)]
pub struct RunOutcome<O> {
    pub outputs: Vec<O>,
    pub stats: RunStats,
    /// Messages delivered per round, when
    /// [`EngineConfig::collect_trace`] was set.
    pub trace: Option<Vec<u64>>,
}

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `max_rounds` elapsed without global termination — either the
    /// protocol deadlocked or the budget was too small.
    RoundLimitExceeded { limit: u64 },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::RoundLimitExceeded { limit } => {
                write!(f, "protocol did not terminate within {limit} rounds")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Run one protocol instance per node until global termination (all nodes
/// done and no message in flight) or the round limit.
pub fn run_protocol<P, F>(
    graph: &Graph,
    mut factory: F,
    config: EngineConfig,
) -> Result<RunOutcome<P::Output>, EngineError>
where
    P: Protocol,
    F: FnMut(Node, &Graph) -> P,
{
    let n = graph.n();
    let arcs = graph.num_arcs();
    let mut states: Vec<P> = (0..n as Node).map(|v| factory(v, graph)).collect();
    let mut rngs: Vec<SmallRng> = (0..n as Node).map(|v| node_rng(config.seed, v)).collect();
    let mut done: Vec<bool> = vec![false; n];

    let mut inbox: Vec<Option<P::Msg>> = (0..arcs).map(|_| None).collect();
    let mut outbox: Vec<Option<P::Msg>> = (0..arcs).map(|_| None).collect();
    // Per-arc delivery counters for congestion accounting.
    let mut arc_traffic: Vec<u64> = vec![0; arcs];

    let mut stats = RunStats::default();
    let mut trace: Option<Vec<u64>> = config.collect_trace.then(Vec::new);
    let mut round: u64 = 0;
    loop {
        if round >= config.max_rounds {
            return Err(EngineError::RoundLimitExceeded {
                limit: config.max_rounds,
            });
        }
        // --- Step phase: every node reads its inbox, writes its outbox.
        step_all(
            graph,
            &mut states,
            &mut rngs,
            &mut done,
            &inbox,
            &mut outbox,
            round,
            config.parallel,
        );
        // --- Adversary phase: destroy messages on blocked edges.
        let dropped = match &config.faults {
            Some(plan) if plan.edges_per_round > 0 => {
                let mask = plan.blocked_mask(round, graph.m());
                apply_faults(graph, &mut outbox, &mask)
            }
            _ => 0,
        };
        stats.dropped_messages += dropped;
        // --- Delivery phase: permute outboxes into inboxes via reverse arcs.
        let (delivered, max_bits) = deliver(graph, &outbox, &mut inbox, &mut arc_traffic, config.parallel);
        stats.total_messages += delivered;
        stats.max_message_bits = stats.max_message_bits.max(max_bits);
        if let Some(t) = &mut trace {
            t.push(delivered);
        }
        // Clear outboxes for the next round.
        if config.parallel {
            outbox.par_iter_mut().for_each(|s| *s = None);
        } else {
            outbox.iter_mut().for_each(|s| *s = None);
        }
        round += 1;
        if delivered > 0 {
            stats.rounds = round;
        }
        if delivered == 0 && done.iter().all(|&d| d) {
            stats.iterations = round;
            break;
        }
    }
    if let Some(t) = &mut trace {
        t.truncate(stats.rounds as usize);
    }

    // Fold per-arc traffic into per-edge congestion.
    let mut per_edge: Vec<u64> = vec![0; graph.m()];
    for v in 0..n as Node {
        let lo = graph.arc_offset(v);
        for (i, &e) in graph.incident_edges(v).iter().enumerate() {
            per_edge[e as usize] += arc_traffic[lo + i];
        }
    }
    // Each undirected edge's two arcs each counted deliveries *into* one
    // endpoint, so per_edge already sums both directions... but the loop
    // above visits every arc once via its owner node, adding that arc's
    // inbound count; both arcs of an edge map to the same edge id, so the
    // sum is total messages over the edge.
    stats.max_edge_congestion = per_edge.iter().copied().max().unwrap_or(0);

    let outputs: Vec<P::Output> = states.into_iter().map(|s| s.finish()).collect();
    Ok(RunOutcome {
        outputs,
        stats,
        trace,
    })
}

/// Remove every outbox message crossing a blocked edge (both directions).
/// Returns the number of destroyed messages.
fn apply_faults<M>(graph: &Graph, outbox: &mut [Option<M>], blocked: &[bool]) -> u64 {
    let mut dropped = 0u64;
    let mut arc = 0usize;
    for v in 0..graph.n() as Node {
        for &e in graph.incident_edges(v) {
            if blocked[e as usize] && outbox[arc].take().is_some() {
                dropped += 1;
            }
            arc += 1;
        }
    }
    dropped
}

/// Step every node once. Splits the flat outbox into per-node mutable
/// slices, then walks nodes (in parallel when asked).
#[allow(clippy::too_many_arguments)]
fn step_all<P: Protocol>(
    graph: &Graph,
    states: &mut [P],
    rngs: &mut [SmallRng],
    done: &mut [bool],
    inbox: &[Option<P::Msg>],
    outbox: &mut [Option<P::Msg>],
    round: u64,
    parallel: bool,
) {
    let n = graph.n();
    // Split outbox into per-node slices (sequential O(n) bookkeeping).
    let mut out_slices: Vec<&mut [Option<P::Msg>]> = Vec::with_capacity(n);
    {
        let mut rest = outbox;
        for v in 0..n as Node {
            let deg = graph.degree(v);
            let (head, tail) = rest.split_at_mut(deg);
            out_slices.push(head);
            rest = tail;
        }
    }
    let run_node = |v: usize, state: &mut P, out: &mut [Option<P::Msg>], rng: &mut SmallRng, dn: &mut bool| {
        let lo = graph.arc_offset(v as Node);
        let deg = graph.degree(v as Node);
        let mut ctx = NodeCtx {
            node: v as Node,
            round,
            graph,
            inbox: &inbox[lo..lo + deg],
            outbox: out,
            rng,
            done: dn,
        };
        state.round(&mut ctx);
    };
    if parallel {
        states
            .par_iter_mut()
            .zip(out_slices.into_par_iter())
            .zip(rngs.par_iter_mut())
            .zip(done.par_iter_mut())
            .enumerate()
            .for_each(|(v, (((state, out), rng), dn))| run_node(v, state, out, rng, dn));
    } else {
        for (v, (((state, out), rng), dn)) in states
            .iter_mut()
            .zip(out_slices)
            .zip(rngs.iter_mut())
            .zip(done.iter_mut())
            .enumerate()
        {
            run_node(v, state, out, rng, dn);
        }
    }
}

/// Deliver all outbox messages: `inbox[arc] = outbox[reverse(arc)]`.
/// Returns `(messages delivered, max message bits seen)`.
fn deliver<M: Clone + Send + Sync + crate::message::MsgBits>(
    graph: &Graph,
    outbox: &[Option<M>],
    inbox: &mut [Option<M>],
    arc_traffic: &mut [u64],
    parallel: bool,
) -> (u64, usize) {
    let body = |arc: usize, slot: &mut Option<M>, traffic: &mut u64| -> (u64, usize) {
        let src = graph.reverse_arc(arc);
        match &outbox[src] {
            Some(msg) => {
                let bits = msg.bits();
                *slot = Some(msg.clone());
                *traffic += 1;
                (1, bits)
            }
            None => {
                *slot = None;
                (0, 0)
            }
        }
    };
    if parallel {
        inbox
            .par_iter_mut()
            .zip(arc_traffic.par_iter_mut())
            .enumerate()
            .map(|(arc, (slot, traffic))| body(arc, slot, traffic))
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1.max(b.1)))
    } else {
        let mut total = 0;
        let mut max_bits = 0;
        for (arc, (slot, traffic)) in inbox.iter_mut().zip(arc_traffic.iter_mut()).enumerate() {
            let (t, b) = body(arc, slot, traffic);
            total += t;
            max_bits = max_bits.max(b);
        }
        (total, max_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{NodeCtx, Protocol};
    use congest_graph::generators::{complete, cycle, path};

    /// Flood a token from node 0; everyone records the round they heard it.
    struct Flood {
        heard_at: Option<u64>,
    }
    impl Protocol for Flood {
        type Msg = ();
        type Output = Option<u64>;
        fn round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
            let start = ctx.round == 0 && ctx.node == 0;
            let got = ctx.inbox_len() > 0;
            if (start || got) && self.heard_at.is_none() {
                self.heard_at = Some(ctx.round);
                ctx.send_all(());
            }
            ctx.set_done(self.heard_at.is_some());
        }
        fn finish(self) -> Option<u64> {
            self.heard_at
        }
    }

    #[test]
    fn flood_takes_eccentricity_rounds() {
        let g = path(6);
        let out = run_protocol(&g, |_, _| Flood { heard_at: None }, EngineConfig::default()).unwrap();
        for v in 0..6 {
            assert_eq!(out.outputs[v], Some(v as u64));
        }
        // Node 5 hears in round 5 after the round-4 send... it still sends
        // once (wasted), so the last delivery is round 6's input = rounds 6.
        assert!(out.stats.rounds >= 5 && out.stats.rounds <= 6);
        assert_eq!(out.stats.max_message_bits, 0);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let g = complete(40);
        let par = run_protocol(&g, |_, _| Flood { heard_at: None }, EngineConfig::default()).unwrap();
        let ser = run_protocol(&g, |_, _| Flood { heard_at: None }, EngineConfig::serial()).unwrap();
        assert_eq!(par.outputs, ser.outputs);
        assert_eq!(par.stats, ser.stats);
    }

    #[test]
    fn round_limit_errors() {
        /// Never terminates: ping-pongs forever.
        struct Chatter;
        impl Protocol for Chatter {
            type Msg = u32;
            type Output = ();
            fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
                ctx.send_all(1);
            }
            fn finish(self) {}
        }
        let g = cycle(4);
        let err = run_protocol(&g, |_, _| Chatter, EngineConfig::default().max_rounds(10)).unwrap_err();
        assert_eq!(err, EngineError::RoundLimitExceeded { limit: 10 });
    }

    #[test]
    fn congestion_counts_both_directions() {
        /// Both endpoints of every edge send every round for 3 rounds.
        struct Pulse;
        impl Protocol for Pulse {
            type Msg = u32;
            type Output = ();
            fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
                if ctx.round < 3 {
                    ctx.send_all(7);
                } else {
                    ctx.set_done(true);
                }
            }
            fn finish(self) {}
        }
        let g = cycle(3);
        let out = run_protocol(&g, |_, _| Pulse, EngineConfig::default()).unwrap();
        // 3 rounds × 2 directions per edge.
        assert_eq!(out.stats.max_edge_congestion, 6);
        assert_eq!(out.stats.total_messages, 3 * 2 * 3);
        assert_eq!(out.stats.max_message_bits, 32);
    }

    #[test]
    fn immediate_termination() {
        struct Mute;
        impl Protocol for Mute {
            type Msg = ();
            type Output = u32;
            fn round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
                ctx.set_done(true);
            }
            fn finish(self) -> u32 {
                99
            }
        }
        let g = cycle(5);
        let out = run_protocol(&g, |_, _| Mute, EngineConfig::default()).unwrap();
        assert_eq!(out.stats.rounds, 0);
        assert!(out.outputs.iter().all(|&o| o == 99));
    }

    #[test]
    fn trace_records_per_round_traffic() {
        let g = path(5);
        let out = run_protocol(
            &g,
            |_, _| Flood { heard_at: None },
            EngineConfig::default().trace(),
        )
        .unwrap();
        let trace = out.trace.unwrap();
        assert_eq!(trace.len() as u64, out.stats.rounds);
        assert_eq!(trace.iter().sum::<u64>(), out.stats.total_messages);
        assert!(trace.iter().all(|&t| t > 0), "trace trimmed to last traffic");
    }

    #[test]
    fn faults_drop_messages_and_are_counted() {
        use crate::fault::FaultPlan;
        // Flood on a path with the single middle edge blocked every round:
        // the far side must never hear it.
        let g = path(4); // edges: (0,1)=0, (1,2)=1, (2,3)=2
        // Block edge 1 every round: plan with m=3; brute-force a seed whose
        // stream always covers edge 1 is fragile — instead block ALL edges
        // via a large budget and verify nothing is ever delivered.
        let out = run_protocol(
            &g,
            |_, _| Flood { heard_at: None },
            EngineConfig::default()
                .max_rounds(50)
                .with_faults(FaultPlan::new(64, 3)),
        );
        // With every edge blocked the flood never leaves node 0; node 0
        // is done (it heard at round 0) but others never hear → engine
        // reaches quiescence only because no message is ever in flight
        // and... nodes 1..3 never set done. Expect the round limit.
        assert!(out.is_err());

        // A *retransmitting* flood survives a light adversary: blocking one
        // edge per round can only delay a wave that is re-sent every round.
        struct StubbornFlood {
            informed: bool,
        }
        impl Protocol for StubbornFlood {
            type Msg = ();
            type Output = bool;
            fn round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
                if ctx.round == 0 && ctx.node == 0 {
                    self.informed = true;
                }
                if ctx.inbox_len() > 0 {
                    self.informed = true;
                }
                if self.informed && ctx.round < 40 {
                    ctx.send_all(());
                }
                ctx.set_done(ctx.round >= 40);
            }
            fn finish(self) -> bool {
                self.informed
            }
        }
        let g = cycle(8);
        let out = run_protocol(
            &g,
            |_, _| StubbornFlood { informed: false },
            EngineConfig::default()
                .max_rounds(200)
                .with_faults(FaultPlan::new(1, 5)),
        )
        .unwrap();
        assert!(out.outputs.iter().all(|&o| o), "stubborn flood must survive");
        assert!(out.stats.dropped_messages > 0, "adversary must have acted");
    }

    #[test]
    fn stats_then_composes() {
        let a = RunStats {
            rounds: 3,
            iterations: 4,
            total_messages: 10,
            max_edge_congestion: 2,
            max_message_bits: 16,
            dropped_messages: 0,
        };
        let b = RunStats {
            rounds: 5,
            iterations: 5,
            total_messages: 1,
            max_edge_congestion: 1,
            max_message_bits: 32,
            dropped_messages: 0,
        };
        let c = a.then(b);
        assert_eq!(c.rounds, 8);
        assert_eq!(c.max_edge_congestion, 3);
        assert_eq!(c.max_message_bits, 32);
    }
}
