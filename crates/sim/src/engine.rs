//! The synchronous round engine: configuration, stats, and the one-phase
//! [`run_protocol`] entry point.
//!
//! The round loop itself lives in [`crate::session`] — a
//! [`crate::Session`] owns all engine state for a whole multi-phase
//! algorithm, and `run_protocol` is a thin wrapper that builds a fresh
//! session per call. The invariants documented here describe that loop.
//!
//! ## Data layout
//!
//! Messages live in **dense arc-indexed slabs** of packed words
//! ([`crate::message::PackedMsg`]): arc `i` is position `i` in the graph's
//! flattened adjacency, so node `v`'s ports occupy the contiguous range
//! `arc_offset(v)..arc_offset(v)+deg(v)`. Presence is a **word-packed
//! occupancy bitset** (one bit per arc) instead of per-slot `Option`
//! discriminants.
//!
//! ## Shard-owned round phases
//!
//! At setup the engine builds a [`congest_graph::ShardPlan`]: contiguous
//! node shards balanced by arc count, each owning a disjoint range of
//! occupancy *words* (64 arcs per word). **Both** phases of a round run as
//! a parallel-for over shards on the `congest-par` pool:
//!
//! * **Step** — shard `s` steps its own nodes; sends are scattered
//!   straight into the *destination* arc slot of the staging slab through
//!   the precomputed `reverse_arc` permutation (a bijection, so every slot
//!   has exactly one writer). The shard also folds its nodes' `done` flags
//!   while they are cache-hot.
//! * **Deliver** — after the staging slab *becomes* the inbox slab (a
//!   buffer swap), shard `s` sweeps its own word range: folds the staging
//!   byte-mask into the inbox occupancy bitset, re-zeroes the mask, counts
//!   deliveries, and meters per-arc congestion into its private region —
//!   no atomics, no sharing.
//!
//! Each shard writes one private `ShardMeter` block; the per-round
//! totals (messages delivered, global termination) are combined with
//! [`congest_par::par_tree_reduce`], an allocation-free fixed-shape tree
//! reduction, so results are bit-identical at every pool width and shard
//! count.
//!
//! ## Bit-sliced congestion metering
//!
//! The default [`MeterMode::BitPlanes`] accumulates per-arc delivery
//! counts in **bit-sliced counters**: six plane words per occupancy word
//! (word-major, one cache line) hold each arc's count in binary; adding a
//! round's delivery bits is a ripple-carry costing ~2 word ops amortized
//! instead of up to 64 `u32` increments. Planes are flushed into the
//! `u32` per-arc totals every 63 rounds (and once at the end), keeping
//! overflow impossible. [`MeterMode::ArcCounters`] keeps the PR 1
//! increment-per-round scheme for cross-checking and benchmarking; both
//! modes produce identical [`RunStats`].
//!
//! The round loop performs **zero heap allocation** after setup (enforced
//! by `tests/zero_alloc.rs`; enabling `collect_trace` appends one `u64`
//! per round and may reallocate that vector).
//!
//! ## Determinism
//!
//! Node stepping writes only slots owned by the stepped node; shards write
//! only their own mask/occupancy/meter regions; reductions are fixed-shape
//! trees of integer folds. Any pool width and any shard count — including
//! serial mode — produce bit-identical results
//! (`tests/proptest_engine.rs` proves it property-wise).

use crate::protocol::Protocol;
use crate::session::Session;
use congest_graph::{Graph, Node};

/// How per-arc congestion is accumulated during the deliver sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeterMode {
    /// Bit-sliced plane counters flushed every 63 rounds (default; ~2 word
    /// ops per 64 arcs per round).
    #[default]
    BitPlanes,
    /// The PR 1 scheme: one `u32` increment per delivered arc per round.
    /// Kept as a cross-checked comparison arm; results are identical.
    ArcCounters,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Seed from which all per-node RNGs derive.
    pub seed: u64,
    /// Hard stop: error out if the protocol has not terminated by then.
    pub max_rounds: u64,
    /// Step nodes in parallel on the `congest_par` pool (results are
    /// identical either way; serial mode exists for debugging and for
    /// tests that must observe panics deterministically). Small networks
    /// are stepped serially even when this is set — the cutoff only
    /// affects wall-clock, never results.
    pub parallel: bool,
    /// Shard count for the step and deliver planes. `None` derives it from
    /// the pool width (serial runs use one shard). Any value produces
    /// identical results; this only shapes parallel granularity.
    pub shards: Option<usize>,
    /// Congestion metering implementation (results identical either way).
    pub meter: MeterMode,
    /// Sparse-round fast-path threshold: rounds whose staged per-arc send
    /// count is at most this take the worklist deliver path instead of
    /// the full shard-region sweep. `None` derives a heuristic from the
    /// arc count; `Some(0)` disables the fast path and `Some(usize::MAX)`
    /// forces it for every scattering round (the differential tests pin
    /// both extremes). Results are identical at every value — this is
    /// purely a performance policy.
    pub sparse_threshold: Option<usize>,
    /// Record per-round traffic (messages delivered per round) — the
    /// "traffic profile" figures of the experiment harness.
    pub collect_trace: bool,
    /// Optional mobile edge adversary (paper §1.2 / \[FP23\] model; see
    /// [`crate::fault::FaultPlan`]).
    pub faults: Option<crate::fault::FaultPlan>,
    /// Wide runs only: repack live lanes into the low bits when at most
    /// half the sweep width is still running, so tail rounds index
    /// narrower lane strides (see `congest_sim::wide`). Results are
    /// identical either way — outputs, stats, and traces are always
    /// reported under original lane ids — so this is purely a
    /// performance policy; the differential tests pin both settings.
    pub compact_lanes: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0x5EED_CAFE,
            max_rounds: 1_000_000,
            parallel: true,
            shards: None,
            meter: MeterMode::default(),
            sparse_threshold: None,
            collect_trace: false,
            faults: None,
            compact_lanes: true,
        }
    }
}

impl EngineConfig {
    pub fn with_seed(seed: u64) -> Self {
        EngineConfig {
            seed,
            ..Default::default()
        }
    }

    pub fn serial() -> Self {
        EngineConfig {
            parallel: false,
            ..Default::default()
        }
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    pub fn trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }

    /// Pin the shard count (otherwise derived from the pool width).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    pub fn meter(mut self, meter: MeterMode) -> Self {
        self.meter = meter;
        self
    }

    /// Pin the sparse fast-path threshold (see
    /// [`EngineConfig::sparse_threshold`]).
    pub fn sparse_threshold(mut self, threshold: usize) -> Self {
        self.sparse_threshold = Some(threshold);
        self
    }

    pub fn with_faults(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enable or disable mid-run lane compaction (see
    /// [`EngineConfig::compact_lanes`]; on by default).
    pub fn compact(mut self, compact_lanes: bool) -> Self {
        self.compact_lanes = compact_lanes;
        self
    }
}

/// What the run cost — the quantities the paper's theorems bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Number of CONGEST rounds until the last message was delivered.
    pub rounds: u64,
    /// Engine iterations executed (≥ rounds; trailing silent iterations
    /// in which nodes only finished local computation are not "rounds").
    pub iterations: u64,
    /// Total messages delivered over the whole run.
    pub total_messages: u64,
    /// Max messages crossing any single undirected edge (both directions
    /// summed) — the paper's "congestion".
    pub max_edge_congestion: u64,
    /// Largest single message observed, in bits (see [`crate::MsgBits`]).
    pub max_message_bits: usize,
    /// Messages destroyed by the fault adversary (0 without faults).
    pub dropped_messages: u64,
}

impl RunStats {
    /// Combine sequentially-composed phases: rounds add, congestion adds
    /// (worst case: the same edge is hot in both phases), bits take max.
    pub fn then(self, later: RunStats) -> RunStats {
        RunStats {
            rounds: self.rounds + later.rounds,
            iterations: self.iterations + later.iterations,
            total_messages: self.total_messages + later.total_messages,
            max_edge_congestion: self.max_edge_congestion + later.max_edge_congestion,
            max_message_bits: self.max_message_bits.max(later.max_message_bits),
            dropped_messages: self.dropped_messages + later.dropped_messages,
        }
    }
}

/// A completed run: per-node outputs (indexed by node id) plus costs.
#[derive(Debug, Clone)]
pub struct RunOutcome<O> {
    pub outputs: Vec<O>,
    pub stats: RunStats,
    /// Messages delivered per round, when
    /// [`EngineConfig::collect_trace`] was set.
    pub trace: Option<Vec<u64>>,
    /// Total messages that crossed each undirected edge (both directions
    /// summed), indexed by edge id — the per-edge congestion meters whose
    /// maximum is [`RunStats::max_edge_congestion`]. The differential
    /// harness asserts these bit-identical across engines and execution
    /// modes, not just their max.
    pub edge_congestion: Vec<u64>,
}

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `max_rounds` elapsed without global termination — either the
    /// protocol deadlocked or the budget was too small.
    RoundLimitExceeded { limit: u64 },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::RoundLimitExceeded { limit } => {
                write!(f, "protocol did not terminate within {limit} rounds")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Run one protocol instance per node until global termination (all nodes
/// done and no message in flight) or the round limit.
///
/// This is a thin **one-phase wrapper** over [`crate::Session`]: it
/// builds a fresh session for `graph`, runs the protocol on it, and
/// returns an owned outcome. Multi-phase algorithms should build one
/// session and call [`Session::run`] per phase instead — the session
/// reuses every engine buffer across phases (zero heap allocation at
/// phase boundaries) where this wrapper re-allocates them per call.
pub fn run_protocol<P, F>(
    graph: &Graph,
    factory: F,
    config: EngineConfig,
) -> Result<RunOutcome<P::Output>, EngineError>
where
    P: Protocol,
    F: FnMut(Node, &Graph) -> P,
{
    let mut session = Session::new(graph);
    let outcome = session.run(factory, config)?;
    Ok(outcome.into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{NodeCtx, Protocol};
    use crate::session::PARALLEL_MIN_NODES;
    use congest_graph::generators::{complete, cycle, harary, path};

    /// Flood a token from node 0; everyone records the round they heard it.
    struct Flood {
        heard_at: Option<u64>,
    }
    impl Protocol for Flood {
        type Msg = ();
        type Output = Option<u64>;
        fn round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
            let start = ctx.round == 0 && ctx.node == 0;
            let got = ctx.inbox_len() > 0;
            if (start || got) && self.heard_at.is_none() {
                self.heard_at = Some(ctx.round);
                ctx.send_all(());
            }
            ctx.set_done(self.heard_at.is_some());
        }
        fn finish(self) -> Option<u64> {
            self.heard_at
        }
    }

    #[test]
    fn flood_takes_eccentricity_rounds() {
        let g = path(6);
        let out =
            run_protocol(&g, |_, _| Flood { heard_at: None }, EngineConfig::default()).unwrap();
        for v in 0..6 {
            assert_eq!(out.outputs[v], Some(v as u64));
        }
        // Node 5 hears in round 5 after the round-4 send... it still sends
        // once (wasted), so the last delivery is round 6's input = rounds 6.
        assert!(out.stats.rounds >= 5 && out.stats.rounds <= 6);
        assert_eq!(out.stats.max_message_bits, 0);
    }

    #[test]
    fn parallel_and_serial_agree() {
        // Above PARALLEL_MIN_NODES and under a forced multi-lane pool, so
        // the parallel path genuinely executes even on a 1-core machine.
        let g = complete(PARALLEL_MIN_NODES + 44);
        let par = congest_par::with_threads(4, || {
            run_protocol(&g, |_, _| Flood { heard_at: None }, EngineConfig::default()).unwrap()
        });
        let ser =
            run_protocol(&g, |_, _| Flood { heard_at: None }, EngineConfig::serial()).unwrap();
        assert_eq!(par.outputs, ser.outputs);
        assert_eq!(par.stats, ser.stats);
    }

    #[test]
    fn shard_count_never_changes_results() {
        let g = harary(8, 300);
        let base =
            run_protocol(&g, |_, _| Flood { heard_at: None }, EngineConfig::serial()).unwrap();
        for shards in [1usize, 2, 3, 7, 64, 1000] {
            let out = run_protocol(
                &g,
                |_, _| Flood { heard_at: None },
                EngineConfig::serial().shards(shards),
            )
            .unwrap();
            assert_eq!(out.outputs, base.outputs, "shards {shards}");
            assert_eq!(out.stats, base.stats, "shards {shards}");
        }
    }

    #[test]
    fn meter_modes_agree_across_flush_boundaries() {
        /// Chatter that spans several flush periods (> 63 rounds).
        struct LongPulse;
        impl Protocol for LongPulse {
            type Msg = u32;
            type Output = ();
            fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
                if ctx.round < 150 {
                    if !(ctx.node as u64 + ctx.round).is_multiple_of(3) {
                        ctx.send_all(5);
                    }
                } else {
                    ctx.set_done(true);
                }
            }
            fn finish(self) {}
        }
        let g = harary(6, 64);
        let planes = run_protocol(
            &g,
            |_, _| LongPulse,
            EngineConfig::serial().meter(MeterMode::BitPlanes),
        )
        .unwrap();
        let counters = run_protocol(
            &g,
            |_, _| LongPulse,
            EngineConfig::serial().meter(MeterMode::ArcCounters),
        )
        .unwrap();
        assert_eq!(planes.stats, counters.stats);
        assert!(planes.stats.max_edge_congestion > 63, "spans a flush");
    }

    #[test]
    fn round_limit_errors() {
        /// Never terminates: ping-pongs forever.
        struct Chatter;
        impl Protocol for Chatter {
            type Msg = u32;
            type Output = ();
            fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
                ctx.send_all(1);
            }
            fn finish(self) {}
        }
        let g = cycle(4);
        let err =
            run_protocol(&g, |_, _| Chatter, EngineConfig::default().max_rounds(10)).unwrap_err();
        assert_eq!(err, EngineError::RoundLimitExceeded { limit: 10 });
    }

    #[test]
    fn congestion_counts_both_directions() {
        /// Both endpoints of every edge send every round for 3 rounds.
        struct Pulse;
        impl Protocol for Pulse {
            type Msg = u32;
            type Output = ();
            fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
                if ctx.round < 3 {
                    ctx.send_all(7);
                } else {
                    ctx.set_done(true);
                }
            }
            fn finish(self) {}
        }
        let g = cycle(3);
        let out = run_protocol(&g, |_, _| Pulse, EngineConfig::default()).unwrap();
        // 3 rounds × 2 directions per edge.
        assert_eq!(out.stats.max_edge_congestion, 6);
        assert_eq!(out.stats.total_messages, 3 * 2 * 3);
        assert_eq!(out.stats.max_message_bits, 32);
    }

    #[test]
    fn immediate_termination() {
        struct Mute;
        impl Protocol for Mute {
            type Msg = ();
            type Output = u32;
            fn round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
                ctx.set_done(true);
            }
            fn finish(self) -> u32 {
                99
            }
        }
        let g = cycle(5);
        let out = run_protocol(&g, |_, _| Mute, EngineConfig::default()).unwrap();
        assert_eq!(out.stats.rounds, 0);
        assert!(out.outputs.iter().all(|&o| o == 99));
    }

    #[test]
    fn trace_records_per_round_traffic() {
        let g = path(5);
        let out = run_protocol(
            &g,
            |_, _| Flood { heard_at: None },
            EngineConfig::default().trace(),
        )
        .unwrap();
        let trace = out.trace.unwrap();
        assert_eq!(trace.len() as u64, out.stats.rounds);
        assert_eq!(trace.iter().sum::<u64>(), out.stats.total_messages);
        assert!(
            trace.iter().all(|&t| t > 0),
            "trace trimmed to last traffic"
        );
    }

    #[test]
    fn faults_drop_messages_and_are_counted() {
        use crate::fault::FaultPlan;
        // Flood on a path with every edge blocked each round: the far side
        // must never hear it, so the run can only end by round limit.
        let g = path(4);
        let out = run_protocol(
            &g,
            |_, _| Flood { heard_at: None },
            EngineConfig::default()
                .max_rounds(50)
                .with_faults(FaultPlan::new(64, 3)),
        );
        assert!(out.is_err());

        // A *retransmitting* flood survives a light adversary: blocking one
        // edge per round can only delay a wave that is re-sent every round.
        struct StubbornFlood {
            informed: bool,
        }
        impl Protocol for StubbornFlood {
            type Msg = ();
            type Output = bool;
            fn round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
                if ctx.round == 0 && ctx.node == 0 {
                    self.informed = true;
                }
                if ctx.inbox_len() > 0 {
                    self.informed = true;
                }
                if self.informed && ctx.round < 40 {
                    ctx.send_all(());
                }
                ctx.set_done(ctx.round >= 40);
            }
            fn finish(self) -> bool {
                self.informed
            }
        }
        let g = cycle(8);
        let out = run_protocol(
            &g,
            |_, _| StubbornFlood { informed: false },
            EngineConfig::default()
                .max_rounds(200)
                .with_faults(FaultPlan::new(1, 5)),
        )
        .unwrap();
        assert!(
            out.outputs.iter().all(|&o| o),
            "stubborn flood must survive"
        );
        assert!(out.stats.dropped_messages > 0, "adversary must have acted");
    }

    #[test]
    fn stats_then_composes() {
        let a = RunStats {
            rounds: 3,
            iterations: 4,
            total_messages: 10,
            max_edge_congestion: 2,
            max_message_bits: 16,
            dropped_messages: 0,
        };
        let b = RunStats {
            rounds: 5,
            iterations: 5,
            total_messages: 1,
            max_edge_congestion: 1,
            max_message_bits: 32,
            dropped_messages: 0,
        };
        let c = a.then(b);
        assert_eq!(c.rounds, 8);
        assert_eq!(c.max_edge_congestion, 3);
        assert_eq!(c.max_message_bits, 32);
    }

    #[test]
    fn wide_u128_messages_roundtrip_through_the_slab() {
        /// Every node sends a 96-bit (id, payload) pair to all neighbors
        /// once; receivers verify exact field recovery.
        struct Collect {
            got: Vec<(u32, u64)>,
        }
        impl Protocol for Collect {
            type Msg = (u32, u64);
            type Output = Vec<(u32, u64)>;
            fn round(&mut self, ctx: &mut NodeCtx<'_, (u32, u64)>) {
                if ctx.round == 0 {
                    let m = (ctx.node ^ 0xABCD, 0xDEAD_BEEF_0000_0000 | ctx.node as u64);
                    ctx.send_all(m);
                    return;
                }
                self.got.extend(ctx.inbox().map(|(_, m)| m));
                ctx.set_done(true);
            }
            fn finish(self) -> Vec<(u32, u64)> {
                self.got
            }
        }
        let g = cycle(6);
        let out = run_protocol(
            &g,
            |_, _| Collect { got: Vec::new() },
            EngineConfig::default(),
        )
        .unwrap();
        for (v, got) in out.outputs.iter().enumerate() {
            let v = v as u32;
            let expect_from = |u: u32| (u ^ 0xABCD, 0xDEAD_BEEF_0000_0000 | u as u64);
            let mut want = vec![expect_from((v + 5) % 6), expect_from((v + 1) % 6)];
            want.sort_unstable();
            let mut got = got.clone();
            got.sort_unstable();
            assert_eq!(got, want, "node {v}");
        }
        assert_eq!(out.stats.max_message_bits, 96);
    }
}
