//! The synchronous round engine.
//!
//! ## Data layout
//!
//! Messages live in **dense arc-indexed slabs** of packed words
//! ([`crate::message::PackedMsg`]): arc `i` is position `i` in the graph's
//! flattened adjacency, so node `v`'s ports occupy the contiguous range
//! `arc_offset(v)..arc_offset(v)+deg(v)`. Presence is a **word-packed
//! occupancy bitset** (one bit per arc) instead of per-slot `Option`
//! discriminants.
//!
//! ## Double-buffered delivery
//!
//! Two slabs alternate roles every round. While stepping, a node's sends
//! are scattered straight into the *destination* arc slot of the staging
//! slab through the precomputed `reverse_arc` permutation (a bijection, so
//! every slot has exactly one writer). Delivery is then a **buffer swap**:
//! the staging slab becomes the inbox slab wholesale, the consumed inbox's
//! occupancy words are zeroed (a 64×-denser memset than the seed layout's
//! `Option` clear), and per-round statistics are read off the occupancy
//! words. No message is ever cloned, matched, or moved again after the
//! sender packed it — and the round loop performs **zero heap allocation**
//! after setup (enforced by `tests/zero_alloc.rs`; enabling
//! `collect_trace` appends one `u64` per round and may reallocate that
//! vector).
//!
//! ## Determinism
//!
//! Node stepping writes only slots owned by the stepped node (its state,
//! its RNG, its destination arcs — disjoint across nodes because the
//! reverse-arc permutation is a bijection); statistics are associative,
//! commutative reductions over task-owned ranges. Any pool width —
//! including serial mode — produces bit-identical results
//! (`tests/proptest_engine.rs` proves it property-wise).

use crate::message::{MsgWord, PackedMsg};
use crate::protocol::{InSlot, NodeCtx, OutSlot, Protocol};
use crate::rng::node_rng;
use crate::slab;
use congest_graph::{Graph, Node};
use congest_par::RacyCells;
use rand::rngs::SmallRng;
use std::sync::atomic::{AtomicU64, Ordering};

/// The staging byte-mask value for "this arc carries a message".
const STAGED: u8 = 1;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Seed from which all per-node RNGs derive.
    pub seed: u64,
    /// Hard stop: error out if the protocol has not terminated by then.
    pub max_rounds: u64,
    /// Step nodes in parallel on the `congest_par` pool (results are
    /// identical either way; serial mode exists for debugging and for
    /// tests that must observe panics deterministically). Small networks
    /// are stepped serially even when this is set — the cutoff only
    /// affects wall-clock, never results.
    pub parallel: bool,
    /// Record per-round traffic (messages delivered per round) — the
    /// "traffic profile" figures of the experiment harness.
    pub collect_trace: bool,
    /// Optional mobile edge adversary (paper §1.2 / \[FP23\] model; see
    /// [`crate::fault::FaultPlan`]).
    pub faults: Option<crate::fault::FaultPlan>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0x5EED_CAFE,
            max_rounds: 1_000_000,
            parallel: true,
            collect_trace: false,
            faults: None,
        }
    }
}

impl EngineConfig {
    pub fn with_seed(seed: u64) -> Self {
        EngineConfig {
            seed,
            ..Default::default()
        }
    }

    pub fn serial() -> Self {
        EngineConfig {
            parallel: false,
            ..Default::default()
        }
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    pub fn trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }

    pub fn with_faults(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// What the run cost — the quantities the paper's theorems bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Number of CONGEST rounds until the last message was delivered.
    pub rounds: u64,
    /// Engine iterations executed (≥ rounds; trailing silent iterations
    /// in which nodes only finished local computation are not "rounds").
    pub iterations: u64,
    /// Total messages delivered over the whole run.
    pub total_messages: u64,
    /// Max messages crossing any single undirected edge (both directions
    /// summed) — the paper's "congestion".
    pub max_edge_congestion: u64,
    /// Largest single message observed, in bits (see [`crate::MsgBits`]).
    pub max_message_bits: usize,
    /// Messages destroyed by the fault adversary (0 without faults).
    pub dropped_messages: u64,
}

impl RunStats {
    /// Combine sequentially-composed phases: rounds add, congestion adds
    /// (worst case: the same edge is hot in both phases), bits take max.
    pub fn then(self, later: RunStats) -> RunStats {
        RunStats {
            rounds: self.rounds + later.rounds,
            iterations: self.iterations + later.iterations,
            total_messages: self.total_messages + later.total_messages,
            max_edge_congestion: self.max_edge_congestion + later.max_edge_congestion,
            max_message_bits: self.max_message_bits.max(later.max_message_bits),
            dropped_messages: self.dropped_messages + later.dropped_messages,
        }
    }
}

/// A completed run: per-node outputs (indexed by node id) plus costs.
#[derive(Debug, Clone)]
pub struct RunOutcome<O> {
    pub outputs: Vec<O>,
    pub stats: RunStats,
    /// Messages delivered per round, when
    /// [`EngineConfig::collect_trace`] was set.
    pub trace: Option<Vec<u64>>,
}

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `max_rounds` elapsed without global termination — either the
    /// protocol deadlocked or the budget was too small.
    RoundLimitExceeded { limit: u64 },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::RoundLimitExceeded { limit } => {
                write!(f, "protocol did not terminate within {limit} rounds")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Per-node hot state, kept together so one cache line serves one node's
/// step and the pool chunks nodes without any per-round bookkeeping.
struct NodeCell<P> {
    state: P,
    rng: SmallRng,
    done: bool,
    /// Largest message (in bits) this node sent over the whole run.
    max_bits: usize,
}

/// Below this many nodes the pool handoff costs more than the round; step
/// serially regardless of [`EngineConfig::parallel`] (results identical).
const PARALLEL_MIN_NODES: usize = 256;

/// Run one protocol instance per node until global termination (all nodes
/// done and no message in flight) or the round limit.
pub fn run_protocol<P, F>(
    graph: &Graph,
    mut factory: F,
    config: EngineConfig,
) -> Result<RunOutcome<P::Output>, EngineError>
where
    P: Protocol,
    F: FnMut(Node, &Graph) -> P,
{
    debug_assert!(
        P::Msg::WIDTH <= <<P::Msg as PackedMsg>::Word as MsgWord>::BITS,
        "message WIDTH exceeds its storage word"
    );
    let n = graph.n();
    let arcs = graph.num_arcs();
    let mut cells: Vec<NodeCell<P>> = (0..n as Node)
        .map(|v| NodeCell {
            state: factory(v, graph),
            rng: node_rng(config.seed, v),
            done: false,
            max_bits: 0,
        })
        .collect();

    // The double buffer: `in_words` is what nodes read this round,
    // `out_words` is the staging slab sends scatter into. Swapped every
    // round. Staged presence is one byte per arc (single writer per slot
    // — plain stores); the delivery sweep folds it into the word-packed
    // `in_occ` bitset receivers read, zeroing it for reuse.
    let mut in_words: Vec<<P::Msg as PackedMsg>::Word> = vec![Default::default(); arcs];
    let mut out_words: Vec<<P::Msg as PackedMsg>::Word> = vec![Default::default(); arcs];
    let mut in_occ: Vec<u64> = vec![0; slab::words_for(arcs)];
    let mut out_mask: Vec<u8> = vec![0; arcs];
    // Per-arc delivery counters for congestion accounting. `u32` halves
    // the sweep's memory traffic; congestion per arc is bounded by the
    // round count, which the saturating add keeps honest far beyond any
    // realistic run.
    let mut arc_traffic: Vec<u32> = vec![0; arcs];
    // Reusable fault scratch (kept empty without an adversary).
    let mut blocked: Vec<congest_graph::Edge> = Vec::new();
    if let Some(plan) = &config.faults {
        blocked.reserve(plan.edges_per_round);
    }

    let parallel = config.parallel && n >= PARALLEL_MIN_NODES && congest_par::num_threads() > 1;
    let step_chunk = n.div_ceil((congest_par::num_threads() * 4).max(1)).max(1);

    let mut stats = RunStats::default();
    let mut trace: Option<Vec<u64>> = config.collect_trace.then(Vec::new);
    let mut round: u64 = 0;
    loop {
        if round >= config.max_rounds {
            return Err(EngineError::RoundLimitExceeded {
                limit: config.max_rounds,
            });
        }
        // --- Step phase: every node reads its inbox and scatters its
        // sends into the staging slab's destination slots.
        {
            let racy_out = RacyCells::new(&mut out_words);
            let racy_mask = RacyCells::new(&mut out_mask);
            let in_words = &in_words[..];
            let in_occ = &in_occ[..];
            let step_node = |base: usize, i: usize, cell: &mut NodeCell<P>| {
                let v = (base + i) as Node;
                let lo = graph.arc_offset(v);
                let deg = graph.degree(v);
                let mut ctx = NodeCtx {
                    node: v,
                    round,
                    graph,
                    inbox: InSlot {
                        words: &in_words[lo..lo + deg],
                        occ: in_occ,
                        bit0: lo,
                    },
                    outbox: OutSlot::Scatter {
                        words: &racy_out,
                        mask: &racy_mask,
                        rev: graph.reverse_arcs(),
                        lo,
                        deg,
                    },
                    rng: &mut cell.rng,
                    done: &mut cell.done,
                    max_bits: &mut cell.max_bits,
                };
                cell.state.round(&mut ctx);
            };
            if parallel {
                congest_par::par_chunks_mut(&mut cells, step_chunk, |ci, chunk| {
                    let base = ci * step_chunk;
                    for (i, cell) in chunk.iter_mut().enumerate() {
                        step_node(base, i, cell);
                    }
                });
            } else {
                for (v, cell) in cells.iter_mut().enumerate() {
                    step_node(v, 0, cell);
                }
            }
        }
        // --- Adversary phase: destroy staged messages on blocked edges.
        if let Some(plan) = &config.faults {
            if plan.edges_per_round > 0 {
                plan.blocked_edges_into(round, graph.m(), &mut blocked);
                for &e in &blocked {
                    let (u, v) = graph.endpoints(e);
                    for (from, to) in [(u, v), (v, u)] {
                        let port = graph
                            .port_to(to, from)
                            .expect("edge endpoints are adjacent");
                        let dest = graph.arc_offset(to) + port as usize;
                        if out_mask[dest] == STAGED {
                            out_mask[dest] = 0;
                            stats.dropped_messages += 1;
                        }
                    }
                }
            }
        }
        // --- Delivery phase: the staging slab *becomes* the inbox slab,
        // and one sweep folds the staging byte-mask into the word-packed
        // inbox bitset, meters the round, and re-zeroes the mask.
        std::mem::swap(&mut in_words, &mut out_words);
        let delivered = deliver_and_account(&mut out_mask, &mut in_occ, &mut arc_traffic, parallel);
        stats.total_messages += delivered;
        if let Some(t) = &mut trace {
            t.push(delivered);
        }
        round += 1;
        if delivered > 0 {
            stats.rounds = round;
        }
        if delivered == 0 && cells.iter().all(|c| c.done) {
            stats.iterations = round;
            break;
        }
    }
    if let Some(t) = &mut trace {
        t.truncate(stats.rounds as usize);
    }
    stats.max_message_bits = cells.iter().map(|c| c.max_bits).max().unwrap_or(0);

    // Fold per-arc traffic into per-edge congestion.
    let mut per_edge: Vec<u64> = vec![0; graph.m()];
    for v in 0..n as Node {
        let lo = graph.arc_offset(v);
        for (i, &e) in graph.incident_edges(v).iter().enumerate() {
            per_edge[e as usize] += arc_traffic[lo + i] as u64;
        }
    }
    // Both arcs of an edge map to the same edge id and each counts the
    // deliveries *into* one endpoint, so the sum is the total number of
    // messages that crossed the edge in either direction.
    stats.max_edge_congestion = per_edge.iter().copied().max().unwrap_or(0);

    let outputs: Vec<P::Output> = cells.into_iter().map(|c| c.state.finish()).collect();
    Ok(RunOutcome {
        outputs,
        stats,
        trace,
    })
}

/// The delivery sweep: fold the staging byte-mask into the word-packed
/// inbox occupancy bitset (byte `a` → bit `a`), zero the mask for reuse,
/// count delivered messages, and bump per-arc traffic counters.
///
/// Occupancy word `w` owns arcs `64w..64w+64`, so parallel tasks chunked
/// on word boundaries write disjoint ranges of every output.
fn deliver_and_account(
    staged: &mut [u8],
    in_occ: &mut [u64],
    arc_traffic: &mut [u32],
    parallel: bool,
) -> u64 {
    let arcs = staged.len();
    // One word's worth of work: pack, meter, zero.
    let sweep_word = |mask_bytes: &mut [u8], traffic: &mut [u32]| -> (u64, u64) {
        let bits = slab::pack_bytes(mask_bytes);
        if bits != 0 {
            mask_bytes.fill(0);
            if bits == u64::MAX {
                for t in traffic.iter_mut() {
                    *t = t.saturating_add(1);
                }
            } else {
                let mut b = bits;
                while b != 0 {
                    let t = &mut traffic[b.trailing_zeros() as usize];
                    *t = t.saturating_add(1);
                    b &= b - 1;
                }
            }
        }
        (bits, bits.count_ones() as u64)
    };
    if parallel && in_occ.len() >= 64 {
        let words_per_task = in_occ
            .len()
            .div_ceil((congest_par::num_threads() * 4).max(1))
            .max(1);
        let delivered = AtomicU64::new(0);
        let racy_mask = RacyCells::new(staged);
        let racy_traffic = RacyCells::new(arc_traffic);
        congest_par::par_chunks_mut(in_occ, words_per_task, |ci, occ_chunk| {
            let first_arc = ci * words_per_task * 64;
            let mut local = 0u64;
            for (i, occ_word) in occ_chunk.iter_mut().enumerate() {
                let lo = first_arc + i * 64;
                let hi = (lo + 64).min(arcs);
                // Sound: word-aligned chunks make `lo..hi` exclusive to
                // this task for both the mask and the traffic counters.
                let (mask_bytes, traffic) =
                    unsafe { (racy_mask.slice_mut(lo, hi), racy_traffic.slice_mut(lo, hi)) };
                let (bits, count) = sweep_word(mask_bytes, traffic);
                *occ_word = bits;
                local += count;
            }
            delivered.fetch_add(local, Ordering::Relaxed);
        });
        delivered.load(Ordering::Relaxed)
    } else {
        let mut delivered = 0u64;
        for (w, occ_word) in in_occ.iter_mut().enumerate() {
            let lo = w * 64;
            let hi = (lo + 64).min(arcs);
            let (bits, count) = sweep_word(&mut staged[lo..hi], &mut arc_traffic[lo..hi]);
            *occ_word = bits;
            delivered += count;
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{NodeCtx, Protocol};
    use congest_graph::generators::{complete, cycle, path};

    /// Flood a token from node 0; everyone records the round they heard it.
    struct Flood {
        heard_at: Option<u64>,
    }
    impl Protocol for Flood {
        type Msg = ();
        type Output = Option<u64>;
        fn round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
            let start = ctx.round == 0 && ctx.node == 0;
            let got = ctx.inbox_len() > 0;
            if (start || got) && self.heard_at.is_none() {
                self.heard_at = Some(ctx.round);
                ctx.send_all(());
            }
            ctx.set_done(self.heard_at.is_some());
        }
        fn finish(self) -> Option<u64> {
            self.heard_at
        }
    }

    #[test]
    fn flood_takes_eccentricity_rounds() {
        let g = path(6);
        let out =
            run_protocol(&g, |_, _| Flood { heard_at: None }, EngineConfig::default()).unwrap();
        for v in 0..6 {
            assert_eq!(out.outputs[v], Some(v as u64));
        }
        // Node 5 hears in round 5 after the round-4 send... it still sends
        // once (wasted), so the last delivery is round 6's input = rounds 6.
        assert!(out.stats.rounds >= 5 && out.stats.rounds <= 6);
        assert_eq!(out.stats.max_message_bits, 0);
    }

    #[test]
    fn parallel_and_serial_agree() {
        // Above PARALLEL_MIN_NODES and under a forced multi-lane pool, so
        // the parallel path genuinely executes even on a 1-core machine.
        let g = complete(PARALLEL_MIN_NODES + 44);
        let par = congest_par::with_threads(4, || {
            run_protocol(&g, |_, _| Flood { heard_at: None }, EngineConfig::default()).unwrap()
        });
        let ser =
            run_protocol(&g, |_, _| Flood { heard_at: None }, EngineConfig::serial()).unwrap();
        assert_eq!(par.outputs, ser.outputs);
        assert_eq!(par.stats, ser.stats);
    }

    #[test]
    fn round_limit_errors() {
        /// Never terminates: ping-pongs forever.
        struct Chatter;
        impl Protocol for Chatter {
            type Msg = u32;
            type Output = ();
            fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
                ctx.send_all(1);
            }
            fn finish(self) {}
        }
        let g = cycle(4);
        let err =
            run_protocol(&g, |_, _| Chatter, EngineConfig::default().max_rounds(10)).unwrap_err();
        assert_eq!(err, EngineError::RoundLimitExceeded { limit: 10 });
    }

    #[test]
    fn congestion_counts_both_directions() {
        /// Both endpoints of every edge send every round for 3 rounds.
        struct Pulse;
        impl Protocol for Pulse {
            type Msg = u32;
            type Output = ();
            fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
                if ctx.round < 3 {
                    ctx.send_all(7);
                } else {
                    ctx.set_done(true);
                }
            }
            fn finish(self) {}
        }
        let g = cycle(3);
        let out = run_protocol(&g, |_, _| Pulse, EngineConfig::default()).unwrap();
        // 3 rounds × 2 directions per edge.
        assert_eq!(out.stats.max_edge_congestion, 6);
        assert_eq!(out.stats.total_messages, 3 * 2 * 3);
        assert_eq!(out.stats.max_message_bits, 32);
    }

    #[test]
    fn immediate_termination() {
        struct Mute;
        impl Protocol for Mute {
            type Msg = ();
            type Output = u32;
            fn round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
                ctx.set_done(true);
            }
            fn finish(self) -> u32 {
                99
            }
        }
        let g = cycle(5);
        let out = run_protocol(&g, |_, _| Mute, EngineConfig::default()).unwrap();
        assert_eq!(out.stats.rounds, 0);
        assert!(out.outputs.iter().all(|&o| o == 99));
    }

    #[test]
    fn trace_records_per_round_traffic() {
        let g = path(5);
        let out = run_protocol(
            &g,
            |_, _| Flood { heard_at: None },
            EngineConfig::default().trace(),
        )
        .unwrap();
        let trace = out.trace.unwrap();
        assert_eq!(trace.len() as u64, out.stats.rounds);
        assert_eq!(trace.iter().sum::<u64>(), out.stats.total_messages);
        assert!(
            trace.iter().all(|&t| t > 0),
            "trace trimmed to last traffic"
        );
    }

    #[test]
    fn faults_drop_messages_and_are_counted() {
        use crate::fault::FaultPlan;
        // Flood on a path with every edge blocked each round: the far side
        // must never hear it, so the run can only end by round limit.
        let g = path(4);
        let out = run_protocol(
            &g,
            |_, _| Flood { heard_at: None },
            EngineConfig::default()
                .max_rounds(50)
                .with_faults(FaultPlan::new(64, 3)),
        );
        assert!(out.is_err());

        // A *retransmitting* flood survives a light adversary: blocking one
        // edge per round can only delay a wave that is re-sent every round.
        struct StubbornFlood {
            informed: bool,
        }
        impl Protocol for StubbornFlood {
            type Msg = ();
            type Output = bool;
            fn round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
                if ctx.round == 0 && ctx.node == 0 {
                    self.informed = true;
                }
                if ctx.inbox_len() > 0 {
                    self.informed = true;
                }
                if self.informed && ctx.round < 40 {
                    ctx.send_all(());
                }
                ctx.set_done(ctx.round >= 40);
            }
            fn finish(self) -> bool {
                self.informed
            }
        }
        let g = cycle(8);
        let out = run_protocol(
            &g,
            |_, _| StubbornFlood { informed: false },
            EngineConfig::default()
                .max_rounds(200)
                .with_faults(FaultPlan::new(1, 5)),
        )
        .unwrap();
        assert!(
            out.outputs.iter().all(|&o| o),
            "stubborn flood must survive"
        );
        assert!(out.stats.dropped_messages > 0, "adversary must have acted");
    }

    #[test]
    fn stats_then_composes() {
        let a = RunStats {
            rounds: 3,
            iterations: 4,
            total_messages: 10,
            max_edge_congestion: 2,
            max_message_bits: 16,
            dropped_messages: 0,
        };
        let b = RunStats {
            rounds: 5,
            iterations: 5,
            total_messages: 1,
            max_edge_congestion: 1,
            max_message_bits: 32,
            dropped_messages: 0,
        };
        let c = a.then(b);
        assert_eq!(c.rounds, 8);
        assert_eq!(c.max_edge_congestion, 3);
        assert_eq!(c.max_message_bits, 32);
    }

    #[test]
    fn wide_u128_messages_roundtrip_through_the_slab() {
        /// Every node sends a 96-bit (id, payload) pair to all neighbors
        /// once; receivers verify exact field recovery.
        struct Collect {
            got: Vec<(u32, u64)>,
        }
        impl Protocol for Collect {
            type Msg = (u32, u64);
            type Output = Vec<(u32, u64)>;
            fn round(&mut self, ctx: &mut NodeCtx<'_, (u32, u64)>) {
                if ctx.round == 0 {
                    let m = (ctx.node ^ 0xABCD, 0xDEAD_BEEF_0000_0000 | ctx.node as u64);
                    ctx.send_all(m);
                    return;
                }
                self.got.extend(ctx.inbox().map(|(_, m)| m));
                ctx.set_done(true);
            }
            fn finish(self) -> Vec<(u32, u64)> {
                self.got
            }
        }
        let g = cycle(6);
        let out = run_protocol(
            &g,
            |_, _| Collect { got: Vec::new() },
            EngineConfig::default(),
        )
        .unwrap();
        for (v, got) in out.outputs.iter().enumerate() {
            let v = v as u32;
            let expect_from = |u: u32| (u ^ 0xABCD, 0xDEAD_BEEF_0000_0000 | u as u64);
            let mut want = vec![expect_from((v + 5) % 6), expect_from((v + 1) % 6)];
            want.sort_unstable();
            let mut got = got.clone();
            got.sort_unstable();
            assert_eq!(got, want, "node {v}");
        }
        assert_eq!(out.stats.max_message_bits, 96);
    }
}
