//! The synchronous round engine.
//!
//! ## Data layout
//!
//! Messages live in **dense arc-indexed slabs** of packed words
//! ([`crate::message::PackedMsg`]): arc `i` is position `i` in the graph's
//! flattened adjacency, so node `v`'s ports occupy the contiguous range
//! `arc_offset(v)..arc_offset(v)+deg(v)`. Presence is a **word-packed
//! occupancy bitset** (one bit per arc) instead of per-slot `Option`
//! discriminants.
//!
//! ## Shard-owned round phases
//!
//! At setup the engine builds a [`congest_graph::ShardPlan`]: contiguous
//! node shards balanced by arc count, each owning a disjoint range of
//! occupancy *words* (64 arcs per word). **Both** phases of a round run as
//! a parallel-for over shards on the `congest-par` pool:
//!
//! * **Step** — shard `s` steps its own nodes; sends are scattered
//!   straight into the *destination* arc slot of the staging slab through
//!   the precomputed `reverse_arc` permutation (a bijection, so every slot
//!   has exactly one writer). The shard also folds its nodes' `done` flags
//!   while they are cache-hot.
//! * **Deliver** — after the staging slab *becomes* the inbox slab (a
//!   buffer swap), shard `s` sweeps its own word range: folds the staging
//!   byte-mask into the inbox occupancy bitset, re-zeroes the mask, counts
//!   deliveries, and meters per-arc congestion into its private region —
//!   no atomics, no sharing.
//!
//! Each shard writes one private [`ShardMeter`] block; the per-round
//! totals (messages delivered, global termination) are combined with
//! [`congest_par::par_tree_reduce`], an allocation-free fixed-shape tree
//! reduction, so results are bit-identical at every pool width and shard
//! count.
//!
//! ## Bit-sliced congestion metering
//!
//! The default [`MeterMode::BitPlanes`] accumulates per-arc delivery
//! counts in **bit-sliced counters**: six plane words per occupancy word
//! (word-major, one cache line) hold each arc's count in binary; adding a
//! round's delivery bits is a ripple-carry costing ~2 word ops amortized
//! instead of up to 64 `u32` increments. Planes are flushed into the
//! `u32` per-arc totals every 63 rounds (and once at the end), keeping
//! overflow impossible. [`MeterMode::ArcCounters`] keeps the PR 1
//! increment-per-round scheme for cross-checking and benchmarking; both
//! modes produce identical [`RunStats`].
//!
//! The round loop performs **zero heap allocation** after setup (enforced
//! by `tests/zero_alloc.rs`; enabling `collect_trace` appends one `u64`
//! per round and may reallocate that vector).
//!
//! ## Determinism
//!
//! Node stepping writes only slots owned by the stepped node; shards write
//! only their own mask/occupancy/meter regions; reductions are fixed-shape
//! trees of integer folds. Any pool width and any shard count — including
//! serial mode — produce bit-identical results
//! (`tests/proptest_engine.rs` proves it property-wise).

use crate::message::{MsgWord, PackedMsg};
use crate::protocol::{BcastIn, BcastOut, InSlot, NodeCtx, OutSlot, Protocol};
use crate::rng::node_rng;
use crate::slab;
use congest_graph::{Graph, Node};
use congest_par::RacyCells;
use rand::rngs::SmallRng;

/// The staging byte-mask value for "this arc carries a message".
const STAGED: u8 = 1;

/// How per-arc congestion is accumulated during the deliver sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeterMode {
    /// Bit-sliced plane counters flushed every 63 rounds (default; ~2 word
    /// ops per 64 arcs per round).
    #[default]
    BitPlanes,
    /// The PR 1 scheme: one `u32` increment per delivered arc per round.
    /// Kept as a cross-checked comparison arm; results are identical.
    ArcCounters,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Seed from which all per-node RNGs derive.
    pub seed: u64,
    /// Hard stop: error out if the protocol has not terminated by then.
    pub max_rounds: u64,
    /// Step nodes in parallel on the `congest_par` pool (results are
    /// identical either way; serial mode exists for debugging and for
    /// tests that must observe panics deterministically). Small networks
    /// are stepped serially even when this is set — the cutoff only
    /// affects wall-clock, never results.
    pub parallel: bool,
    /// Shard count for the step and deliver planes. `None` derives it from
    /// the pool width (serial runs use one shard). Any value produces
    /// identical results; this only shapes parallel granularity.
    pub shards: Option<usize>,
    /// Congestion metering implementation (results identical either way).
    pub meter: MeterMode,
    /// Sparse-round fast-path threshold: rounds whose staged per-arc send
    /// count is at most this take the worklist deliver path instead of
    /// the full shard-region sweep. `None` derives a heuristic from the
    /// arc count; `Some(0)` disables the fast path and `Some(usize::MAX)`
    /// forces it for every scattering round (the differential tests pin
    /// both extremes). Results are identical at every value — this is
    /// purely a performance policy.
    pub sparse_threshold: Option<usize>,
    /// Record per-round traffic (messages delivered per round) — the
    /// "traffic profile" figures of the experiment harness.
    pub collect_trace: bool,
    /// Optional mobile edge adversary (paper §1.2 / \[FP23\] model; see
    /// [`crate::fault::FaultPlan`]).
    pub faults: Option<crate::fault::FaultPlan>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0x5EED_CAFE,
            max_rounds: 1_000_000,
            parallel: true,
            shards: None,
            meter: MeterMode::default(),
            sparse_threshold: None,
            collect_trace: false,
            faults: None,
        }
    }
}

impl EngineConfig {
    pub fn with_seed(seed: u64) -> Self {
        EngineConfig {
            seed,
            ..Default::default()
        }
    }

    pub fn serial() -> Self {
        EngineConfig {
            parallel: false,
            ..Default::default()
        }
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    pub fn trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }

    /// Pin the shard count (otherwise derived from the pool width).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    pub fn meter(mut self, meter: MeterMode) -> Self {
        self.meter = meter;
        self
    }

    /// Pin the sparse fast-path threshold (see
    /// [`EngineConfig::sparse_threshold`]).
    pub fn sparse_threshold(mut self, threshold: usize) -> Self {
        self.sparse_threshold = Some(threshold);
        self
    }

    pub fn with_faults(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// What the run cost — the quantities the paper's theorems bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Number of CONGEST rounds until the last message was delivered.
    pub rounds: u64,
    /// Engine iterations executed (≥ rounds; trailing silent iterations
    /// in which nodes only finished local computation are not "rounds").
    pub iterations: u64,
    /// Total messages delivered over the whole run.
    pub total_messages: u64,
    /// Max messages crossing any single undirected edge (both directions
    /// summed) — the paper's "congestion".
    pub max_edge_congestion: u64,
    /// Largest single message observed, in bits (see [`crate::MsgBits`]).
    pub max_message_bits: usize,
    /// Messages destroyed by the fault adversary (0 without faults).
    pub dropped_messages: u64,
}

impl RunStats {
    /// Combine sequentially-composed phases: rounds add, congestion adds
    /// (worst case: the same edge is hot in both phases), bits take max.
    pub fn then(self, later: RunStats) -> RunStats {
        RunStats {
            rounds: self.rounds + later.rounds,
            iterations: self.iterations + later.iterations,
            total_messages: self.total_messages + later.total_messages,
            max_edge_congestion: self.max_edge_congestion + later.max_edge_congestion,
            max_message_bits: self.max_message_bits.max(later.max_message_bits),
            dropped_messages: self.dropped_messages + later.dropped_messages,
        }
    }
}

/// A completed run: per-node outputs (indexed by node id) plus costs.
#[derive(Debug, Clone)]
pub struct RunOutcome<O> {
    pub outputs: Vec<O>,
    pub stats: RunStats,
    /// Messages delivered per round, when
    /// [`EngineConfig::collect_trace`] was set.
    pub trace: Option<Vec<u64>>,
    /// Total messages that crossed each undirected edge (both directions
    /// summed), indexed by edge id — the per-edge congestion meters whose
    /// maximum is [`RunStats::max_edge_congestion`]. The differential
    /// harness asserts these bit-identical across engines and execution
    /// modes, not just their max.
    pub edge_congestion: Vec<u64>,
}

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `max_rounds` elapsed without global termination — either the
    /// protocol deadlocked or the budget was too small.
    RoundLimitExceeded { limit: u64 },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::RoundLimitExceeded { limit } => {
                write!(f, "protocol did not terminate within {limit} rounds")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Per-node hot state, kept together so one cache line serves one node's
/// step and shards walk nodes without any per-round bookkeeping.
struct NodeCell<P> {
    state: P,
    rng: SmallRng,
    done: bool,
    /// Largest message (in bits) this node sent over the whole run.
    max_bits: usize,
}

/// One shard's private meter block, written only by the shard that owns it
/// during a phase and read only between phases / by the tree reduction.
#[derive(Debug, Clone, Copy, Default)]
struct ShardMeter {
    /// Messages delivered into this shard's arcs (and out of its
    /// broadcasting nodes) this round.
    delivered: u64,
    /// Whether every node of this shard reported `done` this round.
    all_done: bool,
    /// Whether any node in this shard's region broadcast this round.
    bcast_any: bool,
    /// Messages this shard's nodes staged through the per-arc mask this
    /// round (per-port sends plus scatter-fallback broadcasts). Zero lets
    /// the deliver phase skip the arc plane; a small global total takes
    /// the sparse worklist path.
    staged: u32,
    /// Whether any node of this shard staged a broadcast-plane word this
    /// round (gates the per-node plane fold).
    bcast_used: bool,
}

/// Does the inbox occupancy bitset need zeroing before this round's bits
/// land, and how cheaply can that be done?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OccState {
    /// All-zero (nothing to do).
    Clean,
    /// Nonzero only at the words listed in the engine's `set_words`
    /// scratch (sparse rounds leave this breadcrumb so the next round
    /// zeroes O(traffic) words, not O(arcs/64)).
    Tracked,
    /// Arbitrary (a full-sweep round rebuilt every word; zeroing takes a
    /// whole-bitset fill).
    Unknown,
}

/// The value the per-round tree reduction folds.
#[derive(Debug, Clone, Copy, Default)]
struct RoundAgg {
    delivered: u64,
    all_done: bool,
    /// Whether any node broadcast this round (gates receivers' broadcast
    /// scans next round).
    bcast_any: bool,
}

/// Below this many nodes the pool handoff costs more than the round; step
/// serially regardless of [`EngineConfig::parallel`] (results identical).
const PARALLEL_MIN_NODES: usize = 256;

/// Cap on auto-derived shard counts (explicit configs may exceed it).
const MAX_AUTO_SHARDS: usize = 64;

/// Run one protocol instance per node until global termination (all nodes
/// done and no message in flight) or the round limit.
pub fn run_protocol<P, F>(
    graph: &Graph,
    mut factory: F,
    config: EngineConfig,
) -> Result<RunOutcome<P::Output>, EngineError>
where
    P: Protocol,
    F: FnMut(Node, &Graph) -> P,
{
    debug_assert!(
        P::Msg::WIDTH <= <<P::Msg as PackedMsg>::Word as MsgWord>::BITS,
        "message WIDTH exceeds its storage word"
    );
    let n = graph.n();
    let arcs = graph.num_arcs();
    let occ_words = arcs.div_ceil(64);
    let mut cells: Vec<NodeCell<P>> = (0..n as Node)
        .map(|v| NodeCell {
            state: factory(v, graph),
            rng: node_rng(config.seed, v),
            done: false,
            max_bits: 0,
        })
        .collect();

    // The double buffer: `in_words` is what nodes read this round,
    // `out_words` is the staging slab sends scatter into. Swapped every
    // round. Staged presence is one byte per arc (single writer per slot
    // — plain stores); the delivery sweep folds it into the word-packed
    // `in_occ` bitset receivers read, zeroing it for reuse.
    let mut in_words: Vec<<P::Msg as PackedMsg>::Word> = vec![Default::default(); arcs];
    let mut out_words: Vec<<P::Msg as PackedMsg>::Word> = vec![Default::default(); arcs];
    let mut in_occ: Vec<u64> = vec![0; occ_words];
    let mut out_mask: Vec<u8> = vec![0; arcs];
    // Per-arc congestion totals. Under `BitPlanes` these are only updated
    // at flush points; under `ArcCounters` every round.
    let mut arc_traffic: Vec<u32> = vec![0; arcs];
    // Bit-sliced per-arc counters, word-major: occupancy word `w` owns
    // `planes[w*PLANES..(w+1)*PLANES]` (one cache line per hot word).
    let mut planes: Vec<u64> = match config.meter {
        MeterMode::BitPlanes => vec![0; occ_words * slab::PLANES],
        MeterMode::ArcCounters => Vec::new(),
    };
    // The broadcast plane: `send_all` stores one word per *node* instead
    // of `deg` scattered arc slots. Disabled under the fault adversary,
    // which must be able to drop individual staged messages per arc.
    let bcast_enabled = config.faults.is_none();
    let node_words = n.div_ceil(64);
    let mut bcast_in_words: Vec<<P::Msg as PackedMsg>::Word> =
        vec![Default::default(); if bcast_enabled { n } else { 0 }];
    let mut bcast_out_words: Vec<<P::Msg as PackedMsg>::Word> =
        vec![Default::default(); if bcast_enabled { n } else { 0 }];
    let mut bcast_stage: Vec<u8> = vec![0; if bcast_enabled { n } else { 0 }];
    let mut bcast_occ: Vec<u64> = vec![0; if bcast_enabled { node_words } else { 0 }];
    // Per-node broadcast congestion counters (expanded to arcs at the
    // end): same bit-plane/counter split as the arc meters.
    let mut node_planes: Vec<u64> = match config.meter {
        MeterMode::BitPlanes if bcast_enabled => vec![0; node_words * slab::PLANES],
        _ => Vec::new(),
    };
    let mut node_traffic: Vec<u32> = vec![0; if bcast_enabled { n } else { 0 }];
    let mut bcast_any = false;
    // Adaptive plane choice: `send_all` goes through the broadcast plane
    // only in rounds following *dense* traffic (≥ a quarter of all arcs
    // delivered), because receivers pay an O(deg) neighbor scan whenever
    // anyone used the plane — worth it exactly when most ports carry a
    // message anyway. Sparse broadcasters fall back to the per-arc
    // scatter, whose cost is proportional to the traffic. Either choice
    // is correct — receivers merge both planes — so this is purely a
    // performance policy, driven by a deterministic global signal
    // (identical at every pool width and shard count). Round 0 starts
    // optimistic: initialization traffic is typically dense.
    let mut last_delivered: u64 = arcs as u64;
    // Reusable fault scratch (kept empty without an adversary).
    let mut blocked: Vec<congest_graph::Edge> = Vec::new();
    if let Some(plan) = &config.faults {
        blocked.reserve(plan.edges_per_round);
    }

    let parallel = config.parallel && n >= PARALLEL_MIN_NODES && congest_par::num_threads() > 1;
    let s_count = config
        .shards
        .unwrap_or(if parallel {
            (congest_par::num_threads() * 4).min(MAX_AUTO_SHARDS)
        } else {
            1
        })
        .clamp(1, n.max(1));
    let plan = graph.shard_plan(s_count);
    let s_count = plan.num_shards();
    let mut meters: Vec<ShardMeter> = vec![ShardMeter::default(); s_count];
    let mut agg_buf: Vec<RoundAgg> = vec![RoundAgg::default(); s_count];

    // --- Sparse fast-path state. Rounds whose staged per-arc send count
    // is at most `threshold` skip the full shard-region sweep: the step
    // phase records every staged destination arc in a per-shard worklist
    // (capped by the shard's out-degree bound, so the slab never pays the
    // `shards × arcs` blowup), and the deliver phase touches exactly the
    // staged arcs — occupancy, mask and meters all O(traffic).
    let threshold = config
        .sparse_threshold
        .unwrap_or_else(|| (arcs / 32).clamp(64, 1 << 20))
        .min(arcs);
    let mut wl_starts: Vec<usize> = Vec::with_capacity(s_count + 1);
    wl_starts.push(0);
    for s in 0..s_count {
        let cap = threshold.min(plan.out_arc_bound(s));
        wl_starts.push(wl_starts[s] + cap);
    }
    let mut worklist: Vec<u32> = vec![0; wl_starts[s_count]];
    // Surviving-entry counts per shard after the fault prefilter.
    let mut wl_live: Vec<u32> = vec![0; s_count];
    // Shards that staged at least one per-arc send this round.
    let mut active_shards: Vec<u32> = Vec::with_capacity(s_count);
    // Occupancy words set by the last sparse round (what the next round
    // must zero). Bounded by the threshold and by the word count.
    let mut set_words: Vec<u32> = Vec::with_capacity(threshold.min(occ_words));

    let mut stats = RunStats::default();
    let mut trace: Option<Vec<u64>> = config.collect_trace.then(Vec::new);
    let mut round: u64 = 0;
    let mut rounds_since_flush: u64 = 0;
    // What zeroing the inbox occupancy bitset needs before new bits land.
    let mut occ_state = OccState::Clean;
    loop {
        if round >= config.max_rounds {
            return Err(EngineError::RoundLimitExceeded {
                limit: config.max_rounds,
            });
        }
        // --- Step phase: each shard steps its own nodes; sends scatter
        // into the staging slab's destination slots. The shard folds its
        // nodes' done flags while the cells are hot.
        let use_plane = bcast_enabled && 4 * last_delivered >= arcs as u64;
        {
            let racy_cells = RacyCells::new(&mut cells);
            let racy_out = RacyCells::new(&mut out_words);
            let racy_mask = RacyCells::new(&mut out_mask);
            let racy_bcast_out = RacyCells::new(&mut bcast_out_words);
            let racy_bcast_stage = RacyCells::new(&mut bcast_stage);
            let racy_meters = RacyCells::new(&mut meters);
            let racy_wl = RacyCells::new(&mut worklist);
            let in_words = &in_words[..];
            let in_occ = &in_occ[..];
            // One broadcast descriptor per round, shared by every node's
            // context (a pointer per context, not a struct). Rounds after
            // which nobody broadcast hand receivers `None` outright: the
            // presence bits are unreadable anyway (`any` gates every
            // reader), and a `None` plane keeps the inbox walk — the
            // sparse regime's hottest loop — free of per-word plane
            // probes.
            let bcast_in = BcastIn {
                words: &bcast_in_words[..],
                occ: &bcast_occ[..],
                adj: graph.arc_targets(),
                any: bcast_any,
            };
            let bcast_in = (bcast_enabled && bcast_any).then_some(&bcast_in);
            let bcast_out = BcastOut {
                words: &racy_bcast_out,
                stage: &racy_bcast_stage,
            };
            let bcast_out = use_plane.then_some(&bcast_out);
            let step_shard = |s: usize| {
                let nodes = plan.nodes(s);
                let (v_lo, v_hi) = (nodes.start as usize, nodes.end as usize);
                // Sound: shard `s` is the unique task stepping these nodes
                // and writing meter block `s` and worklist region `s`.
                let cells_s = unsafe { racy_cells.slice_mut(v_lo, v_hi) };
                let meter = unsafe { &mut racy_meters.slice_mut(s, s + 1)[0] };
                // One scatter-plane descriptor per shard per round; node
                // contexts carry a pointer to it instead of its fields.
                let plane = crate::protocol::ScatterPlane {
                    words: &racy_out,
                    mask: &racy_mask,
                    rev: graph.reverse_arcs(),
                    bcast: bcast_out,
                    wl: &racy_wl,
                    wl_lo: wl_starts[s],
                    wl_cap: wl_starts[s + 1] - wl_starts[s],
                    staged: std::cell::Cell::new(0),
                    bcast_used: std::cell::Cell::new(false),
                };
                let mut all_done = true;
                for (i, cell) in cells_s.iter_mut().enumerate() {
                    let v = (v_lo + i) as Node;
                    let lo = graph.arc_offset(v);
                    let deg = graph.degree(v);
                    let mut ctx = NodeCtx {
                        node: v,
                        round,
                        graph,
                        inbox: InSlot {
                            words: &in_words[lo..lo + deg],
                            occ: in_occ,
                            bit0: lo,
                            bcast: bcast_in,
                        },
                        outbox: OutSlot::Scatter {
                            plane: &plane,
                            lo,
                            deg,
                        },
                        rng: &mut cell.rng,
                        done: &mut cell.done,
                        max_bits: &mut cell.max_bits,
                    };
                    cell.state.round(&mut ctx);
                    all_done &= cell.done;
                }
                meter.all_done = all_done;
                meter.staged = plane.staged.get();
                meter.bcast_used = plane.bcast_used.get();
            };
            if parallel {
                congest_par::run(s_count, step_shard);
            } else {
                for s in 0..s_count {
                    step_shard(s);
                }
            }
        }
        // --- Adversary phase: destroy staged messages on blocked edges.
        if let Some(plan) = &config.faults {
            if plan.edges_per_round > 0 {
                plan.blocked_edges_into(round, graph.m(), &mut blocked);
                for &e in &blocked {
                    let (u, v) = graph.endpoints(e);
                    for (from, to) in [(u, v), (v, u)] {
                        let port = graph
                            .port_to(to, from)
                            .expect("edge endpoints are adjacent");
                        let dest = graph.arc_offset(to) + port as usize;
                        if out_mask[dest] == STAGED {
                            out_mask[dest] = 0;
                            stats.dropped_messages += 1;
                        }
                    }
                }
            }
        }
        // --- Deliver phase: the staging slab *becomes* the inbox slab,
        // and the round's staged traffic is folded into the word-packed
        // inbox bitset and the congestion meters, along one of three arc
        // paths: **skip** (nothing staged — pure-broadcast or silent
        // rounds cost at most the occupancy zeroing), **sparse** (the
        // staged total fits the threshold — only the worklisted arcs are
        // touched), or **full** (each shard sweeps its own word region as
        // in PR 2). All three produce bit-identical results.
        std::mem::swap(&mut in_words, &mut out_words);
        std::mem::swap(&mut bcast_in_words, &mut bcast_out_words);
        let flush_now =
            config.meter == MeterMode::BitPlanes && rounds_since_flush + 1 == slab::FLUSH_PERIOD;
        let staged_total: u64 = meters.iter().map(|m| m.staged as u64).sum();
        // The per-node broadcast plane only needs folding in rounds where
        // someone actually staged through it; receivers gate on
        // `bcast_any`, and later folds rebuild every presence word, so
        // skipped rounds leave no observable residue.
        let fold_bcast = use_plane && meters.iter().any(|m| m.bcast_used);
        // A shard whose staged count exceeds its worklist cap stopped
        // recording: for protocols honoring the CONGEST discipline this
        // cannot happen (a shard stages at most its out-degree bound, and
        // the cap dominates both that and the threshold whenever the
        // round is sparse), but a double-sending protocol in a release
        // build could overrun its count — route those rounds to the full
        // sweep so the worklist is never trusted beyond what was written.
        let wl_overflow = meters
            .iter()
            .enumerate()
            .any(|(s, m)| m.staged as usize > wl_starts[s + 1] - wl_starts[s]);
        let sparse_round = staged_total > 0 && staged_total <= threshold as u64 && !wl_overflow;
        let run_full_sweep = staged_total > 0 && !sparse_round;
        for m in meters.iter_mut() {
            m.delivered = 0;
            m.bcast_any = false;
        }
        let mut sparse_delivered: u64 = 0;
        if !run_full_sweep {
            // Zero last round's occupancy bits: nothing (Clean), the
            // tracked word list (after a sparse round), or a whole-bitset
            // fill (after a full-sweep round — split across the pool, as
            // the per-shard sweep regions were). The full sweep rebuilds
            // every word itself and needs none of this.
            match occ_state {
                OccState::Clean => {}
                OccState::Tracked => {
                    for &w in &set_words {
                        in_occ[w as usize] = 0;
                    }
                    set_words.clear();
                }
                OccState::Unknown => {
                    if parallel && occ_words >= 4096 {
                        let chunk = occ_words.div_ceil(congest_par::num_threads().max(1));
                        congest_par::par_chunks_mut(&mut in_occ, chunk, |_, c| c.fill(0));
                    } else {
                        in_occ.fill(0);
                    }
                    set_words.clear();
                }
            }
            occ_state = OccState::Clean;
        }
        if sparse_round {
            // Stage A — fault prefilter over the active-shard worklists:
            // drop entries the adversary unstaged, zero the surviving
            // mask bytes, compact survivors in place. Every destination
            // arc identifies a unique sender, so mask bytes and worklist
            // regions have single writers and the pass parallelizes over
            // the active-shard list (idle shards cost nothing).
            active_shards.clear();
            for (s, m) in meters.iter().enumerate() {
                if m.staged > 0 {
                    active_shards.push(s as u32);
                }
            }
            {
                let racy_wl = RacyCells::new(&mut worklist);
                let racy_mask = RacyCells::new(&mut out_mask);
                let racy_live = RacyCells::new(&mut wl_live);
                let meters = &meters[..];
                let wl_starts = &wl_starts[..];
                let prefilter = |s: usize| {
                    let cnt = meters[s].staged as usize;
                    let base = wl_starts[s];
                    // Sound: worklist region `s` and live-count slot `s`
                    // belong to this task alone; every staged mask byte
                    // has exactly one worklist entry pointing at it.
                    let wl = unsafe { racy_wl.slice_mut(base, base + cnt) };
                    let mut live = 0usize;
                    for k in 0..cnt {
                        let dest = wl[k] as usize;
                        if unsafe { racy_mask.read(dest) } != 0 {
                            unsafe { racy_mask.write(dest, 0) };
                            wl[live] = dest as u32;
                            live += 1;
                        }
                    }
                    unsafe { racy_live.write(s, live as u32) };
                };
                if parallel && staged_total >= 4096 && active_shards.len() > 1 {
                    congest_par::run_list(&active_shards, prefilter);
                } else {
                    for &s in &active_shards {
                        prefilter(s as usize);
                    }
                }
            }
            // Stage B — serial merge over the survivors: occupancy bits,
            // meters, delivery count, and the set-word breadcrumb the
            // next round's zeroing uses. Per-arc effects commute, so the
            // result is identical at every shard count and pool width.
            for &s in &active_shards {
                let base = wl_starts[s as usize];
                let live = wl_live[s as usize] as usize;
                for &dest in &worklist[base..base + live] {
                    let dest = dest as usize;
                    let w = dest >> 6;
                    let bit = 1u64 << (dest & 63);
                    if in_occ[w] == 0 {
                        set_words.push(w as u32);
                    }
                    in_occ[w] |= bit;
                    sparse_delivered += 1;
                    match config.meter {
                        MeterMode::BitPlanes => {
                            slab::planes_add(
                                &mut planes[w * slab::PLANES..(w + 1) * slab::PLANES],
                                bit,
                            );
                        }
                        MeterMode::ArcCounters => {
                            arc_traffic[dest] = arc_traffic[dest].saturating_add(1);
                        }
                    }
                }
            }
            if !set_words.is_empty() {
                occ_state = OccState::Tracked;
            }
        }
        if run_full_sweep || fold_bcast || flush_now {
            let racy_mask = RacyCells::new(&mut out_mask);
            let racy_occ = RacyCells::new(&mut in_occ);
            let racy_traffic = RacyCells::new(&mut arc_traffic);
            let racy_planes = RacyCells::new(&mut planes);
            let racy_bcast_stage = RacyCells::new(&mut bcast_stage);
            let racy_bcast_occ = RacyCells::new(&mut bcast_occ);
            let racy_node_planes = RacyCells::new(&mut node_planes);
            let racy_node_traffic = RacyCells::new(&mut node_traffic);
            let racy_meters = RacyCells::new(&mut meters);
            let meter_mode = config.meter;
            let deliver_shard = |s: usize| {
                let words = plan.words(s);
                let arcs_range = plan.arcs_of(s);
                let (w_lo, w_hi) = (words.start, words.end);
                let (a_lo, a_hi) = (arcs_range.start, arcs_range.end);
                // Sound: the plan's word/arc/meter regions are disjoint
                // across shards by construction.
                let (mask_s, occ_s, meter) = unsafe {
                    (
                        racy_mask.slice_mut(a_lo, a_hi),
                        racy_occ.slice_mut(w_lo, w_hi),
                        &mut racy_meters.slice_mut(s, s + 1)[0],
                    )
                };
                let mut delivered = 0u64;
                if run_full_sweep {
                    match meter_mode {
                        MeterMode::BitPlanes => {
                            let planes_s = unsafe {
                                racy_planes.slice_mut(w_lo * slab::PLANES, w_hi * slab::PLANES)
                            };
                            for (i, occ_word) in occ_s.iter_mut().enumerate() {
                                let lo = w_lo * 64 + i * 64;
                                let hi = (lo + 64).min(a_hi);
                                let mask = &mut mask_s[lo - a_lo..hi - a_lo];
                                let bits = slab::pack_bytes(mask);
                                *occ_word = bits;
                                if bits != 0 {
                                    mask.fill(0);
                                    delivered += bits.count_ones() as u64;
                                    slab::planes_add(
                                        &mut planes_s[i * slab::PLANES..(i + 1) * slab::PLANES],
                                        bits,
                                    );
                                }
                            }
                        }
                        MeterMode::ArcCounters => {
                            let traffic_s = unsafe { racy_traffic.slice_mut(a_lo, a_hi) };
                            for (i, occ_word) in occ_s.iter_mut().enumerate() {
                                let lo = w_lo * 64 + i * 64;
                                let hi = (lo + 64).min(a_hi);
                                let mask = &mut mask_s[lo - a_lo..hi - a_lo];
                                let traffic = &mut traffic_s[lo - a_lo..hi - a_lo];
                                let bits = slab::pack_bytes(mask);
                                *occ_word = bits;
                                if bits != 0 {
                                    mask.fill(0);
                                    delivered += bits.count_ones() as u64;
                                    if bits == u64::MAX {
                                        for t in traffic.iter_mut() {
                                            *t = t.saturating_add(1);
                                        }
                                    } else {
                                        let mut b = bits;
                                        while b != 0 {
                                            let t = &mut traffic[b.trailing_zeros() as usize];
                                            *t = t.saturating_add(1);
                                            b &= b - 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                // Flush cadence is independent of this round's traffic:
                // the planes may hold counts from earlier rounds.
                if flush_now {
                    let planes_s =
                        unsafe { racy_planes.slice_mut(w_lo * slab::PLANES, w_hi * slab::PLANES) };
                    let traffic_s = unsafe { racy_traffic.slice_mut(a_lo, a_hi) };
                    for (i, w) in (w_lo..w_hi).enumerate() {
                        let lo = w * 64;
                        let hi = (lo + 64).min(a_hi);
                        slab::planes_flush(
                            &mut planes_s[i * slab::PLANES..(i + 1) * slab::PLANES],
                            &mut traffic_s[lo - a_lo..hi - a_lo],
                        );
                    }
                }
                // --- Broadcast fold: this shard's node-word region of the
                // per-node staging bytes becomes presence bits; a
                // broadcasting node delivers `deg` messages in one bit.
                // Only folded in rounds where someone staged through the
                // plane — receivers gate on `bcast_any` and every fold
                // rebuilds all presence words, so skipped rounds leave no
                // observable residue (and cost nothing).
                let mut shard_bcast = false;
                if fold_bcast {
                    let nw = plan.node_words(s);
                    let nodes_cov = plan.node_word_nodes(s);
                    let (b_lo, b_hi) = (nodes_cov.start, nodes_cov.end);
                    // Sound: node-word regions are disjoint across shards.
                    let (stage_s, bocc_s) = unsafe {
                        (
                            racy_bcast_stage.slice_mut(b_lo, b_hi),
                            racy_bcast_occ.slice_mut(nw.start, nw.end),
                        )
                    };
                    for (i, occ_word) in bocc_s.iter_mut().enumerate() {
                        let lo = nw.start * 64 + i * 64;
                        let hi = (lo + 64).min(b_hi);
                        let bytes = &mut stage_s[lo - b_lo..hi - b_lo];
                        let bits = slab::pack_bytes(bytes);
                        *occ_word = bits;
                        if bits != 0 {
                            bytes.fill(0);
                            shard_bcast = true;
                            let mut b = bits;
                            while b != 0 {
                                let v = lo + b.trailing_zeros() as usize;
                                b &= b - 1;
                                delivered += graph.degree(v as Node) as u64;
                            }
                            match meter_mode {
                                MeterMode::BitPlanes => {
                                    let planes_w = unsafe {
                                        racy_node_planes.slice_mut(
                                            (nw.start + i) * slab::PLANES,
                                            (nw.start + i + 1) * slab::PLANES,
                                        )
                                    };
                                    slab::planes_add(planes_w, bits);
                                }
                                MeterMode::ArcCounters => {
                                    let traffic = unsafe { racy_node_traffic.slice_mut(lo, hi) };
                                    let mut b = bits;
                                    while b != 0 {
                                        let t = &mut traffic[b.trailing_zeros() as usize];
                                        *t = t.saturating_add(1);
                                        b &= b - 1;
                                    }
                                }
                            }
                        }
                    }
                }
                // Node-plane flush runs on the arc-plane cadence whether
                // or not this round folded the plane.
                if bcast_enabled && flush_now && meter_mode == MeterMode::BitPlanes {
                    let nw = plan.node_words(s);
                    let b_hi = plan.node_word_nodes(s).end;
                    for w in nw {
                        let lo = w * 64;
                        let hi = (lo + 64).min(b_hi);
                        let (planes_w, traffic) = unsafe {
                            (
                                racy_node_planes
                                    .slice_mut(w * slab::PLANES, (w + 1) * slab::PLANES),
                                racy_node_traffic.slice_mut(lo, hi),
                            )
                        };
                        slab::planes_flush(planes_w, traffic);
                    }
                }
                meter.delivered = delivered;
                meter.bcast_any = shard_bcast;
            };
            if parallel {
                congest_par::run(s_count, deliver_shard);
            } else {
                for s in 0..s_count {
                    deliver_shard(s);
                }
            }
        }
        rounds_since_flush = if flush_now { 0 } else { rounds_since_flush + 1 };
        if run_full_sweep {
            occ_state = OccState::Unknown;
        }
        // --- Combine the shard meter blocks: allocation-free fixed-shape
        // tree reduction (identical at every pool width and shard count).
        for (agg, m) in agg_buf.iter_mut().zip(&meters) {
            *agg = RoundAgg {
                delivered: m.delivered,
                all_done: m.all_done,
                bcast_any: m.bcast_any,
            };
        }
        congest_par::par_tree_reduce(&mut agg_buf, |a, b| {
            a.delivered += b.delivered;
            a.all_done &= b.all_done;
            a.bcast_any |= b.bcast_any;
        });
        let RoundAgg {
            delivered,
            all_done,
            bcast_any: round_bcast,
        } = agg_buf[0];
        let delivered = delivered + sparse_delivered;
        bcast_any = round_bcast;
        last_delivered = delivered;
        stats.total_messages += delivered;
        if let Some(t) = &mut trace {
            t.push(delivered);
        }
        round += 1;
        if delivered > 0 {
            stats.rounds = round;
        }
        if delivered == 0 && all_done {
            stats.iterations = round;
            break;
        }
    }
    if let Some(t) = &mut trace {
        t.truncate(stats.rounds as usize);
    }
    stats.max_message_bits = cells.iter().map(|c| c.max_bits).max().unwrap_or(0);

    // Final plane flush so `arc_traffic`/`node_traffic` hold exact totals.
    if config.meter == MeterMode::BitPlanes && rounds_since_flush > 0 {
        for w in 0..occ_words {
            let lo = w * 64;
            let hi = (lo + 64).min(arcs);
            slab::planes_flush(
                &mut planes[w * slab::PLANES..(w + 1) * slab::PLANES],
                &mut arc_traffic[lo..hi],
            );
        }
        if bcast_enabled {
            for w in 0..node_words {
                let lo = w * 64;
                let hi = (lo + 64).min(n);
                slab::planes_flush(
                    &mut node_planes[w * slab::PLANES..(w + 1) * slab::PLANES],
                    &mut node_traffic[lo..hi],
                );
            }
        }
    }

    // Fold per-arc traffic into per-edge congestion. An arc's total is its
    // directed deliveries plus every broadcast by the neighbor behind it.
    let mut per_edge: Vec<u64> = vec![0; graph.m()];
    for v in 0..n as Node {
        let lo = graph.arc_offset(v);
        let neighbors = graph.neighbors(v);
        for (i, &e) in graph.incident_edges(v).iter().enumerate() {
            let mut t = arc_traffic[lo + i] as u64;
            if bcast_enabled {
                t += node_traffic[neighbors[i] as usize] as u64;
            }
            per_edge[e as usize] += t;
        }
    }
    // Both arcs of an edge map to the same edge id and each counts the
    // deliveries *into* one endpoint, so the sum is the total number of
    // messages that crossed the edge in either direction.
    stats.max_edge_congestion = per_edge.iter().copied().max().unwrap_or(0);

    let outputs: Vec<P::Output> = cells.into_iter().map(|c| c.state.finish()).collect();
    Ok(RunOutcome {
        outputs,
        stats,
        trace,
        edge_congestion: per_edge,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{NodeCtx, Protocol};
    use congest_graph::generators::{complete, cycle, harary, path};

    /// Flood a token from node 0; everyone records the round they heard it.
    struct Flood {
        heard_at: Option<u64>,
    }
    impl Protocol for Flood {
        type Msg = ();
        type Output = Option<u64>;
        fn round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
            let start = ctx.round == 0 && ctx.node == 0;
            let got = ctx.inbox_len() > 0;
            if (start || got) && self.heard_at.is_none() {
                self.heard_at = Some(ctx.round);
                ctx.send_all(());
            }
            ctx.set_done(self.heard_at.is_some());
        }
        fn finish(self) -> Option<u64> {
            self.heard_at
        }
    }

    #[test]
    fn flood_takes_eccentricity_rounds() {
        let g = path(6);
        let out =
            run_protocol(&g, |_, _| Flood { heard_at: None }, EngineConfig::default()).unwrap();
        for v in 0..6 {
            assert_eq!(out.outputs[v], Some(v as u64));
        }
        // Node 5 hears in round 5 after the round-4 send... it still sends
        // once (wasted), so the last delivery is round 6's input = rounds 6.
        assert!(out.stats.rounds >= 5 && out.stats.rounds <= 6);
        assert_eq!(out.stats.max_message_bits, 0);
    }

    #[test]
    fn parallel_and_serial_agree() {
        // Above PARALLEL_MIN_NODES and under a forced multi-lane pool, so
        // the parallel path genuinely executes even on a 1-core machine.
        let g = complete(PARALLEL_MIN_NODES + 44);
        let par = congest_par::with_threads(4, || {
            run_protocol(&g, |_, _| Flood { heard_at: None }, EngineConfig::default()).unwrap()
        });
        let ser =
            run_protocol(&g, |_, _| Flood { heard_at: None }, EngineConfig::serial()).unwrap();
        assert_eq!(par.outputs, ser.outputs);
        assert_eq!(par.stats, ser.stats);
    }

    #[test]
    fn shard_count_never_changes_results() {
        let g = harary(8, 300);
        let base =
            run_protocol(&g, |_, _| Flood { heard_at: None }, EngineConfig::serial()).unwrap();
        for shards in [1usize, 2, 3, 7, 64, 1000] {
            let out = run_protocol(
                &g,
                |_, _| Flood { heard_at: None },
                EngineConfig::serial().shards(shards),
            )
            .unwrap();
            assert_eq!(out.outputs, base.outputs, "shards {shards}");
            assert_eq!(out.stats, base.stats, "shards {shards}");
        }
    }

    #[test]
    fn meter_modes_agree_across_flush_boundaries() {
        /// Chatter that spans several flush periods (> 63 rounds).
        struct LongPulse;
        impl Protocol for LongPulse {
            type Msg = u32;
            type Output = ();
            fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
                if ctx.round < 150 {
                    if !(ctx.node as u64 + ctx.round).is_multiple_of(3) {
                        ctx.send_all(5);
                    }
                } else {
                    ctx.set_done(true);
                }
            }
            fn finish(self) {}
        }
        let g = harary(6, 64);
        let planes = run_protocol(
            &g,
            |_, _| LongPulse,
            EngineConfig::serial().meter(MeterMode::BitPlanes),
        )
        .unwrap();
        let counters = run_protocol(
            &g,
            |_, _| LongPulse,
            EngineConfig::serial().meter(MeterMode::ArcCounters),
        )
        .unwrap();
        assert_eq!(planes.stats, counters.stats);
        assert!(planes.stats.max_edge_congestion > 63, "spans a flush");
    }

    #[test]
    fn round_limit_errors() {
        /// Never terminates: ping-pongs forever.
        struct Chatter;
        impl Protocol for Chatter {
            type Msg = u32;
            type Output = ();
            fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
                ctx.send_all(1);
            }
            fn finish(self) {}
        }
        let g = cycle(4);
        let err =
            run_protocol(&g, |_, _| Chatter, EngineConfig::default().max_rounds(10)).unwrap_err();
        assert_eq!(err, EngineError::RoundLimitExceeded { limit: 10 });
    }

    #[test]
    fn congestion_counts_both_directions() {
        /// Both endpoints of every edge send every round for 3 rounds.
        struct Pulse;
        impl Protocol for Pulse {
            type Msg = u32;
            type Output = ();
            fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
                if ctx.round < 3 {
                    ctx.send_all(7);
                } else {
                    ctx.set_done(true);
                }
            }
            fn finish(self) {}
        }
        let g = cycle(3);
        let out = run_protocol(&g, |_, _| Pulse, EngineConfig::default()).unwrap();
        // 3 rounds × 2 directions per edge.
        assert_eq!(out.stats.max_edge_congestion, 6);
        assert_eq!(out.stats.total_messages, 3 * 2 * 3);
        assert_eq!(out.stats.max_message_bits, 32);
    }

    #[test]
    fn immediate_termination() {
        struct Mute;
        impl Protocol for Mute {
            type Msg = ();
            type Output = u32;
            fn round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
                ctx.set_done(true);
            }
            fn finish(self) -> u32 {
                99
            }
        }
        let g = cycle(5);
        let out = run_protocol(&g, |_, _| Mute, EngineConfig::default()).unwrap();
        assert_eq!(out.stats.rounds, 0);
        assert!(out.outputs.iter().all(|&o| o == 99));
    }

    #[test]
    fn trace_records_per_round_traffic() {
        let g = path(5);
        let out = run_protocol(
            &g,
            |_, _| Flood { heard_at: None },
            EngineConfig::default().trace(),
        )
        .unwrap();
        let trace = out.trace.unwrap();
        assert_eq!(trace.len() as u64, out.stats.rounds);
        assert_eq!(trace.iter().sum::<u64>(), out.stats.total_messages);
        assert!(
            trace.iter().all(|&t| t > 0),
            "trace trimmed to last traffic"
        );
    }

    #[test]
    fn faults_drop_messages_and_are_counted() {
        use crate::fault::FaultPlan;
        // Flood on a path with every edge blocked each round: the far side
        // must never hear it, so the run can only end by round limit.
        let g = path(4);
        let out = run_protocol(
            &g,
            |_, _| Flood { heard_at: None },
            EngineConfig::default()
                .max_rounds(50)
                .with_faults(FaultPlan::new(64, 3)),
        );
        assert!(out.is_err());

        // A *retransmitting* flood survives a light adversary: blocking one
        // edge per round can only delay a wave that is re-sent every round.
        struct StubbornFlood {
            informed: bool,
        }
        impl Protocol for StubbornFlood {
            type Msg = ();
            type Output = bool;
            fn round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
                if ctx.round == 0 && ctx.node == 0 {
                    self.informed = true;
                }
                if ctx.inbox_len() > 0 {
                    self.informed = true;
                }
                if self.informed && ctx.round < 40 {
                    ctx.send_all(());
                }
                ctx.set_done(ctx.round >= 40);
            }
            fn finish(self) -> bool {
                self.informed
            }
        }
        let g = cycle(8);
        let out = run_protocol(
            &g,
            |_, _| StubbornFlood { informed: false },
            EngineConfig::default()
                .max_rounds(200)
                .with_faults(FaultPlan::new(1, 5)),
        )
        .unwrap();
        assert!(
            out.outputs.iter().all(|&o| o),
            "stubborn flood must survive"
        );
        assert!(out.stats.dropped_messages > 0, "adversary must have acted");
    }

    #[test]
    fn stats_then_composes() {
        let a = RunStats {
            rounds: 3,
            iterations: 4,
            total_messages: 10,
            max_edge_congestion: 2,
            max_message_bits: 16,
            dropped_messages: 0,
        };
        let b = RunStats {
            rounds: 5,
            iterations: 5,
            total_messages: 1,
            max_edge_congestion: 1,
            max_message_bits: 32,
            dropped_messages: 0,
        };
        let c = a.then(b);
        assert_eq!(c.rounds, 8);
        assert_eq!(c.max_edge_congestion, 3);
        assert_eq!(c.max_message_bits, 32);
    }

    #[test]
    fn wide_u128_messages_roundtrip_through_the_slab() {
        /// Every node sends a 96-bit (id, payload) pair to all neighbors
        /// once; receivers verify exact field recovery.
        struct Collect {
            got: Vec<(u32, u64)>,
        }
        impl Protocol for Collect {
            type Msg = (u32, u64);
            type Output = Vec<(u32, u64)>;
            fn round(&mut self, ctx: &mut NodeCtx<'_, (u32, u64)>) {
                if ctx.round == 0 {
                    let m = (ctx.node ^ 0xABCD, 0xDEAD_BEEF_0000_0000 | ctx.node as u64);
                    ctx.send_all(m);
                    return;
                }
                self.got.extend(ctx.inbox().map(|(_, m)| m));
                ctx.set_done(true);
            }
            fn finish(self) -> Vec<(u32, u64)> {
                self.got
            }
        }
        let g = cycle(6);
        let out = run_protocol(
            &g,
            |_, _| Collect { got: Vec::new() },
            EngineConfig::default(),
        )
        .unwrap();
        for (v, got) in out.outputs.iter().enumerate() {
            let v = v as u32;
            let expect_from = |u: u32| (u ^ 0xABCD, 0xDEAD_BEEF_0000_0000 | u as u64);
            let mut want = vec![expect_from((v + 5) % 6), expect_from((v + 1) % 6)];
            want.sort_unstable();
            let mut got = got.clone();
            got.sort_unstable();
            assert_eq!(got, want, "node {v}");
        }
        assert_eq!(out.stats.max_message_bits, 96);
    }
}
