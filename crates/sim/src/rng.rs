//! Deterministic per-node randomness.
//!
//! Every node gets its own RNG derived from `(run_seed, node_id)` through a
//! SplitMix64-style mixer, so:
//!
//! * runs are reproducible from one `u64` seed;
//! * nodes are statistically independent (the mixer is a bijection with
//!   full avalanche);
//! * parallel stepping needs no RNG synchronization — each node owns its
//!   stream.
//!
//! The same mixer also provides the paper's "without communication" shared
//! coin: for the Theorem 2 edge partition, the higher-ID endpoint of edge
//! `{u, v}` draws the edge's subgraph index from its own stream and tells
//! the other endpoint over the edge (one round, accounted).

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a bijective 64-bit mixer with full avalanche.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG owned by `node` in a run seeded with `run_seed`.
pub fn node_rng(run_seed: u64, node: u32) -> SmallRng {
    SmallRng::seed_from_u64(mix64(run_seed ^ mix64(node as u64 + 1)))
}

/// A derived sub-seed for a named phase of a multi-phase algorithm, so each
/// phase draws from an independent stream.
pub fn phase_seed(run_seed: u64, phase_index: u64) -> u64 {
    mix64(run_seed ^ mix64(phase_index.wrapping_add(0x5851_F42D_4C95_7F2D)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn mixer_is_sensitive_to_input() {
        assert_ne!(mix64(0), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // avalanche sanity: flipping one bit changes many output bits
        let a = mix64(0x1234);
        let b = mix64(0x1235);
        assert!((a ^ b).count_ones() > 16);
    }

    #[test]
    fn node_rngs_are_reproducible_and_distinct() {
        let mut r1 = node_rng(42, 7);
        let mut r2 = node_rng(42, 7);
        let mut r3 = node_rng(42, 8);
        let a: u64 = r1.gen();
        assert_eq!(a, r2.gen::<u64>());
        assert_ne!(a, r3.gen::<u64>());
    }

    #[test]
    fn phase_seeds_differ() {
        assert_ne!(phase_seed(9, 0), phase_seed(9, 1));
        assert_ne!(phase_seed(9, 0), phase_seed(10, 0));
    }
}
