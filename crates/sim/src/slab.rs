//! Occupancy machinery for the arc-indexed message slabs.
//!
//! Two representations, each used where it is cheapest:
//!
//! * **Staging byte-mask** (`Vec<u8>`, one byte per arc): what sends write.
//!   The reverse-arc permutation is a bijection, so every staging byte has
//!   exactly one writer per round — plain unsynchronized stores, no atomic
//!   read-modify-write anywhere on the hot path.
//! * **Word-packed bitset** (`Vec<u64>`, one bit per arc): what receivers
//!   read. Built from the byte-mask during the delivery sweep (64 arcs
//!   fold into one word), it makes `recv` a bit test and `inbox_len` a
//!   masked popcount, and clearing it is a 64×-denser memset than per-slot
//!   `Option` writes.

/// Number of `u64` words needed for `bits` bits.
#[inline]
pub(crate) fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// Read bit `i` of a word-packed bitset.
#[inline]
pub(crate) fn test(occ: &[u64], i: usize) -> bool {
    occ[i >> 6] >> (i & 63) & 1 == 1
}

/// Set bit `i`; returns whether it was already set.
#[inline]
pub(crate) fn set(occ: &mut [u64], i: usize) -> bool {
    let mask = 1u64 << (i & 63);
    let prior = occ[i >> 6] & mask != 0;
    occ[i >> 6] |= mask;
    prior
}

/// Zero every word.
#[inline]
pub(crate) fn clear_all(occ: &mut [u64]) {
    occ.fill(0);
}

/// Pack 64 staging bytes (each 0 or 1) into one occupancy word; byte `j`
/// becomes bit `j`.
#[inline]
pub(crate) fn pack_bytes(bytes: &[u8]) -> u64 {
    debug_assert!(bytes.len() <= 64);
    let mut word = 0u64;
    if bytes.len() == 64 {
        // 8 bytes at a time: multiplying a 0/1 byte lane vector by this
        // constant parks byte j's LSB at bit 56 + j; shifting down yields
        // the packed octet (classic SWAR LSB-gather).
        for (k, chunk) in bytes.chunks_exact(8).enumerate() {
            let lanes = u64::from_le_bytes(chunk.try_into().unwrap());
            let octet = lanes.wrapping_mul(0x0102_0408_1020_4080) >> 56;
            word |= octet << (8 * k);
        }
    } else {
        for (j, &b) in bytes.iter().enumerate() {
            word |= (b as u64) << j;
        }
    }
    word
}

/// Population count of the bit range `[start, start + len)`.
pub(crate) fn popcount_range(occ: &[u64], start: usize, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let end = start + len;
    let (first_w, last_w) = (start >> 6, (end - 1) >> 6);
    let lo_mask = !0u64 << (start & 63);
    let hi_mask = !0u64 >> (63 - ((end - 1) & 63));
    if first_w == last_w {
        return (occ[first_w] & lo_mask & hi_mask).count_ones() as usize;
    }
    let mut total = (occ[first_w] & lo_mask).count_ones() as usize;
    for w in &occ[first_w + 1..last_w] {
        total += w.count_ones() as usize;
    }
    total + (occ[last_w] & hi_mask).count_ones() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_test_clear() {
        let mut occ = vec![0u64; words_for(130)];
        assert!(!test(&occ, 129));
        assert!(!set(&mut occ, 129));
        assert!(set(&mut occ, 129), "second set reports prior occupancy");
        assert!(test(&occ, 129));
        clear_all(&mut occ);
        assert!(!test(&occ, 129));
    }

    #[test]
    fn pack_bytes_orders_bit_j_from_byte_j() {
        let mut bytes = [0u8; 64];
        bytes[0] = 1;
        bytes[9] = 1;
        bytes[63] = 1;
        assert_eq!(pack_bytes(&bytes), 1 | 1 << 9 | 1 << 63);
        // Short tail path.
        assert_eq!(pack_bytes(&[1, 0, 1]), 0b101);
        // Exhaustive single-bit check.
        for j in 0..64 {
            let mut b = [0u8; 64];
            b[j] = 1;
            assert_eq!(pack_bytes(&b), 1u64 << j, "byte {j}");
        }
    }

    #[test]
    fn popcount_over_unaligned_ranges() {
        let mut occ = vec![0u64; words_for(256)];
        for i in (0..256).step_by(3) {
            set(&mut occ, i);
        }
        for start in [0usize, 1, 63, 64, 65, 100] {
            for len in [0usize, 1, 5, 64, 120] {
                if start + len > 256 {
                    continue;
                }
                let expect = (start..start + len).filter(|i| i % 3 == 0).count();
                assert_eq!(popcount_range(&occ, start, len), expect, "[{start}; {len})");
            }
        }
    }
}
