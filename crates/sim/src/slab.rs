//! Occupancy machinery for the arc-indexed message slabs.
//!
//! Two representations, each used where it is cheapest:
//!
//! * **Staging byte-mask** (`Vec<u8>`, one byte per arc): what sends write.
//!   The reverse-arc permutation is a bijection, so every staging byte has
//!   exactly one writer per round — plain unsynchronized stores, no atomic
//!   read-modify-write anywhere on the hot path.
//! * **Word-packed bitset** (`Vec<u64>`, one bit per arc): what receivers
//!   read. Built from the byte-mask during the delivery sweep (64 arcs
//!   fold into one word), it makes `recv` a bit test and `inbox_len` a
//!   masked popcount, and clearing it is a 64×-denser memset than per-slot
//!   `Option` writes.

/// Number of `u64` words needed for `bits` bits.
#[inline]
pub(crate) fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// Read bit `i` of a word-packed bitset.
#[inline]
pub(crate) fn test(occ: &[u64], i: usize) -> bool {
    occ[i >> 6] >> (i & 63) & 1 == 1
}

/// Set bit `i`; returns whether it was already set.
#[inline]
pub(crate) fn set(occ: &mut [u64], i: usize) -> bool {
    let mask = 1u64 << (i & 63);
    let prior = occ[i >> 6] & mask != 0;
    occ[i >> 6] |= mask;
    prior
}

/// Zero every word.
#[inline]
pub(crate) fn clear_all(occ: &mut [u64]) {
    occ.fill(0);
}

/// Pack 64 staging bytes (each 0 or 1) into one occupancy word; byte `j`
/// becomes bit `j`.
#[inline]
pub(crate) fn pack_bytes(bytes: &[u8]) -> u64 {
    debug_assert!(bytes.len() <= 64);
    let mut word = 0u64;
    if bytes.len() == 64 {
        // 8 bytes at a time: multiplying a 0/1 byte lane vector by this
        // constant parks byte j's LSB at bit 56 + j; shifting down yields
        // the packed octet (classic SWAR LSB-gather).
        for (k, chunk) in bytes.chunks_exact(8).enumerate() {
            let lanes = u64::from_le_bytes(chunk.try_into().unwrap());
            let octet = lanes.wrapping_mul(0x0102_0408_1020_4080) >> 56;
            word |= octet << (8 * k);
        }
    } else {
        for (j, &b) in bytes.iter().enumerate() {
            word |= (b as u64) << j;
        }
    }
    word
}

/// Number of bit planes in the bit-sliced congestion accumulator: between
/// flushes each arc's delivery count fits `PLANES` bits.
pub(crate) const PLANES: usize = 6;

/// Deliveries accumulated per arc between flushes. `FLUSH_PERIOD` adds of
/// one bit each saturate exactly the `PLANES`-bit counter, so flushing
/// every `FLUSH_PERIOD` rounds makes ripple-carry overflow impossible.
pub(crate) const FLUSH_PERIOD: u64 = (1 << PLANES) - 1;

/// Add one round's delivery bits for one occupancy word into its
/// **bit-sliced counters**: `word_planes` holds the `PLANES` plane words
/// of this occupancy word (word-major layout, one cache line), where bit
/// `i` of plane `p` contributes `2^p` to arc `i`'s count. A ripple-carry
/// add costs ~2 word ops amortized — versus 64 `u32` increments for the
/// same 64 arcs in the naive layout.
#[inline]
pub(crate) fn planes_add(word_planes: &mut [u64], bits: u64) {
    debug_assert_eq!(word_planes.len(), PLANES);
    let mut carry = bits;
    for slot in word_planes.iter_mut() {
        let x = *slot;
        *slot = x ^ carry;
        carry &= x;
        if carry == 0 {
            return;
        }
    }
    debug_assert_eq!(carry, 0, "bit-plane counter overflow: flush was missed");
}

/// Flush one word's bit-sliced counts into per-arc `u32` totals and zero
/// the planes. `traffic` is the (≤ 64-arc) slice covered by this word.
/// Returns the largest per-arc total seen in the flushed range.
pub(crate) fn planes_flush(word_planes: &mut [u64], traffic: &mut [u32]) -> u32 {
    debug_assert_eq!(word_planes.len(), PLANES);
    for (p, slot) in word_planes.iter_mut().enumerate() {
        let mut word = *slot;
        *slot = 0;
        while word != 0 {
            let i = word.trailing_zeros() as usize;
            word &= word - 1;
            traffic[i] = traffic[i].saturating_add(1 << p);
        }
    }
    traffic.iter().copied().max().unwrap_or(0)
}

/// Software parallel-bit-extract: gather the bits of `word` selected by
/// `mask` into the low bits of the result, preserving order (the `pext`
/// instruction, one `while` loop per *set mask bit* in software). The wide
/// kernel's lane compaction uses this to repack per-arc lane words and
/// per-node undone words when live lanes move from slot `l_j` to slot `j`:
/// with `mask` = the live-slot word, bit `l_j` of every lane word lands at
/// bit `j` in one call.
#[inline]
pub(crate) fn pext(word: u64, mask: u64) -> u64 {
    if word & mask == 0 {
        // The dominant case in a compaction sweep: idle arcs gather to 0.
        return 0;
    }
    let mut out = 0u64;
    let mut m = mask;
    let mut j = 0u32;
    while m != 0 {
        let l = m.trailing_zeros();
        m &= m - 1;
        out |= (word >> l & 1) << j;
        j += 1;
    }
    out
}

/// Population count of the bit range `[start, start + len)`.
pub(crate) fn popcount_range(occ: &[u64], start: usize, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let end = start + len;
    let (first_w, last_w) = (start >> 6, (end - 1) >> 6);
    let lo_mask = !0u64 << (start & 63);
    let hi_mask = !0u64 >> (63 - ((end - 1) & 63));
    if first_w == last_w {
        return (occ[first_w] & lo_mask & hi_mask).count_ones() as usize;
    }
    let mut total = (occ[first_w] & lo_mask).count_ones() as usize;
    for w in &occ[first_w + 1..last_w] {
        total += w.count_ones() as usize;
    }
    total + (occ[last_w] & hi_mask).count_ones() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_test_clear() {
        let mut occ = vec![0u64; words_for(130)];
        assert!(!test(&occ, 129));
        assert!(!set(&mut occ, 129));
        assert!(set(&mut occ, 129), "second set reports prior occupancy");
        assert!(test(&occ, 129));
        clear_all(&mut occ);
        assert!(!test(&occ, 129));
    }

    #[test]
    fn pack_bytes_orders_bit_j_from_byte_j() {
        let mut bytes = [0u8; 64];
        bytes[0] = 1;
        bytes[9] = 1;
        bytes[63] = 1;
        assert_eq!(pack_bytes(&bytes), 1 | 1 << 9 | 1 << 63);
        // Short tail path.
        assert_eq!(pack_bytes(&[1, 0, 1]), 0b101);
        // Exhaustive single-bit check.
        for j in 0..64 {
            let mut b = [0u8; 64];
            b[j] = 1;
            assert_eq!(pack_bytes(&b), 1u64 << j, "byte {j}");
        }
    }

    #[test]
    fn bit_planes_count_like_u32_counters() {
        // Random-ish delivery patterns over FLUSH_PERIOD rounds must flush
        // to exactly the per-arc counts a naive counter array accumulates.
        let mut planes = vec![0u64; PLANES];
        let mut traffic = vec![0u32; 64];
        let mut expect = vec![0u32; 64];
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..FLUSH_PERIOD {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bits = state;
            planes_add(&mut planes, bits);
            for (i, e) in expect.iter_mut().enumerate() {
                *e += (bits >> i & 1) as u32;
            }
        }
        let max = planes_flush(&mut planes, &mut traffic);
        assert_eq!(traffic, expect);
        assert_eq!(max, *expect.iter().max().unwrap());
        assert!(planes.iter().all(|&p| p == 0), "flush zeroes the planes");
        // A second accumulate-flush cycle adds on top.
        planes_add(&mut planes, u64::MAX);
        planes_flush(&mut planes, &mut traffic);
        for (t, e) in traffic.iter().zip(&expect) {
            assert_eq!(*t, e + 1);
        }
    }

    #[test]
    fn pext_gathers_masked_bits_in_order() {
        assert_eq!(pext(0, !0), 0);
        assert_eq!(pext(!0, 0), 0);
        assert_eq!(pext(!0, !0), !0);
        // Bits 1, 3, 62 selected: their values land at 0, 1, 2.
        let mask = 1u64 << 1 | 1 << 3 | 1 << 62;
        assert_eq!(pext(1 << 3 | 1 << 62, mask), 0b110);
        assert_eq!(pext(1 << 1, mask), 0b001);
        // Reference implementation cross-check on pseudo-random words.
        let mut state = 0x0DD0_57ED_u64;
        for _ in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let word = state;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mask = state & state.rotate_left(17);
            let mut expect = 0u64;
            let mut j = 0;
            for l in 0..64 {
                if mask >> l & 1 == 1 {
                    expect |= (word >> l & 1) << j;
                    j += 1;
                }
            }
            assert_eq!(pext(word, mask), expect, "word {word:#x} mask {mask:#x}");
        }
    }

    #[test]
    fn popcount_over_unaligned_ranges() {
        let mut occ = vec![0u64; words_for(256)];
        for i in (0..256).step_by(3) {
            set(&mut occ, i);
        }
        for start in [0usize, 1, 63, 64, 65, 100] {
            for len in [0usize, 1, 5, 64, 120] {
                if start + len > 256 {
                    continue;
                }
                let expect = (start..start + len).filter(|i| i % 3 == 0).count();
                assert_eq!(popcount_range(&occ, start, len), expect, "[{start}; {len})");
            }
        }
    }
}
