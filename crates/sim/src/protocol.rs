//! The node-program abstraction.
//!
//! A [`Protocol`] is the state of **one node**; the engine owns one
//! instance per node and calls [`Protocol::round`] every round. Inside a
//! round the node sees only its own state, the messages delivered to it
//! this round, and local randomness — the CONGEST locality discipline is
//! enforced by construction, not convention.
//!
//! Messages travel packed ([`PackedMsg`]): the context unpacks on read and
//! packs on send, so protocols handle ordinary typed values while the
//! engine moves raw words.

use crate::message::PackedMsg;
use crate::slab;
use congest_graph::{Graph, Node, Port};
use congest_par::RacyCells;
use rand::rngs::SmallRng;

/// One node's program. The engine drives every node's `round` once per
/// CONGEST round; messages written via [`NodeCtx::send`] are delivered at
/// the start of the next round.
pub trait Protocol: Send {
    /// Wire message type: one such message fits one edge-direction-round.
    type Msg: PackedMsg;
    /// Per-node output collected when the run ends.
    type Output: Send;

    /// Execute one round. On round 0 the inbox is empty (initialization).
    fn round(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>);

    /// Consume the node state into its output after the run terminates.
    fn finish(self) -> Self::Output;
}

/// This node's received messages: a port-indexed word slice plus the
/// word-packed occupancy bits starting at `bit0`.
pub(crate) struct InSlot<'a, M: PackedMsg> {
    pub(crate) words: &'a [M::Word],
    pub(crate) occ: &'a [u64],
    pub(crate) bit0: usize,
}

/// Where this node's sends land.
pub(crate) enum OutSlot<'a, M: PackedMsg> {
    /// Engine mode: scatter straight into the *destination* arc slot of
    /// the staging slab through the reverse-arc permutation, so delivery
    /// is a buffer swap. Disjointness: `rev` is a bijection on arcs, and
    /// `rev[lo..lo+deg]` are exactly this node's destinations — which is
    /// why the staging mask is one *byte* per arc written with a plain
    /// store (no atomic read-modify-write on the send path).
    Scatter {
        words: &'a RacyCells<'a, M::Word>,
        mask: &'a RacyCells<'a, u8>,
        rev: &'a [u32],
        lo: usize,
        deg: usize,
    },
    /// Host mode: a plain port-indexed buffer, used by protocol
    /// combinators (e.g. [`crate::sched::Multiplexed`]) that run
    /// sub-protocols against node-local buffers.
    Local {
        words: &'a mut [M::Word],
        occ: &'a mut [u64],
    },
}

/// Everything one node may legitimately touch during one round.
pub struct NodeCtx<'a, M: PackedMsg> {
    /// This node's id.
    pub node: Node,
    /// Current round number (0-based).
    pub round: u64,
    pub(crate) graph: &'a Graph,
    pub(crate) inbox: InSlot<'a, M>,
    pub(crate) outbox: OutSlot<'a, M>,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) done: &'a mut bool,
    /// Largest `MsgBits::bits()` this node has sent over the whole run
    /// (folded into [`crate::RunStats::max_message_bits`]).
    pub(crate) max_bits: &'a mut usize,
}

impl<'a, M: PackedMsg> NodeCtx<'a, M> {
    /// Degree of this node = number of ports.
    #[inline]
    pub fn degree(&self) -> usize {
        self.inbox.words.len()
    }

    /// Neighbor reached through `port`.
    #[inline]
    pub fn neighbor(&self, port: Port) -> Node {
        self.graph.neighbor_at(self.node, port)
    }

    /// Undirected edge id behind `port` — stable across the run, usable as
    /// an index into edge-colored structures (e.g. the Theorem 2 partition).
    #[inline]
    pub fn edge(&self, port: Port) -> congest_graph::Edge {
        self.graph.edge_at(self.node, port)
    }

    /// All neighbor ids (sorted ascending; index = port).
    #[inline]
    pub fn neighbors(&self) -> &'a [Node] {
        self.graph.neighbors(self.node)
    }

    /// Total number of nodes in the network. CONGEST algorithms may assume
    /// knowledge of `n` (or a polynomial upper bound) — the paper does, for
    /// its `C log n` thresholds.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// The message delivered on `port` this round, if any. Unpacks by
    /// value — wire messages are `Copy` words, never references.
    #[inline]
    pub fn recv(&self, port: Port) -> Option<M> {
        if slab::test(self.inbox.occ, self.inbox.bit0 + port as usize) {
            Some(M::unpack(self.inbox.words[port as usize]))
        } else {
            None
        }
    }

    /// Iterate `(port, message)` over all messages delivered this round,
    /// in ascending port order. Walks the occupancy *words*, so quiescent
    /// ports cost nothing — an empty inbox is a couple of word loads
    /// regardless of degree.
    pub fn inbox(&self) -> impl Iterator<Item = (Port, M)> + '_ {
        let deg = self.degree();
        let bit0 = self.inbox.bit0;
        let words = self.inbox.words;
        let occ = self.inbox.occ;
        let first_w = bit0 >> 6;
        let last_w = if deg == 0 {
            first_w
        } else {
            (bit0 + deg - 1) >> 6
        };
        let mut w = first_w;
        let mut current: u64 = 0;
        if deg > 0 {
            // Mask off bits outside this node's range.
            current = occ[w] & (!0u64 << (bit0 & 63));
            if w == last_w {
                let top = (bit0 + deg - 1) & 63;
                current &= !0u64 >> (63 - top);
            }
        }
        std::iter::from_fn(move || {
            if deg == 0 {
                return None;
            }
            loop {
                if current != 0 {
                    let bit = (w << 6) + current.trailing_zeros() as usize;
                    current &= current - 1;
                    let port = (bit - bit0) as Port;
                    return Some((port, M::unpack(words[port as usize])));
                }
                if w >= last_w {
                    return None;
                }
                w += 1;
                current = occ[w];
                if w == last_w {
                    let top = (bit0 + deg - 1) & 63;
                    current &= !0u64 >> (63 - top);
                }
            }
        })
    }

    /// Number of messages delivered this round (word-packed popcount).
    pub fn inbox_len(&self) -> usize {
        slab::popcount_range(self.inbox.occ, self.inbox.bit0, self.degree())
    }

    /// Send `msg` through `port`. Panics if a message was already written
    /// to this port this round — that would violate the CONGEST bandwidth
    /// of one message per edge-direction per round.
    #[inline]
    pub fn send(&mut self, port: Port, msg: M) {
        let bits = msg.bits();
        if bits > *self.max_bits {
            *self.max_bits = bits;
        }
        let word = msg.pack();
        let already = match &mut self.outbox {
            OutSlot::Scatter {
                words,
                mask,
                rev,
                lo,
                deg,
            } => {
                assert!((port as usize) < *deg, "send on nonexistent port {port}");
                let dest = rev[*lo + port as usize] as usize;
                // Sound: `rev` is a bijection, so slot `dest` belongs to
                // this (node, port) alone this round.
                let already = unsafe { mask.read(dest) } != 0;
                if !already {
                    unsafe {
                        mask.write(dest, 1);
                        words.write(dest, word);
                    }
                }
                already
            }
            OutSlot::Local { words, occ } => {
                let already = slab::set(occ, port as usize);
                if !already {
                    words[port as usize] = word;
                }
                already
            }
        };
        assert!(
            !already,
            "CONGEST violation: node {} sent twice on port {} in round {}",
            self.node, port, self.round
        );
    }

    /// Send a copy of `msg` to every neighbor. In engine mode this walks
    /// the node's reverse-arc slice directly — one packed word, `deg`
    /// plain stores.
    pub fn send_all(&mut self, msg: M) {
        match &mut self.outbox {
            OutSlot::Scatter {
                words,
                mask,
                rev,
                lo,
                deg,
            } => {
                let bits = msg.bits();
                if bits > *self.max_bits {
                    *self.max_bits = bits;
                }
                let word = msg.pack();
                for &dest in &rev[*lo..*lo + *deg] {
                    let dest = dest as usize;
                    // Sound: own destination slots (see `send`).
                    unsafe {
                        assert!(
                            mask.read(dest) == 0,
                            "CONGEST violation: node {} double-sent in round {}",
                            self.node,
                            self.round
                        );
                        mask.write(dest, 1);
                        words.write(dest, word);
                    }
                }
            }
            OutSlot::Local { .. } => {
                for p in 0..self.degree() as Port {
                    self.send(p, msg);
                }
            }
        }
    }

    /// Whether this node already wrote to `port` this round.
    #[inline]
    pub fn port_used(&self, port: Port) -> bool {
        match &self.outbox {
            OutSlot::Scatter { mask, rev, lo, .. } => {
                // Sound: own destination slot (see `send`).
                unsafe { mask.read(rev[*lo + port as usize] as usize) != 0 }
            }
            OutSlot::Local { occ, .. } => slab::test(occ, port as usize),
        }
    }

    /// This node's private RNG (deterministic per `(run_seed, node)`).
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Declare local completion. The run ends when *all* nodes are done and
    /// no message is in flight. A node may clear its flag again later
    /// (e.g. when reactivated by an unexpected message).
    #[inline]
    pub fn set_done(&mut self, done: bool) {
        *self.done = done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_protocol, EngineConfig};
    use congest_graph::generators::cycle;

    /// Every node sends its id once and records what it hears.
    struct HelloNode {
        heard: Vec<Node>,
    }

    impl Protocol for HelloNode {
        type Msg = u32;
        type Output = Vec<Node>;

        fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
            if ctx.round == 0 {
                ctx.send_all(ctx.node);
                return;
            }
            let msgs: Vec<u32> = ctx.inbox().map(|(_, m)| m).collect();
            self.heard.extend(msgs);
            ctx.set_done(true);
        }

        fn finish(self) -> Vec<Node> {
            self.heard
        }
    }

    #[test]
    fn hello_exchange_on_cycle() {
        let g = cycle(5);
        let out = run_protocol(
            &g,
            |_, _| HelloNode { heard: Vec::new() },
            EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(out.stats.rounds, 1);
        for v in 0..5u32 {
            let mut heard = out.outputs[v as usize].clone();
            heard.sort_unstable();
            let mut expect = vec![(v + 4) % 5, (v + 1) % 5];
            expect.sort_unstable();
            assert_eq!(heard, expect);
        }
    }

    /// A node that (incorrectly) double-sends must panic.
    struct DoubleSender;
    impl Protocol for DoubleSender {
        type Msg = u32;
        type Output = ();
        fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
            if ctx.round == 0 {
                ctx.send(0, 1);
                ctx.send(0, 2); // violation
            }
        }
        fn finish(self) {}
    }

    #[test]
    #[should_panic(expected = "CONGEST violation")]
    fn double_send_panics() {
        let g = cycle(3);
        let _ = run_protocol(&g, |_, _| DoubleSender, EngineConfig::serial());
    }
}
