//! The node-program abstraction.
//!
//! A [`Protocol`] is the state of **one node**; the engine owns one
//! instance per node and calls [`Protocol::round`] every round. Inside a
//! round the node sees only its own state, the messages delivered to it
//! this round, and local randomness — the CONGEST locality discipline is
//! enforced by construction, not convention.

use crate::message::MsgBits;
use congest_graph::{Graph, Node, Port};
use rand::rngs::SmallRng;

/// One node's program. The engine drives every node's `round` once per
/// CONGEST round; messages written via [`NodeCtx::send`] are delivered at
/// the start of the next round.
pub trait Protocol: Send {
    /// Wire message type: one such message fits one edge-direction-round.
    type Msg: Clone + Send + Sync + MsgBits + 'static;
    /// Per-node output collected when the run ends.
    type Output: Send;

    /// Execute one round. On round 0 the inbox is empty (initialization).
    fn round(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>);

    /// Consume the node state into its output after the run terminates.
    fn finish(self) -> Self::Output;
}

/// Everything one node may legitimately touch during one round.
pub struct NodeCtx<'a, M> {
    /// This node's id.
    pub node: Node,
    /// Current round number (0-based).
    pub round: u64,
    pub(crate) graph: &'a Graph,
    pub(crate) inbox: &'a [Option<M>],
    pub(crate) outbox: &'a mut [Option<M>],
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) done: &'a mut bool,
}

impl<'a, M: Clone> NodeCtx<'a, M> {
    /// Degree of this node = number of ports.
    #[inline]
    pub fn degree(&self) -> usize {
        self.inbox.len()
    }

    /// Neighbor reached through `port`.
    #[inline]
    pub fn neighbor(&self, port: Port) -> Node {
        self.graph.neighbor_at(self.node, port)
    }

    /// Undirected edge id behind `port` — stable across the run, usable as
    /// an index into edge-colored structures (e.g. the Theorem 2 partition).
    #[inline]
    pub fn edge(&self, port: Port) -> congest_graph::Edge {
        self.graph.edge_at(self.node, port)
    }

    /// All neighbor ids (sorted ascending; index = port).
    #[inline]
    pub fn neighbors(&self) -> &'a [Node] {
        self.graph.neighbors(self.node)
    }

    /// Total number of nodes in the network. CONGEST algorithms may assume
    /// knowledge of `n` (or a polynomial upper bound) — the paper does, for
    /// its `C log n` thresholds.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// The message delivered on `port` this round, if any.
    #[inline]
    pub fn recv(&self, port: Port) -> Option<&M> {
        self.inbox[port as usize].as_ref()
    }

    /// Iterate `(port, message)` over all messages delivered this round.
    pub fn inbox(&self) -> impl Iterator<Item = (Port, &M)> {
        self.inbox
            .iter()
            .enumerate()
            .filter_map(|(p, m)| m.as_ref().map(|m| (p as Port, m)))
    }

    /// Number of messages delivered this round.
    pub fn inbox_len(&self) -> usize {
        self.inbox.iter().filter(|m| m.is_some()).count()
    }

    /// Send `msg` through `port`. Panics if a message was already written
    /// to this port this round — that would violate the CONGEST bandwidth
    /// of one message per edge-direction per round.
    #[inline]
    pub fn send(&mut self, port: Port, msg: M) {
        let slot = &mut self.outbox[port as usize];
        assert!(
            slot.is_none(),
            "CONGEST violation: node {} sent twice on port {} in round {}",
            self.node,
            port,
            self.round
        );
        *slot = Some(msg);
    }

    /// Send a copy of `msg` to every neighbor.
    pub fn send_all(&mut self, msg: M) {
        for p in 0..self.outbox.len() {
            self.send(p as Port, msg.clone());
        }
    }

    /// Whether this node already wrote to `port` this round.
    #[inline]
    pub fn port_used(&self, port: Port) -> bool {
        self.outbox[port as usize].is_some()
    }

    /// This node's private RNG (deterministic per `(run_seed, node)`).
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Declare local completion. The run ends when *all* nodes are done and
    /// no message is in flight. A node may clear its flag again later
    /// (e.g. when reactivated by an unexpected message).
    #[inline]
    pub fn set_done(&mut self, done: bool) {
        *self.done = done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_protocol, EngineConfig};
    use congest_graph::generators::cycle;

    /// Every node sends its id once and records what it hears.
    struct HelloNode {
        heard: Vec<Node>,
    }

    impl Protocol for HelloNode {
        type Msg = u32;
        type Output = Vec<Node>;

        fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
            if ctx.round == 0 {
                ctx.send_all(ctx.node);
                return;
            }
            let msgs: Vec<u32> = ctx.inbox().map(|(_, &m)| m).collect();
            self.heard.extend(msgs);
            ctx.set_done(true);
        }

        fn finish(self) -> Vec<Node> {
            self.heard
        }
    }

    #[test]
    fn hello_exchange_on_cycle() {
        let g = cycle(5);
        let out = run_protocol(
            &g,
            |_, _| HelloNode { heard: Vec::new() },
            EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(out.stats.rounds, 1);
        for v in 0..5u32 {
            let mut heard = out.outputs[v as usize].clone();
            heard.sort_unstable();
            let mut expect = vec![(v + 4) % 5, (v + 1) % 5];
            expect.sort_unstable();
            assert_eq!(heard, expect);
        }
    }

    /// A node that (incorrectly) double-sends must panic.
    struct DoubleSender;
    impl Protocol for DoubleSender {
        type Msg = u32;
        type Output = ();
        fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
            if ctx.round == 0 {
                ctx.send(0, 1);
                ctx.send(0, 2); // violation
            }
        }
        fn finish(self) {}
    }

    #[test]
    #[should_panic(expected = "CONGEST violation")]
    fn double_send_panics() {
        let g = cycle(3);
        let _ = run_protocol(&g, |_, _| DoubleSender, EngineConfig::serial());
    }
}
