//! The node-program abstraction.
//!
//! A [`Protocol`] is the state of **one node**; the engine owns one
//! instance per node and calls [`Protocol::round`] every round. Inside a
//! round the node sees only its own state, the messages delivered to it
//! this round, and local randomness — the CONGEST locality discipline is
//! enforced by construction, not convention.
//!
//! Messages travel packed ([`PackedMsg`]): the context unpacks on read and
//! packs on send, so protocols handle ordinary typed values while the
//! engine moves raw words.

use crate::message::PackedMsg;
use crate::slab;
use congest_graph::{Graph, Node, Port};
use congest_par::RacyCells;
use rand::rngs::SmallRng;

/// One node's program. The engine drives every node's `round` once per
/// CONGEST round; messages written via [`NodeCtx::send`] are delivered at
/// the start of the next round.
pub trait Protocol: Send {
    /// Wire message type: one such message fits one edge-direction-round.
    type Msg: PackedMsg;
    /// Per-node output collected when the run ends.
    type Output: Send;

    /// Opt-in idle contract for the wide-batch kernel: `true` promises
    /// that once a node has declared [`NodeCtx::set_done`] and receives an
    /// **empty inbox**, its `round` is a semantic no-op — it sends
    /// nothing, mutates no state (including its RNG), and leaves the done
    /// flag set. [`crate::wide::WideSession`] then skips the `round` call
    /// entirely for such (node, lane) pairs, which is where most of the
    /// W-way speedup on sparse workloads comes from. The sequential
    /// engine ignores this flag, and `proptest_wide` pins the skip
    /// bit-identical, so a wrong promise is caught, not silently wrong.
    /// Default `false`: every active lane steps every node every round.
    const QUIESCENT: bool = false;

    /// Execute one round. On round 0 the inbox is empty (initialization).
    fn round(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>);

    /// Consume the node state into its output after the run terminates.
    fn finish(self) -> Self::Output;
}

/// Receiver view of the **broadcast plane**: per-node broadcast words and
/// presence bits from last round. A `send_all` stores its message once in
/// the sender's broadcast slot instead of `deg` scattered arc slots;
/// receivers look broadcasters up through their (cache-resident) neighbor
/// lists. `any` gates the O(deg) neighbor scan — rounds with no broadcast
/// anywhere cost receivers nothing.
pub(crate) struct BcastIn<'a, M: PackedMsg> {
    pub(crate) words: &'a [M::Word],
    /// One presence bit per *node* (folded by last round's deliver).
    pub(crate) occ: &'a [u64],
    /// The graph's flattened arc → target table ([`Graph::arc_targets`]):
    /// global arc position → neighbor id. Shared by every node, so the
    /// engine builds one `BcastIn` per round and hands contexts a pointer.
    pub(crate) adj: &'a [Node],
    /// Did anyone broadcast last round?
    pub(crate) any: bool,
}

/// Sender view of the broadcast plane: the node's own broadcast slot and
/// staging byte (single writer per slot — the owning node).
pub(crate) struct BcastOut<'a, M: PackedMsg> {
    pub(crate) words: &'a RacyCells<'a, M::Word>,
    pub(crate) stage: &'a RacyCells<'a, u8>,
}

/// This node's received messages: a port-indexed word slice plus the
/// word-packed occupancy bits starting at `bit0`, and (engine mode) the
/// broadcast plane. `bcast` is `None` in host mode and under the fault
/// adversary (which needs per-arc staging to drop individual messages).
pub(crate) struct InSlot<'a, M: PackedMsg> {
    pub(crate) words: &'a [M::Word],
    pub(crate) occ: &'a [u64],
    pub(crate) bit0: usize,
    pub(crate) bcast: Option<&'a BcastIn<'a, M>>,
}

/// Shard-invariant scatter-plane handles plus the shard's staging
/// counters, built **once per shard per round** and shared by reference
/// across every node context the shard constructs — one pointer per
/// context instead of a dozen fields (sparse rounds are step-dominated,
/// so context construction is hot). The counters are `Cell`s: the plane
/// lives on the owning shard task's stack and is touched by that task
/// alone; only the `RacyCells` slabs inside are cross-thread.
///
/// Since the host-mode slimming pass this descriptor also carries the
/// cold per-round fields the context used to copy per node (`graph`):
/// [`NodeCtx`] holds one pointer to the plane instead.
pub(crate) struct ScatterPlane<'a, M: PackedMsg> {
    pub(crate) graph: &'a Graph,
    pub(crate) words: &'a RacyCells<'a, M::Word>,
    pub(crate) mask: &'a RacyCells<'a, u8>,
    pub(crate) rev: &'a [u32],
    pub(crate) bcast: Option<&'a BcastOut<'a, M>>,
    /// The engine's active-send worklist slab: the first `wl_cap` staged
    /// destination arcs of this shard land in `wl[wl_lo..wl_lo+wl_cap]`
    /// (recording stops past the cap — the engine only trusts the list
    /// when the round's global total fits its sparse threshold, which
    /// the per-shard caps dominate).
    pub(crate) wl: &'a RacyCells<'a, u32>,
    pub(crate) wl_lo: usize,
    pub(crate) wl_cap: usize,
    /// Count of messages this shard staged through the per-arc mask this
    /// round (per-port `send`, or `send_all`'s scatter fallback). Zero
    /// lets the deliver sweep skip the arc plane entirely; a small
    /// global total takes the sparse worklist fast path.
    pub(crate) staged: std::cell::Cell<u32>,
    /// Whether this shard staged anything through the broadcast plane
    /// this round (gates the per-node plane fold).
    pub(crate) bcast_used: std::cell::Cell<bool>,
}

impl<'a, M: PackedMsg> ScatterPlane<'a, M> {
    /// Record one staged destination arc in the shard worklist.
    #[inline]
    fn record(&self, dest: usize) {
        let k = self.staged.get() as usize;
        if k < self.wl_cap {
            // Sound: the worklist region belongs to this shard alone.
            unsafe { self.wl.write(self.wl_lo + k, dest as u32) };
        }
        self.staged.set(k as u32 + 1);
    }
}

/// Where this node's sends land.
pub(crate) enum OutSlot<'a, M: PackedMsg> {
    /// Engine mode: per-port sends scatter straight into the *destination*
    /// arc slot of the staging slab through the reverse-arc permutation,
    /// so delivery is a buffer swap. Disjointness: `rev` is a bijection on
    /// arcs, and the node's destinations are exactly
    /// `rev[bit0..bit0+deg]` (the context's inbox range doubles as the
    /// outbox range — one CSR offset serves both) — which is why the
    /// staging mask is one *byte* per arc written with a plain store (no
    /// atomic read-modify-write on the send path). `send_all` goes
    /// through the broadcast plane when available: one word + one staging
    /// byte per *node* instead of per arc.
    Scatter { plane: &'a ScatterPlane<'a, M> },
    /// Host mode: a plain port-indexed buffer, used by protocol
    /// combinators (e.g. [`crate::sched::Multiplexed`]) that run
    /// sub-protocols against node-local buffers.
    Local {
        words: &'a mut [M::Word],
        occ: &'a mut [u64],
        graph: &'a Graph,
    },
}

/// Iterator over one round's delivered `(port, message)` pairs, ascending
/// by port, merged from the arc slab and the broadcast plane. See
/// [`NodeCtx::inbox`].
pub struct InboxIter<'a, M: PackedMsg> {
    words: &'a [M::Word],
    occ: &'a [u64],
    bit0: usize,
    deg: usize,
    bcast: Option<&'a BcastIn<'a, M>>,
    /// Current occupancy word index (global, into `occ`).
    w: usize,
    /// Last occupancy word index overlapping this node's port range.
    last_w: usize,
    /// Remaining slab-delivered bits of word `w` (range-masked).
    cur_slab: u64,
    /// Remaining broadcast-delivered bits of word `w`. Disjoint from
    /// `cur_slab`: a sender cannot both `send` on a port and `send_all`
    /// in one round (enforced at send time).
    cur_bcast: u64,
}

impl<'a, M: PackedMsg> InboxIter<'a, M> {
    /// Load occupancy word `w`, masked to this node's port range.
    #[inline]
    fn slab_word(&self, w: usize) -> u64 {
        let mut bits = self.occ[w];
        if w << 6 < self.bit0 {
            bits &= !0u64 << (self.bit0 & 63);
        }
        if w == self.last_w {
            let top = (self.bit0 + self.deg - 1) & 63;
            bits &= !0u64 >> (63 - top);
        }
        bits
    }

    /// Broadcast-presence bits of word `w`: bit set for each port in range
    /// whose neighbor broadcast last round. Inlined because external
    /// iteration (`for` over the inbox) rebuilds it on every word advance
    /// inside `next`; the internal `fold` path only calls it once per
    /// word too, but from a loop the compiler already keeps hot.
    #[inline]
    fn bcast_word(&self, w: usize) -> u64 {
        let Some(b) = &self.bcast else { return 0 };
        if !b.any {
            return 0;
        }
        let lo = (w << 6).max(self.bit0);
        let hi = ((w << 6) + 64).min(self.bit0 + self.deg);
        let mut bits = 0u64;
        for bitpos in lo..hi {
            // Sound: `bitpos` is a valid arc position (< adj.len()), and
            // every neighbor id is `< n`, the occ bitset's bit length.
            unsafe {
                let nb = *b.adj.get_unchecked(bitpos) as usize;
                let present = *b.occ.get_unchecked(nb >> 6) >> (nb & 63) & 1;
                bits |= present << (bitpos & 63);
            }
        }
        bits
    }

    /// Unpack the message at `port`, from the slab or the broadcaster's
    /// slot depending on which presence word claimed the bit.
    ///
    /// Safety of the unchecked loads: presence bits outside
    /// `bit0..bit0+deg` are masked off before use, so every derived port
    /// is `< deg == words.len() == neighbors.len()`.
    #[inline]
    fn msg_at(&self, port: Port, from_slab: bool) -> M {
        if from_slab {
            M::unpack(unsafe { *self.words.get_unchecked(port as usize) })
        } else {
            let b = self.bcast.expect("bcast bit implies bcast plane");
            // Sound: `bit0 + port` is a valid arc position; neighbor ids
            // index the n-slot broadcast table.
            unsafe {
                let nb = *b.adj.get_unchecked(self.bit0 + port as usize) as usize;
                M::unpack(*b.words.get_unchecked(nb))
            }
        }
    }
}

impl<'a, M: PackedMsg> Iterator for InboxIter<'a, M> {
    type Item = (Port, M);

    #[inline]
    fn next(&mut self) -> Option<(Port, M)> {
        if self.deg == 0 {
            return None;
        }
        loop {
            let merged = self.cur_slab | self.cur_bcast;
            if merged != 0 {
                let t = merged.trailing_zeros() as usize;
                let bit = (self.w << 6) + t;
                let from_slab = self.cur_slab >> t & 1 == 1;
                if from_slab {
                    self.cur_slab &= self.cur_slab - 1;
                } else {
                    self.cur_bcast &= self.cur_bcast - 1;
                }
                let port = (bit - self.bit0) as Port;
                return Some((port, self.msg_at(port, from_slab)));
            }
            if self.w >= self.last_w {
                return None;
            }
            self.w += 1;
            self.cur_slab = self.slab_word(self.w);
            self.cur_bcast = self.bcast_word(self.w);
        }
    }

    /// Internal iteration without the per-item state machine: a word loop
    /// with a bit loop inside, plus a sequential fast path for fully
    /// occupied words — the dense-traffic case becomes a linear scan the
    /// compiler can unroll, instead of 64 `trailing_zeros` round-trips.
    /// In rounds where anyone broadcast, the presence gather and the
    /// message read are **fused**: one neighbor-list pass per word yields
    /// both, instead of building a presence word and re-deriving sources.
    #[inline]
    fn fold<B, F>(self, init: B, mut f: F) -> B
    where
        F: FnMut(B, (Port, M)) -> B,
    {
        let mut acc = init;
        if self.deg == 0 {
            return acc;
        }
        if !self.bcast.is_some_and(|b| b.any) {
            // No broadcast anywhere this round (the sparse regime's
            // common case): a minimal word loop over the slab bits alone,
            // with the dense full-word fast path — no plane probes, no
            // per-item source dispatch. Quiescent nodes fall straight
            // through; this prologue is small enough to inline into the
            // protocol's round body, unlike the fused scan below.
            let mut w = self.w;
            let mut bits = self.cur_slab;
            loop {
                if bits == u64::MAX {
                    // Full word ⇒ 64 consecutive in-range ports.
                    let base = (w << 6) - self.bit0;
                    for j in 0..64 {
                        let port = (base + j) as Port;
                        let m = M::unpack(unsafe { *self.words.get_unchecked(port as usize) });
                        acc = f(acc, (port, m));
                    }
                } else {
                    while bits != 0 {
                        let t = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let port = ((w << 6) + t - self.bit0) as Port;
                        // Sound: range-masked bits imply port < deg.
                        let m = M::unpack(unsafe { *self.words.get_unchecked(port as usize) });
                        acc = f(acc, (port, m));
                    }
                }
                if w >= self.last_w {
                    return acc;
                }
                w += 1;
                bits = self.slab_word(w);
            }
        }
        self.fold_fused(acc, &mut f)
    }
}

impl<'a, M: PackedMsg> InboxIter<'a, M> {
    /// The broadcast-fused internal iteration: one neighbor-list pass per
    /// word yields presence and message together. Out-of-line — it only
    /// runs in rounds where someone broadcast, and keeping it out of
    /// `fold` keeps the sparse prologue inlinable.
    fn fold_fused<B, F>(mut self, mut acc: B, f: &mut F) -> B
    where
        F: FnMut(B, (Port, M)) -> B,
    {
        loop {
            let slab = self.cur_slab;
            let mut bits = slab | self.cur_bcast;
            if bits == u64::MAX {
                // Full word ⇒ the whole word lies inside the port range
                // (range masks would have cleared bits otherwise), so
                // `w << 6 >= bit0` and 64 consecutive ports are present.
                let base = (self.w << 6) - self.bit0;
                for j in 0..64 {
                    let port = (base + j) as Port;
                    acc = f(acc, (port, self.msg_at(port, slab >> j & 1 == 1)));
                }
            } else {
                while bits != 0 {
                    let t = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let bit = (self.w << 6) + t;
                    let port = (bit - self.bit0) as Port;
                    acc = f(acc, (port, self.msg_at(port, slab >> t & 1 == 1)));
                }
            }
            if self.w >= self.last_w {
                return acc;
            }
            self.w += 1;
            let b = self.bcast.expect("fused path implies a live plane");
            let slab_bits = self.slab_word(self.w);
            let lo = (self.w << 6).max(self.bit0);
            let hi = ((self.w << 6) + 64).min(self.bit0 + self.deg);
            if slab_bits == 0 {
                // Broadcast-only word (the common dense case): a tight
                // neighbor scan with no per-port slab test.
                for bitpos in lo..hi {
                    let port = (bitpos - self.bit0) as Port;
                    // Sound: `bitpos` is a valid arc position;
                    // neighbor ids index the n-bit occ set and n-slot
                    // table.
                    unsafe {
                        let nb = *b.adj.get_unchecked(bitpos) as usize;
                        if *b.occ.get_unchecked(nb >> 6) >> (nb & 63) & 1 == 1 {
                            let m = M::unpack(*b.words.get_unchecked(nb));
                            acc = f(acc, (port, m));
                        }
                    }
                }
            } else {
                for bitpos in lo..hi {
                    let port = (bitpos - self.bit0) as Port;
                    if slab_bits >> (bitpos & 63) & 1 == 1 {
                        let m = M::unpack(unsafe { *self.words.get_unchecked(port as usize) });
                        acc = f(acc, (port, m));
                        continue;
                    }
                    // Sound: `bitpos` is a valid arc position;
                    // neighbor ids index the n-bit occ set and n-slot
                    // table.
                    unsafe {
                        let nb = *b.adj.get_unchecked(bitpos) as usize;
                        if *b.occ.get_unchecked(nb >> 6) >> (nb & 63) & 1 == 1 {
                            let m = M::unpack(*b.words.get_unchecked(nb));
                            acc = f(acc, (port, m));
                        }
                    }
                }
            }
            if self.w >= self.last_w {
                return acc;
            }
            // The fused pass consumed word `w` entirely.
            self.cur_slab = 0;
            self.cur_bcast = 0;
        }
    }
}

/// Everything one node may legitimately touch during one round.
///
/// Kept deliberately small: contexts are rebuilt for every node every
/// round (and for every hosted sub-protocol under the multiplexer), so
/// shard-invariant state lives behind one `ScatterPlane` pointer and
/// the per-port ranges are derived from the inbox slice instead of being
/// stored twice.
pub struct NodeCtx<'a, M: PackedMsg> {
    /// This node's id.
    pub node: Node,
    /// Current round number (0-based).
    pub round: u64,
    pub(crate) inbox: InSlot<'a, M>,
    pub(crate) outbox: OutSlot<'a, M>,
    /// Whether this node already staged a broadcast-plane word this
    /// round. Mirrors the node's own `bcast_stage` byte (which the
    /// deliver fold always zeroes before the next step), so the send hot
    /// path tests a context-local flag instead of re-reading the shared
    /// staging slab per send.
    pub(crate) bcast_staged: bool,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) done: &'a mut bool,
    /// Largest `MsgBits::bits()` this node has sent over the whole run
    /// (folded into [`crate::RunStats::max_message_bits`]).
    pub(crate) max_bits: &'a mut usize,
}

impl<'a, M: PackedMsg> NodeCtx<'a, M> {
    /// The graph, reached through whichever shared descriptor this
    /// context runs against (the per-shard scatter plane in engine mode,
    /// the host's own handle in host mode).
    #[inline]
    pub(crate) fn graph(&self) -> &'a Graph {
        match &self.outbox {
            OutSlot::Scatter { plane } => plane.graph,
            OutSlot::Local { graph, .. } => graph,
        }
    }

    /// Degree of this node = number of ports.
    #[inline]
    pub fn degree(&self) -> usize {
        self.inbox.words.len()
    }

    /// Neighbor reached through `port`.
    #[inline]
    pub fn neighbor(&self, port: Port) -> Node {
        self.graph().neighbor_at(self.node, port)
    }

    /// Undirected edge id behind `port` — stable across the run, usable as
    /// an index into edge-colored structures (e.g. the Theorem 2 partition).
    #[inline]
    pub fn edge(&self, port: Port) -> congest_graph::Edge {
        self.graph().edge_at(self.node, port)
    }

    /// All neighbor ids (sorted ascending; index = port).
    #[inline]
    pub fn neighbors(&self) -> &'a [Node] {
        self.graph().neighbors(self.node)
    }

    /// Total number of nodes in the network. CONGEST algorithms may assume
    /// knowledge of `n` (or a polynomial upper bound) — the paper does, for
    /// its `C log n` thresholds.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph().n()
    }

    /// The message delivered on `port` this round, if any. Unpacks by
    /// value — wire messages are `Copy` words, never references.
    #[inline]
    pub fn recv(&self, port: Port) -> Option<M> {
        if slab::test(self.inbox.occ, self.inbox.bit0 + port as usize) {
            return Some(M::unpack(self.inbox.words[port as usize]));
        }
        if let Some(b) = self.inbox.bcast {
            if b.any {
                let nb = b.adj[self.inbox.bit0 + port as usize] as usize;
                if slab::test(b.occ, nb) {
                    return Some(M::unpack(b.words[nb]));
                }
            }
        }
        None
    }

    /// Iterate `(port, message)` over all messages delivered this round,
    /// in ascending port order. Walks the occupancy *words*, so quiescent
    /// ports cost nothing — an empty inbox is a couple of word loads
    /// regardless of degree. Internal iteration (`fold`, and everything
    /// built on it: `for_each`, `sum`, folds over `map`/`filter` adapters)
    /// runs a word-nested loop with a dense fast path, so saturated
    /// inboxes cost a sequential scan instead of per-bit extraction.
    #[inline]
    pub fn inbox(&self) -> InboxIter<'_, M> {
        let deg = self.degree();
        let bit0 = self.inbox.bit0;
        let occ = self.inbox.occ;
        let first_w = bit0 >> 6;
        let last_w = if deg == 0 {
            first_w
        } else {
            (bit0 + deg - 1) >> 6
        };
        let mut it = InboxIter {
            words: self.inbox.words,
            occ,
            bit0,
            deg,
            bcast: self.inbox.bcast,
            w: first_w,
            last_w,
            cur_slab: 0,
            cur_bcast: 0,
        };
        if deg > 0 {
            it.cur_slab = it.slab_word(first_w);
            it.cur_bcast = it.bcast_word(first_w);
        }
        it
    }

    /// Number of messages delivered this round: a word-packed popcount
    /// over the arc slab, plus (in rounds where anyone broadcast) a
    /// neighbor scan over the broadcast-presence bits.
    pub fn inbox_len(&self) -> usize {
        let mut len = slab::popcount_range(self.inbox.occ, self.inbox.bit0, self.degree());
        if let Some(b) = self.inbox.bcast {
            if b.any {
                for &nb in &b.adj[self.inbox.bit0..self.inbox.bit0 + self.degree()] {
                    len += (b.occ[nb as usize >> 6] >> (nb & 63) & 1) as usize;
                }
            }
        }
        len
    }

    /// Send `msg` through `port`. Panics if a message was already written
    /// to this port this round — that would violate the CONGEST bandwidth
    /// of one message per edge-direction per round.
    #[inline]
    pub fn send(&mut self, port: Port, msg: M) {
        let bits = msg.bits();
        if bits > *self.max_bits {
            *self.max_bits = bits;
        }
        let word = msg.pack();
        let lo = self.inbox.bit0;
        let deg = self.inbox.words.len();
        let already = match &mut self.outbox {
            OutSlot::Scatter { plane } => {
                assert!((port as usize) < deg, "send on nonexistent port {port}");
                let dest = plane.rev[lo + port as usize] as usize;
                // A prior `send_all` this round already claimed every port
                // (tracked context-locally — the staging byte it mirrors
                // is always zero at context construction).
                // Sound: `rev` is a bijection, so slot `dest` belongs to
                // this (node, port) alone this round.
                let already = self.bcast_staged || unsafe { plane.mask.read(dest) } != 0;
                if !already {
                    plane.record(dest);
                    unsafe {
                        plane.mask.write(dest, 1);
                        plane.words.write(dest, word);
                    }
                }
                already
            }
            OutSlot::Local { words, occ, .. } => {
                let already = slab::set(occ, port as usize);
                if !already {
                    words[port as usize] = word;
                }
                already
            }
        };
        assert!(
            !already,
            "CONGEST violation: node {} sent twice on port {} in round {}",
            self.node, port, self.round
        );
    }

    /// Send a copy of `msg` to every neighbor. In engine mode this is
    /// **O(1)**: the message is stored once in the sender's broadcast slot
    /// and receivers read it through the broadcast plane — no per-arc
    /// scatter, no per-arc delivery work. (Under the fault adversary the
    /// engine disables the broadcast plane — it needs per-arc staging to
    /// drop individual messages — and this falls back to the reverse-arc
    /// scatter: one packed word, `deg` plain stores.)
    pub fn send_all(&mut self, msg: M) {
        let lo = self.inbox.bit0;
        let deg = self.inbox.words.len();
        match &mut self.outbox {
            OutSlot::Scatter { plane } => {
                let bits = msg.bits();
                if bits > *self.max_bits {
                    *self.max_bits = bits;
                }
                let word = msg.pack();
                if let Some(b) = plane.bcast {
                    let node = self.node as usize;
                    assert!(
                        !self.bcast_staged,
                        "CONGEST violation: node {} broadcast twice in round {}",
                        self.node, self.round
                    );
                    // Sound: `node` is this node's own slot; no other
                    // task writes it.
                    unsafe {
                        // Debug-only: `send_all` after a per-port `send`
                        // would double-book that port.
                        debug_assert!(
                            plane.rev[lo..lo + deg]
                                .iter()
                                .all(|&d| plane.mask.read(d as usize) == 0),
                            "CONGEST violation: node {} broadcast after sending in round {}",
                            self.node,
                            self.round
                        );
                        b.stage.write(node, 1);
                        b.words.write(node, word);
                    }
                    self.bcast_staged = true;
                    plane.bcast_used.set(true);
                    return;
                }
                let k0 = plane.staged.get() as usize;
                for (j, &dest) in plane.rev[lo..lo + deg].iter().enumerate() {
                    let dest = dest as usize;
                    // Sound: own destination slots (see `send`). The
                    // double-send probe is debug-only on this bulk path —
                    // one load+branch per arc is measurable at 10^6 arcs;
                    // `send` keeps the full check for per-port traffic.
                    unsafe {
                        debug_assert!(
                            plane.mask.read(dest) == 0,
                            "CONGEST violation: node {} double-sent in round {}",
                            self.node,
                            self.round
                        );
                        if k0 + j < plane.wl_cap {
                            plane.wl.write(plane.wl_lo + k0 + j, dest as u32);
                        }
                        plane.mask.write(dest, 1);
                        plane.words.write(dest, word);
                    }
                }
                plane.staged.set((k0 + deg) as u32);
            }
            OutSlot::Local { .. } => {
                for p in 0..deg as Port {
                    self.send(p, msg);
                }
            }
        }
    }

    /// Whether this node already wrote to `port` this round.
    #[inline]
    pub fn port_used(&self, port: Port) -> bool {
        match &self.outbox {
            OutSlot::Scatter { plane } => {
                // Sound: own destination slot (see `send`).
                self.bcast_staged
                    || unsafe {
                        plane
                            .mask
                            .read(plane.rev[self.inbox.bit0 + port as usize] as usize)
                            != 0
                    }
            }
            OutSlot::Local { occ, .. } => slab::test(occ, port as usize),
        }
    }

    /// This node's private RNG (deterministic per `(run_seed, node)`).
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Declare local completion. The run ends when *all* nodes are done and
    /// no message is in flight. A node may clear its flag again later
    /// (e.g. when reactivated by an unexpected message).
    #[inline]
    pub fn set_done(&mut self, done: bool) {
        *self.done = done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_protocol, EngineConfig};
    use congest_graph::generators::cycle;

    /// Every node sends its id once and records what it hears.
    struct HelloNode {
        heard: Vec<Node>,
    }

    impl Protocol for HelloNode {
        type Msg = u32;
        type Output = Vec<Node>;

        fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
            if ctx.round == 0 {
                ctx.send_all(ctx.node);
                return;
            }
            let msgs: Vec<u32> = ctx.inbox().map(|(_, m)| m).collect();
            self.heard.extend(msgs);
            ctx.set_done(true);
        }

        fn finish(self) -> Vec<Node> {
            self.heard
        }
    }

    #[test]
    fn hello_exchange_on_cycle() {
        let g = cycle(5);
        let out = run_protocol(
            &g,
            |_, _| HelloNode { heard: Vec::new() },
            EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(out.stats.rounds, 1);
        for v in 0..5u32 {
            let mut heard = out.outputs[v as usize].clone();
            heard.sort_unstable();
            let mut expect = vec![(v + 4) % 5, (v + 1) % 5];
            expect.sort_unstable();
            assert_eq!(heard, expect);
        }
    }

    /// `InboxIter::fold` (internal iteration, dense fast path) must visit
    /// exactly what `next` visits, in the same order — including full-word
    /// inboxes, partial words, and word-straddling port ranges.
    struct FoldVsNext {
        deg: usize,
        ok: bool,
    }
    impl Protocol for FoldVsNext {
        type Msg = u64;
        type Output = bool;
        fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
            if ctx.round == 0 {
                // Saturate every port.
                for p in 0..self.deg as Port {
                    ctx.send(p, (ctx.node as u64) << 32 | p as u64);
                }
                return;
            }
            let by_next: Vec<(Port, u64)> = ctx.inbox().collect();
            let by_fold: Vec<(Port, u64)> = ctx.inbox().fold(Vec::new(), |mut acc, it| {
                acc.push(it);
                acc
            });
            self.ok = by_next == by_fold && by_next.len() == self.deg;
            ctx.set_done(true);
        }
        fn finish(self) -> bool {
            self.ok
        }
    }

    #[test]
    fn inbox_fold_matches_next_on_saturated_inboxes() {
        // 70 nodes of degree 69 straddle several occupancy words at odd
        // offsets; every port is occupied, exercising the dense path.
        let g = congest_graph::generators::complete(70);
        let out = run_protocol(
            &g,
            |_, gr| FoldVsNext {
                deg: gr.degree(0),
                ok: false,
            },
            EngineConfig::default(),
        )
        .unwrap();
        assert!(out.outputs.iter().all(|&x| x));
    }

    /// A node that (incorrectly) double-sends must panic.
    struct DoubleSender;
    impl Protocol for DoubleSender {
        type Msg = u32;
        type Output = ();
        fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
            if ctx.round == 0 {
                ctx.send(0, 1);
                ctx.send(0, 2); // violation
            }
        }
        fn finish(self) {}
    }

    #[test]
    #[should_panic(expected = "CONGEST violation")]
    fn double_send_panics() {
        let g = cycle(3);
        let _ = run_protocol(&g, |_, _| DoubleSender, EngineConfig::serial());
    }
}
