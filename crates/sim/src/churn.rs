//! Dynamic-graph churn: phase-boundary topology mutation with
//! incremental engine repair.
//!
//! The paper's fault model (§1.2) masks edges per round but never changes
//! the graph. Real networks churn: links come and go, nodes crash and
//! come back. A [`ChurnSession`] is the session engine's answer — it owns
//! a mutable [`Graph`] plus the engine's `SessionState` and a
//! [`MutationQueue`] of pending [`Mutation`]s. Mutations are **applied
//! only at phase boundaries** (the CONGEST round structure stays intact
//! within a phase), and applying a batch *repairs* rather than rebuilds:
//!
//! * the CSR arrays are respliced in place ([`Graph::apply_batch`] —
//!   endpoints merge, adjacency splice, reverse-arc pairing pass);
//! * the engine's arc/edge-keyed buffers are resized (all live regions
//!   are zero between clean phases, so resizing preserves the
//!   zeroed-by-breadcrumb contract);
//! * the cached [`congest_graph::ShardPlan`] is rebalanced in its own
//!   allocation ([`congest_graph::ShardPlan::rebalance`]).
//!
//! The repaired engine is **bit-identical** to a freshly built one:
//! `tests/proptest_churn.rs` pins mutate-then-run against
//! rebuild-then-run across churn schedules × shard counts × meter modes.
//! Phases between batches keep the resident engine's steady-state
//! contract — a warm churn cycle (queue → apply → run) allocates nothing
//! (pinned by `tests/zero_alloc.rs`); only a repair that *grows* an
//! arc-keyed buffer past its high-water mark allocates. A
//! [`ChurnSession`] can also be checkpointed mid-scenario:
//! [`ChurnSession::snapshot`] captures the mutated graph, crash/parked
//! bookkeeping, and engine payload in one frame (see [`crate::snapshot`]
//! — pending [`Mutation`]s are deliberately *not* captured).
//!
//! **Crash semantics.** `Crash(v)` removes every live edge incident to
//! `v` and *parks* it; `Revive(v)` re-adds the parked edges whose other
//! endpoint is alive (edges whose other endpoint is still crashed stay
//! parked with that endpoint). Node ids never change — a crashed node is
//! isolated, not deleted — so node-indexed engine state stays valid.
//!
//! **Error atomicity.** An invalid mutation (adding an existing edge,
//! removing a missing one, crashing a crashed node, touching a crashed
//! endpoint) aborts the whole pending batch: the graph, the crash flags,
//! and the parked-edge lists are left exactly as before the
//! [`ChurnSession::apply_pending`] call, and the queue is cleared.

use crate::engine::{EngineConfig, EngineError};
use crate::protocol::Protocol;
use crate::session::{PhaseHost, PhaseOutcome, Session, SessionState};
use congest_graph::{Graph, MutationError, Node, RepairReport, RepairScratch};
use std::fmt;

/// One topology mutation, applied at a phase boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Insert edge `{u, v}` (must not exist; endpoints must be alive).
    AddEdge(Node, Node),
    /// Delete edge `{u, v}` (must exist).
    RemoveEdge(Node, Node),
    /// Crash node `v`: all its live edges are removed and parked.
    Crash(Node),
    /// Revive node `v`: parked edges to live endpoints are re-added.
    Revive(Node),
}

/// FIFO of pending mutations; drained by
/// [`ChurnSession::apply_pending`] at the next phase boundary.
#[derive(Debug, Clone, Default)]
pub struct MutationQueue {
    ops: Vec<Mutation>,
}

impl MutationQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one mutation.
    pub fn push(&mut self, op: Mutation) {
        self.ops.push(op);
    }

    /// Append many mutations in order.
    pub fn extend<I: IntoIterator<Item = Mutation>>(&mut self, it: I) {
        self.ops.extend(it);
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drop all pending mutations without applying them.
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// The pending mutations, oldest first.
    pub fn pending(&self) -> &[Mutation] {
        &self.ops
    }
}

/// Errors raised while applying a mutation batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnError {
    /// The structural repair rejected the batch.
    Graph(MutationError),
    /// The hosted phase failed (round limit).
    Engine(EngineError),
    /// `Crash(v)` on an already-crashed node.
    AlreadyCrashed(Node),
    /// `Revive(v)` on a node that is not crashed.
    NotCrashed(Node),
    /// `AddEdge`/`RemoveEdge` touching a crashed endpoint.
    CrashedEndpoint(Node),
    /// `AddEdge` of an edge already present (in the graph or the batch).
    EdgeExists(Node, Node),
    /// `RemoveEdge` of an edge not present.
    EdgeMissing(Node, Node),
}

impl fmt::Display for ChurnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChurnError::Graph(e) => write!(f, "graph repair failed: {e}"),
            ChurnError::Engine(e) => write!(f, "hosted phase failed: {e}"),
            ChurnError::AlreadyCrashed(v) => write!(f, "node {v} is already crashed"),
            ChurnError::NotCrashed(v) => write!(f, "node {v} is not crashed"),
            ChurnError::CrashedEndpoint(v) => write!(f, "endpoint {v} is crashed"),
            ChurnError::EdgeExists(u, v) => write!(f, "edge ({u}, {v}) already exists"),
            ChurnError::EdgeMissing(u, v) => write!(f, "edge ({u}, {v}) does not exist"),
        }
    }
}

impl std::error::Error for ChurnError {}

impl From<MutationError> for ChurnError {
    fn from(e: MutationError) -> Self {
        ChurnError::Graph(e)
    }
}

impl From<EngineError> for ChurnError {
    fn from(e: EngineError) -> Self {
        ChurnError::Engine(e)
    }
}

/// What one applied batch did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnReport {
    /// The structural repair's account (adds, removes, renumbering).
    pub graph: RepairReport,
    /// Nodes crashed by this batch.
    pub crashes: usize,
    /// Nodes revived by this batch.
    pub revives: usize,
}

/// Cumulative churn counters over a session's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnStats {
    pub batches: u64,
    pub edges_added: u64,
    pub edges_removed: u64,
    pub crashes: u64,
    pub revives: u64,
}

/// A [`Session`] that owns its graph and supports phase-boundary
/// topology mutation with incremental repair. See the module docs.
pub struct ChurnSession {
    graph: Graph,
    state: SessionState,
    queue: MutationQueue,
    /// Per-node crash flag (crashed nodes are isolated, not deleted).
    crashed: Vec<bool>,
    /// Edges parked by a crash, owned by a crashed endpoint.
    held: Vec<Vec<(Node, Node)>>,
    scratch: RepairScratch,
    add_batch: Vec<(Node, Node)>,
    remove_batch: Vec<(Node, Node)>,
    revive_buf: Vec<(Node, Node)>,
    crashed_backup: Vec<bool>,
    held_backup: Vec<Vec<(Node, Node)>>,
    stats: ChurnStats,
}

impl ChurnSession {
    /// Take ownership of `graph` and build the resident engine for it.
    pub fn new(graph: Graph) -> ChurnSession {
        let n = graph.n();
        let state = SessionState::new(&graph);
        ChurnSession {
            graph,
            state,
            queue: MutationQueue::new(),
            crashed: vec![false; n],
            held: vec![Vec::new(); n],
            scratch: RepairScratch::new(),
            add_batch: Vec::new(),
            remove_batch: Vec::new(),
            revive_buf: Vec::new(),
            crashed_backup: Vec::new(),
            held_backup: Vec::new(),
            stats: ChurnStats::default(),
        }
    }

    /// The current topology.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The pending-mutation queue.
    pub fn queue(&self) -> &MutationQueue {
        &self.queue
    }

    pub fn queue_mut(&mut self) -> &mut MutationQueue {
        &mut self.queue
    }

    /// Per-node crash flags.
    pub fn crashed(&self) -> &[bool] {
        &self.crashed
    }

    pub fn is_crashed(&self, v: Node) -> bool {
        self.crashed[v as usize]
    }

    /// Number of alive (non-crashed) nodes.
    pub fn alive(&self) -> usize {
        self.crashed.iter().filter(|&&c| !c).count()
    }

    /// Cumulative churn counters.
    pub fn stats(&self) -> ChurnStats {
        self.stats
    }

    /// [`Session::state_hash`] of the resident engine — the same
    /// phase-boundary signal, computed on the churned topology's state.
    pub fn state_hash(&self) -> u64 {
        self.state.state_hash()
    }

    /// Serialize the session at a phase boundary into `out` (cleared
    /// first). Unlike [`Session::snapshot_into`], a churn frame **embeds
    /// the topology** (the graph is owned and mutated, so the restorer
    /// cannot be handed it separately) plus the crash flags, the parked
    /// edges, and the cumulative [`ChurnStats`].
    ///
    /// **Not captured:** the pending [`MutationQueue`] — queued
    /// mutations are client intent, not engine state. Call
    /// [`ChurnSession::apply_pending`] (or [`MutationQueue::clear`])
    /// first; a snapshot taken with a non-empty queue simply does not
    /// carry it.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        use crate::snapshot;
        out.clear();
        let mut flags = snapshot::FLAG_GRAPH | snapshot::FLAG_CHURN;
        if self.state.clean {
            flags |= snapshot::FLAG_CLEAN;
        }
        snapshot::begin(
            out,
            &snapshot::Frame {
                flags,
                fingerprint: self.graph.fingerprint(),
                n: self.graph.n() as u64,
                m: self.graph.m() as u64,
                arcs: self.graph.num_arcs() as u64,
                plan_key: self.state.plan_key(),
                state_hash: self.state.state_hash(),
                capacities: self.state.capacities(),
            },
        );
        snapshot::put_graph(out, &self.graph);
        // Churn section: crash flags, parked edges (per crashed owner,
        // flattened endpoint pairs), cumulative counters.
        let crash_bytes: Vec<u8> = self.crashed.iter().map(|&c| c as u8).collect();
        snapshot::put_u8s(out, &crash_bytes);
        for held in &self.held {
            let flat: Vec<u32> = held.iter().flat_map(|&(u, v)| [u, v]).collect();
            snapshot::put_u32s(out, &flat);
        }
        snapshot::put_u64(out, self.stats.batches);
        snapshot::put_u64(out, self.stats.edges_added);
        snapshot::put_u64(out, self.stats.edges_removed);
        snapshot::put_u64(out, self.stats.crashes);
        snapshot::put_u64(out, self.stats.revives);
        self.state.encode_payload(out);
        snapshot::finish(out);
    }

    /// [`ChurnSession::snapshot_into`] into a fresh buffer.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.snapshot_into(&mut out);
        out
    }

    /// Restore a churn snapshot into a new owning session. The embedded
    /// edge list is rebuilt through [`congest_graph::GraphBuilder`]
    /// (edge ids are canonical, so the CSR round-trips exactly),
    /// re-validated structurally, and checked against the recorded
    /// fingerprint; the engine payload then goes through the same
    /// validation chain as [`Session::restore`], ending with the
    /// state-hash re-verification. The restored session continues
    /// bit-identically — including future [`Mutation`]s, since the crash
    /// flags and parked edges come along.
    pub fn restore(bytes: &[u8]) -> Result<ChurnSession, crate::snapshot::SnapshotError> {
        use crate::snapshot::{self, SnapshotError};
        let (header, mut r) = snapshot::open(bytes)?;
        if !header.has_graph || !header.has_churn {
            return Err(SnapshotError::WrongKind);
        }
        let graph = snapshot::read_graph(&mut r, header.fingerprint)?;
        if (header.n, header.m, header.arcs)
            != (graph.n() as u64, graph.m() as u64, graph.num_arcs() as u64)
        {
            return Err(SnapshotError::SizeMismatch("graph shape"));
        }
        let n = graph.n();
        let crash_bytes = r.u8s()?;
        if crash_bytes.len() != n || crash_bytes.iter().any(|&b| b > 1) {
            return Err(SnapshotError::SizeMismatch("crash flags"));
        }
        let crashed: Vec<bool> = crash_bytes.iter().map(|&b| b != 0).collect();
        let mut held: Vec<Vec<(Node, Node)>> = Vec::with_capacity(n);
        for &down in crashed.iter() {
            let flat = r.u32s()?;
            if flat.len() % 2 != 0 {
                return Err(SnapshotError::SizeMismatch("parked edges"));
            }
            if !flat.is_empty() && !down {
                // Parked edges are owned by crashed nodes only.
                return Err(SnapshotError::SizeMismatch("parked edges"));
            }
            let pairs: Vec<(Node, Node)> = flat.chunks_exact(2).map(|c| (c[0], c[1])).collect();
            if pairs
                .iter()
                .any(|&(u, w)| u as usize >= n || w as usize >= n || u >= w)
            {
                return Err(SnapshotError::SizeMismatch("parked edges"));
            }
            held.push(pairs);
        }
        let stats = ChurnStats {
            batches: r.u64()?,
            edges_added: r.u64()?,
            edges_removed: r.u64()?,
            crashes: r.u64()?,
            revives: r.u64()?,
        };
        let mut state = SessionState::decode_payload(&graph, &mut r)?;
        state.clean = header.clean;
        if header.plan_key != 0 {
            let k = header.plan_key as usize;
            state.plan = Some((k, graph.shard_plan(k)));
        }
        state.grow_capacities(header.capacities);
        let rehash = state.state_hash();
        if rehash != header.state_hash {
            return Err(SnapshotError::StateHashMismatch {
                expected: header.state_hash,
                found: rehash,
            });
        }
        Ok(ChurnSession {
            graph,
            state,
            queue: MutationQueue::new(),
            crashed,
            held,
            scratch: RepairScratch::new(),
            add_batch: Vec::new(),
            remove_batch: Vec::new(),
            revive_buf: Vec::new(),
            crashed_backup: Vec::new(),
            held_backup: Vec::new(),
            stats,
        })
    }

    /// Self-heal after a panic escaped a hosted closure (the state was
    /// defaulted by the take in [`ChurnSession::with_host`]).
    fn heal(&mut self) {
        if !self.state.fits(&self.graph) {
            self.state = SessionState::new(&self.graph);
        }
    }

    /// Canonical (u < v) form.
    fn canon(u: Node, v: Node) -> (Node, Node) {
        if u < v {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// Edge membership in the *pending view*: graph ∪ add-batch ∖
    /// remove-batch. Linear scans over the (batch-sized) staging lists.
    fn view_has_edge(&self, u: Node, v: Node) -> bool {
        let c = Self::canon(u, v);
        if self.add_batch.contains(&c) {
            return true;
        }
        if self.remove_batch.contains(&c) {
            return false;
        }
        self.graph.has_edge(u, v)
    }

    /// Stage an insertion (cancelling a pending removal if present).
    fn stage_add(&mut self, c: (Node, Node)) {
        if let Some(i) = self.remove_batch.iter().position(|&x| x == c) {
            self.remove_batch.swap_remove(i);
        } else {
            self.add_batch.push(c);
        }
    }

    /// Stage a deletion (cancelling a pending insertion if present).
    fn stage_remove(&mut self, c: (Node, Node)) {
        if let Some(i) = self.add_batch.iter().position(|&x| x == c) {
            self.add_batch.swap_remove(i);
        } else {
            self.remove_batch.push(c);
        }
    }

    /// Apply one mutation to the staging view. Called in queue order, so
    /// the net batch is exactly the sequential application of the ops.
    fn stage(&mut self, op: Mutation) -> Result<(usize, usize), ChurnError> {
        let n = self.graph.n();
        let check_node = |v: Node| -> Result<(), ChurnError> {
            if v as usize >= n {
                Err(ChurnError::Graph(MutationError::NodeOutOfRange {
                    edge: (v, v),
                    n,
                }))
            } else {
                Ok(())
            }
        };
        match op {
            Mutation::AddEdge(u, v) => {
                check_node(u)?;
                check_node(v)?;
                if u == v {
                    return Err(ChurnError::Graph(MutationError::SelfLoop(u)));
                }
                for w in [u, v] {
                    if self.crashed[w as usize] {
                        return Err(ChurnError::CrashedEndpoint(w));
                    }
                }
                if self.view_has_edge(u, v) {
                    return Err(ChurnError::EdgeExists(u, v));
                }
                self.stage_add(Self::canon(u, v));
                Ok((0, 0))
            }
            Mutation::RemoveEdge(u, v) => {
                check_node(u)?;
                check_node(v)?;
                if !self.view_has_edge(u, v) {
                    return Err(ChurnError::EdgeMissing(u, v));
                }
                self.stage_remove(Self::canon(u, v));
                Ok((0, 0))
            }
            Mutation::Crash(v) => {
                check_node(v)?;
                if self.crashed[v as usize] {
                    return Err(ChurnError::AlreadyCrashed(v));
                }
                self.crashed[v as usize] = true;
                // Park every live incident edge: graph edges not already
                // staged for removal, plus pending additions touching v.
                for i in 0..self.graph.degree(v) {
                    let w = self.graph.neighbors(v)[i];
                    let c = Self::canon(v, w);
                    if !self.remove_batch.contains(&c) {
                        self.remove_batch.push(c);
                        self.held[v as usize].push(c);
                    }
                }
                let vi = v as usize;
                let mut i = 0;
                while i < self.add_batch.len() {
                    let c = self.add_batch[i];
                    if c.0 == v || c.1 == v {
                        self.add_batch.swap_remove(i);
                        self.held[vi].push(c);
                    } else {
                        i += 1;
                    }
                }
                Ok((1, 0))
            }
            Mutation::Revive(v) => {
                check_node(v)?;
                if !self.crashed[v as usize] {
                    return Err(ChurnError::NotCrashed(v));
                }
                self.crashed[v as usize] = false;
                std::mem::swap(&mut self.held[v as usize], &mut self.revive_buf);
                for i in 0..self.revive_buf.len() {
                    let c = self.revive_buf[i];
                    let other = if c.0 == v { c.1 } else { c.0 };
                    if self.crashed[other as usize] {
                        // Stays parked until the other endpoint returns.
                        self.held[other as usize].push(c);
                    } else if !self.view_has_edge(c.0, c.1) {
                        self.stage_add(c);
                    }
                    // Already present (e.g. manually re-added while v was
                    // down): drop the parked copy silently.
                }
                self.revive_buf.clear();
                Ok((0, 1))
            }
        }
    }

    /// Drain the queue and apply the net batch: stage all ops in order,
    /// splice the graph ([`Graph::apply_batch`]), and repair the engine
    /// state in place. On error nothing is applied and the queue is
    /// cleared (see the module docs on atomicity).
    pub fn apply_pending(&mut self) -> Result<ChurnReport, ChurnError> {
        self.heal();
        let has_node_ops = self
            .queue
            .ops
            .iter()
            .any(|op| matches!(op, Mutation::Crash(_) | Mutation::Revive(_)));
        if has_node_ops {
            self.crashed_backup.clear();
            self.crashed_backup.extend_from_slice(&self.crashed);
            self.held_backup.clone_from(&self.held);
        }
        let mut crashes = 0usize;
        let mut revives = 0usize;
        let mut ops = std::mem::take(&mut self.queue.ops);
        let mut staged = Ok(());
        for &op in &ops {
            match self.stage(op) {
                Ok((c, r)) => {
                    crashes += c;
                    revives += r;
                }
                Err(e) => {
                    staged = Err(e);
                    break;
                }
            }
        }
        let applied = staged.and_then(|()| {
            self.graph
                .apply_batch(&self.add_batch, &self.remove_batch, &mut self.scratch)
                .map_err(ChurnError::Graph)
        });
        ops.clear();
        self.queue.ops = ops; // keep the queue's capacity
        match applied {
            Ok(graph_report) => {
                self.state.repair(&self.graph);
                self.add_batch.clear();
                self.remove_batch.clear();
                self.stats.batches += 1;
                self.stats.edges_added += graph_report.edges_added as u64;
                self.stats.edges_removed += graph_report.edges_removed as u64;
                self.stats.crashes += crashes as u64;
                self.stats.revives += revives as u64;
                Ok(ChurnReport {
                    graph: graph_report,
                    crashes,
                    revives,
                })
            }
            Err(e) => {
                // Roll back: the graph is untouched; restore crash state
                // and drop the staged batch.
                if has_node_ops {
                    self.crashed.copy_from_slice(&self.crashed_backup);
                    self.held.clone_from(&self.held_backup);
                }
                self.add_batch.clear();
                self.remove_batch.clear();
                Err(e)
            }
        }
    }

    /// Apply pending mutations (a phase boundary), then run one phase on
    /// the repaired engine — the churn-aware [`Session::run`].
    pub fn run<'s, P, F>(
        &'s mut self,
        factory: F,
        config: EngineConfig,
    ) -> Result<PhaseOutcome<'s, P::Output>, ChurnError>
    where
        P: Protocol,
        F: FnMut(Node, &Graph) -> P,
    {
        self.apply_pending()?;
        self.state
            .run_phase(&self.graph, factory, config)
            .map_err(ChurnError::Engine)
    }

    /// Lend the engine out as a [`PhaseHost`] for a whole multi-phase
    /// driver (e.g. a broadcast) on the *current* topology. Pending
    /// mutations are **not** applied — call
    /// [`ChurnSession::apply_pending`] first; the composition runs on one
    /// frozen graph, which is exactly the phase-boundary discipline.
    ///
    /// A panic inside `f` poisons the lent state; the session self-heals
    /// (rebuilding the engine buffers) on its next use.
    pub fn with_host<R>(&mut self, f: impl FnOnce(&mut PhaseHost<'_>) -> R) -> R {
        self.heal();
        let state = std::mem::take(&mut self.state);
        let mut host = PhaseHost::Resident(Session::from_state(&self.graph, state));
        let r = f(&mut host);
        self.state = match host {
            PhaseHost::Resident(s) => s.into_state(),
            // The closure swapped hosts out from under us; fall back to a
            // fresh engine (correct, just not reuse-optimal).
            PhaseHost::PerPhase { current, .. } => match current {
                Some(s) => s.into_state(),
                None => SessionState::new(&self.graph),
            },
        };
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::protocol::NodeCtx;
    use congest_graph::generators::harary;
    use congest_graph::GraphBuilder;

    /// Every node floods its max-known id for `rounds` rounds.
    struct Flood {
        best: u32,
        rounds: u64,
    }
    impl Protocol for Flood {
        type Msg = u64;
        type Output = u64;
        fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
            for (_, m) in ctx.inbox() {
                self.best = self.best.max(m as u32);
            }
            if ctx.round < self.rounds {
                ctx.send_all(self.best as u64);
            }
            ctx.set_done(ctx.round >= self.rounds);
        }
        fn finish(self) -> u64 {
            self.best as u64
        }
    }

    fn rebuild_arm(n: usize, g: &Graph, seed: u64) -> Vec<u64> {
        let fresh = GraphBuilder::new(n)
            .edges(g.edge_list().map(|(_, u, v)| (u, v)))
            .build()
            .unwrap();
        crate::run_protocol(
            &fresh,
            |v, _| Flood { best: v, rounds: 4 },
            EngineConfig::serial().seed(seed),
        )
        .unwrap()
        .outputs
    }

    #[test]
    fn mutate_then_run_matches_rebuild_then_run() {
        let g = harary(4, 20);
        let n = g.n();
        let mut churn = ChurnSession::new(g);
        for step in 0..6u32 {
            churn.queue_mut().push(Mutation::RemoveEdge(step, step + 1));
            churn
                .queue_mut()
                .push(Mutation::AddEdge(step, (step + 10) % n as u32));
            let out = churn
                .run(|v, _| Flood { best: v, rounds: 4 }, EngineConfig::serial())
                .unwrap();
            let outs = out.take_outputs();
            assert_eq!(outs, rebuild_arm(n, churn.graph(), 0), "step {step}");
        }
    }

    #[test]
    fn crash_parks_and_revive_restores() {
        let g = harary(4, 12);
        let before: Vec<_> = g.edge_list().collect();
        let mut churn = ChurnSession::new(g);
        let deg = churn.graph().degree(3);
        churn.queue_mut().push(Mutation::Crash(3));
        let rep = churn.apply_pending().unwrap();
        assert_eq!(rep.crashes, 1);
        assert_eq!(rep.graph.edges_removed, deg);
        assert_eq!(churn.graph().degree(3), 0);
        assert!(churn.is_crashed(3));
        assert_eq!(churn.alive(), 11);

        churn.queue_mut().push(Mutation::Revive(3));
        let rep = churn.apply_pending().unwrap();
        assert_eq!(rep.revives, 1);
        assert_eq!(rep.graph.edges_added, deg);
        let after: Vec<_> = churn.graph().edge_list().collect();
        assert_eq!(before, after, "revive restores the exact edge set");
    }

    #[test]
    fn overlapping_crashes_hand_edges_over() {
        // 0-1 plus supporting edges; crash both endpoints, revive in
        // both orders — the shared edge must come back exactly once.
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (0, 2), (1, 3), (2, 3)])
            .build()
            .unwrap();
        let mut churn = ChurnSession::new(g);
        churn.queue_mut().push(Mutation::Crash(0));
        churn.queue_mut().push(Mutation::Crash(1));
        churn.apply_pending().unwrap();
        assert_eq!(churn.graph().m(), 1); // only 2-3 left
        churn.queue_mut().push(Mutation::Revive(0));
        churn.apply_pending().unwrap();
        // 0-2 returns; 0-1 stays parked with crashed 1.
        assert!(churn.graph().has_edge(0, 2));
        assert!(!churn.graph().has_edge(0, 1));
        churn.queue_mut().push(Mutation::Revive(1));
        churn.apply_pending().unwrap();
        assert!(churn.graph().has_edge(0, 1));
        assert!(churn.graph().has_edge(1, 3));
        assert_eq!(churn.graph().m(), 4);
    }

    #[test]
    fn invalid_batch_applies_nothing() {
        let g = harary(4, 10);
        let before = g.clone();
        let mut churn = ChurnSession::new(g);
        churn.queue_mut().push(Mutation::Crash(2));
        churn.queue_mut().push(Mutation::AddEdge(5, 5)); // invalid
        let err = churn.apply_pending().unwrap_err();
        assert_eq!(err, ChurnError::Graph(MutationError::SelfLoop(5)));
        assert_eq!(churn.graph(), &before, "graph untouched");
        assert!(!churn.is_crashed(2), "crash rolled back");
        assert!(churn.queue().is_empty(), "failed batch cleared");
        // The session keeps working afterwards.
        churn.queue_mut().push(Mutation::Crash(2));
        churn.apply_pending().unwrap();
        assert!(churn.is_crashed(2));
    }

    #[test]
    fn sequential_netting_cancels() {
        let g = harary(4, 10);
        let before = g.clone();
        let mut churn = ChurnSession::new(g);
        // Remove then re-add the same edge: net no-op.
        let (_, u, v) = before.edge_list().next().unwrap();
        churn.queue_mut().push(Mutation::RemoveEdge(u, v));
        churn.queue_mut().push(Mutation::AddEdge(v, u));
        // Add then remove a fresh chord: net no-op.
        churn.queue_mut().push(Mutation::AddEdge(0, 5));
        churn.queue_mut().push(Mutation::RemoveEdge(0, 5));
        let rep = churn.apply_pending().unwrap();
        assert_eq!(rep.graph.edges_added + rep.graph.edges_removed, 0);
        assert_eq!(churn.graph(), &before);
        // But double-remove of the same edge is an error.
        churn.queue_mut().push(Mutation::RemoveEdge(u, v));
        churn.queue_mut().push(Mutation::RemoveEdge(u, v));
        assert_eq!(
            churn.apply_pending().unwrap_err(),
            ChurnError::EdgeMissing(u, v)
        );
    }

    #[test]
    fn with_host_lends_the_resident_engine() {
        // C12(1,2) has diameter 3, so a 3-round flood reaches everyone.
        let g = harary(4, 12);
        let n = g.n();
        let mut churn = ChurnSession::new(g);
        let outs = churn.with_host(|host| {
            let out = host
                .run(|v, _| Flood { best: v, rounds: 3 }, EngineConfig::serial())
                .unwrap();
            out.take_outputs()
        });
        assert_eq!(outs, vec![(n - 1) as u64; n]);
        // The engine state came back: a follow-up run still works and
        // sees mutations applied in between.
        churn.queue_mut().push(Mutation::RemoveEdge(0, 1));
        let outs = churn
            .run(|v, _| Flood { best: v, rounds: 3 }, EngineConfig::serial())
            .unwrap()
            .take_outputs();
        assert_eq!(outs.len(), n);
        assert!(!churn.graph().has_edge(0, 1));
    }
}
