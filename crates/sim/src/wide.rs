//! Wide-batch bit-parallel round kernel: W independent instances of one
//! protocol on one graph, executed through a single interleaved sweep.
//!
//! ## Why
//!
//! The engine already stores arc occupancy as word-packed bitsets and
//! congestion meters as bit-sliced planes, but a [`crate::Session`] sweeps
//! those words for exactly one run at a time. The representative
//! heavy-traffic workload for the paper's broadcast algorithms is *many
//! sparse runs* — seed sweeps, per-lane fault plans, future tenants — and
//! Fountoulakis–Huber–Panagiotou (PAPERS.md) says broadcast time is
//! governed by sparse per-round traffic regardless of density. So the
//! word-level parallelism left on the table is *across instances*, not
//! across arcs of one instance.
//!
//! ## Lane layout
//!
//! A [`WideSession`] runs `W ≤ 64` **lanes** (instances). Per-arc
//! occupancy becomes one **lane word** per arc: bit `l` of `in_lane[a]`
//! says "lane `l` has a message on arc `a`". Message slabs are
//! instance-major within each arc block — lane `l`'s word for arc `a`
//! lives at `words[a * W + l]` — so the W occupancy bits of one arc land
//! in a single `u64` and per-arc liveness checks, mask zeroing, fault
//! blocking, and bit-plane meter accumulation are one word op shared by
//! all W lanes:
//!
//! * the deliver sweep tests `in_lane[a] != 0` once for all lanes;
//! * bit-plane metering calls `crate::slab::planes_add` once per live
//!   arc with the lane word (bit `l` = lane `l`), exactly the ripple-carry
//!   trick the sequential engine uses with bit `i` = arc `i`;
//! * the fault adversary clears one bit of one word per blocked lane-arc.
//!
//! Scalar per-instance work — the node `round` calls and the payload
//! gather/scatter — iterates lanes via `trailing_zeros` over an
//! **active-lane word**, so finished lanes cost nothing, and protocols
//! that opt into [`Protocol::QUIESCENT`] skip `(node, lane)` pairs that
//! are done with an empty inbox, which is where the W-way speedup on
//! sparse workloads comes from.
//!
//! ## Oracle discipline
//!
//! A wide run is **bit-identical, per lane, to W sequential
//! [`crate::Session::run`]s**: outputs, [`RunStats`], traces, and
//! per-edge congestion all match the run lane `l` would produce alone
//! with `EngineConfig { seed: lanes[l].seed, faults: lanes[l].faults, ..config }`.
//! Wide mode always routes `send_all` through the per-arc scatter path
//! (never the broadcast plane) — the engine's adaptive plane fallback
//! already guarantees that substitution is result-identical, and
//! `tests/proptest_wide.rs` pins the equivalence across shard counts ×
//! meter modes × per-lane fault plans.
//!
//! ## What a wide round costs
//!
//! Per round: one O(arcs) lane-word pass (the shared per-node inbox OR +
//! consume-and-zero), one O(arcs) deliver scan, and scalar work only for
//! the `(node, lane)` pairs actually stepped. A sequential batch pays
//! `W × O(n)` context builds per round even when every instance is idle;
//! the wide kernel pays the word passes once and skips idle lanes, which
//! is why the `wide_batch` bench arm requires W=32 ≥ 4× the sequential
//! arm on the sparse circulant.
//!
//! ## Continuous batching: compaction and refill
//!
//! Broadcast completion times concentrate with a long per-instance tail
//! (Fountoulakis–Huber–Panagiotou), so under staggered termination the
//! last live lanes of a sweep would otherwise keep paying full-width
//! slab strides, and a drain-to-empty batcher would keep whole sweeps
//! alive for one straggler each. Two mechanisms close that gap
//! (DESIGN.md §9):
//!
//! * **Lane compaction** (on by default, [`EngineConfig::compact_lanes`]):
//!   whenever at most half the current width is still live, live lanes
//!   are repacked into the low slot bits — slab blocks, lane words,
//!   per-slot RNG/fault state, and meter columns move from stride `W` to
//!   stride `W′` in place — so tail rounds index narrower strides. A
//!   slot→job remap keeps every result reported under its original
//!   admission id; results are bit-identical with compaction on or off.
//! * **Lane refill** ([`WideSession::run_refill`]): a retiring lane frees
//!   its slot for the next job from a caller-supplied source, mid-sweep,
//!   with per-job seeds/faults from its [`LaneSpec`] and lane-*local*
//!   rounds (a job admitted at global round `r` sees `ctx.round = 0`
//!   there, and its round budget, trace, and stats count from its own
//!   admission). Each retired job is handed to a sink as a
//!   [`LaneRetire`] — still bit-identical to the job's isolated
//!   sequential run. Width never grows past the initial admission, and a
//!   job is only ever admitted into a pristine slot; nothing is migrated
//!   *between* sweeps.

use crate::engine::{EngineConfig, EngineError, MeterMode, RunStats};
use crate::fault::FaultPlan;
use crate::message::{MsgWord, PackedMsg};
use crate::protocol::{InSlot, NodeCtx, OutSlot, Protocol};
use crate::rng::{mix64, node_rng};
use crate::session::WordSlab;
use crate::session::{SessionState, MAX_AUTO_SHARDS, PARALLEL_MIN_NODES};
use crate::slab;
use congest_graph::{Graph, Node};
use congest_par::RacyCells;
use rand::rngs::SmallRng;

/// Maximum lanes per wide run: one bit per lane in a `u64` lane word.
pub const MAX_LANES: usize = 64;

/// One lane's identity: the RNG seed its nodes derive from and the fault
/// plan (if any) it runs under. Everything else — graph, protocol, round
/// limit, meter mode, shard count — is shared across the batch.
#[derive(Debug, Clone, Default)]
pub struct LaneSpec {
    /// Per-node RNGs of this lane derive from this seed exactly as a
    /// sequential run derives them from [`EngineConfig::seed`].
    pub seed: u64,
    /// This lane's mobile adversary, applied to this lane's staged
    /// messages only. See [`FaultPlan::with_lane_seed`] for deriving W
    /// reproducible plans from one base seed.
    pub faults: Option<FaultPlan>,
}

impl LaneSpec {
    pub fn new(seed: u64) -> LaneSpec {
        LaneSpec { seed, faults: None }
    }

    /// Attach a fault plan to this lane.
    pub fn with_faults(mut self, plan: FaultPlan) -> LaneSpec {
        self.faults = Some(plan);
        self
    }

    /// `w` faultless lanes with seeds derived from `base_seed` (lane `l`
    /// gets `mix64(base ^ mix64(0x57ED ^ l))`) — the batch shape the
    /// bench and soak harnesses start from.
    pub fn batch(base_seed: u64, w: usize) -> Vec<LaneSpec> {
        (0..w)
            .map(|l| LaneSpec::new(mix64(base_seed ^ mix64(0x57ED ^ l as u64))))
            .collect()
    }
}

/// The wide kernel's session-resident buffers, embedded in
/// `SessionState` so sequential and wide phases on one session share
/// arenas, slabs, and the shard-plan cache. All-zero at rest (the same
/// breadcrumb discipline as the sequential buffers); a failed run leaves
/// them dirty and [`SessionState::scrub`] restores the invariant.
#[derive(Default)]
pub(crate) struct WideBuffers {
    /// Per-arc inbox lane words (bit `l` = lane `l` has a message).
    in_lane: Vec<u64>,
    /// Per-arc staging lane words (swapped with `in_lane` at delivery).
    out_lane: Vec<u64>,
    /// Per-node lane words: bit `l` set means lane `l`'s node is *not*
    /// done (the polarity makes the per-round all-done check one OR pass).
    undone: Vec<u64>,
    /// Per-shard gather/outbox scratch the per-(node, lane) contexts run
    /// against: `max_deg` message words per direction per shard…
    scratch_in: WordSlab,
    scratch_out: WordSlab,
    /// …plus `ceil(max_deg/64)` occupancy words per direction per shard.
    scratch_occ: Vec<u64>,
    /// Bit-sliced per-arc congestion planes, lane-word semantics: the
    /// `PLANES` words of arc `a` count deliveries per *lane* (bit `l`),
    /// where the sequential planes count per *arc* (bit `i`).
    lane_planes: Vec<u64>,
    /// Flush target: per-(arc, lane) delivery totals, `a * W + l`.
    lane_traffic: Vec<u32>,
    /// Per-job per-edge congestion. Batch runs fill it as a job-major
    /// `job * m + e` matrix (one row per lane, written at that lane's
    /// retirement); streaming runs reuse the first `m` words as the
    /// retirement scratch row, re-zeroed after every sink call.
    per_edge: Vec<u64>,
    /// Per-*slot* round traces (reused across runs; inner capacity
    /// sticks). Compaction permutes these alongside the slots.
    trace_bufs: Vec<Vec<u64>>,
    /// Per-*job* traces for batch runs: a retiring slot's trace is
    /// swapped in here under its original lane id, so
    /// [`WideOutcome::trace`] is compaction-oblivious.
    job_traces: Vec<Vec<u64>>,
    /// Per-shard per-lane delivered counts for the round reduction,
    /// stride [`MAX_LANES`].
    shard_delivered: Vec<u64>,
    /// Per-shard OR of its nodes' `undone` words.
    shard_undone: Vec<u64>,
}

impl WideBuffers {
    /// Capacity-based heap footprint of the lane buffers, in bytes —
    /// the wide kernel's share of [`SessionState::warm_bytes`].
    pub(crate) fn warm_bytes(&self) -> usize {
        (self.in_lane.capacity()
            + self.out_lane.capacity()
            + self.undone.capacity()
            + self.scratch_occ.capacity()
            + self.lane_planes.capacity()
            + self.per_edge.capacity()
            + self.shard_delivered.capacity()
            + self.shard_undone.capacity())
            * 8
            + self.lane_traffic.capacity() * 4
            + self.scratch_in.byte_capacity()
            + self.scratch_out.byte_capacity()
            + self
                .trace_bufs
                .iter()
                .chain(self.job_traces.iter())
                .map(|t| t.capacity() * 8)
                .sum::<usize>()
            + (self.trace_bufs.capacity() + self.job_traces.capacity())
                * std::mem::size_of::<Vec<u64>>()
    }

    /// Full scrub after a failed run (round-limit error or a panic inside
    /// a node program) — completed runs re-zero everything on the way out.
    pub(crate) fn scrub(&mut self) {
        self.in_lane.fill(0);
        self.out_lane.fill(0);
        self.undone.fill(0);
        self.scratch_occ.fill(0);
        self.lane_planes.fill(0);
        self.lane_traffic.fill(0);
        for t in &mut self.trace_bufs {
            t.clear();
        }
        for t in &mut self.job_traces {
            t.clear();
        }
        // `scratch_in`/`scratch_out` words and `per_edge` need no scrub:
        // words are unreachable without occupancy bits, and `per_edge` is
        // rebuilt from zero by every run's final fold.
    }
}

/// Per-(node, lane) hot state — the wide analog of the sequential
/// engine's node cell, one per lane within each node's block.
struct WideCell<P> {
    state: P,
    rng: SmallRng,
    done: bool,
    max_bits: usize,
}

/// One completed wide run, borrowing the session's buffers: per-lane
/// outputs (lane-major in the output arena), stats, traces, and per-edge
/// congestion. The wide analog of [`crate::PhaseOutcome`].
pub struct WideOutcome<'s, O> {
    outputs: *mut O,
    n: usize,
    lanes: usize,
    m: usize,
    /// Bit `l` set = lane `l`'s outputs were moved out already.
    taken: u64,
    stats: [RunStats; MAX_LANES],
    traces: Option<&'s [Vec<u64>]>,
    per_edge: &'s [u64],
    _borrow: std::marker::PhantomData<&'s mut O>,
}

impl<'s, O> WideOutcome<'s, O> {
    /// Number of lanes this run executed.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Nodes per lane.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Lane `l`'s run statistics — bit-identical to the [`RunStats`] a
    /// sequential run of that lane reports.
    #[inline]
    pub fn stats(&self, lane: usize) -> RunStats {
        assert!(lane < self.lanes);
        self.stats[lane]
    }

    /// Lane `l`'s per-node outputs, in the session arena.
    #[inline]
    pub fn outputs(&self, lane: usize) -> &[O] {
        assert!(lane < self.lanes);
        assert!(self.taken >> lane & 1 == 0, "lane {lane} outputs taken");
        // Sound: the lane-major region was fully initialized by the run
        // and not yet moved out (checked above).
        unsafe { std::slice::from_raw_parts(self.outputs.add(lane * self.n), self.n) }
    }

    /// Lane `l`'s per-round trace, when the run collected traces.
    #[inline]
    pub fn trace(&self, lane: usize) -> Option<&'s [u64]> {
        assert!(lane < self.lanes);
        self.traces.map(|t| &t[lane][..])
    }

    /// Lane `l`'s per-edge congestion (indexed by edge id).
    #[inline]
    pub fn edge_congestion(&self, lane: usize) -> &'s [u64] {
        assert!(lane < self.lanes);
        &self.per_edge[lane * self.m..(lane + 1) * self.m]
    }

    /// Move lane `l`'s outputs out of the arena into an owned `Vec`.
    pub fn take_lane_outputs(&mut self, lane: usize) -> Vec<O> {
        assert!(lane < self.lanes);
        assert!(self.taken >> lane & 1 == 0, "lane {lane} outputs taken");
        let mut out = Vec::with_capacity(self.n);
        // Sound: each lane region is moved out at most once (`taken`).
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.outputs.add(lane * self.n),
                out.as_mut_ptr(),
                self.n,
            );
            out.set_len(self.n);
        }
        self.taken |= 1 << lane;
        out
    }
}

impl<O> Drop for WideOutcome<'_, O> {
    fn drop(&mut self) {
        for lane in 0..self.lanes {
            if self.taken >> lane & 1 == 1 {
                continue;
            }
            for i in 0..self.n {
                // Sound: initialized by the run, not yet moved out.
                unsafe { std::ptr::drop_in_place(self.outputs.add(lane * self.n + i)) };
            }
        }
    }
}

/// One retired job of a streaming wide run, handed to the sink of
/// [`WideSession::run_refill`] the moment its lane deactivates. Every
/// borrowed field points into session scratch that is recycled for the
/// next retirement, so the sink must consume what it needs before
/// returning.
pub struct LaneRetire<'a, O> {
    /// Admission index of this job within the run — the same index the
    /// factory and refill closures saw (initial lanes are jobs
    /// `0..init.len()` in order).
    pub job: usize,
    /// Stats bit-identical to the job's isolated sequential run.
    /// [`RunStats::default`] when `limit` is set — the isolated run
    /// errors out without reporting stats.
    pub stats: RunStats,
    /// `Some(limit)` when this lane exceeded its per-lane round budget:
    /// the streaming equivalent of the isolated run's
    /// [`EngineError::RoundLimitExceeded`]. Only the offending lane
    /// fails — it retires with no outputs, trace, or congestion, exactly
    /// as the isolated error reports none, and the sweep carries on.
    pub limit: Option<u64>,
    /// Per-round delivered-message trace when the run collects traces.
    pub trace: Option<&'a [u64]>,
    /// Per-edge congestion, indexed by edge id (empty when `limit`).
    pub edge_congestion: &'a [u64],
    outputs: *mut O,
    n: usize,
    taken: &'a mut bool,
}

/// Borrowed retirement callback threaded through the streaming core
/// (`None` in batch mode, the caller's sink in refill mode).
pub(crate) type RetireSink<'a, O> = dyn FnMut(LaneRetire<'_, O>) + 'a;

impl<O> LaneRetire<'_, O> {
    /// The job's per-node outputs (empty when `limit` is set).
    #[inline]
    pub fn outputs(&self) -> &[O] {
        assert!(!*self.taken, "job {} outputs taken", self.job);
        // Sound: the retiring lane's cells were finished into this row
        // and not yet moved out (checked above).
        unsafe { std::slice::from_raw_parts(self.outputs, self.n) }
    }

    /// Move the outputs into `dst` (cleared first), allocating only if
    /// `dst`'s retained capacity is too small — the steady-state serving
    /// path stays allocation-free after warmup. If the sink never takes
    /// the outputs, the engine drops them when the callback returns.
    pub fn take_outputs_into(&mut self, dst: &mut Vec<O>) {
        assert!(!*self.taken, "job {} outputs taken", self.job);
        dst.clear();
        dst.reserve(self.n);
        // Sound: the row is moved out at most once (`taken`), into
        // reserved capacity.
        unsafe {
            std::ptr::copy_nonoverlapping(self.outputs, dst.as_mut_ptr(), self.n);
            dst.set_len(self.n);
        }
        *self.taken = true;
    }
}

/// A graph-keyed wide-batch engine instance. Structurally a
/// [`crate::Session`] (it owns the same `SessionState`), plus the lane
/// buffers; repeated [`WideSession::run`] calls reuse everything grown by
/// earlier runs (enforced by `tests/zero_alloc.rs`).
pub struct WideSession<'g> {
    graph: &'g Graph,
    state: SessionState,
}

impl<'g> WideSession<'g> {
    pub fn new(graph: &'g Graph) -> WideSession<'g> {
        WideSession {
            graph,
            state: SessionState::new(graph),
        }
    }

    /// The graph this session is keyed to.
    #[inline]
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// [`crate::Session::state_hash`] of the shared engine state. Wide
    /// lane buffers are zero at rest (breadcrumb contract) and excluded
    /// from the hash, so a wide session and a plain session that ran the
    /// same phases hash identically.
    pub fn state_hash(&self) -> u64 {
        self.state.state_hash()
    }

    /// Rehost detached engine state on `graph` — the pool checkout path.
    /// The caller (the session pool) guarantees the state was built for
    /// an equal graph, so no repair pass is needed.
    pub(crate) fn from_state(graph: &'g Graph, state: SessionState) -> WideSession<'g> {
        debug_assert!(state.fits(graph));
        WideSession { graph, state }
    }

    /// Detach the engine state for warm reuse (the pool release path).
    pub(crate) fn into_state(self) -> SessionState {
        self.state
    }

    /// Run `lanes.len()` independent instances of `P` to termination in
    /// one interleaved sweep. `factory(v, l, g)` builds lane `l`'s
    /// protocol state for node `v`; lane `l`'s RNGs and faults come from
    /// `lanes[l]`, so the run is bit-identical per lane to a sequential
    /// [`crate::Session::run`] with
    /// `EngineConfig { seed: lanes[l].seed, faults: lanes[l].faults, ..config }`.
    ///
    /// Of the shared `config`, wide honors `max_rounds`, `meter`,
    /// `collect_trace`, `parallel`, and `shards`; `seed` and `faults` are
    /// superseded by the per-lane specs, and `sparse_threshold` does not
    /// apply (the lane-word sweep has no separate sparse path — idleness
    /// is skipped per (node, lane) instead). If `max_rounds` elapses while
    /// *any* lane is still active the whole run fails, exactly as that
    /// lane's sequential run would.
    pub fn run<'s, P, F>(
        &'s mut self,
        lanes: &[LaneSpec],
        factory: F,
        config: EngineConfig,
    ) -> Result<WideOutcome<'s, P::Output>, EngineError>
    where
        P: Protocol,
        F: FnMut(Node, usize, &Graph) -> P,
    {
        self.state.run_wide(self.graph, lanes, factory, config)
    }

    /// Continuously batched wide run: starts `init.len()` lanes, then
    /// keeps the sweep full by admitting one job from `refill` into every
    /// slot a retiring lane frees, mid-sweep — the serving analog of
    /// continuous batching. Returns the total number of jobs admitted.
    ///
    /// * `refill(job)` supplies the [`LaneSpec`] for admission index
    ///   `job`, or `None` when the source is dry (it is polled again
    ///   after later retirements, so a drained-then-empty source must
    ///   keep answering `None`). The factory is called with the same
    ///   `job` index right after, while the spec's slot is still
    ///   pristine.
    /// * `sink` receives every retired job as a [`LaneRetire`] —
    ///   bit-identical per job to an isolated sequential
    ///   [`crate::Session::run`] with that job's seed and faults.
    /// * Rounds are lane-local: each job's `ctx.round`, fault schedule,
    ///   trace, stats, and `max_rounds` budget count from its own
    ///   admission. A job that blows the budget retires alone with
    ///   `limit: Some(..)` instead of failing the sweep, which is why
    ///   this returns a count, not a `Result`.
    ///
    /// Concurrency never exceeds `init.len()`; when the source runs dry
    /// the sweep narrows via lane compaction (if enabled) and drains.
    pub fn run_refill<P, F, R, S>(
        &mut self,
        init: &[LaneSpec],
        mut factory: F,
        config: EngineConfig,
        mut refill: R,
        mut sink: S,
    ) -> usize
    where
        P: Protocol,
        F: FnMut(Node, usize, &Graph) -> P,
        R: FnMut(usize) -> Option<LaneSpec>,
        S: FnMut(LaneRetire<'_, P::Output>),
    {
        let mut stats = [RunStats::default(); MAX_LANES];
        let (_, jobs) = self
            .state
            .run_stream_core::<P>(
                self.graph,
                init,
                &mut |v, job, g| factory(v, job, g),
                &config,
                Some(&mut |job| refill(job)),
                Some(&mut |r| sink(r)),
                &mut stats,
            )
            .expect("streaming runs retire round-limit lanes instead of failing");
        jobs
    }
}

impl SessionState {
    /// Batch-mode wrapper over [`SessionState::run_stream_core`]:
    /// `lanes.len()` jobs admitted up front, no refill, fail-fast on the
    /// round limit, results harvested job-major into the session arenas
    /// for the [`WideOutcome`] borrow. [`WideSession::run`] is the public
    /// face.
    pub(crate) fn run_wide<'s, P, F>(
        &'s mut self,
        graph: &Graph,
        lanes: &[LaneSpec],
        mut factory: F,
        config: EngineConfig,
    ) -> Result<WideOutcome<'s, P::Output>, EngineError>
    where
        P: Protocol,
        F: FnMut(Node, usize, &Graph) -> P,
    {
        let w = lanes.len();
        let mut stats = [RunStats::default(); MAX_LANES];
        let (out_mat, _) = self.run_stream_core::<P>(
            graph,
            lanes,
            &mut |v, l, g| factory(v, l, g),
            &config,
            None,
            None,
            &mut stats,
        )?;
        let n = graph.n();
        let m = graph.m();
        let traces: Option<&'s [Vec<u64>]> =
            config.collect_trace.then_some(&self.wide.job_traces[..w]);
        Ok(WideOutcome {
            outputs: out_mat,
            n,
            lanes: w,
            m,
            taken: 0,
            stats,
            traces,
            per_edge: &self.wide.per_edge[..w * m],
            _borrow: std::marker::PhantomData,
        })
    }

    /// The wide round loop, shared by batch ([`WideSession::run`]) and
    /// streaming ([`WideSession::run_refill`]) modes. Lives on
    /// `SessionState` so it can share the sequential session's slabs,
    /// arenas, shard-plan cache, and fault scratch.
    ///
    /// Mode is selected by `sink`: `None` is batch mode — jobs are the
    /// initial lanes, results are harvested job-major into the output
    /// arena / `stats_out` / `job_traces` / the `per_edge` matrix, and a
    /// blown round limit fails the whole run. `Some(sink)` is streaming
    /// mode — every retired job goes to the sink, the round budget is
    /// lane-local, and `refill` (if any) tops freed slots up mid-sweep.
    ///
    /// Lane ids the caller sees are **admission indices** ("jobs");
    /// internally lanes live in **slots** whose stride `w_cur` narrows
    /// when compaction repacks live lanes into the low bits. All per-slot
    /// state — cells, lane words, meter columns, traces, fault plans,
    /// join rounds — is permuted together, so the slot→job remap is the
    /// only place the two namespaces meet.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_stream_core<P>(
        &mut self,
        graph: &Graph,
        init: &[LaneSpec],
        factory: &mut dyn FnMut(Node, usize, &Graph) -> P,
        config: &EngineConfig,
        mut refill: Option<&mut dyn FnMut(usize) -> Option<LaneSpec>>,
        mut sink: Option<&mut RetireSink<'_, P::Output>>,
        stats_out: &mut [RunStats; MAX_LANES],
    ) -> Result<(*mut P::Output, usize), EngineError>
    where
        P: Protocol,
    {
        let w0 = init.len();
        assert!(
            (1..=MAX_LANES).contains(&w0),
            "a wide run takes 1..={MAX_LANES} lanes, got {w0}"
        );
        debug_assert!(
            P::Msg::WIDTH <= <<P::Msg as PackedMsg>::Word as MsgWord>::BITS,
            "message WIDTH exceeds its storage word"
        );
        if !self.clean {
            self.scrub();
        }
        self.clean = false;
        let batch = sink.is_none();

        let n = graph.n();
        let arcs = graph.num_arcs();
        let m = graph.m();
        let use_planes = config.meter == MeterMode::BitPlanes;

        // --- Shard plan (same derivation and cache as the sequential
        // round loop, so alternating sequential/wide phases share it).
        let parallel = config.parallel && n >= PARALLEL_MIN_NODES && congest_par::num_threads() > 1;
        let s_req = config
            .shards
            .unwrap_or(if parallel {
                (congest_par::num_threads() * 4).min(MAX_AUTO_SHARDS)
            } else {
                1
            })
            .clamp(1, n.max(1));
        if self.plan.as_ref().map(|(k, _)| *k) != Some(s_req) {
            self.plan = Some((s_req, graph.shard_plan(s_req)));
        }
        let max_budget = init
            .iter()
            .filter_map(|l| l.faults.as_ref())
            .map(|fp| fp.edges_per_round)
            .max()
            .unwrap_or(0);
        self.blocked.reserve(max_budget);

        // --- Split the state into independently borrowed buffers.
        let SessionState {
            slab_a,
            slab_b,
            blocked,
            fault_marks,
            plan,
            cell_arena,
            out_arena,
            wide,
            clean,
            ..
        } = self;
        let WideBuffers {
            in_lane,
            out_lane,
            undone,
            scratch_in,
            scratch_out,
            scratch_occ,
            lane_planes,
            lane_traffic,
            per_edge,
            trace_bufs,
            job_traces,
            shard_delivered,
            shard_undone,
        } = wide;
        let plan = &plan.as_ref().expect("plan built above").1;
        let s_count = plan.num_shards();
        let max_deg = plan.max_degree();
        // Scratch occupancy words per direction per shard.
        let sow = max_deg.div_ceil(64);

        // --- Size the lane buffers (grow-only where the rest state is
        // zero either way; exact-size where indexing depends on it).
        in_lane.resize(arcs, 0);
        out_lane.resize(arcs, 0);
        if undone.len() < n {
            undone.resize(n, 0);
        }
        lane_traffic.resize(arcs * w0, 0);
        if use_planes && lane_planes.len() < arcs * slab::PLANES {
            lane_planes.resize(arcs * slab::PLANES, 0);
        }
        if scratch_occ.len() < s_count * 2 * sow {
            scratch_occ.resize(s_count * 2 * sow, 0);
        }
        shard_delivered.resize(s_count * MAX_LANES, 0);
        shard_undone.resize(s_count, 0);
        while trace_bufs.len() < w0 {
            trace_bufs.push(Vec::new());
        }
        for t in trace_bufs.iter_mut().take(w0) {
            t.clear();
        }
        if batch {
            // Job-major harvest matrices, filled row by row as lanes
            // retire (a job's id never moves, however slots compact).
            while job_traces.len() < w0 {
                job_traces.push(Vec::new());
            }
            for t in job_traces.iter_mut().take(w0) {
                t.clear();
            }
            per_edge.resize(w0 * m, 0);
            per_edge[..w0 * m].fill(0);
        } else {
            // Streaming: the first m words are the per-retirement scratch
            // row, re-zeroed after every sink call.
            if per_edge.len() < m {
                per_edge.resize(m, 0);
            }
            per_edge[..m].fill(0);
        }

        // --- Instance-major message slabs: the lane in slot l has its
        // word for arc a at `a * w_cur + l` (byte-capacity keyed, shared
        // with sequential runs). Views are sized for the initial width;
        // compaction only ever narrows the stride used to index them.
        let mut in_words: &mut [<P::Msg as PackedMsg>::Word] = slab_a.view(arcs * w0);
        let mut out_words: &mut [<P::Msg as PackedMsg>::Word] = slab_b.view(arcs * w0);
        let sw_in: &mut [<P::Msg as PackedMsg>::Word] = scratch_in.view(s_count * max_deg);
        let sw_out: &mut [<P::Msg as PackedMsg>::Word] = scratch_out.view(s_count * max_deg);

        // --- Node cells, node-major blocks of w_cur slots, plus the
        // batch output matrix (streaming retirements reuse the output
        // arena as a one-row scratch instead).
        let cells_ptr: *mut WideCell<P> = cell_arena.alloc(n * w0);
        let out_mat: *mut P::Output = if batch {
            out_arena.alloc(n * w0)
        } else {
            std::ptr::NonNull::dangling().as_ptr()
        };

        // --- Per-slot lane state. Slots are positions in the lane words;
        // jobs are admission indices. Compaction permutes slots, never
        // jobs. All fixed-size Copy arrays — no allocation per admission.
        let full_mask = |w: usize| -> u64 {
            if w == 64 {
                !0
            } else {
                (1u64 << w) - 1
            }
        };
        let mut w_cur = w0;
        let mut active: u64 = 0;
        let mut slot_faults: [Option<FaultPlan>; MAX_LANES] = [None; MAX_LANES];
        let mut join_round = [0u64; MAX_LANES];
        let mut slot_job = [0usize; MAX_LANES];
        let mut slot_stats = [RunStats::default(); MAX_LANES];
        let mut jobs_admitted: usize = 0;
        // Batch mode: jobs whose finished outputs sit in `out_mat`
        // (needed to drop them if a later round-limit fails the run).
        let mut retired_jobs: u64 = 0;
        let mut round: u64 = 0;
        let mut rounds_since_flush: u64 = 0;

        // Admit one job into a pristine slot: cells written through the
        // factory, per-node RNGs from the spec's seed, undone bits set,
        // join round stamped so the lane's rounds count from here. A
        // panic in `factory` leaks only the written prefix (the dirty
        // flag covers the scrub).
        macro_rules! admit {
            ($slot:expr, $spec:expr) => {{
                let slot: usize = $slot;
                let spec: &LaneSpec = $spec;
                let job = jobs_admitted;
                for v in 0..n {
                    // Sound: the slot column is in-bounds and vacant.
                    unsafe {
                        cells_ptr.add(v * w_cur + slot).write(WideCell {
                            state: factory(v as Node, job, graph),
                            rng: node_rng(spec.seed, v as Node),
                            done: false,
                            max_bits: 0,
                        });
                    }
                }
                for u in undone[..n].iter_mut() {
                    *u |= 1u64 << slot;
                }
                if let Some(fp) = &spec.faults {
                    blocked.reserve(fp.edges_per_round);
                }
                slot_faults[slot] = spec.faults;
                join_round[slot] = round;
                slot_job[slot] = job;
                slot_stats[slot] = RunStats::default();
                active |= 1u64 << slot;
                jobs_admitted += 1;
            }};
        }
        for spec in init {
            admit!(jobs_admitted, spec);
        }

        loop {
            // --- Per-lane round budget, counted from each lane's own
            // admission. Batch mode fails the whole run (all lanes joined
            // at round 0, so this is the sequential check verbatim);
            // streaming mode retires only the offending lanes.
            let mut blown = 0u64;
            {
                let mut b = active;
                while b != 0 {
                    let l = b.trailing_zeros() as usize;
                    b &= b - 1;
                    if round - join_round[l] >= config.max_rounds {
                        blown |= 1u64 << l;
                    }
                }
            }
            if blown != 0 && batch {
                let mut b = active;
                while b != 0 {
                    let l = b.trailing_zeros() as usize;
                    b &= b - 1;
                    for v in 0..n {
                        // Sound: live slots hold initialized cells.
                        unsafe { std::ptr::drop_in_place(cells_ptr.add(v * w_cur + l)) };
                    }
                }
                let mut r = retired_jobs;
                while r != 0 {
                    let j = r.trailing_zeros() as usize;
                    r &= r - 1;
                    for i in 0..n {
                        // Sound: retired rows were fully written.
                        unsafe { std::ptr::drop_in_place(out_mat.add(j * n + i)) };
                    }
                }
                return Err(EngineError::RoundLimitExceeded {
                    limit: config.max_rounds,
                });
            }
            if blown != 0 {
                // Streaming: scrub each blown lane out of the sweep —
                // inbox bits, meter column, undone bits, cells — and
                // report it failed, exactly as its isolated run would
                // have errored. Planes hold mixed-lane counts, so flush
                // (count-preserving) before discarding this column.
                if use_planes && rounds_since_flush > 0 {
                    for a in 0..arcs {
                        slab::planes_flush(
                            &mut lane_planes[a * slab::PLANES..(a + 1) * slab::PLANES],
                            &mut lane_traffic[a * w_cur..(a + 1) * w_cur],
                        );
                    }
                    rounds_since_flush = 0;
                }
                let mut b = blown;
                while b != 0 {
                    let l = b.trailing_zeros() as usize;
                    b &= b - 1;
                    for a in 0..arcs {
                        in_lane[a] &= !(1u64 << l);
                        lane_traffic[a * w_cur + l] = 0;
                    }
                    for (v, u) in undone[..n].iter_mut().enumerate() {
                        *u &= !(1u64 << l);
                        // Sound: the blown slot's cells are initialized.
                        unsafe { std::ptr::drop_in_place(cells_ptr.add(v * w_cur + l)) };
                    }
                    trace_bufs[l].clear();
                    active &= !(1u64 << l);
                    let mut taken = false;
                    (sink.as_mut().expect("streaming mode"))(LaneRetire {
                        job: slot_job[l],
                        stats: RunStats::default(),
                        limit: Some(config.max_rounds),
                        trace: None,
                        edge_congestion: &[],
                        outputs: std::ptr::NonNull::dangling().as_ptr(),
                        n: 0,
                        taken: &mut taken,
                    });
                }
            }
            // --- Step phase: each shard steps the active lanes of its own
            // nodes. One OR pass over the node's in-arc lane words serves
            // all W lanes' liveness at once; QUIESCENT protocols then step
            // only lanes with traffic or not-done nodes. Each node's
            // in-arc lane words are consumed and zeroed here, so after the
            // swap the staging side starts clean without any extra pass.
            {
                // Sound: live slots (tracked by `active` at stride
                // `w_cur`) hold initialized cells; vacant columns are
                // never read or written through this view.
                let cells: &mut [WideCell<P>] =
                    unsafe { std::slice::from_raw_parts_mut(cells_ptr, n * w_cur) };
                let racy_cells = RacyCells::new(cells);
                let racy_out_words = RacyCells::new(&mut *out_words);
                let racy_out_lane = RacyCells::new(&mut out_lane[..arcs]);
                let racy_in_lane = RacyCells::new(&mut in_lane[..arcs]);
                let racy_undone = RacyCells::new(&mut undone[..n]);
                let racy_sw_in = RacyCells::new(&mut *sw_in);
                let racy_sw_out = RacyCells::new(&mut *sw_out);
                let racy_socc = RacyCells::new(&mut scratch_occ[..s_count * 2 * sow]);
                let racy_sh_undone = RacyCells::new(&mut shard_undone[..s_count]);
                let in_words = &in_words[..];
                let rev = graph.reverse_arcs();
                let step_shard = |s: usize| {
                    let nodes = plan.nodes(s);
                    let (v_lo, v_hi) = (nodes.start as usize, nodes.end as usize);
                    // Sound: shard s owns its nodes' cells and undone
                    // words, its scratch regions, and — through the
                    // reverse-arc bijection — every staging slot its
                    // nodes scatter into (each arc has one sender).
                    let gw = unsafe { racy_sw_in.slice_mut(s * max_deg, (s + 1) * max_deg) };
                    let ow = unsafe { racy_sw_out.slice_mut(s * max_deg, (s + 1) * max_deg) };
                    let gocc = unsafe { racy_socc.slice_mut(s * 2 * sow, s * 2 * sow + sow) };
                    let oocc = unsafe { racy_socc.slice_mut(s * 2 * sow + sow, (s + 1) * 2 * sow) };
                    let mut sh_undone = 0u64;
                    for v in v_lo..v_hi {
                        let lo = graph.arc_offset(v as Node);
                        let deg = graph.degree(v as Node);
                        let dw = deg.div_ceil(64);
                        // Shared liveness: which lanes have inbox traffic
                        // at this node — one word OR over deg arcs for all
                        // W lanes at once.
                        let mut inbox_lanes = 0u64;
                        for a in lo..lo + deg {
                            inbox_lanes |= unsafe { racy_in_lane.read(a) };
                        }
                        let undone_v = unsafe { racy_undone.read(v) };
                        let step_lanes = if P::QUIESCENT {
                            (inbox_lanes | undone_v) & active
                        } else {
                            active
                        };
                        // Skipped lanes keep their done state (QUIESCENT
                        // promises their round() is a no-op); stepped
                        // lanes rewrite their bit below.
                        let mut new_undone = undone_v & !step_lanes;
                        let cells_v = unsafe { racy_cells.slice_mut(v * w_cur, (v + 1) * w_cur) };
                        let mut b = step_lanes;
                        while b != 0 {
                            let l = b.trailing_zeros() as usize;
                            b &= b - 1;
                            // Gather lane l's inbox: occupancy bits from
                            // the lane words, payload words from the
                            // instance-major slab. (`gocc` is all-zero on
                            // entry and re-zeroed after the step, keeping
                            // the scratch at rest zero-filled.)
                            for p in 0..deg {
                                if unsafe { racy_in_lane.read(lo + p) } >> l & 1 == 1 {
                                    gocc[p >> 6] |= 1u64 << (p & 63);
                                    gw[p] = in_words[(lo + p) * w_cur + l];
                                }
                            }
                            let cell = &mut cells_v[l];
                            {
                                let mut ctx = NodeCtx {
                                    node: v as Node,
                                    // Refilled lanes count rounds from
                                    // their own admission.
                                    round: round - join_round[l],
                                    inbox: InSlot {
                                        words: &gw[..deg],
                                        occ: &gocc[..dw],
                                        bit0: 0,
                                        bcast: None,
                                    },
                                    outbox: OutSlot::Local {
                                        words: &mut ow[..deg],
                                        occ: &mut oocc[..dw],
                                        graph,
                                    },
                                    bcast_staged: false,
                                    rng: &mut cell.rng,
                                    done: &mut cell.done,
                                    max_bits: &mut cell.max_bits,
                                };
                                cell.state.round(&mut ctx);
                            }
                            if !cell.done {
                                new_undone |= 1u64 << l;
                            }
                            gocc[..dw].fill(0);
                            // Scatter lane l's sends through the
                            // reverse-arc permutation, consuming (and
                            // zeroing) the outbox scratch as we go.
                            for (wd, occ_word) in oocc[..dw].iter_mut().enumerate() {
                                let mut bits = *occ_word;
                                *occ_word = 0;
                                while bits != 0 {
                                    let p = (wd << 6) + bits.trailing_zeros() as usize;
                                    bits &= bits - 1;
                                    let dest = rev[lo + p] as usize;
                                    unsafe {
                                        let cur = racy_out_lane.read(dest);
                                        racy_out_lane.write(dest, cur | 1u64 << l);
                                        racy_out_words.write(dest * w_cur + l, ow[p]);
                                    }
                                }
                            }
                        }
                        // Consume this node's inbox lane words (the only
                        // reader was this step), leaving the future
                        // staging side zero.
                        for a in lo..lo + deg {
                            unsafe { racy_in_lane.write(a, 0) };
                        }
                        unsafe { racy_undone.write(v, new_undone) };
                        sh_undone |= new_undone;
                    }
                    unsafe { racy_sh_undone.write(s, sh_undone) };
                };
                if parallel {
                    congest_par::run(s_count, step_shard);
                } else {
                    for s in 0..s_count {
                        step_shard(s);
                    }
                }
            }
            // --- Adversary phase: each faulted lane's plan clears its own
            // bit of the blocked arcs' staging lane words, scheduled by
            // the lane's *local* round so a refilled lane sees the same
            // adversary an isolated run of its spec would.
            let mut fl = active;
            while fl != 0 {
                let l = fl.trailing_zeros() as usize;
                fl &= fl - 1;
                let Some(fault_plan) = &slot_faults[l] else {
                    continue;
                };
                if fault_plan.edges_per_round == 0 {
                    continue;
                }
                fault_plan.blocked_edges_into_marked(
                    round - join_round[l],
                    m,
                    blocked,
                    fault_marks,
                );
                for &e in blocked.iter() {
                    let (u, v) = graph.endpoints(e);
                    for (from, to) in [(u, v), (v, u)] {
                        let port = graph
                            .port_to(to, from)
                            .expect("edge endpoints are adjacent");
                        let dest = graph.arc_offset(to) + port as usize;
                        if out_lane[dest] >> l & 1 == 1 {
                            out_lane[dest] &= !(1u64 << l);
                            slot_stats[l].dropped_messages += 1;
                        }
                    }
                }
            }
            // --- Deliver phase: swap staging to inbox, then one sharded
            // scan over the lane words — per-arc liveness is a single
            // word test for all W lanes, and bit-plane metering is one
            // ripple-carry add with lane-bit semantics.
            std::mem::swap(&mut in_words, &mut out_words);
            std::mem::swap(in_lane, out_lane);
            let flush_now = use_planes && rounds_since_flush + 1 == slab::FLUSH_PERIOD;
            {
                let racy_in_lane = RacyCells::new(&mut in_lane[..arcs]);
                let racy_planes = RacyCells::new(&mut lane_planes[..]);
                let racy_traffic = RacyCells::new(&mut lane_traffic[..arcs * w_cur]);
                let racy_sd = RacyCells::new(&mut shard_delivered[..s_count * MAX_LANES]);
                let meter_mode = config.meter;
                let deliver_shard = |s: usize| {
                    // Sound: shard arc regions are disjoint by plan
                    // construction; the per-shard delivered block is ours.
                    let sd = unsafe { racy_sd.slice_mut(s * MAX_LANES, (s + 1) * MAX_LANES) };
                    sd.fill(0);
                    for a in plan.arcs_of(s) {
                        let bits = unsafe { racy_in_lane.read(a) };
                        if bits != 0 {
                            match meter_mode {
                                MeterMode::BitPlanes => {
                                    let planes_a = unsafe {
                                        racy_planes
                                            .slice_mut(a * slab::PLANES, (a + 1) * slab::PLANES)
                                    };
                                    slab::planes_add(planes_a, bits);
                                    let mut b = bits;
                                    while b != 0 {
                                        let l = b.trailing_zeros() as usize;
                                        b &= b - 1;
                                        sd[l] += 1;
                                    }
                                }
                                MeterMode::ArcCounters => {
                                    let traffic_a = unsafe {
                                        racy_traffic.slice_mut(a * w_cur, (a + 1) * w_cur)
                                    };
                                    let mut b = bits;
                                    while b != 0 {
                                        let l = b.trailing_zeros() as usize;
                                        b &= b - 1;
                                        sd[l] += 1;
                                        traffic_a[l] = traffic_a[l].saturating_add(1);
                                    }
                                }
                            }
                        }
                        // Flush cadence is traffic-independent: the
                        // planes may hold counts from earlier rounds.
                        if flush_now {
                            let planes_a = unsafe {
                                racy_planes.slice_mut(a * slab::PLANES, (a + 1) * slab::PLANES)
                            };
                            let traffic_a =
                                unsafe { racy_traffic.slice_mut(a * w_cur, (a + 1) * w_cur) };
                            slab::planes_flush(planes_a, traffic_a);
                        }
                    }
                };
                if parallel {
                    congest_par::run(s_count, deliver_shard);
                } else {
                    for s in 0..s_count {
                        deliver_shard(s);
                    }
                }
            }
            rounds_since_flush = if flush_now { 0 } else { rounds_since_flush + 1 };
            // --- Per-lane reduction and termination, mirroring the
            // sequential loop's bookkeeping lane by lane. A lane that
            // deactivates retires on the spot: its meter column is
            // drained, its cells are finished into outputs, and the
            // result is harvested under its job id — freeing the slot
            // for refill or compaction.
            let mut undone_any = 0u64;
            for &sh in shard_undone[..s_count].iter() {
                undone_any |= sh;
            }
            round += 1;
            let mut b = active;
            while b != 0 {
                let l = b.trailing_zeros() as usize;
                b &= b - 1;
                let mut delivered = 0u64;
                for s in 0..s_count {
                    delivered += shard_delivered[s * MAX_LANES + l];
                }
                slot_stats[l].total_messages += delivered;
                if config.collect_trace {
                    trace_bufs[l].push(delivered);
                }
                if delivered > 0 {
                    slot_stats[l].rounds = round - join_round[l];
                }
                if delivered > 0 || undone_any >> l & 1 == 1 {
                    continue;
                }
                // --- Retire slot l under job id slot_job[l].
                slot_stats[l].iterations = round - join_round[l];
                active &= !(1u64 << l);
                trace_bufs[l].truncate(slot_stats[l].rounds as usize);
                // Final plane flush first (count-preserving, so flushing
                // early for one lane never perturbs the others' totals).
                if use_planes && rounds_since_flush > 0 {
                    for a in 0..arcs {
                        slab::planes_flush(
                            &mut lane_planes[a * slab::PLANES..(a + 1) * slab::PLANES],
                            &mut lane_traffic[a * w_cur..(a + 1) * w_cur],
                        );
                    }
                    rounds_since_flush = 0;
                }
                let job = slot_job[l];
                // Drain the slot's traffic column into its per-edge row
                // (back to zero — the breadcrumb exit contract).
                {
                    let edge_row: &mut [u64] = if batch {
                        &mut per_edge[job * m..(job + 1) * m]
                    } else {
                        &mut per_edge[..m]
                    };
                    for v in 0..n as Node {
                        let lo = graph.arc_offset(v);
                        for (i, &e) in graph.incident_edges(v).iter().enumerate() {
                            let t = std::mem::take(&mut lane_traffic[(lo + i) * w_cur + l]) as u64;
                            if t != 0 {
                                edge_row[e as usize] += t;
                            }
                        }
                    }
                    slot_stats[l].max_edge_congestion = edge_row.iter().copied().max().unwrap_or(0);
                }
                slot_stats[l].max_message_bits = (0..n)
                    // Sound: the live slot's cells are initialized.
                    .map(|v| unsafe { (*cells_ptr.add(v * w_cur + l)).max_bits })
                    .max()
                    .unwrap_or(0);
                // Consume the slot's cells into per-node outputs: the
                // job's row of the batch matrix, or the streaming scratch
                // row. A panic in `finish` leaks the tail (dirty flag).
                let row: *mut P::Output = if batch {
                    // Sound: job < w0, so the row is inside the matrix.
                    unsafe { out_mat.add(job * n) }
                } else {
                    out_arena.alloc::<P::Output>(n)
                };
                for v in 0..n {
                    // Sound: each cell is moved out exactly once.
                    unsafe {
                        let cell = cells_ptr.add(v * w_cur + l).read();
                        row.add(v).write(cell.state.finish());
                    }
                }
                if batch {
                    retired_jobs |= 1u64 << job;
                    stats_out[job] = slot_stats[l];
                    if config.collect_trace {
                        std::mem::swap(&mut trace_bufs[l], &mut job_traces[job]);
                    }
                    trace_bufs[l].clear();
                } else {
                    let mut taken = false;
                    (sink.as_mut().expect("streaming mode"))(LaneRetire {
                        job,
                        stats: slot_stats[l],
                        limit: None,
                        trace: if config.collect_trace {
                            Some(&trace_bufs[l][..])
                        } else {
                            None
                        },
                        edge_congestion: &per_edge[..m],
                        outputs: row,
                        n,
                        taken: &mut taken,
                    });
                    if !taken {
                        for i in 0..n {
                            // Sound: written above, not moved out.
                            unsafe { std::ptr::drop_in_place(row.add(i)) };
                        }
                    }
                    per_edge[..m].fill(0);
                    trace_bufs[l].clear();
                }
            }
            // --- Refill: every freed slot admits the next job from the
            // source, mid-sweep — continuous batching. New lanes join at
            // the current global round with pristine slot state.
            if let Some(rf) = refill.as_mut() {
                let mut free = !active & full_mask(w_cur);
                while free != 0 {
                    let Some(spec) = rf(jobs_admitted) else { break };
                    let slot = free.trailing_zeros() as usize;
                    free &= free - 1;
                    admit!(slot, &spec);
                }
            }
            if active == 0 {
                break;
            }
            // --- Compaction: once at most half the width is live (and
            // the refill source could not top it up), repack live lanes
            // into the low slots so tail rounds index narrower strides.
            // In-place stride narrowing is safe because destinations
            // (a·w′ + j) are visited in strictly increasing order and
            // every source index is ≥ its destination.
            let live = active.count_ones() as usize;
            if config.compact_lanes && live <= w_cur / 2 {
                let w_new = live;
                let live_mask = active;
                // Pending plane counts flush at the old stride first;
                // after this the planes are all-zero, so only the flat
                // traffic columns move.
                if use_planes && rounds_since_flush > 0 {
                    for a in 0..arcs {
                        slab::planes_flush(
                            &mut lane_planes[a * slab::PLANES..(a + 1) * slab::PLANES],
                            &mut lane_traffic[a * w_cur..(a + 1) * w_cur],
                        );
                    }
                    rounds_since_flush = 0;
                }
                debug_assert!(
                    out_lane[..arcs].iter().all(|&x| x == 0),
                    "staging side must be clean at a compaction point"
                );
                for a in 0..arcs {
                    let bits = in_lane[a];
                    if bits != 0 {
                        let mut mj = live_mask;
                        let mut j = 0usize;
                        while mj != 0 {
                            let lj = mj.trailing_zeros() as usize;
                            mj &= mj - 1;
                            if bits >> lj & 1 == 1 {
                                in_words[a * w_new + j] = in_words[a * w_cur + lj];
                            }
                            j += 1;
                        }
                        in_lane[a] = slab::pext(bits, live_mask);
                    }
                    // Traffic counters travel unconditionally — counts
                    // are not occupancy-gated.
                    let mut mj = live_mask;
                    let mut j = 0usize;
                    while mj != 0 {
                        let lj = mj.trailing_zeros() as usize;
                        mj &= mj - 1;
                        lane_traffic[a * w_new + j] = lane_traffic[a * w_cur + lj];
                        j += 1;
                    }
                }
                // The narrowed matrix rewrote [0, arcs·w′); everything
                // between the new and old used extents is stale copies.
                lane_traffic[arcs * w_new..arcs * w_cur].fill(0);
                for (v, ud) in undone.iter_mut().enumerate().take(n) {
                    let mut mj = live_mask;
                    let mut j = 0usize;
                    while mj != 0 {
                        let lj = mj.trailing_zeros() as usize;
                        mj &= mj - 1;
                        // Sound: live columns are initialized; each cell
                        // moves to its (≤) new index exactly once.
                        unsafe {
                            let cell = cells_ptr.add(v * w_cur + lj).read();
                            cells_ptr.add(v * w_new + j).write(cell);
                        }
                        j += 1;
                    }
                    *ud = slab::pext(*ud, live_mask);
                }
                // Slot metadata follows the same permutation. Ascending
                // swaps are safe: every later source slot index is larger
                // than any position already written.
                {
                    let mut mj = live_mask;
                    let mut j = 0usize;
                    while mj != 0 {
                        let lj = mj.trailing_zeros() as usize;
                        mj &= mj - 1;
                        if lj != j {
                            slot_faults.swap(j, lj);
                            join_round.swap(j, lj);
                            slot_job.swap(j, lj);
                            slot_stats.swap(j, lj);
                            trace_bufs.swap(j, lj);
                        }
                        j += 1;
                    }
                }
                active = full_mask(w_new);
                w_cur = w_new;
            }
        }

        *clean = true;
        Ok((out_mat, jobs_admitted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::session::Session;
    use congest_graph::generators::{cycle, harary};

    /// Flood-max: every node converges on the maximum node id. Quiescent:
    /// once done with an empty inbox, round() reads nothing and sends
    /// nothing.
    struct FloodMax {
        best: Node,
    }

    impl Protocol for FloodMax {
        type Msg = u32;
        type Output = Node;
        const QUIESCENT: bool = true;

        fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
            if ctx.round == 0 {
                ctx.send_all(self.best);
                return;
            }
            let prior = self.best;
            self.best = ctx.inbox().fold(self.best, |b, (_, m)| b.max(m));
            if self.best > prior {
                ctx.send_all(self.best);
            }
            ctx.set_done(true);
        }

        fn finish(self) -> Node {
            self.best
        }
    }

    /// Sends a pulse to every neighbor for `remaining` rounds, then goes
    /// quiet — used to stagger lane termination times.
    struct Pulser {
        remaining: u64,
    }

    impl Protocol for Pulser {
        type Msg = u64;
        type Output = u64;
        const QUIESCENT: bool = true;

        fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.send_all(self.remaining);
            }
            ctx.set_done(self.remaining == 0);
        }

        fn finish(self) -> u64 {
            self.remaining
        }
    }

    fn check_lane_oracle<P, F>(g: &Graph, lanes: &[LaneSpec], mut factory: F, config: EngineConfig)
    where
        P: Protocol,
        P::Output: PartialEq + std::fmt::Debug + Clone,
        F: FnMut(Node, usize, &Graph) -> P + Copy,
    {
        let mut wide = WideSession::new(g);
        let out = wide
            .run(lanes, factory, config.clone())
            .expect("wide run terminates");
        for (l, spec) in lanes.iter().enumerate() {
            let seq_cfg = EngineConfig {
                seed: spec.seed,
                faults: spec.faults,
                ..config.clone()
            };
            let mut sess = Session::new(g);
            let seq = sess
                .run(|v, gr| factory(v, l, gr), seq_cfg)
                .expect("sequential lane terminates");
            assert_eq!(out.stats(l), seq.stats, "lane {l} stats");
            assert_eq!(out.outputs(l), seq.outputs(), "lane {l} outputs");
            assert_eq!(out.trace(l), seq.trace(), "lane {l} trace");
            assert_eq!(
                out.edge_congestion(l),
                seq.edge_congestion(),
                "lane {l} edge congestion"
            );
        }
    }

    #[test]
    fn wide_floodmax_matches_sequential_lanes() {
        let g = harary(4, 20);
        let lanes = LaneSpec::batch(7, 5);
        let config = EngineConfig::with_seed(0).trace();
        check_lane_oracle(&g, &lanes, |_, _, _| FloodMax { best: 0 }, config.clone());
        // Lane-distinct initial states: lane l floods id max over v+l.
        check_lane_oracle(
            &g,
            &lanes,
            |v, l, _| FloodMax {
                best: v + l as Node,
            },
            config,
        );
    }

    #[test]
    fn wide_faulted_lanes_match_sequential() {
        let g = harary(4, 16);
        let base = FaultPlan::new(2, 99);
        let lanes: Vec<LaneSpec> = (0..6)
            .map(|l| LaneSpec::new(l as u64 + 1).with_faults(base.with_lane_seed(l)))
            .collect();
        let config = EngineConfig::with_seed(0).trace();
        check_lane_oracle(
            &g,
            &lanes,
            |v, l, _| Pulser {
                remaining: (v as u64 + l as u64) % 5 + 1,
            },
            config,
        );
    }

    #[test]
    fn staggered_termination_leaves_lane_state_zero() {
        // Lanes terminate at very different rounds; after the run, every
        // lane's slab regions must be back to all-zero (the breadcrumb
        // exit contract the next phase relies on), and a rerun on the
        // same session must reproduce the first run exactly.
        let g = cycle(12);
        let lanes: Vec<LaneSpec> = (0..9).map(|l| LaneSpec::new(l as u64)).collect();
        let factory = |_: Node, l: usize, _: &Graph| Pulser {
            remaining: 3 * l as u64 + 1,
        };
        let mut wide = WideSession::new(&g);
        let first: Vec<RunStats> = {
            let out = wide
                .run(&lanes, factory, EngineConfig::with_seed(3))
                .unwrap();
            (0..lanes.len()).map(|l| out.stats(l)).collect()
        };
        assert!(wide.state.wide.in_lane.iter().all(|&x| x == 0));
        assert!(wide.state.wide.out_lane.iter().all(|&x| x == 0));
        assert!(wide.state.wide.scratch_occ.iter().all(|&x| x == 0));
        assert!(wide.state.wide.lane_traffic.iter().all(|&x| x == 0));
        assert!(wide.state.wide.lane_planes.iter().all(|&x| x == 0));
        let out = wide
            .run(&lanes, factory, EngineConfig::with_seed(3))
            .unwrap();
        for (l, st) in first.iter().enumerate() {
            assert_eq!(out.stats(l), *st, "rerun reproduces lane {l}");
        }
        // Staggering is real: later lanes pulse longer.
        assert!(first[8].rounds > first[0].rounds);
    }

    #[test]
    fn take_lane_outputs_moves_each_lane_once() {
        let g = cycle(6);
        let lanes = LaneSpec::batch(1, 3);
        let mut wide = WideSession::new(&g);
        let mut out = wide
            .run(
                &lanes,
                |_, _, _| FloodMax { best: 1 },
                EngineConfig::with_seed(0),
            )
            .unwrap();
        let lane1 = out.take_lane_outputs(1);
        assert_eq!(lane1, vec![1; 6]);
        assert_eq!(out.outputs(0), &[1; 6]);
    }

    #[test]
    #[should_panic(expected = "outputs taken")]
    fn outputs_after_take_panics() {
        let g = cycle(4);
        let lanes = LaneSpec::batch(1, 2);
        let mut wide = WideSession::new(&g);
        let mut out = wide
            .run(
                &lanes,
                |_, _, _| FloodMax { best: 1 },
                EngineConfig::with_seed(0),
            )
            .unwrap();
        let _ = out.take_lane_outputs(0);
        let _ = out.outputs(0);
    }

    /// A protocol that *may not* be skipped: it counts its own round()
    /// invocations — QUIESCENT = false keeps wide stepping it every
    /// round like the sequential engine does.
    struct Counter {
        calls: u64,
        quit_after: u64,
    }

    impl Protocol for Counter {
        type Msg = u64;
        type Output = u64;

        fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
            self.calls += 1;
            if ctx.round == 0 {
                ctx.send(0, 1);
            }
            ctx.set_done(self.calls >= self.quit_after);
        }

        fn finish(self) -> u64 {
            self.calls
        }
    }

    #[test]
    fn non_quiescent_lanes_step_every_round() {
        let g = cycle(8);
        let lanes = LaneSpec::batch(2, 4);
        let config = EngineConfig::with_seed(0);
        check_lane_oracle(
            &g,
            &lanes,
            |_, l, _| Counter {
                calls: 0,
                quit_after: l as u64 + 2,
            },
            config,
        );
    }

    /// `send` on one port per round with `(u64, u64)` pair messages
    /// (u128 wire words) — exercises the wide slab's byte-keyed width
    /// handling beyond u64.
    struct RingPass {
        acc: u64,
        hops: u64,
    }

    impl Protocol for RingPass {
        type Msg = (u64, u64);
        type Output = u64;
        const QUIESCENT: bool = true;

        fn round(&mut self, ctx: &mut NodeCtx<'_, (u64, u64)>) {
            if ctx.round == 0 {
                ctx.send(0, (ctx.node as u64, 1));
                ctx.set_done(true);
                return;
            }
            let mut relay = None;
            for (_, (origin, hop)) in ctx.inbox() {
                self.acc ^= origin.rotate_left(hop as u32);
                if hop < self.hops {
                    relay = Some((origin, hop + 1));
                }
            }
            if let Some(msg) = relay {
                ctx.send(0, msg);
            }
            ctx.set_done(true);
        }

        fn finish(self) -> u64 {
            self.acc
        }
    }

    #[test]
    fn wide_u128_messages_match_sequential() {
        let g = cycle(10);
        let lanes = LaneSpec::batch(11, 5);
        check_lane_oracle(
            &g,
            &lanes,
            |_, l, _| RingPass {
                acc: 0,
                hops: l as u64 + 2,
            },
            EngineConfig::with_seed(0).trace(),
        );
    }
}
