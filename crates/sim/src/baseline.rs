//! The seed-style engine, kept as a measurement arm.
//!
//! This is (a compact copy of) the engine this workspace shipped with
//! before the packed message plane: inboxes and outboxes are
//! `Vec<Option<M>>` slabs, every round pays an O(arcs) `Option` clear,
//! and delivery is a clear-then-clone pass through the reverse-arc table.
//! `benches/sim_throughput.rs` races it against the packed engine and
//! records the ratio in `BENCH_sim.json`; nothing else should use it.
//!
//! It drives [`BaselineProtocol`] rather than [`crate::Protocol`] because
//! the two engines expose different context types; benchmark workloads
//! implement both traits with identical logic so the comparison measures
//! the message plane, not the workload.

use crate::message::MsgBits;
use congest_graph::{Graph, Node, Port};

/// Node program for the baseline engine (bench workloads only).
pub trait BaselineProtocol: Send {
    type Msg: Clone + Send + Sync + MsgBits;
    type Output: Send;

    fn round(&mut self, ctx: &mut BaselineCtx<'_, Self::Msg>);
    fn finish(self) -> Self::Output;
}

/// Seed-style per-round node view: `Option` slices.
pub struct BaselineCtx<'a, M> {
    pub node: Node,
    pub round: u64,
    inbox: &'a [Option<M>],
    outbox: &'a mut [Option<M>],
    done: &'a mut bool,
}

impl<M: Clone> BaselineCtx<'_, M> {
    #[inline]
    pub fn degree(&self) -> usize {
        self.inbox.len()
    }

    pub fn inbox(&self) -> impl Iterator<Item = (Port, &M)> {
        self.inbox
            .iter()
            .enumerate()
            .filter_map(|(p, m)| m.as_ref().map(|m| (p as Port, m)))
    }

    pub fn inbox_len(&self) -> usize {
        self.inbox.iter().filter(|m| m.is_some()).count()
    }

    #[inline]
    pub fn send(&mut self, port: Port, msg: M) {
        let slot = &mut self.outbox[port as usize];
        assert!(slot.is_none(), "baseline CONGEST violation on port {port}");
        *slot = Some(msg);
    }

    pub fn send_all(&mut self, msg: M) {
        for p in 0..self.outbox.len() {
            self.send(p as Port, msg.clone());
        }
    }

    #[inline]
    pub fn set_done(&mut self, done: bool) {
        *self.done = done;
    }
}

/// Outcome mirror of [`crate::RunOutcome`], reduced to what the bench
/// and the differential harness compare.
pub struct BaselineOutcome<O> {
    pub outputs: Vec<O>,
    pub rounds: u64,
    pub total_messages: u64,
    pub max_message_bits: usize,
    /// Per-edge congestion (both directions summed), indexed by edge id —
    /// the seed engine's own `arc_traffic` counters folded exactly the
    /// way the packed engines fold theirs, so the three-way differential
    /// harness can assert the meters bit-identical.
    pub edge_congestion: Vec<u64>,
    pub max_edge_congestion: u64,
}

/// Run the seed-style engine (serial — the seed's parallel path brought
/// the same O(arcs) clears and clones, so the serial arm is the honest
/// per-core comparison).
pub fn run_baseline<P, F>(
    graph: &Graph,
    mut factory: F,
    max_rounds: u64,
) -> BaselineOutcome<P::Output>
where
    P: BaselineProtocol,
    F: FnMut(Node, &Graph) -> P,
{
    let n = graph.n();
    let arcs = graph.num_arcs();
    let mut states: Vec<P> = (0..n as Node).map(|v| factory(v, graph)).collect();
    let mut done = vec![false; n];
    let mut inbox: Vec<Option<P::Msg>> = (0..arcs).map(|_| None).collect();
    let mut outbox: Vec<Option<P::Msg>> = (0..arcs).map(|_| None).collect();
    // Per-arc congestion counters, exactly as the seed engine kept them.
    let mut arc_traffic: Vec<u64> = vec![0; arcs];

    let mut rounds = 0u64;
    let mut total_messages = 0u64;
    let mut max_message_bits = 0usize;
    let mut round = 0u64;
    loop {
        assert!(round < max_rounds, "baseline round limit exceeded");
        // Step: split the outbox into per-node slices (seed bookkeeping,
        // including its per-round allocation).
        let mut out_slices: Vec<&mut [Option<P::Msg>]> = Vec::with_capacity(n);
        {
            let mut rest = &mut outbox[..];
            for v in 0..n as Node {
                let (head, tail) = rest.split_at_mut(graph.degree(v));
                out_slices.push(head);
                rest = tail;
            }
        }
        for (v, (state, out)) in states.iter_mut().zip(out_slices).enumerate() {
            let lo = graph.arc_offset(v as Node);
            let deg = graph.degree(v as Node);
            let mut ctx = BaselineCtx {
                node: v as Node,
                round,
                inbox: &inbox[lo..lo + deg],
                outbox: out,
                done: &mut done[v],
            };
            state.round(&mut ctx);
        }
        // Deliver: clear-then-clone through the reverse-arc table.
        let mut delivered = 0u64;
        for arc in 0..arcs {
            match &outbox[graph.reverse_arc(arc)] {
                Some(msg) => {
                    max_message_bits = max_message_bits.max(msg.bits());
                    inbox[arc] = Some(msg.clone());
                    arc_traffic[arc] += 1;
                    delivered += 1;
                }
                None => inbox[arc] = None,
            }
        }
        outbox.iter_mut().for_each(|s| *s = None);
        total_messages += delivered;
        round += 1;
        if delivered > 0 {
            rounds = round;
        }
        if delivered == 0 && done.iter().all(|&d| d) {
            break;
        }
    }
    // The seed's post-run congestion fold: per-arc deliveries summed onto
    // their undirected edge, exactly as the packed engines fold theirs.
    let mut per_edge: Vec<u64> = vec![0; graph.m()];
    for v in 0..n as Node {
        let lo = graph.arc_offset(v);
        for (i, &e) in graph.incident_edges(v).iter().enumerate() {
            per_edge[e as usize] += arc_traffic[lo + i];
        }
    }
    let max_edge_congestion = per_edge.iter().copied().max().unwrap_or(0);
    BaselineOutcome {
        outputs: states.into_iter().map(|s| s.finish()).collect(),
        rounds,
        total_messages,
        max_message_bits,
        edge_congestion: per_edge,
        max_edge_congestion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_protocol, EngineConfig};
    use crate::protocol::{NodeCtx, Protocol};
    use congest_graph::generators::torus2d;

    /// One workload, both engines: flood-and-count.
    struct Flood {
        heard_at: Option<u64>,
    }

    impl Protocol for Flood {
        type Msg = u32;
        type Output = Option<u64>;
        fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
            if (ctx.round == 0 && ctx.node == 0 || ctx.inbox_len() > 0) && self.heard_at.is_none() {
                self.heard_at = Some(ctx.round);
                ctx.send_all(7);
            }
            ctx.set_done(self.heard_at.is_some());
        }
        fn finish(self) -> Option<u64> {
            self.heard_at
        }
    }

    impl BaselineProtocol for Flood {
        type Msg = u32;
        type Output = Option<u64>;
        fn round(&mut self, ctx: &mut BaselineCtx<'_, u32>) {
            if (ctx.round == 0 && ctx.node == 0 || ctx.inbox_len() > 0) && self.heard_at.is_none() {
                self.heard_at = Some(ctx.round);
                ctx.send_all(7);
            }
            ctx.set_done(self.heard_at.is_some());
        }
        fn finish(self) -> Option<u64> {
            self.heard_at
        }
    }

    #[test]
    fn baseline_and_packed_engines_agree() {
        let g = torus2d(6, 7);
        let packed =
            run_protocol(&g, |_, _| Flood { heard_at: None }, EngineConfig::serial()).unwrap();
        let base = run_baseline::<Flood, _>(&g, |_, _| Flood { heard_at: None }, 10_000);
        assert_eq!(packed.outputs, base.outputs);
        assert_eq!(packed.stats.rounds, base.rounds);
        assert_eq!(packed.stats.total_messages, base.total_messages);
        assert_eq!(packed.stats.max_message_bits, base.max_message_bits);
    }
}
