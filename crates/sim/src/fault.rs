//! Edge-fault injection: a mobile adversary that blocks a budget of edges
//! each round.
//!
//! Paper §1.2 ("An application to secure distributed computing"):
//! Fischer–Parter \[FP23\] compile any CONGEST algorithm into an
//! *f-mobile-resilient* one — correct even when an adversary controls a
//! (possibly different) set of `f` edges **every round** — given exactly
//! the kind of low-diameter tree packing Theorem 2 provides.
//!
//! Our adversary is *oblivious-random* rather than adaptive (it picks the
//! `f` blocked edges per round from a seeded stream, not from the
//! transcript); the substitution is documented in DESIGN.md §2. That is
//! the right tool for the empirical question the resilience experiment
//! asks: how much replication across the packing's trees does it take for
//! broadcast to survive a given fault rate?

use crate::churn::Mutation;
use crate::rng::mix64;
use congest_graph::{Edge, Graph, Node};

/// Per-lane seed derivation shared by [`FaultPlan::with_lane_seed`] and
/// [`ChurnPlan::with_lane_seed`]: one `mix64` over the base seed and a
/// tagged lane index. The tag keeps lane streams disjoint from the
/// round/epoch streams the plans themselves draw from (`0xFA17`,
/// `0x0DE1`, …), which all mix untagged small integers.
#[inline]
fn lane_seed(seed: u64, lane: usize) -> u64 {
    mix64(seed ^ mix64(0x1A9E_5EED ^ lane as u64))
}

/// Reusable epoch-stamped mark-bitset over edge ids: `O(1)` reset per
/// round, `O(1)` membership, one `u32` per edge. The session round loop
/// dedups fault draws through this instead of the legacy `O(budget²)`
/// linear scan, and it stays allocation-free once grown to `m` (enforced
/// by `tests/zero_alloc.rs`).
#[derive(Debug, Clone, Default)]
pub struct EdgeMarks {
    /// `stamp[e] == epoch` means `e` is marked in the current round.
    stamp: Vec<u32>,
    epoch: u32,
}

impl EdgeMarks {
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a fresh empty mark set over `0..m` (bumps the epoch; only
    /// grows storage, and only when `m` exceeds every earlier round's).
    fn begin(&mut self, m: usize) {
        if self.stamp.len() < m {
            self.stamp.resize(m, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: old stamps could alias. One flush per 2^32
            // rounds keeps the scheme exact.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Mark `e`; returns whether it was already marked this round.
    #[inline]
    fn test_and_set(&mut self, e: Edge) -> bool {
        let s = &mut self.stamp[e as usize];
        if *s == self.epoch {
            true
        } else {
            *s = self.epoch;
            false
        }
    }
}

/// A per-round edge-blocking plan.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Number of edges blocked per round (both directions).
    pub edges_per_round: usize,
    /// Stream seed; the blocked set in round `r` is a pure function of
    /// `(seed, r)`.
    pub seed: u64,
    /// First round at which the adversary acts.
    pub start_round: u64,
}

impl FaultPlan {
    pub fn new(edges_per_round: usize, seed: u64) -> Self {
        FaultPlan {
            edges_per_round,
            seed,
            start_round: 0,
        }
    }

    /// The edges blocked in `round`: exactly `min(edges_per_round, m)`
    /// **distinct** edge ids (sorted ascending). Earlier revisions let
    /// seeded-stream collisions silently shrink the set, wasting adversary
    /// budget; now colliding draws are rejected and redrawn, so the
    /// adversary always spends its full budget.
    pub fn blocked_edges(&self, round: u64, m: usize) -> Vec<Edge> {
        let mut blocked = Vec::new();
        self.blocked_edges_into(round, m, &mut blocked);
        blocked
    }

    /// [`FaultPlan::blocked_edges`] into a caller-owned buffer. Keeps the
    /// legacy `O(budget²)` linear dedup scan — fine at classic adversary
    /// scale, and allocation-free for the frozen comparison engines
    /// (`pr1`) that call it per round with only a `Vec` of scratch. The
    /// session engine uses [`FaultPlan::blocked_edges_into_marked`],
    /// which replaces the scan with an `O(1)`-per-draw mark-bitset;
    /// `proptest_fault` pins the two bit-identical.
    pub fn blocked_edges_into(&self, round: u64, m: usize, out: &mut Vec<Edge>) {
        out.clear();
        if round < self.start_round || self.edges_per_round == 0 || m == 0 {
            return;
        }
        let target = self.edges_per_round.min(m);
        // Rejection-sample distinct edges from the seeded stream. A
        // deterministic draw cap guards against the astronomically
        // unlikely degenerate stream; past it, fill with the smallest
        // unused ids so the budget promise still holds.
        let mut draw: u64 = 0;
        let draw_cap = Self::draw_cap(target);
        while out.len() < target && draw < draw_cap {
            let e = self.draw(round, draw, m);
            draw += 1;
            if !out.contains(&e) {
                out.push(e);
            }
        }
        let mut next = 0 as Edge;
        while out.len() < target {
            if !out.contains(&next) {
                out.push(next);
            }
            next += 1;
        }
        out.sort_unstable();
    }

    /// [`FaultPlan::blocked_edges_into`] with duplicate rejection through
    /// a reusable [`EdgeMarks`] scratch: `O(budget)` per round instead of
    /// `O(budget²)`, which is what makes churn-scale budgets affordable
    /// inside the round loop. Draw order and rejection decisions are
    /// identical to the legacy scan, so the output is bit-identical.
    pub fn blocked_edges_into_marked(
        &self,
        round: u64,
        m: usize,
        out: &mut Vec<Edge>,
        marks: &mut EdgeMarks,
    ) {
        out.clear();
        if round < self.start_round || self.edges_per_round == 0 || m == 0 {
            return;
        }
        let target = self.edges_per_round.min(m);
        marks.begin(m);
        let mut draw: u64 = 0;
        let draw_cap = Self::draw_cap(target);
        while out.len() < target && draw < draw_cap {
            let e = self.draw(round, draw, m);
            draw += 1;
            if !marks.test_and_set(e) {
                out.push(e);
            }
        }
        let mut next = 0 as Edge;
        while out.len() < target {
            if !marks.test_and_set(next) {
                out.push(next);
            }
            next += 1;
        }
        out.sort_unstable();
    }

    /// Derive the plan for one **lane** of a wide-batch run: identical
    /// budget and start round, seed re-mixed from `(seed, lane)` so each
    /// of the W instances faces its own reproducible nemesis stream from
    /// one base seed. Lane 0 is *not* the base plan — every lane gets a
    /// derived stream, so adding lanes never perturbs existing ones and a
    /// wide run's lane `l` can be replayed standalone by handing a
    /// sequential engine the same derived plan. Shared by
    /// `proptest_wide`, the `wide_batch` bench arm, and
    /// `examples/wide_soak.rs`.
    pub fn with_lane_seed(&self, lane: usize) -> FaultPlan {
        FaultPlan {
            seed: lane_seed(self.seed, lane),
            ..*self
        }
    }

    /// The `draw`-th candidate edge of `round` (shared by both dedup
    /// strategies so they cannot drift).
    #[inline]
    fn draw(&self, round: u64, draw: u64, m: usize) -> Edge {
        (mix64(self.seed ^ mix64(round) ^ mix64(0xFA17 + draw)) % m as u64) as Edge
    }

    #[inline]
    fn draw_cap(target: usize) -> u64 {
        64 * (target as u64 + 16)
    }

    /// Membership mask over edge ids for one round.
    pub fn blocked_mask(&self, round: u64, m: usize) -> Vec<bool> {
        let mut mask = vec![false; m];
        for e in self.blocked_edges(round, m) {
            mask[e as usize] = true;
        }
        mask
    }

    /// Convenience: does this plan block `edge` in `round`? (Test helper;
    /// the engine uses the mask.)
    pub fn blocks(&self, round: u64, edge: Edge, g: &Graph) -> bool {
        self.blocked_edges(round, g.m()).contains(&edge)
    }
}

/// A seeded **persistent-mutation** schedule — [`FaultPlan`] generalized
/// from per-round transient edge blocking to per-epoch topology churn.
/// Where `FaultPlan` masks edges for one round and forgets, a `ChurnPlan`
/// emits [`Mutation`]s that permanently rewire the graph at phase
/// boundaries (via [`crate::churn::ChurnSession`]). The same plan value
/// drives the churn proptests, the soak example, and the bench arm, so
/// every harness faces the same nemesis.
///
/// The schedule for epoch `k` is a pure function of `(seed, k)` **and the
/// graph it is asked about** — churn is path-dependent, so callers must
/// query epochs in order against the evolving topology. Budgets are
/// best-effort: a draw that would break an invariant (duplicate edge,
/// self-loop, crashed endpoint, a removal pushing an endpoint below
/// [`ChurnPlan::min_degree_floor`]) is rejected and redrawn up to a
/// deterministic cap, mirroring [`FaultPlan`]'s rejection sampling.
#[derive(Debug, Clone)]
pub struct ChurnPlan {
    /// Stream seed.
    pub seed: u64,
    /// Edge insertions attempted per epoch.
    pub adds_per_epoch: usize,
    /// Edge deletions attempted per epoch.
    pub removes_per_epoch: usize,
    /// Crash/revive ops attempted per epoch (coin-flip between the two;
    /// revives target the lowest-id crashed node).
    pub node_ops_per_epoch: usize,
    /// Deletions never drop an endpoint's degree below this floor (crash
    /// ops are exempt — a crash models a hard failure).
    pub min_degree_floor: usize,
    /// First epoch at which the nemesis acts.
    pub start_epoch: u64,
}

impl ChurnPlan {
    pub fn new(adds_per_epoch: usize, removes_per_epoch: usize, seed: u64) -> Self {
        ChurnPlan {
            seed,
            adds_per_epoch,
            removes_per_epoch,
            node_ops_per_epoch: 0,
            min_degree_floor: 1,
            start_epoch: 0,
        }
    }

    /// Enable crash/revive ops.
    pub fn node_ops(mut self, per_epoch: usize) -> Self {
        self.node_ops_per_epoch = per_epoch;
        self
    }

    /// Set the degree floor removals respect.
    pub fn degree_floor(mut self, floor: usize) -> Self {
        self.min_degree_floor = floor;
        self
    }

    /// The mutation batch for `epoch` against the current topology
    /// (`g` plus the `crashed` flags), appended to `out` in application
    /// order: removals, then insertions, then node ops.
    pub fn mutations_into(&self, epoch: u64, g: &Graph, crashed: &[bool], out: &mut Vec<Mutation>) {
        out.clear();
        if epoch < self.start_epoch {
            return;
        }
        let n = g.n();
        let m = g.m();
        debug_assert_eq!(crashed.len(), n);

        // --- removals (stream tag 0x0DE1) ------------------------------
        // Respect the degree floor *after* earlier draws this epoch: a
        // node's effective degree is its graph degree minus removals
        // already scheduled against it (linear scans — budgets are small).
        let eff_degree = |out: &[Mutation], v: Node| -> usize {
            let drawn = out
                .iter()
                .filter(|op| matches!(op, Mutation::RemoveEdge(a, b) if *a == v || *b == v))
                .count();
            g.degree(v) - drawn
        };
        let target = self.removes_per_epoch.min(m);
        let mut draw: u64 = 0;
        let cap = 64 * (target as u64 + 16);
        let mut scheduled = 0usize;
        while scheduled < target && draw < cap {
            let h = mix64(self.seed ^ mix64(epoch) ^ mix64(0x0DE1 + draw));
            draw += 1;
            let (u, v) = g.endpoints((h % m as u64) as Edge);
            let dup = out
                .iter()
                .any(|op| matches!(op, Mutation::RemoveEdge(a, b) if (*a, *b) == (u, v)));
            if dup
                || eff_degree(out, u) <= self.min_degree_floor
                || eff_degree(out, v) <= self.min_degree_floor
            {
                continue;
            }
            out.push(Mutation::RemoveEdge(u, v));
            scheduled += 1;
        }

        // --- insertions (stream tag 0x0ADD) ----------------------------
        let canon = |u: Node, v: Node| if u < v { (u, v) } else { (v, u) };
        let pending = |out: &[Mutation], c: (Node, Node)| {
            out.iter().any(|op| match op {
                Mutation::AddEdge(a, b) | Mutation::RemoveEdge(a, b) => canon(*a, *b) == c,
                _ => false,
            })
        };
        let target = self.adds_per_epoch;
        let mut draw: u64 = 0;
        let cap = 64 * (target as u64 + 16);
        let mut scheduled = 0usize;
        while scheduled < target && draw < cap {
            let h = mix64(self.seed ^ mix64(epoch) ^ mix64(0x0ADD + draw));
            draw += 1;
            let u = (h % n as u64) as Node;
            let v = ((h >> 32) % n as u64) as Node;
            if u == v || crashed[u as usize] || crashed[v as usize] {
                continue;
            }
            let c = canon(u, v);
            // Reject edges already present and edges this epoch already
            // touches either way (mutating the same pair twice per epoch
            // would make the net effect order-sensitive).
            if g.has_edge(u, v) || pending(out, c) {
                continue;
            }
            out.push(Mutation::AddEdge(c.0, c.1));
            scheduled += 1;
        }

        // --- crash / revive (stream tag 0x0C4A) ------------------------
        let crashed_now = |out: &[Mutation], v: Node| -> bool {
            let mut state = crashed[v as usize];
            for op in out {
                match op {
                    Mutation::Crash(w) if *w == v => state = true,
                    Mutation::Revive(w) if *w == v => state = false,
                    _ => {}
                }
            }
            state
        };
        for i in 0..self.node_ops_per_epoch {
            let h = mix64(self.seed ^ mix64(epoch) ^ mix64(0x0C4A + i as u64));
            let lowest_crashed = (0..n as Node).find(|&v| crashed_now(out, v));
            if h & 1 == 1 {
                if let Some(v) = lowest_crashed {
                    out.push(Mutation::Revive(v));
                    continue;
                }
            }
            let alive = (0..n as Node).filter(|&v| !crashed_now(out, v)).count();
            if alive <= 2 {
                continue; // refuse to depopulate the network
            }
            let mut sub: u64 = 0;
            while sub < 64 {
                let v = (mix64(h ^ mix64(sub)) % n as u64) as Node;
                sub += 1;
                if !crashed_now(out, v) {
                    out.push(Mutation::Crash(v));
                    break;
                }
            }
        }
    }

    /// Derive the plan for one **lane** of a wide-batch run — same
    /// budgets, floor, and start epoch, seed re-mixed from `(seed, lane)`
    /// exactly as [`FaultPlan::with_lane_seed`] does, so a wide harness
    /// can split one base seed into W independent churn nemeses.
    pub fn with_lane_seed(&self, lane: usize) -> ChurnPlan {
        ChurnPlan {
            seed: lane_seed(self.seed, lane),
            ..self.clone()
        }
    }

    /// Allocating convenience wrapper over [`ChurnPlan::mutations_into`].
    pub fn mutations(&self, epoch: u64, g: &Graph, crashed: &[bool]) -> Vec<Mutation> {
        let mut out = Vec::new();
        self.mutations_into(epoch, g, crashed, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::cycle;

    #[test]
    fn budget_respected_and_deterministic() {
        let plan = FaultPlan::new(3, 9);
        let a = plan.blocked_edges(5, 100);
        let b = plan.blocked_edges(5, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3, "full budget is spent");
        assert!(a.iter().all(|&e| (e as usize) < 100));
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
    }

    #[test]
    fn small_graphs_block_every_edge() {
        // Budget larger than m: all m edges are blocked, exactly once.
        let plan = FaultPlan::new(10, 2);
        let a = plan.blocked_edges(0, 4);
        assert_eq!(a, vec![0, 1, 2, 3]);
    }

    #[test]
    fn different_rounds_differ() {
        let plan = FaultPlan::new(4, 1);
        assert_ne!(plan.blocked_edges(1, 1000), plan.blocked_edges(2, 1000));
    }

    #[test]
    fn start_round_delays_the_adversary() {
        let plan = FaultPlan {
            edges_per_round: 2,
            seed: 3,
            start_round: 10,
        };
        assert!(plan.blocked_edges(9, 50).is_empty());
        assert!(!plan.blocked_edges(10, 50).is_empty());
    }

    #[test]
    fn zero_budget_blocks_nothing() {
        let plan = FaultPlan::new(0, 7);
        assert!(plan.blocked_edges(3, 10).is_empty());
        let g = cycle(5);
        assert!(!plan.blocks(3, 0, &g));
    }

    #[test]
    fn lane_seeds_are_deterministic_and_distinct() {
        let base = FaultPlan {
            edges_per_round: 3,
            seed: 77,
            start_round: 2,
        };
        // Same lane twice → identical plan; budget/start carried over.
        let a = base.with_lane_seed(5);
        let b = base.with_lane_seed(5);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.edges_per_round, 3);
        assert_eq!(a.start_round, 2);
        // Distinct lanes (and the base itself) give distinct streams.
        let mut seeds: Vec<u64> = (0..64).map(|l| base.with_lane_seed(l).seed).collect();
        seeds.push(base.seed);
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 65, "64 lanes + base are pairwise distinct");
        assert_ne!(
            base.with_lane_seed(0).blocked_edges(3, 500),
            base.with_lane_seed(1).blocked_edges(3, 500)
        );
    }

    #[test]
    fn churn_lane_seeds_match_fault_derivation() {
        let fp = FaultPlan::new(1, 123);
        let cp = ChurnPlan::new(2, 2, 123).node_ops(1).degree_floor(2);
        for lane in [0usize, 1, 7, 63] {
            assert_eq!(
                fp.with_lane_seed(lane).seed,
                cp.with_lane_seed(lane).seed,
                "one derivation rule for both plan kinds"
            );
        }
        let derived = cp.with_lane_seed(9);
        assert_eq!(derived.adds_per_epoch, 2);
        assert_eq!(derived.removes_per_epoch, 2);
        assert_eq!(derived.node_ops_per_epoch, 1);
        assert_eq!(derived.min_degree_floor, 2);
    }

    #[test]
    fn churn_plan_is_deterministic() {
        let g = congest_graph::generators::harary(4, 24);
        let plan = ChurnPlan::new(3, 3, 42).node_ops(1);
        let crashed = vec![false; g.n()];
        assert_eq!(
            plan.mutations(7, &g, &crashed),
            plan.mutations(7, &g, &crashed)
        );
        assert_ne!(
            plan.mutations(7, &g, &crashed),
            plan.mutations(8, &g, &crashed)
        );
    }

    #[test]
    fn churn_plan_respects_degree_floor() {
        let g = cycle(12); // every node has degree 2
        let plan = ChurnPlan::new(0, 6, 5).degree_floor(2);
        let crashed = vec![false; g.n()];
        assert!(
            plan.mutations(0, &g, &crashed).is_empty(),
            "no removal may drop a cycle node below degree 2"
        );
        let relaxed = ChurnPlan::new(0, 3, 5).degree_floor(1);
        let muts = relaxed.mutations(0, &g, &crashed);
        assert!(!muts.is_empty());
        for op in &muts {
            assert!(matches!(op, Mutation::RemoveEdge(_, _)));
        }
    }

    #[test]
    fn churn_plan_batches_apply_cleanly() {
        // The schedule's invariant-rejection must make every batch valid
        // against the topology it was drawn for: drive a ChurnSession for
        // many epochs and require apply_pending to never error.
        let g = congest_graph::generators::harary(4, 30);
        let plan = ChurnPlan::new(2, 2, 99).node_ops(1);
        let mut sess = crate::churn::ChurnSession::new(g);
        let mut batch = Vec::new();
        for epoch in 0..40u64 {
            plan.mutations_into(epoch, sess.graph(), sess.crashed(), &mut batch);
            sess.queue_mut().extend(batch.iter().copied());
            sess.apply_pending()
                .unwrap_or_else(|e| panic!("epoch {epoch}: {e}"));
            assert!(sess.alive() > 2);
        }
        let stats = sess.stats();
        assert!(stats.edges_added > 0 && stats.edges_removed > 0);
        assert!(stats.crashes > 0, "node ops fired over 40 epochs");
    }

    #[test]
    fn churn_plan_start_epoch_delays() {
        let g = cycle(10);
        let plan = ChurnPlan {
            start_epoch: 5,
            ..ChurnPlan::new(2, 1, 3)
        };
        let crashed = vec![false; g.n()];
        assert!(plan.mutations(4, &g, &crashed).is_empty());
        assert!(!plan.mutations(5, &g, &crashed).is_empty());
    }
}
