//! Edge-fault injection: a mobile adversary that blocks a budget of edges
//! each round.
//!
//! Paper §1.2 ("An application to secure distributed computing"):
//! Fischer–Parter \[FP23\] compile any CONGEST algorithm into an
//! *f-mobile-resilient* one — correct even when an adversary controls a
//! (possibly different) set of `f` edges **every round** — given exactly
//! the kind of low-diameter tree packing Theorem 2 provides.
//!
//! Our adversary is *oblivious-random* rather than adaptive (it picks the
//! `f` blocked edges per round from a seeded stream, not from the
//! transcript); the substitution is documented in DESIGN.md §2. That is
//! the right tool for the empirical question the resilience experiment
//! asks: how much replication across the packing's trees does it take for
//! broadcast to survive a given fault rate?

use crate::rng::mix64;
use congest_graph::{Edge, Graph};

/// A per-round edge-blocking plan.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Number of edges blocked per round (both directions).
    pub edges_per_round: usize,
    /// Stream seed; the blocked set in round `r` is a pure function of
    /// `(seed, r)`.
    pub seed: u64,
    /// First round at which the adversary acts.
    pub start_round: u64,
}

impl FaultPlan {
    pub fn new(edges_per_round: usize, seed: u64) -> Self {
        FaultPlan {
            edges_per_round,
            seed,
            start_round: 0,
        }
    }

    /// The edges blocked in `round` (may contain fewer than
    /// `edges_per_round` distinct ids if the stream collides; the
    /// adversary wastes that budget, which only weakens it).
    pub fn blocked_edges(&self, round: u64, m: usize) -> Vec<Edge> {
        let mut blocked = Vec::new();
        self.blocked_edges_into(round, m, &mut blocked);
        blocked
    }

    /// [`FaultPlan::blocked_edges`] into a caller-owned buffer, so the
    /// engine's round loop stays allocation-free (the buffer's capacity is
    /// reused across rounds).
    pub fn blocked_edges_into(&self, round: u64, m: usize, out: &mut Vec<Edge>) {
        out.clear();
        if round < self.start_round || self.edges_per_round == 0 || m == 0 {
            return;
        }
        out.extend(
            (0..self.edges_per_round as u64)
                .map(|i| (mix64(self.seed ^ mix64(round) ^ mix64(0xFA17 + i)) % m as u64) as Edge),
        );
        out.sort_unstable();
        out.dedup();
    }

    /// Membership mask over edge ids for one round.
    pub fn blocked_mask(&self, round: u64, m: usize) -> Vec<bool> {
        let mut mask = vec![false; m];
        for e in self.blocked_edges(round, m) {
            mask[e as usize] = true;
        }
        mask
    }

    /// Convenience: does this plan block `edge` in `round`? (Test helper;
    /// the engine uses the mask.)
    pub fn blocks(&self, round: u64, edge: Edge, g: &Graph) -> bool {
        self.blocked_edges(round, g.m()).contains(&edge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::cycle;

    #[test]
    fn budget_respected_and_deterministic() {
        let plan = FaultPlan::new(3, 9);
        let a = plan.blocked_edges(5, 100);
        let b = plan.blocked_edges(5, 100);
        assert_eq!(a, b);
        assert!(a.len() <= 3 && !a.is_empty());
        assert!(a.iter().all(|&e| (e as usize) < 100));
    }

    #[test]
    fn different_rounds_differ() {
        let plan = FaultPlan::new(4, 1);
        assert_ne!(plan.blocked_edges(1, 1000), plan.blocked_edges(2, 1000));
    }

    #[test]
    fn start_round_delays_the_adversary() {
        let plan = FaultPlan {
            edges_per_round: 2,
            seed: 3,
            start_round: 10,
        };
        assert!(plan.blocked_edges(9, 50).is_empty());
        assert!(!plan.blocked_edges(10, 50).is_empty());
    }

    #[test]
    fn zero_budget_blocks_nothing() {
        let plan = FaultPlan::new(0, 7);
        assert!(plan.blocked_edges(3, 10).is_empty());
        let g = cycle(5);
        assert!(!plan.blocks(3, 0, &g));
    }
}
