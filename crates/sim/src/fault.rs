//! Edge-fault injection: a mobile adversary that blocks a budget of edges
//! each round.
//!
//! Paper §1.2 ("An application to secure distributed computing"):
//! Fischer–Parter \[FP23\] compile any CONGEST algorithm into an
//! *f-mobile-resilient* one — correct even when an adversary controls a
//! (possibly different) set of `f` edges **every round** — given exactly
//! the kind of low-diameter tree packing Theorem 2 provides.
//!
//! Our adversary is *oblivious-random* rather than adaptive (it picks the
//! `f` blocked edges per round from a seeded stream, not from the
//! transcript); the substitution is documented in DESIGN.md §2. That is
//! the right tool for the empirical question the resilience experiment
//! asks: how much replication across the packing's trees does it take for
//! broadcast to survive a given fault rate?

use crate::rng::mix64;
use congest_graph::{Edge, Graph};

/// A per-round edge-blocking plan.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Number of edges blocked per round (both directions).
    pub edges_per_round: usize,
    /// Stream seed; the blocked set in round `r` is a pure function of
    /// `(seed, r)`.
    pub seed: u64,
    /// First round at which the adversary acts.
    pub start_round: u64,
}

impl FaultPlan {
    pub fn new(edges_per_round: usize, seed: u64) -> Self {
        FaultPlan {
            edges_per_round,
            seed,
            start_round: 0,
        }
    }

    /// The edges blocked in `round`: exactly `min(edges_per_round, m)`
    /// **distinct** edge ids (sorted ascending). Earlier revisions let
    /// seeded-stream collisions silently shrink the set, wasting adversary
    /// budget; now colliding draws are rejected and redrawn, so the
    /// adversary always spends its full budget.
    pub fn blocked_edges(&self, round: u64, m: usize) -> Vec<Edge> {
        let mut blocked = Vec::new();
        self.blocked_edges_into(round, m, &mut blocked);
        blocked
    }

    /// [`FaultPlan::blocked_edges`] into a caller-owned buffer, so the
    /// engine's round loop stays allocation-free (the buffer's capacity is
    /// reused across rounds).
    pub fn blocked_edges_into(&self, round: u64, m: usize, out: &mut Vec<Edge>) {
        out.clear();
        if round < self.start_round || self.edges_per_round == 0 || m == 0 {
            return;
        }
        let target = self.edges_per_round.min(m);
        // Rejection-sample distinct edges from the seeded stream. The
        // linear duplicate scan is fine at adversary scale (budgets are
        // tiny next to m). A deterministic draw cap guards against the
        // astronomically unlikely degenerate stream; past it, fill with
        // the smallest unused ids so the budget promise still holds.
        let mut draw: u64 = 0;
        let draw_cap = 64 * (target as u64 + 16);
        while out.len() < target && draw < draw_cap {
            let e = (mix64(self.seed ^ mix64(round) ^ mix64(0xFA17 + draw)) % m as u64) as Edge;
            draw += 1;
            if !out.contains(&e) {
                out.push(e);
            }
        }
        let mut next = 0 as Edge;
        while out.len() < target {
            if !out.contains(&next) {
                out.push(next);
            }
            next += 1;
        }
        out.sort_unstable();
    }

    /// Membership mask over edge ids for one round.
    pub fn blocked_mask(&self, round: u64, m: usize) -> Vec<bool> {
        let mut mask = vec![false; m];
        for e in self.blocked_edges(round, m) {
            mask[e as usize] = true;
        }
        mask
    }

    /// Convenience: does this plan block `edge` in `round`? (Test helper;
    /// the engine uses the mask.)
    pub fn blocks(&self, round: u64, edge: Edge, g: &Graph) -> bool {
        self.blocked_edges(round, g.m()).contains(&edge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::cycle;

    #[test]
    fn budget_respected_and_deterministic() {
        let plan = FaultPlan::new(3, 9);
        let a = plan.blocked_edges(5, 100);
        let b = plan.blocked_edges(5, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3, "full budget is spent");
        assert!(a.iter().all(|&e| (e as usize) < 100));
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
    }

    #[test]
    fn small_graphs_block_every_edge() {
        // Budget larger than m: all m edges are blocked, exactly once.
        let plan = FaultPlan::new(10, 2);
        let a = plan.blocked_edges(0, 4);
        assert_eq!(a, vec![0, 1, 2, 3]);
    }

    #[test]
    fn different_rounds_differ() {
        let plan = FaultPlan::new(4, 1);
        assert_ne!(plan.blocked_edges(1, 1000), plan.blocked_edges(2, 1000));
    }

    #[test]
    fn start_round_delays_the_adversary() {
        let plan = FaultPlan {
            edges_per_round: 2,
            seed: 3,
            start_round: 10,
        };
        assert!(plan.blocked_edges(9, 50).is_empty());
        assert!(!plan.blocked_edges(10, 50).is_empty());
    }

    #[test]
    fn zero_budget_blocks_nothing() {
        let plan = FaultPlan::new(0, 7);
        assert!(plan.blocked_edges(3, 10).is_empty());
        let g = cycle(5);
        assert!(!plan.blocks(3, 0, &g));
    }
}
