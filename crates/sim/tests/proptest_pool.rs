//! The serving-layer oracle: **any interleaving of submissions through a
//! [`PoolServer`] produces outputs bit-identical to running each job
//! alone on a fresh [`Session`]** (`run_job_isolated`), regardless of
//! how the batching policy grouped jobs onto wide lane groups or the
//! sequential fallback, across queue capacities × drain points × shard
//! counts × meter modes × per-job fault plans.
//!
//! This is the property that makes the pool *transparent*: a tenant can
//! never observe that its run shared a sweep, a warm state, or a drain
//! with other tenants.

use congest_graph::{Graph, GraphBuilder};
use congest_sim::{
    run_job_isolated, EngineConfig, FaultPlan, Job, JobOutput, JobSpec, JobStatus, MeterMode,
    PoolServer,
};
use proptest::prelude::*;

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (3..max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mix = |mut z: u64| {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        };
        let mut b = GraphBuilder::new(n);
        let mut edges = std::collections::BTreeSet::new();
        for v in 1..n as u32 {
            let u = (mix(seed ^ v as u64) % v as u64) as u32;
            edges.insert((u, v));
        }
        for i in 0..2 * n as u64 {
            let u = (mix(seed ^ (i << 20)) % n as u64) as u32;
            let v = (mix(seed ^ (i << 21) ^ 7) % n as u64) as u32;
            if u != v {
                edges.insert((u.min(v), u.max(v)));
            }
        }
        for (u, v) in edges {
            b.push_edge(u, v);
        }
        b.build().unwrap()
    })
}

/// One submission, in strategy-friendly raw form.
#[derive(Debug, Clone)]
struct RawJob {
    graph: usize,
    family: u8,
    seed: u64,
    fault_budget: usize,
    fault_seed: u64,
    tenant: u32,
    /// Drain the server right after this submission.
    drain_after: bool,
}

fn arb_jobs(max_jobs: usize) -> impl Strategy<Value = Vec<RawJob>> {
    proptest::collection::vec(
        (
            (0usize..2, 0u8..3, any::<u64>()),
            (0usize..3, any::<u64>(), 0u32..4, any::<bool>()),
        )
            .prop_map(
                |((graph, family, seed), (fault_budget, fault_seed, tenant, drain_after))| RawJob {
                    graph,
                    family,
                    seed,
                    fault_budget,
                    fault_seed,
                    tenant,
                    drain_after,
                },
            ),
        1..max_jobs,
    )
}

fn spec_for(raw: &RawJob, g: &Graph) -> JobSpec {
    match raw.family {
        0 => JobSpec::FloodMax,
        1 => JobSpec::Rumor {
            source: (raw.seed % g.n() as u64) as u32,
        },
        _ => JobSpec::Gossip {
            rounds: 2 + raw.seed % 4,
        },
    }
}

fn faults_for(raw: &RawJob) -> Option<FaultPlan> {
    (raw.fault_budget > 0).then(|| FaultPlan::new(raw.fault_budget, raw.fault_seed))
}

/// Push the whole stream through one server (interleaving drains as the
/// stream dictates, plus whatever backpressure forces) and return the
/// outputs keyed by submission index.
fn serve_all(
    raws: &[RawJob],
    graphs: &[Graph; 2],
    config: &EngineConfig,
    capacity: usize,
) -> Vec<JobOutput> {
    let mut server = PoolServer::new(config.clone(), capacity);
    let keys = [
        server.register_graph(graphs[0].clone()),
        server.register_graph(graphs[1].clone()),
    ];
    let mut out = Vec::new();
    for raw in raws {
        let job = Job {
            graph: keys[raw.graph],
            protocol: spec_for(raw, &graphs[raw.graph]),
            seed: raw.seed,
            faults: faults_for(raw),
            tenant: raw.tenant,
        };
        server.submit(job, &mut out).expect("graph is registered");
        if raw.drain_after {
            server.drain(&mut out);
        }
    }
    server.drain(&mut out);
    out.sort_by_key(|o| o.id);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole property: pooled ≡ isolated, bit for bit, for every
    /// job in every interleaving.
    #[test]
    fn any_interleaving_matches_isolated_sessions(
        g0 in arb_connected_graph(16),
        g1 in arb_connected_graph(14),
        raws in arb_jobs(18),
        capacity in 1usize..6,
        shards in 1usize..4,
    ) {
        let graphs = [g0, g1];
        for &meter in &[MeterMode::BitPlanes, MeterMode::ArcCounters] {
            let config = EngineConfig::serial().shards(shards).meter(meter);
            let out = serve_all(&raws, &graphs, &config, capacity);
            prop_assert_eq!(out.len(), raws.len());
            for (raw, o) in raws.iter().zip(&out) {
                let g = &graphs[raw.graph];
                let (outputs, stats) = run_job_isolated(
                    g,
                    &spec_for(raw, g),
                    raw.seed,
                    faults_for(raw),
                    &config,
                )
                .expect("isolated run terminates");
                prop_assert_eq!(o.status, JobStatus::Done);
                prop_assert_eq!(o.tenant, raw.tenant);
                prop_assert_eq!(&o.outputs, &outputs, "outputs of job {:?}", o.id);
                prop_assert_eq!(o.stats, stats, "stats of job {:?}", o.id);
            }
        }
    }

    /// The grouping is invisible: reordering the *queue contents* between
    /// drains never changes any job's result, only which sweep ran it —
    /// served twice with different drain interleavings, every job's
    /// output is identical.
    #[test]
    fn drain_points_never_change_results(
        g0 in arb_connected_graph(14),
        g1 in arb_connected_graph(12),
        mut raws in arb_jobs(14),
        capacity in 1usize..5,
    ) {
        let graphs = [g0, g1];
        let config = EngineConfig::serial();
        let a = serve_all(&raws, &graphs, &config, capacity);
        for raw in &mut raws {
            raw.drain_after = !raw.drain_after;
        }
        let b = serve_all(&raws, &graphs, &config, 1 + capacity / 2);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.outputs, &y.outputs);
            prop_assert_eq!(x.stats, y.stats);
        }
    }
}
