//! The session differential harness: a multi-phase composition executed
//! on one **resident** [`Session`] must be bit-identical — outputs,
//! stats, traces, per-edge congestion meters, and the accumulated
//! [`PhaseLog`] — to the same composition run **per-phase** (a fresh
//! engine per phase, exactly what `run_protocol` composition did before
//! sessions), sweeping shard counts × pool widths × meter modes × fault
//! plans, with the sparse fast path forced both ways and a `u64` phase
//! reusing a `u128` phase's slab.
//!
//! Per-phase RNG seeds are derived through `phase_seed` exactly as the
//! drivers' `cfg.engine(k)` discipline derives them, so this is the
//! contract that lets every driver switch hosts without changing one
//! bit of any result.

use congest_graph::{Graph, GraphBuilder};
use congest_sim::rng::phase_seed;
use congest_sim::{
    EngineConfig, FaultPlan, MeterMode, NodeCtx, PhaseHost, PhaseLog, Protocol, RunStats,
};
use proptest::prelude::*;

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (3..max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mix = |mut z: u64| {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        };
        let mut b = GraphBuilder::new(n);
        let mut edges = std::collections::BTreeSet::new();
        for v in 1..n as u32 {
            let u = (mix(seed ^ v as u64) % v as u64) as u32;
            edges.insert((u, v));
        }
        for i in 0..2 * n as u64 {
            let u = (mix(seed ^ (i << 20)) % n as u64) as u32;
            let v = (mix(seed ^ (i << 21) ^ 7) % n as u64) as u32;
            if u != v {
                edges.insert((u.min(v), u.max(v)));
            }
        }
        for (u, v) in edges {
            b.push_edge(u, v);
        }
        b.build().unwrap()
    })
}

/// Random mix of `send_all`, per-port `send`, and silence over `u64`
/// messages (the engine oracle workload).
struct Chatter {
    rounds: u64,
    salt: u64,
    heard: u64,
}

impl Protocol for Chatter {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        self.heard = ctx.inbox().fold(self.heard, |a, (p, m)| {
            a.wrapping_mul(17).wrapping_add(m ^ p as u64)
        });
        if ctx.round < self.rounds {
            use rand::Rng;
            let a = ctx.rng().gen_range(0..8u32);
            let m: u64 = ctx.rng().gen();
            if a == 0 {
                ctx.send_all(m ^ self.salt);
            } else if a < 5 {
                for p in 0..ctx.degree().min(64) as u32 {
                    if m >> p & 1 == 1 {
                        ctx.send(p, m.wrapping_add(self.salt ^ p as u64));
                    }
                }
            }
        }
        ctx.set_done(ctx.round >= self.rounds);
    }
    fn finish(self) -> u64 {
        self.heard
    }
}

/// Wide-message phase: `(u32, u64)` pairs in the `u128` slab, so the
/// composition exercises the width-keyed slab reuse in both hosts.
struct WideChatter {
    rounds: u64,
    heard: u64,
}

impl Protocol for WideChatter {
    type Msg = (u32, u64);
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, (u32, u64)>) {
        self.heard = ctx.inbox().fold(self.heard, |a, (_, (id, p))| {
            a.wrapping_mul(31).wrapping_add(id as u64 ^ p)
        });
        if ctx.round < self.rounds {
            ctx.send_all((ctx.node, self.heard | 1));
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.heard
    }
}

/// One phase's complete observable footprint.
#[derive(Debug, PartialEq)]
struct PhaseObs {
    outputs: Vec<u64>,
    stats: RunStats,
    trace: Vec<u64>,
    edge_congestion: Vec<u64>,
}

/// Run the five-phase composition on `host` and capture everything
/// observable. Phase seeds follow the drivers' `cfg.engine(k)`
/// discipline (`phase_seed(seed, k)`).
fn run_composition(
    host: &mut PhaseHost<'_>,
    seed: u64,
    shards: usize,
    meter: MeterMode,
    fault_budget: usize,
    fseed: u64,
) -> (Vec<PhaseObs>, PhaseLog) {
    let mut log = PhaseLog::new();
    let mut all = Vec::new();
    let engine = |k: u64| {
        EngineConfig::serial()
            .seed(phase_seed(seed, k))
            .shards(shards)
            .meter(meter)
            .trace()
    };
    let push = |name: &str, log: &mut PhaseLog, out: congest_sim::PhaseOutcome<'_, u64>| {
        log.record(name.to_string(), out.stats);
        let obs = PhaseObs {
            stats: out.stats,
            trace: out.trace().unwrap().to_vec(),
            edge_congestion: out.edge_congestion().to_vec(),
            outputs: out.take_outputs(),
        };
        obs
    };
    // 1. dense-ish u64 chatter.
    let out = host
        .run(
            |_, _| Chatter {
                rounds: 6,
                salt: 1,
                heard: 0,
            },
            engine(1),
        )
        .unwrap();
    all.push(push("phase-1", &mut log, out));
    // 2. wide u128 phase.
    let out = host
        .run(
            |_, _| WideChatter {
                rounds: 5,
                heard: 1,
            },
            engine(2),
        )
        .unwrap();
    all.push(push("phase-2", &mut log, out));
    // 3. u64 phase straight after the u128 one, sparse path forced on.
    let out = host
        .run(
            |_, _| Chatter {
                rounds: 6,
                salt: 3,
                heard: 0,
            },
            engine(3).sparse_threshold(usize::MAX),
        )
        .unwrap();
    all.push(push("phase-3", &mut log, out));
    // 4. faulted phase (fast path forced off), when the plan has budget.
    let out = host
        .run(
            |_, _| Chatter {
                rounds: 7,
                salt: 4,
                heard: 0,
            },
            engine(4)
                .sparse_threshold(0)
                .with_faults(FaultPlan::new(fault_budget, fseed)),
        )
        .unwrap();
    all.push(push("phase-4", &mut log, out));
    // 5. mixed u64 phase on the default threshold.
    let out = host
        .run(
            |_, _| Chatter {
                rounds: 6,
                salt: 5,
                heard: 0,
            },
            engine(5),
        )
        .unwrap();
    all.push(push("phase-5", &mut log, out));
    (all, log)
}

fn logs_equal(a: &PhaseLog, b: &PhaseLog) -> bool {
    a.len() == b.len()
        && a.phases()
            .zip(b.phases())
            .all(|((na, sa), (nb, sb))| na == nb && sa == sb)
        && a.total() == b.total()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Resident-session composition ≡ per-phase composition, across the
    /// config grid.
    #[test]
    fn session_composition_matches_per_phase(
        g in arb_connected_graph(22),
        seed in any::<u64>(),
        fault_budget in 0usize..3,
        fseed in any::<u64>(),
    ) {
        for &shards in &[1usize, 5] {
            for &meter in &[MeterMode::BitPlanes, MeterMode::ArcCounters] {
                let mut resident = PhaseHost::resident(&g);
                let (res, res_log) =
                    run_composition(&mut resident, seed, shards, meter, fault_budget, fseed);
                let mut fresh = PhaseHost::per_phase(&g);
                let (per, per_log) =
                    run_composition(&mut fresh, seed, shards, meter, fault_budget, fseed);
                prop_assert_eq!(&res, &per, "shards={} meter={:?}", shards, meter);
                prop_assert!(logs_equal(&res_log, &per_log),
                    "phase logs diverge: shards={} meter={:?}", shards, meter);
            }
        }
    }

    /// Same equivalence with the step/deliver planes genuinely parallel:
    /// several pool widths, the resident arm parallel vs the per-phase
    /// arm serial (and vice versa) — host choice and execution mode are
    /// both irrelevant to results.
    #[test]
    fn session_composition_matches_across_pool_widths(
        g in arb_connected_graph(18),
        seed in any::<u64>(),
    ) {
        let mut fresh = PhaseHost::per_phase(&g);
        let (reference, ref_log) =
            run_composition(&mut fresh, seed, 4, MeterMode::BitPlanes, 1, seed ^ 0xF);
        for threads in [2usize, 4] {
            let (par, par_log) = congest_par::with_threads(threads, || {
                let mut resident = PhaseHost::resident(&g);
                run_composition(&mut resident, seed, 4, MeterMode::BitPlanes, 1, seed ^ 0xF)
            });
            prop_assert_eq!(&par, &reference, "threads={}", threads);
            prop_assert!(logs_equal(&par_log, &ref_log), "threads={}", threads);
        }
    }

    /// A phase that fails (round-limit) must leave the session reusable:
    /// the next phase on the same session matches a fresh engine's run
    /// of that phase bit-for-bit (the dirty-scrub path).
    #[test]
    fn failed_phase_leaves_session_clean(
        g in arb_connected_graph(16),
        seed in any::<u64>(),
    ) {
        /// Never terminates: chatters forever.
        struct Forever;
        impl Protocol for Forever {
            type Msg = u64;
            type Output = u64;
            fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
                ctx.send_all(ctx.round | 1);
            }
            fn finish(self) -> u64 {
                0
            }
        }
        let mut session = congest_sim::Session::new(&g);
        let err = match session.run(|_, _| Forever, EngineConfig::serial().seed(seed).max_rounds(5))
        {
            Err(e) => e,
            Ok(_) => panic!("Forever must exceed the round limit"),
        };
        prop_assert_eq!(err, congest_sim::EngineError::RoundLimitExceeded { limit: 5 });
        let cfg = || EngineConfig::serial().seed(phase_seed(seed, 9)).trace();
        let mk = || Chatter { rounds: 6, salt: 9, heard: 0 };
        let after = session.run(|_, _| mk(), cfg()).unwrap();
        let after_obs = PhaseObs {
            stats: after.stats,
            trace: after.trace().unwrap().to_vec(),
            edge_congestion: after.edge_congestion().to_vec(),
            outputs: after.take_outputs(),
        };
        let fresh = congest_sim::run_protocol(&g, |_, _| mk(), cfg()).unwrap();
        prop_assert_eq!(after_obs.outputs, fresh.outputs);
        prop_assert_eq!(after_obs.stats, fresh.stats);
        prop_assert_eq!(Some(after_obs.trace), fresh.trace);
        prop_assert_eq!(after_obs.edge_congestion, fresh.edge_congestion);
    }
}
