//! Property-based tests for the CONGEST engine: message conservation,
//! determinism across execution modes, and metering consistency for
//! arbitrary (randomized) chatter protocols.

use congest_graph::{Graph, GraphBuilder};
use congest_sim::{run_protocol, EngineConfig, NodeCtx, Protocol};
use proptest::prelude::*;
use rand::Rng;

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (3..max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mix = |mut z: u64| {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        };
        let mut b = GraphBuilder::new(n);
        let mut edges = std::collections::BTreeSet::new();
        for v in 1..n as u32 {
            let u = (mix(seed ^ v as u64) % v as u64) as u32;
            edges.insert((u, v));
        }
        for i in 0..2 * n as u64 {
            let u = (mix(seed ^ (i << 20)) % n as u64) as u32;
            let v = (mix(seed ^ (i << 21) ^ 7) % n as u64) as u32;
            if u != v {
                edges.insert((u.min(v), u.max(v)));
            }
        }
        for (u, v) in edges {
            b.push_edge(u, v);
        }
        b.build().unwrap()
    })
}

/// A protocol that sends random subsets of ports random payloads for a
/// fixed number of rounds, counting everything it receives.
struct RandomChatter {
    rounds: u64,
    sent: u64,
    received: u64,
}

impl Protocol for RandomChatter {
    type Msg = u64;
    type Output = (u64, u64); // (sent, received)

    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        self.received += ctx.inbox_len() as u64;
        if ctx.round < self.rounds {
            for p in 0..ctx.degree() as u32 {
                if ctx.rng().gen_bool(0.5) {
                    let payload: u64 = ctx.rng().gen();
                    ctx.send(p, payload);
                    self.sent += 1;
                }
            }
        } else {
            ctx.set_done(true);
        }
    }

    fn finish(self) -> (u64, u64) {
        (self.sent, self.received)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation: every sent message is delivered exactly once (no
    /// faults configured), and the engine's totals agree with the nodes'
    /// own counts.
    #[test]
    fn message_conservation(g in arb_connected_graph(20), seed in any::<u64>()) {
        let out = run_protocol(
            &g,
            |_, _| RandomChatter { rounds: 6, sent: 0, received: 0 },
            EngineConfig::with_seed(seed),
        )
        .unwrap();
        let sent: u64 = out.outputs.iter().map(|&(s, _)| s).sum();
        let received: u64 = out.outputs.iter().map(|&(_, r)| r).sum();
        prop_assert_eq!(sent, received);
        prop_assert_eq!(out.stats.total_messages, sent);
        prop_assert_eq!(out.stats.dropped_messages, 0);
    }

    /// Bit-identical results across parallel and serial stepping, for
    /// protocols that use per-node randomness.
    #[test]
    fn parallel_serial_identical(g in arb_connected_graph(16), seed in any::<u64>()) {
        let par = run_protocol(
            &g,
            |_, _| RandomChatter { rounds: 5, sent: 0, received: 0 },
            EngineConfig::with_seed(seed),
        )
        .unwrap();
        let mut cfg = EngineConfig::serial();
        cfg.seed = seed;
        let ser = run_protocol(
            &g,
            |_, _| RandomChatter { rounds: 5, sent: 0, received: 0 },
            cfg,
        )
        .unwrap();
        prop_assert_eq!(par.outputs, ser.outputs);
        prop_assert_eq!(par.stats, ser.stats);
    }

    /// Congestion metering: the max per-edge count can never exceed
    /// 2 × rounds, and total messages bound congestion from above.
    #[test]
    fn congestion_bounds(g in arb_connected_graph(16), seed in any::<u64>()) {
        let rounds = 5u64;
        let out = run_protocol(
            &g,
            |_, _| RandomChatter { rounds, sent: 0, received: 0 },
            EngineConfig::with_seed(seed),
        )
        .unwrap();
        prop_assert!(out.stats.max_edge_congestion <= 2 * rounds);
        prop_assert!(out.stats.max_edge_congestion <= out.stats.total_messages);
    }

    /// Trace sums to the total and never exceeds the arc capacity.
    #[test]
    fn trace_consistency(g in arb_connected_graph(16), seed in any::<u64>()) {
        let out = run_protocol(
            &g,
            |_, _| RandomChatter { rounds: 4, sent: 0, received: 0 },
            EngineConfig::with_seed(seed).trace(),
        )
        .unwrap();
        let trace = out.trace.unwrap();
        prop_assert_eq!(trace.iter().sum::<u64>(), out.stats.total_messages);
        let cap = g.num_arcs() as u64;
        prop_assert!(trace.iter().all(|&t| t <= cap));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline determinism guarantee of the packed engine, above the
    /// parallel-stepping threshold (≥ 256 nodes, where the pool really
    /// kicks in): serial and parallel execution — at several pool widths —
    /// must produce byte-identical outputs, stats, *and* traces on random
    /// Harary graphs over arbitrary seeds, n, and δ.
    #[test]
    fn parallel_serial_identical_above_threshold(
        n in 256usize..400,
        half_delta in 2usize..6,
        seed in any::<u64>(),
    ) {
        let g = congest_graph::generators::harary(2 * half_delta, n);
        let run = |cfg: EngineConfig| {
            run_protocol(
                &g,
                |_, _| RandomChatter { rounds: 8, sent: 0, received: 0 },
                cfg.trace(),
            )
            .unwrap()
        };
        let ser = run(EngineConfig::serial().seed(seed));
        for threads in [2usize, 4] {
            let par = congest_par::with_threads(threads, || {
                run(EngineConfig::with_seed(seed))
            });
            prop_assert_eq!(&par.outputs, &ser.outputs, "threads = {}", threads);
            prop_assert_eq!(par.stats, ser.stats, "threads = {}", threads);
            prop_assert_eq!(&par.trace, &ser.trace, "threads = {}", threads);
        }
    }
}
