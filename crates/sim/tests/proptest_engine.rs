//! Property-based tests for the CONGEST engine: message conservation,
//! determinism across execution modes, metering consistency for
//! arbitrary (randomized) chatter protocols, and the **three-way
//! differential harness** — the live engine raced against the frozen
//! PR 1 engine *and* the seed-style baseline over sparse/dense/mixed
//! traffic × fault plans × shard counts, with the sparse fast path
//! forced both on and off, asserting bit-identical inboxes (via the
//! inbox-folding outputs) and identical per-arc congestion meters.

use congest_graph::{Graph, GraphBuilder};
use congest_sim::baseline::{run_baseline, BaselineCtx, BaselineProtocol};
use congest_sim::pr1::{run_pr1, Pr1NodeCtx, Pr1Protocol};
use congest_sim::rng::node_rng;
use congest_sim::{run_protocol, EngineConfig, FaultPlan, MeterMode, NodeCtx, Protocol};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (3..max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mix = |mut z: u64| {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        };
        let mut b = GraphBuilder::new(n);
        let mut edges = std::collections::BTreeSet::new();
        for v in 1..n as u32 {
            let u = (mix(seed ^ v as u64) % v as u64) as u32;
            edges.insert((u, v));
        }
        for i in 0..2 * n as u64 {
            let u = (mix(seed ^ (i << 20)) % n as u64) as u32;
            let v = (mix(seed ^ (i << 21) ^ 7) % n as u64) as u32;
            if u != v {
                edges.insert((u.min(v), u.max(v)));
            }
        }
        for (u, v) in edges {
            b.push_edge(u, v);
        }
        b.build().unwrap()
    })
}

/// A protocol that sends random subsets of ports random payloads for a
/// fixed number of rounds, counting everything it receives.
struct RandomChatter {
    rounds: u64,
    sent: u64,
    received: u64,
}

impl Protocol for RandomChatter {
    type Msg = u64;
    type Output = (u64, u64); // (sent, received)

    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        self.received += ctx.inbox_len() as u64;
        if ctx.round < self.rounds {
            for p in 0..ctx.degree() as u32 {
                if ctx.rng().gen_bool(0.5) {
                    let payload: u64 = ctx.rng().gen();
                    ctx.send(p, payload);
                    self.sent += 1;
                }
            }
        } else {
            ctx.set_done(true);
        }
    }

    fn finish(self) -> (u64, u64) {
        (self.sent, self.received)
    }
}

/// Traffic profiles for [`MixedChatter`]: which regime of the engine the
/// round-by-round action distribution exercises.
const PROFILE_SPARSE: u8 = 0;
const PROFILE_DENSE: u8 = 1;
const PROFILE_MIXED: u8 = 2;

/// A protocol that randomly mixes `send_all` (the broadcast plane),
/// per-port `send` (the arc scatter plane), and silence — the oracle
/// workload for the merged inbox. Receivers fold everything they hear.
/// The profile shapes the distribution (sparse trickle / dense saturation
/// / the original mix) while keeping the RNG call pattern identical, so
/// every engine sees the same per-node random stream.
struct MixedChatter {
    rounds: u64,
    sent: u64,
    heard: u64,
    profile: u8,
}

impl MixedChatter {
    /// Shared round body against any context (closures abstract the
    /// engines' APIs). Exactly two RNG draws per active round, in every
    /// profile and branch, so the streams stay aligned across engines.
    fn drive(
        &mut self,
        round: u64,
        degree: usize,
        inbox_fold: u64,
        inbox_count: u64,
        rng: &mut SmallRng,
    ) -> MixedAction {
        self.heard = self
            .heard
            .wrapping_mul(31)
            .wrapping_add(inbox_fold)
            .wrapping_add(inbox_count);
        if round >= self.rounds {
            return MixedAction::Quiet;
        }
        let a = rng.gen_range(0..16u32);
        let m: u64 = rng.gen();
        match self.profile {
            PROFILE_SPARSE => {
                // Mostly silence; occasional thin port masks; rare
                // broadcasts (which in sparse rounds take the engine's
                // scatter fallback).
                if a == 0 {
                    self.sent += degree as u64;
                    MixedAction::Broadcast(m)
                } else if a < 4 {
                    MixedAction::Ports(m & m.rotate_left(17) & m.rotate_left(31))
                } else {
                    MixedAction::Quiet
                }
            }
            PROFILE_DENSE => {
                // Every node talks every round: broadcast or all ports.
                if a < 8 {
                    self.sent += degree as u64;
                    MixedAction::Broadcast(m)
                } else {
                    MixedAction::Ports(!0)
                }
            }
            _ => {
                if a < 4 {
                    self.sent += degree as u64;
                    MixedAction::Broadcast(m)
                } else if a < 12 {
                    MixedAction::Ports(m)
                } else {
                    MixedAction::Quiet
                }
            }
        }
    }
}

enum MixedAction {
    Broadcast(u64),
    /// Bitmask of ports to send distinct payloads on.
    Ports(u64),
    Quiet,
}

impl Protocol for MixedChatter {
    type Msg = u64;
    type Output = (u64, u64);
    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        let fold = ctx.inbox().fold(0u64, |a, (p, m)| {
            a.wrapping_mul(17).wrapping_add(m ^ p as u64)
        });
        let count = ctx.inbox_len() as u64;
        let deg = ctx.degree();
        match self.drive(ctx.round, deg, fold, count, ctx.rng()) {
            MixedAction::Broadcast(m) => ctx.send_all(m),
            MixedAction::Ports(mask) => {
                for p in 0..deg.min(64) as u32 {
                    if mask >> p & 1 == 1 {
                        ctx.send(p, mask.wrapping_add(p as u64));
                        self.sent += 1;
                    }
                }
            }
            MixedAction::Quiet => {}
        }
        ctx.set_done(ctx.round >= self.rounds);
    }
    fn finish(self) -> (u64, u64) {
        (self.sent, self.heard)
    }
}

impl Pr1Protocol for MixedChatter {
    type Msg = u64;
    type Output = (u64, u64);
    fn round(&mut self, ctx: &mut Pr1NodeCtx<'_, u64>) {
        let fold = ctx.inbox().fold(0u64, |a, (p, m)| {
            a.wrapping_mul(17).wrapping_add(m ^ p as u64)
        });
        let count = ctx.inbox_len() as u64;
        let deg = ctx.degree();
        match self.drive(ctx.round, deg, fold, count, ctx.rng()) {
            MixedAction::Broadcast(m) => ctx.send_all(m),
            MixedAction::Ports(mask) => {
                for p in 0..deg.min(64) as u32 {
                    if mask >> p & 1 == 1 {
                        ctx.send(p, mask.wrapping_add(p as u64));
                        self.sent += 1;
                    }
                }
            }
            MixedAction::Quiet => {}
        }
        ctx.set_done(ctx.round >= self.rounds);
    }
    fn finish(self) -> (u64, u64) {
        (self.sent, self.heard)
    }
}

/// The seed-engine arm of the three-way harness: the baseline context has
/// no engine-provided RNG, so this wrapper carries the node's own
/// [`node_rng`] stream — seeded exactly as the packed engines seed
/// theirs, so all three arms draw identical per-node randomness.
struct BaselineMixed {
    inner: MixedChatter,
    rng: SmallRng,
}

impl BaselineProtocol for BaselineMixed {
    type Msg = u64;
    type Output = (u64, u64);
    fn round(&mut self, ctx: &mut BaselineCtx<'_, u64>) {
        let fold = ctx.inbox().fold(0u64, |a, (p, &m)| {
            a.wrapping_mul(17).wrapping_add(m ^ p as u64)
        });
        let count = ctx.inbox_len() as u64;
        let deg = ctx.degree();
        match self.inner.drive(ctx.round, deg, fold, count, &mut self.rng) {
            MixedAction::Broadcast(m) => ctx.send_all(m),
            MixedAction::Ports(mask) => {
                for p in 0..deg.min(64) as u32 {
                    if mask >> p & 1 == 1 {
                        ctx.send(p, mask.wrapping_add(p as u64));
                        self.inner.sent += 1;
                    }
                }
            }
            MixedAction::Quiet => {}
        }
        let done = ctx.round >= self.inner.rounds;
        ctx.set_done(done);
    }
    fn finish(self) -> (u64, u64) {
        (self.inner.sent, self.inner.heard)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The broadcast-plane oracle: random mixes of `send_all`, per-port
    /// `send`, and silence must produce results and stats **identical to
    /// the frozen PR 1 engine** (which scatters everything per arc), in
    /// serial and parallel, under both meter modes.
    #[test]
    fn mixed_broadcast_traffic_matches_pr1(
        g in arb_connected_graph(24),
        seed in any::<u64>(),
    ) {
        let mk = || MixedChatter { rounds: 9, sent: 0, heard: 0, profile: PROFILE_MIXED };
        let frozen = run_pr1(&g, |_, _| mk(), EngineConfig::with_seed(seed).trace()).unwrap();
        for &meter in &[MeterMode::BitPlanes, MeterMode::ArcCounters] {
            let live = run_protocol(
                &g,
                |_, _| mk(),
                EngineConfig::with_seed(seed).meter(meter).trace(),
            )
            .unwrap();
            prop_assert_eq!(&live.outputs, &frozen.outputs, "meter {:?}", meter);
            prop_assert_eq!(live.stats, frozen.stats, "meter {:?}", meter);
            prop_assert_eq!(&live.trace, &frozen.trace, "meter {:?}", meter);
        }
        let par = congest_par::with_threads(4, || {
            run_protocol(
                &g,
                |_, _| mk(),
                EngineConfig::with_seed(seed).shards(5).trace(),
            )
            .unwrap()
        });
        prop_assert_eq!(&par.outputs, &frozen.outputs);
        prop_assert_eq!(par.stats, frozen.stats);
    }

    /// Same oracle above the parallel threshold: the sharded parallel
    /// broadcast fold must match the frozen PR 1 engine bit-for-bit.
    #[test]
    fn mixed_broadcast_traffic_matches_pr1_parallel(
        n in 256usize..330,
        seed in any::<u64>(),
    ) {
        let g = congest_graph::generators::harary(8, n);
        let mk = || MixedChatter { rounds: 8, sent: 0, heard: 0, profile: PROFILE_MIXED };
        let frozen = run_pr1(&g, |_, _| mk(), EngineConfig::with_seed(seed).trace()).unwrap();
        for threads in [2usize, 4] {
            let par = congest_par::with_threads(threads, || {
                run_protocol(
                    &g,
                    |_, _| mk(),
                    EngineConfig::with_seed(seed).shards(2 * threads).trace(),
                )
                .unwrap()
            });
            prop_assert_eq!(&par.outputs, &frozen.outputs, "threads {}", threads);
            prop_assert_eq!(par.stats, frozen.stats, "threads {}", threads);
            prop_assert_eq!(&par.trace, &frozen.trace, "threads {}", threads);
        }
    }

    /// Conservation: every sent message is delivered exactly once (no
    /// faults configured), and the engine's totals agree with the nodes'
    /// own counts.
    #[test]
    fn message_conservation(g in arb_connected_graph(20), seed in any::<u64>()) {
        let out = run_protocol(
            &g,
            |_, _| RandomChatter { rounds: 6, sent: 0, received: 0 },
            EngineConfig::with_seed(seed),
        )
        .unwrap();
        let sent: u64 = out.outputs.iter().map(|&(s, _)| s).sum();
        let received: u64 = out.outputs.iter().map(|&(_, r)| r).sum();
        prop_assert_eq!(sent, received);
        prop_assert_eq!(out.stats.total_messages, sent);
        prop_assert_eq!(out.stats.dropped_messages, 0);
    }

    /// Bit-identical results across parallel and serial stepping, for
    /// protocols that use per-node randomness.
    #[test]
    fn parallel_serial_identical(g in arb_connected_graph(16), seed in any::<u64>()) {
        let par = run_protocol(
            &g,
            |_, _| RandomChatter { rounds: 5, sent: 0, received: 0 },
            EngineConfig::with_seed(seed),
        )
        .unwrap();
        let mut cfg = EngineConfig::serial();
        cfg.seed = seed;
        let ser = run_protocol(
            &g,
            |_, _| RandomChatter { rounds: 5, sent: 0, received: 0 },
            cfg,
        )
        .unwrap();
        prop_assert_eq!(par.outputs, ser.outputs);
        prop_assert_eq!(par.stats, ser.stats);
    }

    /// Congestion metering: the max per-edge count can never exceed
    /// 2 × rounds, and total messages bound congestion from above.
    #[test]
    fn congestion_bounds(g in arb_connected_graph(16), seed in any::<u64>()) {
        let rounds = 5u64;
        let out = run_protocol(
            &g,
            |_, _| RandomChatter { rounds, sent: 0, received: 0 },
            EngineConfig::with_seed(seed),
        )
        .unwrap();
        prop_assert!(out.stats.max_edge_congestion <= 2 * rounds);
        prop_assert!(out.stats.max_edge_congestion <= out.stats.total_messages);
    }

    /// Trace sums to the total and never exceeds the arc capacity.
    #[test]
    fn trace_consistency(g in arb_connected_graph(16), seed in any::<u64>()) {
        let out = run_protocol(
            &g,
            |_, _| RandomChatter { rounds: 4, sent: 0, received: 0 },
            EngineConfig::with_seed(seed).trace(),
        )
        .unwrap();
        let trace = out.trace.unwrap();
        prop_assert_eq!(trace.iter().sum::<u64>(), out.stats.total_messages);
        let cap = g.num_arcs() as u64;
        prop_assert!(trace.iter().all(|&t| t <= cap));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline determinism guarantee of the packed engine, above the
    /// parallel-stepping threshold (≥ 256 nodes, where the pool really
    /// kicks in): serial and parallel execution — at several pool widths —
    /// must produce byte-identical outputs, stats, *and* traces on random
    /// Harary graphs over arbitrary seeds, n, and δ.
    #[test]
    fn parallel_serial_identical_above_threshold(
        n in 256usize..400,
        half_delta in 2usize..6,
        seed in any::<u64>(),
    ) {
        let g = congest_graph::generators::harary(2 * half_delta, n);
        let run = |cfg: EngineConfig| {
            run_protocol(
                &g,
                |_, _| RandomChatter { rounds: 8, sent: 0, received: 0 },
                cfg.trace(),
            )
            .unwrap()
        };
        let ser = run(EngineConfig::serial().seed(seed));
        for threads in [2usize, 4] {
            let par = congest_par::with_threads(threads, || {
                run(EngineConfig::with_seed(seed))
            });
            prop_assert_eq!(&par.outputs, &ser.outputs, "threads = {}", threads);
            prop_assert_eq!(par.stats, ser.stats, "threads = {}", threads);
            prop_assert_eq!(&par.trace, &ser.trace, "threads = {}", threads);
        }
    }

    /// The sharded deliver+metering plane: byte-identical outputs, stats,
    /// and traces at every (pool width × shard count × meter mode)
    /// combination, against the one-shard serial reference. This is the
    /// determinism contract of the shard-owned round phases.
    #[test]
    fn sharded_deliver_identical_at_every_width_and_shard_count(
        n in 256usize..380,
        half_delta in 2usize..6,
        seed in any::<u64>(),
    ) {
        let g = congest_graph::generators::harary(2 * half_delta, n);
        let run = |cfg: EngineConfig| {
            run_protocol(
                &g,
                |_, _| RandomChatter { rounds: 7, sent: 0, received: 0 },
                cfg.trace(),
            )
            .unwrap()
        };
        let reference = run(EngineConfig::serial().seed(seed).shards(1));
        for &meter in &[MeterMode::BitPlanes, MeterMode::ArcCounters] {
            for &shards in &[1usize, 2, 5, 8, 64] {
                // Serial at this shard count.
                let ser = run(EngineConfig::serial().seed(seed).shards(shards).meter(meter));
                prop_assert_eq!(&ser.outputs, &reference.outputs,
                    "serial shards={} meter={:?}", shards, meter);
                prop_assert_eq!(ser.stats, reference.stats,
                    "serial shards={} meter={:?}", shards, meter);
                prop_assert_eq!(&ser.trace, &reference.trace,
                    "serial shards={} meter={:?}", shards, meter);
                // Parallel at several pool widths, same shard count.
                for threads in [2usize, 4] {
                    let par = congest_par::with_threads(threads, || {
                        run(EngineConfig::with_seed(seed).shards(shards).meter(meter))
                    });
                    prop_assert_eq!(&par.outputs, &reference.outputs,
                        "threads={} shards={} meter={:?}", threads, shards, meter);
                    prop_assert_eq!(par.stats, reference.stats,
                        "threads={} shards={} meter={:?}", threads, shards, meter);
                    prop_assert_eq!(&par.trace, &reference.trace,
                        "threads={} shards={} meter={:?}", threads, shards, meter);
                }
            }
        }
    }
}

/// Thresholds the three-way harness pins: fast path off (`0`), fast path
/// forced for every scattering round (`usize::MAX`), and the default
/// heuristic.
const THRESHOLDS: [Option<usize>; 3] = [Some(0), Some(usize::MAX), None];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The **three-way differential harness**: the live engine (sparse
    /// fast path forced on, forced off, and on its heuristic; several
    /// shard counts; both meter modes; serial and parallel) vs the frozen
    /// PR 1 engine vs the seed-style baseline, over sparse, dense, and
    /// mixed traffic. Inboxes must be bit-identical (the outputs fold
    /// every delivered `(port, message)` pair) and the per-arc congestion
    /// meters must agree edge for edge, not just in their max.
    #[test]
    fn three_way_differential_harness(
        g in arb_connected_graph(22),
        seed in any::<u64>(),
        profile in 0u8..3,
    ) {
        let mk = || MixedChatter { rounds: 8, sent: 0, heard: 0, profile };
        let frozen = run_pr1(&g, |_, _| mk(), EngineConfig::with_seed(seed).trace()).unwrap();
        // Arm 2: the seed-style baseline (no packed plane at all).
        let base = run_baseline::<BaselineMixed, _>(
            &g,
            |v, _| BaselineMixed { inner: mk(), rng: node_rng(seed, v) },
            10_000,
        );
        prop_assert_eq!(&base.outputs, &frozen.outputs, "baseline vs pr1 outputs");
        prop_assert_eq!(base.rounds, frozen.stats.rounds);
        prop_assert_eq!(base.total_messages, frozen.stats.total_messages);
        prop_assert_eq!(base.max_message_bits, frozen.stats.max_message_bits);
        prop_assert_eq!(&base.edge_congestion, &frozen.edge_congestion,
            "baseline vs pr1 per-edge meters");
        prop_assert_eq!(base.max_edge_congestion, frozen.stats.max_edge_congestion);
        // Arm 3: the live engine across the config grid.
        for &thr in &THRESHOLDS {
            for &shards in &[1usize, 5] {
                for &meter in &[MeterMode::BitPlanes, MeterMode::ArcCounters] {
                    let mut cfg = EngineConfig::serial().seed(seed).shards(shards).meter(meter).trace();
                    cfg.sparse_threshold = thr;
                    let live = run_protocol(&g, |_, _| mk(), cfg).unwrap();
                    prop_assert_eq!(&live.outputs, &frozen.outputs,
                        "thr={:?} shards={} meter={:?}", thr, shards, meter);
                    prop_assert_eq!(live.stats, frozen.stats,
                        "thr={:?} shards={} meter={:?}", thr, shards, meter);
                    prop_assert_eq!(&live.trace, &frozen.trace,
                        "thr={:?} shards={} meter={:?}", thr, shards, meter);
                    prop_assert_eq!(&live.edge_congestion, &frozen.edge_congestion,
                        "per-edge meters: thr={:?} shards={} meter={:?}", thr, shards, meter);
                }
            }
            // One parallel run per threshold (pool width 4, 6 shards).
            let par = congest_par::with_threads(4, || {
                let mut cfg = EngineConfig::with_seed(seed).shards(6).trace();
                cfg.sparse_threshold = thr;
                run_protocol(&g, |_, _| mk(), cfg).unwrap()
            });
            prop_assert_eq!(&par.outputs, &frozen.outputs, "parallel thr={:?}", thr);
            prop_assert_eq!(par.stats, frozen.stats, "parallel thr={:?}", thr);
            prop_assert_eq!(&par.edge_congestion, &frozen.edge_congestion,
                "parallel per-edge meters thr={:?}", thr);
        }
    }

    /// The faulted wing of the harness: the same profiles under a mobile
    /// edge adversary (which disables the broadcast plane, so every
    /// `send_all` takes the scatter fallback). The baseline engine has no
    /// fault support, so this wing is two-way — live vs PR 1 — asserting
    /// identical drops and per-edge meters with the fast path forced both
    /// ways.
    #[test]
    fn three_way_differential_harness_faulted(
        g in arb_connected_graph(20),
        seed in any::<u64>(),
        profile in 0u8..3,
        budget in 1usize..4,
        fseed in any::<u64>(),
    ) {
        let plan = FaultPlan::new(budget, fseed);
        let mk = || MixedChatter { rounds: 8, sent: 0, heard: 0, profile };
        let frozen = run_pr1(
            &g,
            |_, _| mk(),
            EngineConfig::with_seed(seed).trace().with_faults(plan),
        )
        .unwrap();
        for &thr in &THRESHOLDS {
            for &shards in &[1usize, 4] {
                for &meter in &[MeterMode::BitPlanes, MeterMode::ArcCounters] {
                    let mut cfg = EngineConfig::serial()
                        .seed(seed)
                        .shards(shards)
                        .meter(meter)
                        .trace()
                        .with_faults(plan);
                    cfg.sparse_threshold = thr;
                    let live = run_protocol(&g, |_, _| mk(), cfg).unwrap();
                    prop_assert_eq!(&live.outputs, &frozen.outputs,
                        "thr={:?} shards={} meter={:?}", thr, shards, meter);
                    prop_assert_eq!(live.stats, frozen.stats,
                        "thr={:?} shards={} meter={:?}", thr, shards, meter);
                    prop_assert_eq!(&live.trace, &frozen.trace,
                        "thr={:?} shards={} meter={:?}", thr, shards, meter);
                    prop_assert_eq!(&live.edge_congestion, &frozen.edge_congestion,
                        "per-edge meters: thr={:?} shards={} meter={:?}", thr, shards, meter);
                }
            }
        }
    }
}
