//! Property-based tests for the fault adversary's edge-drawing stream.

use congest_sim::FaultPlan;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On a large enough graph the adversary blocks *exactly*
    /// `edges_per_round` distinct edges, every round, for any seed — the
    /// budget is never silently wasted on stream collisions.
    #[test]
    fn full_budget_of_distinct_edges(
        budget in 1usize..40,
        m_extra in 0usize..5000,
        seed in any::<u64>(),
        round in 0u64..10_000,
    ) {
        let m = budget + m_extra;
        let plan = FaultPlan::new(budget, seed);
        let blocked = plan.blocked_edges(round, m);
        prop_assert_eq!(blocked.len(), budget);
        prop_assert!(blocked.windows(2).all(|w| w[0] < w[1]), "distinct + sorted");
        prop_assert!(blocked.iter().all(|&e| (e as usize) < m));
    }

    /// When the budget meets or exceeds the edge count, every edge is
    /// blocked exactly once.
    #[test]
    fn saturating_budget_blocks_all(
        m in 1usize..50,
        extra in 0usize..10,
        seed in any::<u64>(),
    ) {
        let plan = FaultPlan::new(m + extra, seed);
        let blocked = plan.blocked_edges(3, m);
        let expect: Vec<u32> = (0..m as u32).collect();
        prop_assert_eq!(blocked, expect);
    }

    /// The stream is a pure function of (seed, round): same inputs, same
    /// set; different rounds (almost surely) differ.
    #[test]
    fn deterministic_per_round(seed in any::<u64>(), round in 0u64..1000) {
        let plan = FaultPlan::new(8, seed);
        prop_assert_eq!(plan.blocked_edges(round, 4096), plan.blocked_edges(round, 4096));
    }
}
