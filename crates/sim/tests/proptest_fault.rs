//! Property-based tests for the fault adversary's edge-drawing stream,
//! plus the regression tests for the adversary's interaction with the
//! broadcast plane's adaptive scatter fallback in sparse rounds.

use congest_sim::pr1::{run_pr1, Pr1NodeCtx, Pr1Protocol};
use congest_sim::{run_protocol, EdgeMarks, EngineConfig, FaultPlan, NodeCtx, Protocol};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On a large enough graph the adversary blocks *exactly*
    /// `edges_per_round` distinct edges, every round, for any seed — the
    /// budget is never silently wasted on stream collisions.
    #[test]
    fn full_budget_of_distinct_edges(
        budget in 1usize..40,
        m_extra in 0usize..5000,
        seed in any::<u64>(),
        round in 0u64..10_000,
    ) {
        let m = budget + m_extra;
        let plan = FaultPlan::new(budget, seed);
        let blocked = plan.blocked_edges(round, m);
        prop_assert_eq!(blocked.len(), budget);
        prop_assert!(blocked.windows(2).all(|w| w[0] < w[1]), "distinct + sorted");
        prop_assert!(blocked.iter().all(|&e| (e as usize) < m));
    }

    /// When the budget meets or exceeds the edge count, every edge is
    /// blocked exactly once.
    #[test]
    fn saturating_budget_blocks_all(
        m in 1usize..50,
        extra in 0usize..10,
        seed in any::<u64>(),
    ) {
        let plan = FaultPlan::new(m + extra, seed);
        let blocked = plan.blocked_edges(3, m);
        let expect: Vec<u32> = (0..m as u32).collect();
        prop_assert_eq!(blocked, expect);
    }

    /// The stream is a pure function of (seed, round): same inputs, same
    /// set; different rounds (almost surely) differ.
    #[test]
    fn deterministic_per_round(seed in any::<u64>(), round in 0u64..1000) {
        let plan = FaultPlan::new(8, seed);
        prop_assert_eq!(plan.blocked_edges(round, 4096), plan.blocked_edges(round, 4096));
    }

    /// The `O(1)`-per-draw mark-bitset dedup is **bit-identical** to the
    /// legacy `O(budget²)` scan, round after round on one reused scratch —
    /// including epoch bumps and stamp growth when `m` varies between
    /// rounds (the churn case the bitset exists for).
    #[test]
    fn marked_dedup_matches_legacy_scan(
        budget in 0usize..50,
        m in 0usize..3000,
        seed in any::<u64>(),
        start in 0u64..5,
    ) {
        let plan = FaultPlan { edges_per_round: budget, seed, start_round: start };
        let mut marks = EdgeMarks::new();
        let (mut legacy, mut marked) = (Vec::new(), Vec::new());
        for round in 0..12u64 {
            // m shrinks and regrows across rounds, as under edge churn.
            let m_r = if round.is_multiple_of(3) { m } else { m / 2 };
            plan.blocked_edges_into(round, m_r, &mut legacy);
            plan.blocked_edges_into_marked(round, m_r, &mut marked, &mut marks);
            prop_assert_eq!(&legacy, &marked, "round {}", round);
        }
    }

    /// The serving layer's per-lane nemesis split: a **full 64-lane
    /// batch** derived from one base plan must produce pairwise-distinct
    /// blocked-edge *schedules* (not just distinct seeds) — adjacent lane
    /// indices included — for any base seed, budget, and start round. The
    /// churn nemesis shares the `lane_seed` derivation bit for bit, so
    /// its 64 lane streams split identically.
    #[test]
    fn full_lane_batch_schedules_pairwise_distinct(
        base_seed in any::<u64>(),
        budget in 1usize..4,
        start in 0u64..3,
    ) {
        let m = 4096;
        let base = FaultPlan { edges_per_round: budget, seed: base_seed, start_round: start };
        let schedules: Vec<Vec<u32>> = (0..64)
            .map(|l| {
                let p = base.with_lane_seed(l);
                (start..start + 12).flat_map(|r| p.blocked_edges(r, m)).collect()
            })
            .collect();
        for i in 0..schedules.len() {
            for j in i + 1..schedules.len() {
                prop_assert_ne!(&schedules[i], &schedules[j], "lanes {} and {}", i, j);
            }
        }
        // Derived seeds are pairwise distinct by construction (the lane
        // tag is bijectively mixed before xor), and ChurnPlan splits its
        // seed through the same function.
        let mut lane_seeds: Vec<u64> = (0..64).map(|l| base.with_lane_seed(l).seed).collect();
        let churn = congest_sim::ChurnPlan::new(1, 1, base_seed);
        for (l, &s) in lane_seeds.iter().enumerate() {
            prop_assert_eq!(churn.with_lane_seed(l).seed, s);
        }
        lane_seeds.sort_unstable();
        lane_seeds.dedup();
        prop_assert_eq!(lane_seeds.len(), 64);
    }
}

/// A deliberately sparse broadcaster: after a few silent rounds (which
/// drive the engine's adaptive plane signal to "sparse"), a single node
/// re-broadcasts every round. Without faults this exercises `send_all`'s
/// scatter fallback in sparse rounds; with faults the plane is disabled
/// outright and the same fallback carries the traffic.
struct SparseBeacon {
    node: u32,
    until: u64,
    acc: u64,
}

impl SparseBeacon {
    fn speaks(&self, round: u64) -> bool {
        self.node == 0 && round >= 2 && round < self.until
    }
}

impl Protocol for SparseBeacon {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        for (p, m) in ctx.inbox() {
            self.acc = self.acc.wrapping_mul(31).wrapping_add(m ^ p as u64);
        }
        if self.speaks(ctx.round) {
            ctx.send_all(self.acc | 1);
        }
        ctx.set_done(ctx.round >= self.until);
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

impl Pr1Protocol for SparseBeacon {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut Pr1NodeCtx<'_, u64>) {
        for (p, m) in ctx.inbox() {
            self.acc = self.acc.wrapping_mul(31).wrapping_add(m ^ p as u64);
        }
        if self.speaks(ctx.round) {
            ctx.send_all(self.acc | 1);
        }
        ctx.set_done(ctx.round >= self.until);
    }
    fn finish(self) -> u64 {
        self.acc
    }
}

/// Regression: a round that is **sparse and faulted** must take the
/// scatter fallback (the adversary disables the broadcast plane) and
/// still meter blocked arcs correctly — dropped messages are counted but
/// never metered as traffic, identically to the frozen PR 1 engine, with
/// the sparse fast path forced on, forced off, and on its heuristic.
#[test]
fn sparse_faulted_rounds_scatter_and_meter_blocked_arcs() {
    let g = congest_graph::generators::harary(6, 40);
    let until = 30u64;
    let mk = |v: u32| SparseBeacon {
        node: v,
        until,
        acc: 1,
    };
    for fault_budget in [1usize, 3] {
        let plan = FaultPlan::new(fault_budget, 0xFA_17);
        let frozen = run_pr1(
            &g,
            |v, _| mk(v),
            EngineConfig::with_seed(9).trace().with_faults(plan),
        )
        .unwrap();
        assert!(
            frozen.stats.dropped_messages > 0,
            "the adversary must catch some staged broadcast arcs"
        );
        for thr in [Some(0), Some(usize::MAX), None] {
            let mut cfg = EngineConfig::with_seed(9).trace().with_faults(plan);
            cfg.sparse_threshold = thr;
            let live = run_protocol(&g, |v, _| mk(v), cfg).unwrap();
            assert_eq!(live.outputs, frozen.outputs, "thr {thr:?}");
            assert_eq!(live.stats, frozen.stats, "thr {thr:?}");
            assert_eq!(live.trace, frozen.trace, "thr {thr:?}");
            assert_eq!(
                live.edge_congestion, frozen.edge_congestion,
                "blocked arcs must meter identically (thr {thr:?})"
            );
        }
    }
}

/// Regression: the same sparse beacon **without** faults goes through the
/// adaptive fallback branch (`send_all` in a plane-disabled sparse round
/// scatters per arc) and must agree with PR 1 on everything metered.
#[test]
fn sparse_unfaulted_broadcast_takes_adaptive_fallback() {
    let g = congest_graph::generators::harary(6, 40);
    let mk = |v: u32| SparseBeacon {
        node: v,
        until: 20,
        acc: 1,
    };
    let frozen = run_pr1(&g, |v, _| mk(v), EngineConfig::with_seed(4).trace()).unwrap();
    for thr in [Some(0), Some(usize::MAX), None] {
        let mut cfg = EngineConfig::with_seed(4).trace();
        cfg.sparse_threshold = thr;
        let live = run_protocol(&g, |v, _| mk(v), cfg).unwrap();
        assert_eq!(live.outputs, frozen.outputs, "thr {thr:?}");
        assert_eq!(live.stats, frozen.stats, "thr {thr:?}");
        assert_eq!(live.trace, frozen.trace, "thr {thr:?}");
        assert_eq!(live.edge_congestion, frozen.edge_congestion, "thr {thr:?}");
    }
}
