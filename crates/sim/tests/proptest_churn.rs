//! The churn differential oracle: **mutate-then-run ≡ rebuild-then-run**.
//!
//! A [`ChurnSession`] applies a batch of topology mutations by splicing
//! the CSR arrays in place, renumbering edge ids, resizing the engine's
//! arc/edge-keyed buffers, and rebalancing the cached shard plan. The
//! claim this harness pins is that none of that is observable: after any
//! churn schedule, the repaired graph is **equal** (same CSR, same edge
//! ids) to a freshly built one, and a phase run on the repaired engine is
//! **bit-identical** — outputs, stats, traces, per-edge congestion — to
//! the same phase on a freshly constructed session over the rebuilt
//! graph, across shard counts × meter modes × faulted and unfaulted
//! phases.
//!
//! The rebuild arm tracks churn with an independent model (a plain edge
//! set plus crash/parked-edge bookkeeping), so a bug in the incremental
//! path cannot cancel against itself.

use congest_graph::{Graph, GraphBuilder, Node};
use congest_sim::rng::phase_seed;
use congest_sim::{
    ChurnPlan, ChurnSession, EngineConfig, FaultPlan, MeterMode, Mutation, NodeCtx, Protocol,
    RunStats, Session,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4..max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mix = |mut z: u64| {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        };
        let mut b = GraphBuilder::new(n);
        let mut edges = BTreeSet::new();
        for v in 1..n as u32 {
            let u = (mix(seed ^ v as u64) % v as u64) as u32;
            edges.insert((u, v));
        }
        for i in 0..3 * n as u64 {
            let u = (mix(seed ^ (i << 20)) % n as u64) as u32;
            let v = (mix(seed ^ (i << 21) ^ 7) % n as u64) as u32;
            if u != v {
                edges.insert((u.min(v), u.max(v)));
            }
        }
        for (u, v) in edges {
            b.push_edge(u, v);
        }
        b.build().unwrap()
    })
}

/// Random mix of `send_all`, per-port `send`, and silence (the engine
/// oracle workload from `proptest_session`).
struct Chatter {
    rounds: u64,
    salt: u64,
    heard: u64,
}

impl Protocol for Chatter {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        self.heard = ctx.inbox().fold(self.heard, |a, (p, m)| {
            a.wrapping_mul(17).wrapping_add(m ^ p as u64)
        });
        if ctx.round < self.rounds {
            use rand::Rng;
            let a = ctx.rng().gen_range(0..8u32);
            let m: u64 = ctx.rng().gen();
            if a == 0 {
                ctx.send_all(m ^ self.salt);
            } else if a < 5 {
                for p in 0..ctx.degree().min(64) as u32 {
                    if m >> p & 1 == 1 {
                        ctx.send(p, m.wrapping_add(self.salt ^ p as u64));
                    }
                }
            }
        }
        ctx.set_done(ctx.round >= self.rounds);
    }
    fn finish(self) -> u64 {
        self.heard
    }
}

/// One phase's complete observable footprint.
#[derive(Debug, PartialEq)]
struct PhaseObs {
    outputs: Vec<u64>,
    stats: RunStats,
    trace: Vec<u64>,
    edge_congestion: Vec<u64>,
}

/// Independent mirror of the churn semantics: a plain edge set plus
/// crash flags and parked-edge sets, applied mutation by mutation.
struct Model {
    n: usize,
    edges: BTreeSet<(Node, Node)>,
    crashed: Vec<bool>,
    parked: Vec<BTreeSet<(Node, Node)>>,
}

impl Model {
    fn of(g: &Graph) -> Model {
        Model {
            n: g.n(),
            edges: g.edge_list().map(|(_, u, v)| (u, v)).collect(),
            crashed: vec![false; g.n()],
            parked: vec![BTreeSet::new(); g.n()],
        }
    }

    fn apply(&mut self, muts: &[Mutation]) {
        let canon = |u: Node, v: Node| if u < v { (u, v) } else { (v, u) };
        for &op in muts {
            match op {
                Mutation::AddEdge(u, v) => {
                    assert!(self.edges.insert(canon(u, v)), "plan emitted a dup add");
                }
                Mutation::RemoveEdge(u, v) => {
                    assert!(
                        self.edges.remove(&canon(u, v)),
                        "plan removed a missing edge"
                    );
                }
                Mutation::Crash(v) => {
                    assert!(!self.crashed[v as usize]);
                    self.crashed[v as usize] = true;
                    let incident: Vec<_> = self
                        .edges
                        .iter()
                        .copied()
                        .filter(|&(a, b)| a == v || b == v)
                        .collect();
                    for c in incident {
                        self.edges.remove(&c);
                        self.parked[v as usize].insert(c);
                    }
                }
                Mutation::Revive(v) => {
                    assert!(self.crashed[v as usize]);
                    self.crashed[v as usize] = false;
                    for c in std::mem::take(&mut self.parked[v as usize]) {
                        let other = if c.0 == v { c.1 } else { c.0 };
                        if self.crashed[other as usize] {
                            self.parked[other as usize].insert(c);
                        } else {
                            self.edges.insert(c);
                        }
                    }
                }
            }
        }
    }

    fn build(&self) -> Graph {
        GraphBuilder::new(self.n)
            .edges(self.edges.iter().copied())
            .build()
            .unwrap()
    }
}

fn engine(seed: u64, epoch: u64, shards: usize, meter: MeterMode, faulted: bool) -> EngineConfig {
    let cfg = EngineConfig::serial()
        .seed(phase_seed(seed, epoch))
        .shards(shards)
        .meter(meter)
        .trace();
    if faulted {
        cfg.with_faults(FaultPlan::new(2, seed ^ 0xFA17))
    } else {
        cfg
    }
}

fn observe(out: congest_sim::PhaseOutcome<'_, u64>) -> PhaseObs {
    PhaseObs {
        stats: out.stats,
        trace: out.trace().unwrap().to_vec(),
        edge_congestion: out.edge_congestion().to_vec(),
        outputs: out.take_outputs(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Across random churn schedules (edge adds/removes + crash/revive),
    /// shard counts, meter modes, and alternating faulted phases:
    /// after every epoch the incrementally repaired graph equals a fresh
    /// rebuild, and the phase run on the long-lived session is
    /// bit-identical to one on a fresh session over the rebuilt graph.
    #[test]
    fn mutate_then_run_matches_rebuild_then_run(
        g in arb_connected_graph(18),
        seed in any::<u64>(),
        adds in 0usize..4,
        removes in 0usize..4,
        node_ops in 0usize..2,
    ) {
        let plan = ChurnPlan::new(adds, removes, seed ^ 0xC42).node_ops(node_ops);
        for &shards in &[1usize, 5] {
            for &meter in &[MeterMode::BitPlanes, MeterMode::ArcCounters] {
                let mut churn = ChurnSession::new(g.clone());
                let mut model = Model::of(&g);
                for epoch in 0..5u64 {
                    let muts = plan.mutations(epoch, churn.graph(), churn.crashed());
                    // Both arms consume the identical mutation batch.
                    churn.queue_mut().extend(muts.iter().copied());
                    model.apply(&muts);
                    let faulted = epoch.is_multiple_of(2);
                    let mk = || Chatter { rounds: 6, salt: 1 + epoch, heard: 0 };
                    let live = observe(
                        churn
                            .run(|_, _| mk(), engine(seed, epoch, shards, meter, faulted))
                            .unwrap(),
                    );
                    let rebuilt = model.build();
                    prop_assert_eq!(
                        &rebuilt, churn.graph(),
                        "epoch {} (shards={} meter={:?}): repaired CSR diverged from rebuild",
                        epoch, shards, meter
                    );
                    let mut fresh = Session::new(&rebuilt);
                    let reference = observe(
                        fresh
                            .run(|_, _| mk(), engine(seed, epoch, shards, meter, faulted))
                            .unwrap(),
                    );
                    prop_assert_eq!(
                        &live, &reference,
                        "epoch {} (shards={} meter={:?} faulted={})",
                        epoch, shards, meter, faulted
                    );
                }
            }
        }
    }

    /// The same equivalence through `with_host`: a multi-phase hosted
    /// composition interleaved with churn batches stays bit-identical to
    /// rebuilt sessions phase for phase.
    #[test]
    fn hosted_phases_survive_interleaved_churn(
        g in arb_connected_graph(14),
        seed in any::<u64>(),
    ) {
        let plan = ChurnPlan::new(2, 2, seed ^ 0x40B);
        let mut churn = ChurnSession::new(g.clone());
        let mut model = Model::of(&g);
        for epoch in 0..4u64 {
            let muts = plan.mutations(epoch, churn.graph(), churn.crashed());
            churn.queue_mut().extend(muts.iter().copied());
            model.apply(&muts);
            churn.apply_pending().unwrap();
            let mk = || Chatter { rounds: 5, salt: epoch, heard: 0 };
            let live = churn.with_host(|host| {
                observe(host.run(|_, _| mk(), engine(seed, epoch, 3, MeterMode::BitPlanes, false)).unwrap())
            });
            let rebuilt = model.build();
            prop_assert_eq!(&rebuilt, churn.graph(), "epoch {}", epoch);
            let mut fresh = Session::new(&rebuilt);
            let reference = observe(
                fresh
                    .run(|_, _| mk(), engine(seed, epoch, 3, MeterMode::BitPlanes, false))
                    .unwrap(),
            );
            prop_assert_eq!(&live, &reference, "epoch {}", epoch);
        }
    }
}
