//! The snapshot differential harness: interrupting a multi-phase
//! composition at any phase boundary — snapshot, restore into a fresh
//! session (standing in for a fresh process), continue — must be
//! bit-identical to the uninterrupted run: outputs, stats, traces,
//! per-edge congestion, and the per-phase state hashes, across
//! checkpoint positions × shard counts × meter modes × fault plans.
//!
//! Alongside the oracle: state-hash invariance across serial/parallel ×
//! shard counts (the hash folds only nonzero words, so execution
//! strategy cannot leak into it), the churn-session snapshot arm (the
//! frame carries the mutated topology and crash bookkeeping), the pool
//! park/restore round trip, and the tamper suite (checksum, fingerprint,
//! truncation, kind confusion — every corruption is a typed refusal).

use congest_graph::{Graph, GraphBuilder};
use congest_sim::rng::phase_seed;
use congest_sim::{
    ChurnSession, EngineConfig, FaultPlan, MeterMode, Mutation, NodeCtx, Protocol, RunStats,
    Session, SessionPool, SnapshotError,
};
use proptest::prelude::*;

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4..max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mix = |mut z: u64| {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        };
        let mut b = GraphBuilder::new(n);
        let mut edges = std::collections::BTreeSet::new();
        for v in 1..n as u32 {
            let u = (mix(seed ^ v as u64) % v as u64) as u32;
            edges.insert((u, v));
        }
        for i in 0..2 * n as u64 {
            let u = (mix(seed ^ (i << 20)) % n as u64) as u32;
            let v = (mix(seed ^ (i << 21) ^ 7) % n as u64) as u32;
            if u != v {
                edges.insert((u.min(v), u.max(v)));
            }
        }
        for (u, v) in edges {
            b.push_edge(u, v);
        }
        b.build().unwrap()
    })
}

/// Random mix of `send_all`, per-port `send`, and silence (the engine
/// oracle workload, as in `proptest_session.rs`).
struct Chatter {
    rounds: u64,
    salt: u64,
    heard: u64,
}

impl Protocol for Chatter {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        self.heard = ctx.inbox().fold(self.heard, |a, (p, m)| {
            a.wrapping_mul(17).wrapping_add(m ^ p as u64)
        });
        if ctx.round < self.rounds {
            use rand::Rng;
            let a = ctx.rng().gen_range(0..8u32);
            let m: u64 = ctx.rng().gen();
            if a == 0 {
                ctx.send_all(m ^ self.salt);
            } else if a < 5 {
                for p in 0..ctx.degree().min(64) as u32 {
                    if m >> p & 1 == 1 {
                        ctx.send(p, m.wrapping_add(self.salt ^ p as u64));
                    }
                }
            }
        }
        ctx.set_done(ctx.round >= self.rounds);
    }
    fn finish(self) -> u64 {
        self.heard
    }
}

/// Wide `(u32, u64)` phase in the `u128` slab, so the composition grows
/// the high-water marks a snapshot must carry across.
struct WideChatter {
    rounds: u64,
    heard: u64,
}

impl Protocol for WideChatter {
    type Msg = (u32, u64);
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, (u32, u64)>) {
        self.heard = ctx.inbox().fold(self.heard, |a, (_, (id, p))| {
            a.wrapping_mul(31).wrapping_add(id as u64 ^ p)
        });
        if ctx.round < self.rounds {
            ctx.send_all((ctx.node, self.heard | 1));
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.heard
    }
}

/// One phase's complete observable footprint plus the post-phase state
/// hash.
#[derive(Debug, PartialEq)]
struct PhaseObs {
    outputs: Vec<u64>,
    stats: RunStats,
    trace: Vec<u64>,
    edge_congestion: Vec<u64>,
    state_hash: u64,
}

const PHASES: u64 = 5;

/// Run phase `k` (1-based) of the five-phase composition on `session`:
/// dense chatter, a wide `u128` phase, sparse-forced chatter, a faulted
/// phase, and default-threshold chatter — the same grid the session
/// differential harness sweeps.
fn run_phase(
    session: &mut Session<'_>,
    k: u64,
    seed: u64,
    shards: usize,
    meter: MeterMode,
    fault_budget: usize,
    fseed: u64,
) -> PhaseObs {
    let engine = EngineConfig::serial()
        .seed(phase_seed(seed, k))
        .shards(shards)
        .meter(meter)
        .trace();
    let observe = |out: congest_sim::PhaseOutcome<'_, u64>| {
        (
            out.stats,
            out.trace().unwrap().to_vec(),
            out.edge_congestion().to_vec(),
            out.take_outputs(),
        )
    };
    let (stats, trace, edge_congestion, outputs) = match k {
        1 => observe(
            session
                .run(
                    |_, _| Chatter {
                        rounds: 6,
                        salt: 1,
                        heard: 0,
                    },
                    engine,
                )
                .unwrap(),
        ),
        2 => {
            let out = session
                .run(
                    |_, _| WideChatter {
                        rounds: 5,
                        heard: 1,
                    },
                    engine,
                )
                .unwrap();
            (
                out.stats,
                out.trace().unwrap().to_vec(),
                out.edge_congestion().to_vec(),
                out.take_outputs(),
            )
        }
        3 => observe(
            session
                .run(
                    |_, _| Chatter {
                        rounds: 6,
                        salt: 3,
                        heard: 0,
                    },
                    engine.sparse_threshold(usize::MAX),
                )
                .unwrap(),
        ),
        4 => observe(
            session
                .run(
                    |_, _| Chatter {
                        rounds: 7,
                        salt: 4,
                        heard: 0,
                    },
                    engine
                        .sparse_threshold(0)
                        .with_faults(FaultPlan::new(fault_budget, fseed)),
                )
                .unwrap(),
        ),
        _ => observe(
            session
                .run(
                    |_, _| Chatter {
                        rounds: 6,
                        salt: 5,
                        heard: 0,
                    },
                    engine,
                )
                .unwrap(),
        ),
    };
    PhaseObs {
        outputs,
        stats,
        trace,
        edge_congestion,
        state_hash: session.state_hash(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole oracle: snapshot at phase boundary `cut`, restore
    /// into a fresh session, continue — every phase's outputs, stats,
    /// trace, per-edge congestion, and state hash match the
    /// uninterrupted run, and the restored hash equals the recorded one.
    #[test]
    fn snapshot_restore_continue_is_bit_identical(
        g in arb_connected_graph(20),
        seed in any::<u64>(),
        cut in 0u64..=PHASES,
        fault_budget in 0usize..3,
        fseed in any::<u64>(),
    ) {
        for &shards in &[1usize, 5] {
            for &meter in &[MeterMode::BitPlanes, MeterMode::ArcCounters] {
                // Uninterrupted reference.
                let mut reference = Session::new(&g);
                let expected: Vec<PhaseObs> = (1..=PHASES)
                    .map(|k| run_phase(&mut reference, k, seed, shards, meter, fault_budget, fseed))
                    .collect();

                // Interrupted arm: run to the cut, checkpoint, restore.
                let mut first = Session::new(&g);
                let mut got: Vec<PhaseObs> = (1..=cut)
                    .map(|k| run_phase(&mut first, k, seed, shards, meter, fault_budget, fseed))
                    .collect();
                let bytes = first.snapshot();
                drop(first);

                let header = congest_sim::snapshot::peek(&bytes).unwrap();
                prop_assert_eq!(header.fingerprint, g.fingerprint());
                prop_assert!(header.clean);
                prop_assert!(!header.has_churn);

                let mut resumed = Session::restore(&g, &bytes).unwrap();
                prop_assert_eq!(resumed.state_hash(), header.state_hash);
                got.extend(
                    (cut + 1..=PHASES).map(|k| {
                        run_phase(&mut resumed, k, seed, shards, meter, fault_budget, fseed)
                    }),
                );
                prop_assert_eq!(&got, &expected,
                    "cut={} shards={} meter={:?}", cut, shards, meter);
            }
        }
    }

    /// The per-phase state-hash sequence is invariant across execution
    /// strategy: serial/shards=1 vs parallel/shards=5 under a real
    /// thread pool produce identical hashes at every boundary.
    #[test]
    fn state_hash_is_execution_invariant(
        g in arb_connected_graph(18),
        seed in any::<u64>(),
    ) {
        let hashes = |parallel: bool, shards: usize, threads: usize| -> Vec<u64> {
            congest_par::with_threads(threads, || {
                let mut s = Session::new(&g);
                (1..=PHASES)
                    .map(|k| {
                        let mut cfg = EngineConfig::serial()
                            .seed(phase_seed(seed, k))
                            .shards(shards)
                            .meter(MeterMode::BitPlanes);
                        cfg.parallel = parallel;
                        let out = s
                            .run(
                                |_, _| Chatter {
                                    rounds: 5,
                                    salt: k,
                                    heard: 0,
                                },
                                cfg,
                            )
                            .unwrap();
                        drop(out);
                        s.state_hash()
                    })
                    .collect()
            })
        };
        let serial = hashes(false, 1, 1);
        for (shards, threads) in [(1, 2), (5, 4)] {
            let par = hashes(true, shards, threads);
            prop_assert_eq!(&par, &serial, "shards={} threads={}", shards, threads);
        }
    }

    /// Churn arm: snapshot a `ChurnSession` mid-scenario (topology
    /// mutated, a node crashed), restore, and drive both through the
    /// same remaining mutations and phases — graphs, outputs, stats, and
    /// hashes stay identical, and the crash bookkeeping survives (the
    /// revive restores the same edges on both sides).
    #[test]
    fn churn_snapshot_restores_topology_and_bookkeeping(
        g in arb_connected_graph(16),
        seed in any::<u64>(),
        victim in 0u32..8,
    ) {
        let victim = victim % g.n() as u32;
        let mut original = ChurnSession::new(g.clone());
        original.queue_mut().push(Mutation::Crash(victim));
        let out = original
            .run(
                |_, _| Chatter { rounds: 5, salt: 1, heard: 0 },
                EngineConfig::serial().seed(phase_seed(seed, 1)),
            )
            .unwrap();
        drop(out);

        let bytes = original.snapshot();
        let header = congest_sim::snapshot::peek(&bytes).unwrap();
        prop_assert!(header.has_graph && header.has_churn);
        let mut restored = ChurnSession::restore(&bytes).unwrap();

        prop_assert_eq!(restored.graph(), original.graph());
        prop_assert_eq!(restored.crashed(), original.crashed());
        prop_assert_eq!(restored.stats(), original.stats());
        prop_assert_eq!(restored.state_hash(), original.state_hash());

        // Continue both: revive the victim and run another phase.
        for s in [&mut original, &mut restored] {
            s.queue_mut().push(Mutation::Revive(victim));
        }
        let a = original
            .run(
                |_, _| Chatter { rounds: 5, salt: 2, heard: 0 },
                EngineConfig::serial().seed(phase_seed(seed, 2)),
            )
            .unwrap()
            .take_outputs();
        let b = restored
            .run(
                |_, _| Chatter { rounds: 5, salt: 2, heard: 0 },
                EngineConfig::serial().seed(phase_seed(seed, 2)),
            )
            .unwrap()
            .take_outputs();
        prop_assert_eq!(a, b);
        prop_assert_eq!(original.graph(), restored.graph());
        prop_assert_eq!(original.state_hash(), restored.state_hash());
    }

    /// Compaction-straddling arm: a staggered wide run whose sweep
    /// repacks mid-run must leave the engine state indistinguishable
    /// from the same run without compaction — the state hash after the
    /// wide phase, the parked snapshot frame taken *between* the
    /// compacted run and the next phase, and the restored session's
    /// next-phase outputs and hash must all be identical across
    /// `compact(true)` and `compact(false)` (wide lane buffers are zero
    /// at rest and excluded from the hash, so a mid-run repack may not
    /// leak one bit into what a snapshot carries).
    #[test]
    fn snapshot_straddling_a_compaction_is_compaction_invariant(
        g in arb_connected_graph(18),
        seed in any::<u64>(),
        w in 5usize..9,
    ) {
        let lanes = congest_sim::LaneSpec::batch(seed, w);
        // Staggered durations: lanes retire one by one, so live drops
        // through the `live <= w/2` threshold and the sweep compacts.
        let mk = |_: u32, l: usize, _: &Graph| Chatter {
            rounds: 1 + (l as u64 * 5) % 9,
            salt: l as u64 + 1,
            heard: 0,
        };
        let arm = |compact: bool| {
            let mut pool = SessionPool::new();
            let key = pool.register(g.clone());
            // Phase 1 (plain session): warm the engine state.
            pool.with_session(key, |s| {
                let out = s
                    .run(
                        |_, _| Chatter { rounds: 5, salt: 1, heard: 0 },
                        EngineConfig::serial().seed(phase_seed(seed, 1)),
                    )
                    .unwrap();
                drop(out);
            });
            // Phase 2 (wide, staggered): compaction per arm.
            let hash_mid = pool.with_wide(key, |ws| {
                let out = ws
                    .run(
                        &lanes,
                        mk,
                        EngineConfig::serial().trace().compact(compact),
                    )
                    .unwrap();
                drop(out);
                ws.state_hash()
            });
            // Snapshot straddling the compaction: park the warm state,
            // restore it into a fresh pool, run phase 3 from there.
            let mut frames = Vec::new();
            prop_assert_eq!(pool.park_warm(key, &mut frames), 1);
            let mut pool2 = SessionPool::new();
            let key2 = pool2.register(g.clone());
            prop_assert_eq!(pool2.restore_warm(&frames[0]).unwrap(), key2);
            let fin = pool2.with_session(key2, |s| {
                let out = s
                    .run(
                        |_, _| Chatter { rounds: 6, salt: 3, heard: 0 },
                        EngineConfig::serial().seed(phase_seed(seed, 3)),
                    )
                    .unwrap();
                let outputs = out.take_outputs();
                (outputs, s.state_hash())
            });
            (hash_mid, frames, fin)
        };
        let on = arm(true);
        let off = arm(false);
        prop_assert_eq!(&on, &off, "compaction leaked into hash/snapshot/continuation");
    }

    /// Pool arm: park a pool's warm states as frames, restore them into
    /// a second pool (a fresh process's pool), and the next checkout on
    /// each side runs bit-identically from the same warm state.
    #[test]
    fn pool_park_restore_round_trips(
        g in arb_connected_graph(16),
        seed in any::<u64>(),
    ) {
        let mut pool_a = SessionPool::new();
        let key = pool_a.register(g.clone());
        // Warm one state with a first phase.
        pool_a.with_session(key, |s| {
            let out = s
                .run(
                    |_, _| Chatter { rounds: 5, salt: 1, heard: 0 },
                    EngineConfig::serial().seed(phase_seed(seed, 1)),
                )
                .unwrap();
            drop(out);
        });
        let mut frames = Vec::new();
        let parked = pool_a.park_warm(key, &mut frames);
        prop_assert_eq!(parked, 1);
        prop_assert_eq!(frames.len(), 1);
        prop_assert_eq!(pool_a.warm_count(key), 0);

        // Restore into both pools (A lost its warm set by parking).
        let mut pool_b = SessionPool::new();
        let key_b = pool_b.register(g.clone());
        for bytes in &frames {
            prop_assert_eq!(pool_a.restore_warm(bytes).unwrap(), key);
            prop_assert_eq!(pool_b.restore_warm(bytes).unwrap(), key_b);
        }
        prop_assert_eq!(pool_a.warm_count(key), 1);
        prop_assert_eq!(pool_b.warm_count(key_b), 1);

        let run2 = |pool: &mut SessionPool, key| {
            pool.with_session(key, |s| {
                let out = s
                    .run(
                        |_, _| Chatter { rounds: 5, salt: 2, heard: 0 },
                        EngineConfig::serial().seed(phase_seed(seed, 2)),
                    )
                    .unwrap();
                let outputs = out.take_outputs();
                (outputs, s.state_hash())
            })
        };
        let a = run2(&mut pool_a, key);
        let b = run2(&mut pool_b, key_b);
        prop_assert_eq!(a, b);
    }
}

// ---- Tamper suite: every corruption is a typed refusal. ----

/// `unwrap_err` without requiring `Debug` on the session types.
fn refusal<T>(r: Result<T, SnapshotError>) -> SnapshotError {
    match r {
        Err(e) => e,
        Ok(_) => panic!("expected a snapshot refusal"),
    }
}

fn small_graph() -> Graph {
    GraphBuilder::new(6)
        .edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)])
        .build()
        .unwrap()
}

fn warm_frame(g: &Graph) -> Vec<u8> {
    let mut s = Session::new(g);
    let out = s
        .run(
            |_, _| Chatter {
                rounds: 4,
                salt: 7,
                heard: 0,
            },
            EngineConfig::serial().seed(11),
        )
        .unwrap();
    drop(out);
    s.snapshot()
}

#[test]
fn tampered_frames_are_refused() {
    let g = small_graph();
    let bytes = warm_frame(&g);

    // Truncation at any interesting prefix.
    for cut in [0, 7, 23, 60, bytes.len() - 1] {
        assert!(Session::restore(&g, &bytes[..cut]).is_err(), "cut={cut}");
    }

    // Any flipped body byte fails the checksum.
    for i in [24, 80, 130, bytes.len() - 1] {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        assert_eq!(
            refusal(Session::restore(&g, &bad)),
            SnapshotError::Checksum,
            "byte {i}"
        );
    }

    // Bad magic is its own refusal.
    let mut bad = bytes.clone();
    bad[0] ^= 1;
    assert_eq!(refusal(Session::restore(&g, &bad)), SnapshotError::BadMagic);

    // A different graph refuses by fingerprint.
    let other = congest_graph::generators::complete(6);
    assert!(matches!(
        refusal(Session::restore(&other, &bytes)),
        SnapshotError::FingerprintMismatch { .. }
    ));

    // Kind confusion both ways.
    assert_eq!(
        refusal(ChurnSession::restore(&bytes)),
        SnapshotError::WrongKind
    );
    let churn_bytes = ChurnSession::new(g.clone()).snapshot();
    assert_eq!(
        refusal(Session::restore(&g, &churn_bytes)),
        SnapshotError::WrongKind
    );
    // But a churn frame restores into a churn session even cold.
    assert!(ChurnSession::restore(&churn_bytes).is_ok());
}

#[test]
fn pool_restore_requires_a_registered_graph() {
    let g = small_graph();
    let bytes = warm_frame(&g);
    let mut pool = SessionPool::new();
    pool.register(congest_graph::generators::complete(6));
    assert_eq!(
        pool.restore_warm(&bytes).unwrap_err(),
        SnapshotError::UnknownGraph(g.fingerprint())
    );
}
