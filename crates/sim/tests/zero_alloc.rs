//! The engine's zero-allocation guarantee, *measured* rather than
//! promised: a counting global allocator wraps the system allocator, and
//! the test asserts that running 10× more rounds performs exactly the
//! same number of heap allocations — i.e. every allocation belongs to
//! setup/teardown and the round loop itself allocates nothing.
//!
//! This file deliberately contains a single test: the allocator counter is
//! process-global, and the harness runs tests in one process.

use congest_sim::sched::{random_delays, Multiplexed};
use congest_sim::{run_protocol, EngineConfig, NodeCtx, Protocol};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation-free node program: every node sends a mixed counter to all
/// neighbors each round and xors what it hears.
struct Chatter {
    until: u64,
    acc: u64,
}

impl Protocol for Chatter {
    type Msg = u64;
    type Output = u64;

    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        for (_, m) in ctx.inbox() {
            self.acc ^= m;
        }
        if ctx.round < self.until {
            ctx.send_all(self.acc.wrapping_add(ctx.round));
        } else {
            ctx.set_done(true);
        }
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

/// Rotating multiplexed chatter: sub `i` of `k` speaks on virtual rounds
/// `≡ i (mod k)`, so the port rings stay near-full without overflowing —
/// the multiplexer's queue machinery is genuinely exercised every round.
struct RotChatter {
    k: u64,
    i: u64,
    until: u64,
    acc: u64,
}

impl Protocol for RotChatter {
    type Msg = u64;
    type Output = u64;

    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        for (_, m) in ctx.inbox() {
            self.acc ^= m;
        }
        if ctx.round < self.until {
            if ctx.round % self.k == self.i {
                ctx.send_all(self.acc | 1);
            }
        } else {
            ctx.set_done(true);
        }
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

/// Sparse per-port chatter: a trickle of nodes send on one rotating port
/// each round, so every round's staged total sits far below the sparse
/// threshold and the engine's worklist fast path (including its
/// set-word zeroing breadcrumbs) runs every round.
struct SparseTrickle {
    node: u32,
    until: u64,
    acc: u64,
}

impl Protocol for SparseTrickle {
    type Msg = u64;
    type Output = u64;

    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        for (_, m) in ctx.inbox() {
            self.acc ^= m;
        }
        if ctx.round < self.until {
            if (self.node as u64 + ctx.round).is_multiple_of(64) {
                let p = (ctx.round % ctx.degree() as u64) as u32;
                ctx.send(p, self.acc | 1);
            }
        } else {
            ctx.set_done(true);
        }
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

/// Bursting multiplexed chatter: every sub floods every port during the
/// burst window, so port queues build depth ≫ the inline tier and every
/// port claims a spill block from the preallocated arena — while the
/// round loop must still allocate nothing.
struct BurstChatter {
    burst: u64,
    until: u64,
    acc: u64,
}

impl Protocol for BurstChatter {
    type Msg = u64;
    type Output = u64;

    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        for (_, m) in ctx.inbox() {
            self.acc ^= m;
        }
        if ctx.round < self.until {
            if ctx.round < self.burst {
                ctx.send_all(self.acc | 1);
            }
        } else {
            ctx.set_done(true);
        }
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

fn allocs_for(g: &congest_graph::Graph, rounds: u64, cfg: EngineConfig) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = run_protocol(
        g,
        |_, _| Chatter {
            until: rounds,
            acc: 1,
        },
        cfg,
    )
    .unwrap();
    assert_eq!(out.stats.rounds, rounds);
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn sparse_allocs_for(g: &congest_graph::Graph, rounds: u64, cfg: EngineConfig) -> u64 {
    // Force the fast path for every scattering round, so the count below
    // measures the worklist machinery itself.
    let cfg = cfg.sparse_threshold(usize::MAX);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = run_protocol(
        g,
        |v, _| SparseTrickle {
            node: v,
            until: rounds,
            acc: 1,
        },
        cfg,
    )
    .unwrap();
    assert_eq!(out.stats.rounds, rounds);
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Spill-arena coverage: deep burst queues must claim spill blocks from
/// the preallocated arena, never the heap. The burst length is fixed, so
/// spills happen identically at every horizon and any extra allocation
/// would show as a rounds-dependent count.
fn spill_allocs_for(g: &congest_graph::Graph, rounds: u64, cfg: EngineConfig) -> u64 {
    let k = 8usize;
    let delays = vec![0; k];
    let burst = 6u64;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = run_protocol(
        g,
        |_, gr: &congest_graph::Graph| {
            let subs: Vec<BurstChatter> = (0..k)
                .map(|_| BurstChatter {
                    burst,
                    until: rounds,
                    acc: 1,
                })
                .collect();
            // Worst case queue depth: k subs push per burst round while
            // one message drains per port per round.
            Multiplexed::new(subs, &delays, gr.degree(0), k * burst as usize)
        },
        cfg,
    )
    .unwrap();
    // Queues must genuinely have spilled past the inline tier.
    assert!(
        out.outputs.iter().all(|(_, peak)| *peak > 4),
        "burst must drive queues past the inline tier"
    );
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn mux_allocs_for(g: &congest_graph::Graph, rounds: u64, cfg: EngineConfig) -> u64 {
    let k = 4usize;
    let delays = random_delays(k, 3, 17);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = run_protocol(
        g,
        |_, gr: &congest_graph::Graph| {
            let subs: Vec<RotChatter> = (0..k as u64)
                .map(|i| RotChatter {
                    k: k as u64,
                    i,
                    until: rounds,
                    acc: 1,
                })
                .collect();
            // Capacity: ≤ 2 subs can share a phase (delays ≤ 3 over
            // period 4), plus slack for the delay skew.
            Multiplexed::new(subs, &delays, gr.degree(0), 2 * k + 4)
        },
        cfg,
    )
    .unwrap();
    assert!(out.stats.total_messages > 0);
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn round_loop_allocates_nothing_after_setup() {
    let g = congest_graph::generators::harary(8, 512);

    // One warm-up run per mode: first use pays one-time lazy
    // initialization (harness/TLS), which is not the round loop.
    let _warm = allocs_for(&g, 10, EngineConfig::serial());

    // Serial engine: the count must be exactly rounds-independent.
    let short = allocs_for(&g, 40, EngineConfig::serial());
    let long = allocs_for(&g, 400, EngineConfig::serial());
    assert_eq!(
        long, short,
        "serial round loop allocated: {short} allocs for 40 rounds vs {long} for 400"
    );

    // Parallel engine: warm the pool once (thread spawn allocates), then
    // the same invariant holds.
    let _warm = allocs_for(&g, 10, EngineConfig::default());
    let short = allocs_for(&g, 40, EngineConfig::default());
    let long = allocs_for(&g, 400, EngineConfig::default());
    assert_eq!(
        long, short,
        "parallel round loop allocated: {short} allocs for 40 rounds vs {long} for 400"
    );

    // Multiplexed scheduler path: per-node construction allocates (sub
    // buffers + ring slab) but the round loop — including ring push/pop
    // and sub-protocol hosting — must not. Setup scales with n, not
    // rounds, so equal counts at 10× rounds prove the loop is clean.
    let _warm = mux_allocs_for(&g, 10, EngineConfig::serial());
    let short = mux_allocs_for(&g, 40, EngineConfig::serial());
    let long = mux_allocs_for(&g, 400, EngineConfig::serial());
    assert_eq!(
        long, short,
        "multiplexed round loop allocated: {short} allocs for 40 rounds vs {long} for 400"
    );

    let _warm = mux_allocs_for(&g, 10, EngineConfig::default());
    let short = mux_allocs_for(&g, 40, EngineConfig::default());
    let long = mux_allocs_for(&g, 400, EngineConfig::default());
    assert_eq!(
        long, short,
        "parallel multiplexed round loop allocated: {short} for 40 rounds vs {long} for 400"
    );

    // Sparse fast path (forced on): the worklist deliver, its set-word
    // breadcrumbs, and the active-shard lists must all live in
    // setup-time buffers.
    let _warm = sparse_allocs_for(&g, 10, EngineConfig::serial());
    let short = sparse_allocs_for(&g, 40, EngineConfig::serial());
    let long = sparse_allocs_for(&g, 400, EngineConfig::serial());
    assert_eq!(
        long, short,
        "sparse fast-path round loop allocated: {short} for 40 rounds vs {long} for 400"
    );
    let _warm = sparse_allocs_for(&g, 10, EngineConfig::default());
    let short = sparse_allocs_for(&g, 40, EngineConfig::default());
    let long = sparse_allocs_for(&g, 400, EngineConfig::default());
    assert_eq!(
        long, short,
        "parallel sparse fast-path loop allocated: {short} for 40 rounds vs {long} for 400"
    );

    // Spill-arena path: queues build past the inline tier and claim spill
    // blocks — cursor bumps into the preallocated arena, not the heap.
    let _warm = spill_allocs_for(&g, 20, EngineConfig::serial());
    let short = spill_allocs_for(&g, 40, EngineConfig::serial());
    let long = spill_allocs_for(&g, 400, EngineConfig::serial());
    assert_eq!(
        long, short,
        "spill-arena round loop allocated: {short} for 40 rounds vs {long} for 400"
    );
}
