//! The engine's zero-allocation guarantee, *measured* rather than
//! promised: a counting global allocator wraps the system allocator, and
//! the test asserts that running 10× more rounds performs exactly the
//! same number of heap allocations — i.e. every allocation belongs to
//! setup/teardown and the round loop itself allocates nothing.
//!
//! This file deliberately contains a single test: the allocator counter is
//! process-global, and the harness runs tests in one process.

use congest_sim::sched::{random_delays, Multiplexed};
use congest_sim::{
    run_protocol, ChurnSession, EngineConfig, EvictionPolicy, FaultPlan, GraphKey, LaneSpec,
    Mutation, NodeCtx, Protocol, Session, SessionPool, WideSession,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation-free node program: every node sends a mixed counter to all
/// neighbors each round and xors what it hears.
struct Chatter {
    until: u64,
    acc: u64,
}

impl Protocol for Chatter {
    type Msg = u64;
    type Output = u64;

    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        for (_, m) in ctx.inbox() {
            self.acc ^= m;
        }
        if ctx.round < self.until {
            ctx.send_all(self.acc.wrapping_add(ctx.round));
        } else {
            ctx.set_done(true);
        }
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

/// Rotating multiplexed chatter: sub `i` of `k` speaks on virtual rounds
/// `≡ i (mod k)`, so the port rings stay near-full without overflowing —
/// the multiplexer's queue machinery is genuinely exercised every round.
struct RotChatter {
    k: u64,
    i: u64,
    until: u64,
    acc: u64,
}

impl Protocol for RotChatter {
    type Msg = u64;
    type Output = u64;

    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        for (_, m) in ctx.inbox() {
            self.acc ^= m;
        }
        if ctx.round < self.until {
            if ctx.round % self.k == self.i {
                ctx.send_all(self.acc | 1);
            }
        } else {
            ctx.set_done(true);
        }
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

/// Sparse per-port chatter: a trickle of nodes send on one rotating port
/// each round, so every round's staged total sits far below the sparse
/// threshold and the engine's worklist fast path (including its
/// set-word zeroing breadcrumbs) runs every round.
struct SparseTrickle {
    node: u32,
    until: u64,
    acc: u64,
}

impl Protocol for SparseTrickle {
    type Msg = u64;
    type Output = u64;

    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        for (_, m) in ctx.inbox() {
            self.acc ^= m;
        }
        if ctx.round < self.until {
            if (self.node as u64 + ctx.round).is_multiple_of(64) {
                let p = (ctx.round % ctx.degree() as u64) as u32;
                ctx.send(p, self.acc | 1);
            }
        } else {
            ctx.set_done(true);
        }
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

/// Bursting multiplexed chatter: every sub floods every port during the
/// burst window, so port queues build depth ≫ the inline tier and every
/// port claims a spill block from the preallocated arena — while the
/// round loop must still allocate nothing.
struct BurstChatter {
    burst: u64,
    until: u64,
    acc: u64,
}

impl Protocol for BurstChatter {
    type Msg = u64;
    type Output = u64;

    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        for (_, m) in ctx.inbox() {
            self.acc ^= m;
        }
        if ctx.round < self.until {
            if ctx.round < self.burst {
                ctx.send_all(self.acc | 1);
            }
        } else {
            ctx.set_done(true);
        }
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

/// Wide-message phase (the pipelined-routing shape): 96-bit `(id,
/// payload)` pairs in the `u128` slab, broadcast every round.
struct WidePhase {
    node: u32,
    until: u64,
    acc: u64,
}

impl Protocol for WidePhase {
    type Msg = (u32, u64);
    type Output = u64;

    fn round(&mut self, ctx: &mut NodeCtx<'_, (u32, u64)>) {
        self.acc = ctx
            .inbox()
            .fold(self.acc, |a, (_, (id, p))| a.wrapping_add(id as u64 ^ p));
        if ctx.round < self.until {
            ctx.send_all((self.node, self.acc | 1));
        } else {
            ctx.set_done(true);
        }
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

/// Quiescent staggered chatter for the wide kernel: identical to
/// [`Chatter`] but with the idle contract declared — once done with an
/// empty inbox its `round` is a no-op, so the wide sweep may skip the
/// `(node, lane)` pair while other lanes keep running.
struct StaggerChatter {
    until: u64,
    acc: u64,
}

impl Protocol for StaggerChatter {
    type Msg = u64;
    type Output = u64;
    const QUIESCENT: bool = true;

    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        for (_, m) in ctx.inbox() {
            self.acc ^= m;
        }
        if ctx.round < self.until {
            ctx.send_all(self.acc.wrapping_add(ctx.round));
        } else {
            ctx.set_done(true);
        }
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

/// One wide-batch cycle with **staggered lane teardown**: lane `l` runs
/// `rounds/2 + l·rounds/16` rounds, so early lanes go quiet (their slab
/// regions zeroed by the exit contract) while late lanes keep sweeping —
/// then a pair-message (`u128`-word) wide phase reuses the same
/// byte-keyed slabs. Both phases must allocate nothing after the first
/// cycle sizes the lane buffers.
fn wide_cycle(
    session: &mut WideSession<'_>,
    lanes: &[LaneSpec],
    rounds: u64,
    cfg: &EngineConfig,
) -> u64 {
    let mut acc = 0u64;
    let out = session
        .run(
            lanes,
            |_, l, _| StaggerChatter {
                until: rounds / 2 + (l as u64 * rounds) / 16,
                acc: 1,
            },
            cfg.clone(),
        )
        .unwrap();
    for l in 0..out.lanes() {
        acc ^= out.outputs(l).iter().fold(0, |a, &x| a ^ x)
            ^ out.stats(l).total_messages
            ^ out.edge_congestion(l).iter().fold(0, |a, &x| a ^ x);
    }
    drop(out);
    let out = session
        .run(
            lanes,
            |v, _, _| WidePhase {
                node: v,
                until: rounds / 2,
                acc: 1,
            },
            cfg.clone(),
        )
        .unwrap();
    for l in 0..out.lanes() {
        acc ^= out.outputs(l).iter().fold(0, |a, &x| a ^ x) ^ out.stats(l).dropped_messages;
    }
    acc
}

/// One continuous-batching cycle: stream `jobs` jobs through
/// [`WideSession::run_refill`] with staggered durations, so lanes retire
/// mid-sweep, freed slots refill from the synthetic queue, and the drain
/// tail compacts once the queue runs dry. The sink moves every job's
/// outputs into the caller's retained `scratch` buffer
/// ([`congest_sim::LaneRetire::take_outputs_into`]) — the serving loop's
/// steady state, which must allocate nothing once `scratch` and the lane
/// buffers hold their high-water capacity.
fn refill_cycle(
    session: &mut WideSession<'_>,
    init: &[LaneSpec],
    jobs: usize,
    rounds: u64,
    cfg: &EngineConfig,
    scratch: &mut Vec<u64>,
) -> u64 {
    let mut acc = 0u64;
    let admitted = session.run_refill::<StaggerChatter, _, _, _>(
        init,
        |_, j, _| StaggerChatter {
            until: rounds / 2 + (j as u64 * rounds) / 16 % rounds,
            acc: 1,
        },
        cfg.clone(),
        |job| (job < jobs).then(|| LaneSpec::new(0x55AA ^ job as u64)),
        |mut r| {
            r.take_outputs_into(scratch);
            acc ^= scratch.iter().fold(0, |a, &x| a ^ x)
                ^ r.stats.total_messages
                ^ r.edge_congestion.iter().fold(0, |a, &x| a ^ x)
                ^ r.job as u64;
        },
    );
    assert_eq!(admitted, jobs, "the queue must drain completely");
    acc
}

/// One six-phase cycle mirroring Theorem 1's composition shape on a
/// **resident session** — dense flood (leader election), sparse per-port
/// trickle (BFS wave), dense u64 chatter (numbering), a faulted phase
/// (partition under the adversary's scatter fallback), a wide `u128`
/// routing-like phase, and a final u64 phase that must reuse the `u128`
/// slab. Returns a fold of all outputs so nothing is optimized away.
fn session_cycle(session: &mut Session<'_>, rounds: u64, cfg: &EngineConfig) -> u64 {
    let mut acc = 0u64;
    let phase_cfg = |p: u64| {
        let mut c = cfg.clone();
        c.seed = congest_sim::rng::phase_seed(cfg.seed, p);
        c
    };
    // 1. leader-election-like dense flood.
    let ph = session
        .run(
            |_, _| Chatter {
                until: rounds,
                acc: 1,
            },
            phase_cfg(1),
        )
        .unwrap();
    acc ^= ph.outputs().iter().fold(0, |a, &x| a ^ x) ^ ph.stats.total_messages;
    drop(ph);
    // 2. BFS-wave-like sparse per-port trickle (worklist fast path).
    let ph = session
        .run(
            |v, _| SparseTrickle {
                node: v,
                until: rounds,
                acc: 1,
            },
            phase_cfg(2).sparse_threshold(usize::MAX),
        )
        .unwrap();
    acc ^= ph.outputs().iter().fold(0, |a, &x| a ^ x);
    drop(ph);
    // 3. numbering-like dense u64 chatter.
    let ph = session
        .run(
            |_, _| Chatter {
                until: rounds,
                acc: 2,
            },
            phase_cfg(3),
        )
        .unwrap();
    acc ^= ph.stats.total_messages;
    drop(ph);
    // 4. partition-like phase under the fault adversary (broadcast plane
    //    disabled; scatter fallback + drop accounting).
    let ph = session
        .run(
            |_, _| Chatter {
                until: rounds,
                acc: 3,
            },
            phase_cfg(4).with_faults(FaultPlan::new(2, 0xFA)),
        )
        .unwrap();
    acc ^= ph.stats.total_messages ^ ph.stats.dropped_messages;
    drop(ph);
    // 5. routing-like wide u128 phase.
    let ph = session
        .run(
            |v, _| WidePhase {
                node: v,
                until: rounds,
                acc: 1,
            },
            phase_cfg(5),
        )
        .unwrap();
    acc ^= ph.outputs().iter().fold(0, |a, &x| a ^ x);
    drop(ph);
    // 6. u64 phase straight after the u128 one: the slab-reuse pair the
    //    width-keyed capacity contract promises costs nothing.
    let ph = session
        .run(
            |_, _| Chatter {
                until: rounds,
                acc: 4,
            },
            phase_cfg(6),
        )
        .unwrap();
    acc ^= ph.stats.total_messages ^ ph.edge_congestion().iter().fold(0, |a, &x| a ^ x);
    acc
}

/// One steady-state churn cycle: queue a fixed removal batch, apply it at
/// the phase boundary (incremental repair) and run a dense phase, then
/// queue the inverse batch, apply, and run a **faulted** phase (the
/// adversary's mark-bitset dedup must also hold its high-water). The
/// batch is its own inverse, so the topology — and therefore every repair
/// size — is identical at each cycle's start.
fn churn_cycle(sess: &mut ChurnSession, rounds: u64, cfg: &EngineConfig) -> u64 {
    let mut acc = 0u64;
    for i in 0..4u32 {
        sess.queue_mut().push(Mutation::RemoveEdge(i, i + 1));
    }
    let ph = sess
        .run(
            |_, _| Chatter {
                until: rounds,
                acc: 1,
            },
            cfg.clone(),
        )
        .unwrap();
    acc ^= ph.outputs().iter().fold(0, |a, &x| a ^ x) ^ ph.stats.total_messages;
    drop(ph);
    for i in 0..4u32 {
        sess.queue_mut().push(Mutation::AddEdge(i, i + 1));
    }
    let ph = sess
        .run(
            |_, _| Chatter {
                until: rounds,
                acc: 2,
            },
            cfg.clone().with_faults(FaultPlan::new(2, 0xFA)),
        )
        .unwrap();
    acc ^= ph.stats.total_messages ^ ph.stats.dropped_messages;
    acc
}

/// One pool steady-state cycle: acquire a warm state → run a phase →
/// release → **re-acquire** (sequential then wide checkout of the same
/// warm list), folding borrowed outputs so nothing escapes the closure.
/// Once the warm state has reached its high-water footprint, the whole
/// cycle — fingerprint lookup, checkout, two engine runs, park — must
/// allocate exactly zero.
fn pool_cycle(
    pool: &mut SessionPool,
    key: GraphKey,
    lanes: &[LaneSpec],
    rounds: u64,
    cfg: &EngineConfig,
) -> u64 {
    let mut acc = pool.with_session(key, |s| {
        let ph = s
            .run(
                |_, _| Chatter {
                    until: rounds,
                    acc: 1,
                },
                cfg.clone(),
            )
            .unwrap();
        ph.outputs().iter().fold(0, |a, &x| a ^ x) ^ ph.stats.total_messages
    });
    // Re-acquire the state just released — first as a plain session on a
    // u128-word phase (slab reuse across checkouts), then as a wide batch.
    acc ^= pool.with_session(key, |s| {
        let ph = s
            .run(
                |v, _| WidePhase {
                    node: v,
                    until: rounds,
                    acc: 1,
                },
                cfg.clone(),
            )
            .unwrap();
        ph.outputs().iter().fold(0, |a, &x| a ^ x) ^ ph.stats.dropped_messages
    });
    acc ^= pool.with_wide(key, |w| {
        let out = w
            .run(
                lanes,
                |_, l, _| StaggerChatter {
                    until: rounds / 2 + l as u64,
                    acc: 1,
                },
                cfg.clone(),
            )
            .unwrap();
        let mut a = 0u64;
        for l in 0..out.lanes() {
            a ^= out.outputs(l).iter().fold(0, |x, &y| x ^ y) ^ out.stats(l).total_messages;
        }
        a
    });
    // Aging enforcement runs at every drain boundary; with the budget
    // satisfied it is a pure LRU/footprint scan and must not allocate.
    pool.enforce_eviction();
    acc
}

/// The allocation counter is process-global, so a single sample can be
/// polluted by test-harness noise (the libtest controller thread
/// occasionally allocates while a sample is in flight). A genuine
/// round-loop allocation inflates *every* sample deterministically, so
/// taking the minimum of a few samples sheds the noise without weakening
/// the invariant one bit.
fn min_allocs(mut f: impl FnMut() -> u64) -> u64 {
    (0..5).map(|_| f()).min().unwrap()
}

fn allocs_for(g: &congest_graph::Graph, rounds: u64, cfg: EngineConfig) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = run_protocol(
        g,
        |_, _| Chatter {
            until: rounds,
            acc: 1,
        },
        cfg,
    )
    .unwrap();
    assert_eq!(out.stats.rounds, rounds);
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn sparse_allocs_for(g: &congest_graph::Graph, rounds: u64, cfg: EngineConfig) -> u64 {
    // Force the fast path for every scattering round, so the count below
    // measures the worklist machinery itself.
    let cfg = cfg.sparse_threshold(usize::MAX);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = run_protocol(
        g,
        |v, _| SparseTrickle {
            node: v,
            until: rounds,
            acc: 1,
        },
        cfg,
    )
    .unwrap();
    assert_eq!(out.stats.rounds, rounds);
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Spill-arena coverage: deep burst queues must claim spill blocks from
/// the preallocated arena, never the heap. The burst length is fixed, so
/// spills happen identically at every horizon and any extra allocation
/// would show as a rounds-dependent count.
fn spill_allocs_for(g: &congest_graph::Graph, rounds: u64, cfg: EngineConfig) -> u64 {
    let k = 8usize;
    let delays = vec![0; k];
    let burst = 6u64;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = run_protocol(
        g,
        |_, gr: &congest_graph::Graph| {
            let subs: Vec<BurstChatter> = (0..k)
                .map(|_| BurstChatter {
                    burst,
                    until: rounds,
                    acc: 1,
                })
                .collect();
            // Worst case queue depth: k subs push per burst round while
            // one message drains per port per round.
            Multiplexed::new(subs, &delays, gr.degree(0), k * burst as usize)
        },
        cfg,
    )
    .unwrap();
    // Queues must genuinely have spilled past the inline tier.
    assert!(
        out.outputs.iter().all(|(_, peak)| *peak > 4),
        "burst must drive queues past the inline tier"
    );
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn mux_allocs_for(g: &congest_graph::Graph, rounds: u64, cfg: EngineConfig) -> u64 {
    let k = 4usize;
    let delays = random_delays(k, 3, 17);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = run_protocol(
        g,
        |_, gr: &congest_graph::Graph| {
            let subs: Vec<RotChatter> = (0..k as u64)
                .map(|i| RotChatter {
                    k: k as u64,
                    i,
                    until: rounds,
                    acc: 1,
                })
                .collect();
            // Capacity: ≤ 2 subs can share a phase (delays ≤ 3 over
            // period 4), plus slack for the delay skew.
            Multiplexed::new(subs, &delays, gr.degree(0), 2 * k + 4)
        },
        cfg,
    )
    .unwrap();
    assert!(out.stats.total_messages > 0);
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn round_loop_allocates_nothing_after_setup() {
    let g = congest_graph::generators::harary(8, 512);

    // One warm-up run per mode: first use pays one-time lazy
    // initialization (harness/TLS), which is not the round loop.
    let _warm = allocs_for(&g, 10, EngineConfig::serial());

    // Serial engine: the count must be exactly rounds-independent.
    let short = min_allocs(|| allocs_for(&g, 40, EngineConfig::serial()));
    let long = min_allocs(|| allocs_for(&g, 400, EngineConfig::serial()));
    assert_eq!(
        long, short,
        "serial round loop allocated: {short} allocs for 40 rounds vs {long} for 400"
    );

    // Parallel engine: warm the pool once (thread spawn allocates), then
    // the same invariant holds.
    let _warm = allocs_for(&g, 10, EngineConfig::default());
    let short = min_allocs(|| allocs_for(&g, 40, EngineConfig::default()));
    let long = min_allocs(|| allocs_for(&g, 400, EngineConfig::default()));
    assert_eq!(
        long, short,
        "parallel round loop allocated: {short} allocs for 40 rounds vs {long} for 400"
    );

    // Multiplexed scheduler path: per-node construction allocates (sub
    // buffers + ring slab) but the round loop — including ring push/pop
    // and sub-protocol hosting — must not. Setup scales with n, not
    // rounds, so equal counts at 10× rounds prove the loop is clean.
    let _warm = mux_allocs_for(&g, 10, EngineConfig::serial());
    let short = min_allocs(|| mux_allocs_for(&g, 40, EngineConfig::serial()));
    let long = min_allocs(|| mux_allocs_for(&g, 400, EngineConfig::serial()));
    assert_eq!(
        long, short,
        "multiplexed round loop allocated: {short} allocs for 40 rounds vs {long} for 400"
    );

    let _warm = mux_allocs_for(&g, 10, EngineConfig::default());
    let short = min_allocs(|| mux_allocs_for(&g, 40, EngineConfig::default()));
    let long = min_allocs(|| mux_allocs_for(&g, 400, EngineConfig::default()));
    assert_eq!(
        long, short,
        "parallel multiplexed round loop allocated: {short} for 40 rounds vs {long} for 400"
    );

    // Sparse fast path (forced on): the worklist deliver, its set-word
    // breadcrumbs, and the active-shard lists must all live in
    // setup-time buffers.
    let _warm = sparse_allocs_for(&g, 10, EngineConfig::serial());
    let short = min_allocs(|| sparse_allocs_for(&g, 40, EngineConfig::serial()));
    let long = min_allocs(|| sparse_allocs_for(&g, 400, EngineConfig::serial()));
    assert_eq!(
        long, short,
        "sparse fast-path round loop allocated: {short} for 40 rounds vs {long} for 400"
    );
    let _warm = sparse_allocs_for(&g, 10, EngineConfig::default());
    let short = min_allocs(|| sparse_allocs_for(&g, 40, EngineConfig::default()));
    let long = min_allocs(|| sparse_allocs_for(&g, 400, EngineConfig::default()));
    assert_eq!(
        long, short,
        "parallel sparse fast-path loop allocated: {short} for 40 rounds vs {long} for 400"
    );

    // Spill-arena path: queues build past the inline tier and claim spill
    // blocks — cursor bumps into the preallocated arena, not the heap.
    let _warm = spill_allocs_for(&g, 20, EngineConfig::serial());
    let short = min_allocs(|| spill_allocs_for(&g, 40, EngineConfig::serial()));
    let long = min_allocs(|| spill_allocs_for(&g, 400, EngineConfig::serial()));
    assert_eq!(
        long, short,
        "spill-arena round loop allocated: {short} for 40 rounds vs {long} for 400"
    );

    // --- Phase-resident sessions: a full multi-phase Theorem-1-shaped
    // run (six phases incl. a faulted phase and a u64-after-u128
    // slab-reuse pair) performs **exactly zero** heap allocations after
    // session setup — phase boundaries included. The first cycle is the
    // setup (slabs keyed to the widest word, arenas to the high-water
    // footprint, plan cached); every later cycle must be allocation-free.
    for cfg in [EngineConfig::serial(), EngineConfig::default()] {
        let mut session = Session::new(&g);
        let warm = session_cycle(&mut session, 12, &cfg);
        let mut acc = 0u64;
        let leaked = min_allocs(|| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            for k in 0..3 {
                let mut c = cfg.clone();
                c.seed = cfg.seed.wrapping_add(k);
                acc ^= session_cycle(&mut session, 12, &c);
            }
            ALLOCATIONS.load(Ordering::Relaxed) - before
        });
        assert_eq!(
            leaked, 0,
            "session phases allocated {leaked} times after setup (parallel={})",
            cfg.parallel
        );
        assert_ne!(acc, warm.wrapping_add(1), "keep results observable");
    }

    // --- Churn sessions: phase-boundary topology mutation with
    // incremental repair. After two warm cycles (the repair scratch
    // ping-pongs between two buffer sets, so both must reach high water),
    // remove-batch → phase → add-batch → faulted-phase cycles allocate
    // **exactly zero**: the CSR resplice reuses its scratch, the engine
    // repair resizes stay within capacity, the cached ShardPlan
    // rebalances in place, and the fault mark-bitset reuses its stamps
    // across the changing edge count.
    for cfg in [EngineConfig::serial(), EngineConfig::default()] {
        let mut sess = ChurnSession::new(g.clone());
        let warm = churn_cycle(&mut sess, 12, &cfg);
        let warm2 = churn_cycle(&mut sess, 12, &cfg);
        let mut acc = 0u64;
        let leaked = min_allocs(|| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            for _ in 0..3 {
                acc ^= churn_cycle(&mut sess, 12, &cfg);
            }
            ALLOCATIONS.load(Ordering::Relaxed) - before
        });
        assert_eq!(
            leaked, 0,
            "churn cycles allocated {leaked} times after setup (parallel={})",
            cfg.parallel
        );
        assert_eq!(sess.stats().batches, 34, "17 cycles of two batches");
        assert_ne!(acc, warm.wrapping_add(warm2).wrapping_add(1));
    }

    // --- Wide-batch sessions: 24 lanes with staggered teardown (early
    // lanes terminate and hand their zeroed slab regions back while late
    // lanes keep sweeping) followed by a u128-word wide phase on the
    // same byte-keyed slabs. After the first cycle sizes the lane
    // buffers and arenas, every later cycle — lane startup, quiescent
    // skipping, per-lane faults, teardown, and the width switch — must
    // allocate **exactly zero**.
    for cfg in [EngineConfig::serial(), EngineConfig::default()] {
        let lanes: Vec<LaneSpec> = LaneSpec::batch(99, 24)
            .into_iter()
            .enumerate()
            .map(|(l, spec)| {
                if l % 3 == 0 {
                    spec.with_faults(FaultPlan::new(2, 0xFA).with_lane_seed(l))
                } else {
                    spec
                }
            })
            .collect();
        let mut session = WideSession::new(&g);
        let warm = wide_cycle(&mut session, &lanes, 24, &cfg);
        let mut acc = 0u64;
        let leaked = min_allocs(|| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            for _ in 0..3 {
                acc ^= wide_cycle(&mut session, &lanes, 24, &cfg);
            }
            ALLOCATIONS.load(Ordering::Relaxed) - before
        });
        assert_eq!(
            leaked, 0,
            "wide cycles allocated {leaked} times after setup (parallel={})",
            cfg.parallel
        );
        assert_ne!(acc, warm.wrapping_add(1), "keep results observable");
    }

    // --- Continuous batching: the refill serving loop's steady state.
    // 24 jobs stream through 8 lanes with staggered durations — every
    // retirement frees a slot that refills mid-sweep, and the drain tail
    // compacts once the queue dries up. After the first cycle sizes the
    // lane buffers and the sink's retained scratch, every later cycle —
    // admissions, repacks, per-job harvest via `take_outputs_into` —
    // must allocate **exactly zero**.
    for cfg in [EngineConfig::serial(), EngineConfig::default()] {
        let init: Vec<LaneSpec> = LaneSpec::batch(55, 8);
        let mut session = WideSession::new(&g);
        let mut scratch: Vec<u64> = Vec::new();
        let warm = refill_cycle(&mut session, &init, 24, 12, &cfg, &mut scratch);
        let mut acc = 0u64;
        let leaked = min_allocs(|| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            for _ in 0..3 {
                acc ^= refill_cycle(&mut session, &init, 24, 12, &cfg, &mut scratch);
            }
            ALLOCATIONS.load(Ordering::Relaxed) - before
        });
        assert_eq!(
            leaked, 0,
            "refill cycles allocated {leaked} times after setup (parallel={})",
            cfg.parallel
        );
        assert_ne!(acc, warm.wrapping_add(1), "keep results observable");
    }

    // --- Session pool: the serving layer's steady state. Register pays
    // the graph clone and warm-list growth once; after a warm-up cycle
    // sizes the parked state's slabs and arenas, every
    // acquire → run → release → re-acquire cycle — including the
    // sequential→wide checkout switch on the *same* warm state — must
    // allocate **exactly zero**, serial and parallel.
    for cfg in [EngineConfig::serial(), EngineConfig::default()] {
        let lanes = LaneSpec::batch(7, 8);
        let mut pool = SessionPool::new();
        // A finite (satisfied) budget, so enforcement genuinely walks the
        // LRU clocks and sums warm footprints every cycle.
        pool.set_policy(EvictionPolicy {
            max_graphs: 4,
            max_warm_bytes: 1 << 30,
        });
        let key = pool.register(g.clone());
        let warm = pool_cycle(&mut pool, key, &lanes, 12, &cfg);
        let mut acc = 0u64;
        let leaked = min_allocs(|| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            for _ in 0..3 {
                acc ^= pool_cycle(&mut pool, key, &lanes, 12, &cfg);
            }
            ALLOCATIONS.load(Ordering::Relaxed) - before
        });
        assert_eq!(
            leaked, 0,
            "pool cycles allocated {leaked} times after warm-up (parallel={})",
            cfg.parallel
        );
        assert_eq!(pool.misses(), 1, "only the very first checkout is cold");
        assert!(
            pool.hits() >= 11,
            "every later checkout reuses the warm state"
        );
        assert_ne!(acc, warm.wrapping_add(1), "keep results observable");
    }

    // --- Snapshot encode: checkpointing a warm session into a warm
    // caller-provided buffer is part of the serving steady state
    // (`SessionPool::park_warm` runs it per warm state), so it must
    // allocate **exactly zero**: the payload walk is `extend_from_slice`
    // into retained capacity and the state hash is pure arithmetic. The
    // first encode sizes the buffer; every later encode is free.
    {
        let mut session = Session::new(&g);
        let _ = session_cycle(&mut session, 12, &EngineConfig::serial());
        let mut buf = Vec::new();
        session.snapshot_into(&mut buf);
        let first_len = buf.len();
        let mut acc = 0u64;
        let leaked = min_allocs(|| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            for _ in 0..3 {
                session.snapshot_into(&mut buf);
                acc ^= session.state_hash() ^ buf.len() as u64;
            }
            ALLOCATIONS.load(Ordering::Relaxed) - before
        });
        assert_eq!(leaked, 0, "warm snapshot encode allocated {leaked} times");
        assert_eq!(buf.len(), first_len, "same boundary, same frame size");
        assert_ne!(acc, 1, "keep results observable");
    }
}
