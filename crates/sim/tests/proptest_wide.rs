//! The wide-batch differential harness: a W-lane [`WideSession`] run must
//! be **bit-identical, lane by lane, to W sequential [`Session`] runs** —
//! outputs, [`RunStats`], round traces, and per-edge congestion meters —
//! sweeping shard counts × meter modes × per-lane fault plans × pool
//! widths, with the sequential arm's sparse fast path forced both ways
//! (the wide kernel has no sparse path, so equivalence across both
//! sequential modes proves it sits in the same result class).
//!
//! Lane `l` of the wide run corresponds to the sequential config
//! `EngineConfig { seed: lanes[l].seed, faults: lanes[l].faults, ..shared }`,
//! which is the contract drivers rely on to batch seed sweeps without
//! changing one bit of any result.

use congest_graph::{Graph, GraphBuilder};
use congest_sim::{
    EngineConfig, FaultPlan, LaneSpec, MeterMode, NodeCtx, Protocol, Session, WideSession,
};
use proptest::prelude::*;

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (3..max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mix = |mut z: u64| {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        };
        let mut b = GraphBuilder::new(n);
        let mut edges = std::collections::BTreeSet::new();
        for v in 1..n as u32 {
            let u = (mix(seed ^ v as u64) % v as u64) as u32;
            edges.insert((u, v));
        }
        for i in 0..2 * n as u64 {
            let u = (mix(seed ^ (i << 20)) % n as u64) as u32;
            let v = (mix(seed ^ (i << 21) ^ 7) % n as u64) as u32;
            if u != v {
                edges.insert((u.min(v), u.max(v)));
            }
        }
        for (u, v) in edges {
            b.push_edge(u, v);
        }
        b.build().unwrap()
    })
}

/// Random mix of `send_all`, per-port `send`, and silence over `u64`
/// messages — the engine-oracle workload. NOT quiescent: it draws from
/// the node RNG every round, so the wide kernel must step it every round
/// exactly like the sequential engine does.
struct Chatter {
    rounds: u64,
    salt: u64,
    heard: u64,
}

impl Protocol for Chatter {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        self.heard = ctx.inbox().fold(self.heard, |a, (p, m)| {
            a.wrapping_mul(17).wrapping_add(m ^ p as u64)
        });
        if ctx.round < self.rounds {
            use rand::Rng;
            let a = ctx.rng().gen_range(0..8u32);
            let m: u64 = ctx.rng().gen();
            if a == 0 {
                ctx.send_all(m ^ self.salt);
            } else if a < 5 {
                for p in 0..ctx.degree().min(64) as u32 {
                    if m >> p & 1 == 1 {
                        ctx.send(p, m.wrapping_add(self.salt ^ p as u64));
                    }
                }
            }
        }
        ctx.set_done(ctx.round >= self.rounds);
    }
    fn finish(self) -> u64 {
        self.heard
    }
}

/// Quiescent flood-max gossip: converges on the max token, then goes
/// silent — once done with an empty inbox, `round` reads nothing, sends
/// nothing, and touches no state, so wide may skip the call entirely.
struct Gossip {
    token: u64,
}

impl Protocol for Gossip {
    type Msg = u64;
    type Output = u64;
    const QUIESCENT: bool = true;
    fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        if ctx.round == 0 {
            ctx.send_all(self.token);
            return;
        }
        let prior = self.token;
        self.token = ctx.inbox().fold(self.token, |b, (_, m)| b.max(m));
        if self.token > prior {
            ctx.send_all(self.token);
        }
        ctx.set_done(true);
    }
    fn finish(self) -> u64 {
        self.token
    }
}

/// Pair-message phase (`(u32, u64)` → u128 wire words): exercises the
/// wide slab's byte-keyed width handling past u64.
struct PairChatter {
    rounds: u64,
    heard: u64,
}

impl Protocol for PairChatter {
    type Msg = (u32, u64);
    type Output = u64;
    fn round(&mut self, ctx: &mut NodeCtx<'_, (u32, u64)>) {
        self.heard = ctx.inbox().fold(self.heard, |a, (_, (id, p))| {
            a.wrapping_mul(31).wrapping_add(id as u64 ^ p)
        });
        if ctx.round < self.rounds {
            ctx.send_all((ctx.node, self.heard | 1));
        } else {
            ctx.set_done(true);
        }
    }
    fn finish(self) -> u64 {
        self.heard
    }
}

/// One lane's complete observable footprint.
#[derive(Debug, PartialEq)]
struct LaneObs {
    outputs: Vec<u64>,
    stats: congest_sim::RunStats,
    trace: Option<Vec<u64>>,
    edge_congestion: Vec<u64>,
}

/// Wide arm: run all lanes at once on a fresh [`WideSession`].
fn wide_obs<P, F>(g: &Graph, lanes: &[LaneSpec], factory: F, config: EngineConfig) -> Vec<LaneObs>
where
    P: Protocol<Output = u64>,
    F: FnMut(congest_graph::Node, usize, &Graph) -> P,
{
    let mut session = WideSession::new(g);
    let mut out = session
        .run(lanes, factory, config)
        .expect("wide terminates");
    (0..lanes.len())
        .map(|l| LaneObs {
            stats: out.stats(l),
            trace: out.trace(l).map(<[u64]>::to_vec),
            edge_congestion: out.edge_congestion(l).to_vec(),
            outputs: out.take_lane_outputs(l),
        })
        .collect()
}

/// Sequential arm: run each lane alone on a fresh [`Session`] under the
/// lane's derived config.
fn seq_obs<P, F>(
    g: &Graph,
    lanes: &[LaneSpec],
    mut factory: F,
    config: EngineConfig,
) -> Vec<LaneObs>
where
    P: Protocol<Output = u64>,
    F: FnMut(congest_graph::Node, usize, &Graph) -> P,
{
    lanes
        .iter()
        .enumerate()
        .map(|(l, spec)| {
            let cfg = EngineConfig {
                seed: spec.seed,
                faults: spec.faults,
                ..config.clone()
            };
            let mut session = Session::new(g);
            let out = session
                .run(|v, gr| factory(v, l, gr), cfg)
                .expect("sequential lane terminates");
            LaneObs {
                stats: out.stats,
                trace: out.trace().map(<[u64]>::to_vec),
                edge_congestion: out.edge_congestion().to_vec(),
                outputs: out.take_outputs(),
            }
        })
        .collect()
}

/// Mixed batch: lane seeds derived from `seed`, even lanes under the
/// lane-derived fault plan, odd lanes faultless.
fn mixed_lanes(seed: u64, w: usize, fault_budget: usize, fseed: u64) -> Vec<LaneSpec> {
    let base = FaultPlan::new(fault_budget, fseed);
    LaneSpec::batch(seed, w)
        .into_iter()
        .enumerate()
        .map(|(l, spec)| {
            if l % 2 == 0 && fault_budget > 0 {
                spec.with_faults(base.with_lane_seed(l))
            } else {
                spec
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Non-quiescent RNG-driven chatter: wide ≡ sequential per lane,
    /// across shard counts × meter modes × faulted lanes, with the
    /// sequential arm's sparse fast path forced both off and on.
    #[test]
    fn wide_chatter_matches_sequential(
        g in arb_connected_graph(20),
        seed in any::<u64>(),
        w in 1usize..7,
        fault_budget in 0usize..3,
        fseed in any::<u64>(),
    ) {
        let lanes = mixed_lanes(seed, w, fault_budget, fseed);
        let mk = |_: u32, l: usize, _: &Graph| Chatter { rounds: 6, salt: l as u64 + 1, heard: 0 };
        for &shards in &[1usize, 5] {
            for &meter in &[MeterMode::BitPlanes, MeterMode::ArcCounters] {
                let config = EngineConfig::serial().shards(shards).meter(meter).trace();
                let wide = wide_obs(&g, &lanes, mk, config.clone());
                for &st in &[0usize, usize::MAX] {
                    let seq = seq_obs(&g, &lanes, mk, config.clone().sparse_threshold(st));
                    prop_assert_eq!(
                        &wide, &seq,
                        "shards={} meter={:?} sparse_threshold={}", shards, meter, st
                    );
                }
            }
        }
    }

    /// Quiescent gossip: the wide kernel skips done-and-silent (node,
    /// lane) pairs; results still match the sequential engine, which
    /// steps every node every round.
    #[test]
    fn wide_quiescent_gossip_matches_sequential(
        g in arb_connected_graph(24),
        seed in any::<u64>(),
        w in 1usize..9,
        fault_budget in 0usize..2,
    ) {
        let lanes = mixed_lanes(seed, w, fault_budget, seed ^ 0xF00D);
        let mk = |v: u32, l: usize, _: &Graph| Gossip {
            token: (v as u64).wrapping_mul(0x9E37_79B9).rotate_left(l as u32),
        };
        for &shards in &[1usize, 4] {
            for &meter in &[MeterMode::BitPlanes, MeterMode::ArcCounters] {
                let config = EngineConfig::serial().shards(shards).meter(meter).trace();
                let wide = wide_obs(&g, &lanes, mk, config.clone());
                let seq = seq_obs(&g, &lanes, mk, config);
                prop_assert_eq!(&wide, &seq, "shards={} meter={:?}", shards, meter);
            }
        }
    }

    /// u128-word pair messages through the wide slab.
    #[test]
    fn wide_pair_messages_match_sequential(
        g in arb_connected_graph(16),
        seed in any::<u64>(),
        w in 1usize..6,
    ) {
        let lanes = LaneSpec::batch(seed, w);
        let mk = |_: u32, l: usize, _: &Graph| PairChatter { rounds: 4 + l as u64 % 3, heard: 1 };
        let config = EngineConfig::serial().shards(3).trace();
        let wide = wide_obs(&g, &lanes, mk, config.clone());
        let seq = seq_obs(&g, &lanes, mk, config);
        prop_assert_eq!(&wide, &seq);
    }

    /// Parallel wide execution is bit-identical to the serial sequential
    /// reference for any pool width (sharded step/deliver planes).
    #[test]
    fn wide_parallel_matches_serial_sequential(
        g in arb_connected_graph(18),
        seed in any::<u64>(),
    ) {
        let lanes = mixed_lanes(seed, 5, 1, seed ^ 0xCAFE);
        let mk = |_: u32, l: usize, _: &Graph| Chatter { rounds: 6, salt: l as u64, heard: 0 };
        let reference = seq_obs(&g, &lanes, mk, EngineConfig::serial().shards(4).trace());
        for threads in [2usize, 4] {
            let wide = congest_par::with_threads(threads, || {
                wide_obs(
                    &g,
                    &lanes,
                    mk,
                    EngineConfig::with_seed(0).shards(4).trace(),
                )
            });
            prop_assert_eq!(&wide, &reference, "threads={}", threads);
        }
    }

    /// Lane compaction at adversarial points: per-lane durations drawn
    /// by proptest stagger retirements so the live count repeatedly
    /// crosses the `live <= w/2` threshold and the sweep repacks
    /// mid-run. Compaction on, compaction off, and the sequential
    /// oracle must all agree bit-for-bit — outputs, stats, traces, and
    /// per-edge congestion.
    #[test]
    fn staggered_compaction_matches_compact_off_and_sequential(
        g in arb_connected_graph(20),
        seed in any::<u64>(),
        w in 4usize..13,
        durs in collection::vec(1u64..12, 12..13),
        fault_budget in 0usize..3,
        fseed in any::<u64>(),
    ) {
        let lanes = mixed_lanes(seed, w, fault_budget, fseed);
        let mk = |_: u32, l: usize, _: &Graph| Chatter {
            rounds: durs[l % durs.len()],
            salt: l as u64 + 1,
            heard: 0,
        };
        let config = EngineConfig::serial().shards(2).trace();
        let on = wide_obs(&g, &lanes, mk, config.clone());
        let off = wide_obs(&g, &lanes, mk, config.clone().compact(false));
        let seq = seq_obs(&g, &lanes, mk, config);
        prop_assert_eq!(&on, &off, "compaction changed results");
        prop_assert_eq!(&on, &seq, "wide (compacting) diverged from sequential");
    }

    /// A lane blowing the round budget *after* the sweep has compacted
    /// down to it must fail exactly as its isolated run: all other
    /// lanes retire early (forcing compaction), the survivor chatters
    /// forever, and the batch errors with the same
    /// [`EngineError::RoundLimitExceeded`] the lone sequential run
    /// reports — with or without compaction. The session must come back
    /// clean afterwards (post-compaction dirty scrub).
    #[test]
    fn round_limit_in_compacted_tail_fails_like_isolated(
        g in arb_connected_graph(14),
        seed in any::<u64>(),
        w in 5usize..9,
    ) {
        let lanes = LaneSpec::batch(seed, w);
        // Lanes 0..w-1 finish by round 2; the last lane never sets done,
        // so by the time the budget trips the sweep has long compacted
        // to a single live slot.
        let durs: Vec<u64> = (0..w).map(|l| if l + 1 == w { u64::MAX } else { 2 }).collect();
        let mk = |_: u32, l: usize, _: &Graph| Chatter {
            rounds: durs[l],
            salt: l as u64 + 1,
            heard: 0,
        };
        let config = EngineConfig::serial().shards(2).max_rounds(12);
        let mut solo = Session::new(&g);
        let isolated = match solo.run(
            |v, gr| mk(v, w - 1, gr),
            EngineConfig {
                seed: lanes[w - 1].seed,
                faults: lanes[w - 1].faults,
                ..config.clone()
            },
        ) {
            Err(e) => e,
            Ok(_) => panic!("the forever lane must blow the budget alone"),
        };
        prop_assert_eq!(&isolated, &congest_sim::EngineError::RoundLimitExceeded { limit: 12 });
        let mut session = WideSession::new(&g);
        for compact in [true, false] {
            let err = match session.run(&lanes, mk, config.clone().compact(compact)) {
                Err(e) => e,
                Ok(_) => panic!("compacted tail must blow the budget"),
            };
            prop_assert_eq!(&err, &isolated, "compact={}", compact);
        }
        // The failed, compacted session scrubs back to a clean slate.
        let mk2 = |_: u32, l: usize, _: &Graph| Chatter { rounds: 4, salt: l as u64, heard: 0 };
        let cfg2 = EngineConfig::serial().shards(2).trace();
        let after: Vec<LaneObs> = {
            let mut out = session
                .run(&lanes, mk2, cfg2.clone())
                .expect("post-failure run terminates");
            (0..lanes.len())
                .map(|l| LaneObs {
                    stats: out.stats(l),
                    trace: out.trace(l).map(<[u64]>::to_vec),
                    edge_congestion: out.edge_congestion(l).to_vec(),
                    outputs: out.take_lane_outputs(l),
                })
                .collect()
        };
        let fresh = wide_obs(&g, &lanes, mk2, cfg2);
        prop_assert_eq!(&after, &fresh);
    }

    /// Continuous refill: a queue of jobs streamed through
    /// [`WideSession::run_refill`] — admissions happening whenever a
    /// retiring lane frees a slot, at proptest-chosen durations — must
    /// match per-job isolated sequential runs bit-for-bit. Jobs whose
    /// isolated run errors with [`EngineError::RoundLimitExceeded`]
    /// must instead retire alone with `limit: Some(..)`, empty outputs,
    /// and default stats, without disturbing any other job.
    #[test]
    fn refill_stream_matches_isolated(
        g in arb_connected_graph(16),
        seed in any::<u64>(),
        w in 1usize..6,
        jobs in 4usize..14,
        durs in collection::vec(1u64..11, 14..15),
        fault_budget in 0usize..2,
        fseed in any::<u64>(),
    ) {
        let specs: Vec<LaneSpec> = mixed_lanes(seed, jobs, fault_budget, fseed);
        let mk = |_: u32, j: usize, _: &Graph| Chatter {
            rounds: durs[j % durs.len()],
            salt: j as u64 + 1,
            heard: 0,
        };
        // max_rounds 8 with durations up to 10: some jobs blow the
        // per-lane budget, most do not; the oracle decides which.
        let config = EngineConfig::serial().shards(2).max_rounds(8).trace();
        let init_w = w.min(jobs);
        let mut results: Vec<Option<LaneObs>> = (0..jobs).map(|_| None).collect();
        let mut limits: Vec<Option<u64>> = vec![None; jobs];
        let mut session = WideSession::new(&g);
        let admitted = session.run_refill::<Chatter, _, _, _>(
            &specs[..init_w],
            mk,
            config.clone(),
            |job| (job < jobs).then(|| specs[job].clone()),
            |mut r: congest_sim::LaneRetire<'_, u64>| {
                let mut outputs = Vec::new();
                r.take_outputs_into(&mut outputs);
                limits[r.job] = r.limit;
                results[r.job] = Some(LaneObs {
                    outputs,
                    stats: r.stats,
                    trace: r.trace.map(<[u64]>::to_vec),
                    edge_congestion: r.edge_congestion.to_vec(),
                });
            },
        );
        prop_assert_eq!(admitted, jobs);
        for (j, spec) in specs.iter().enumerate() {
            let got = results[j].take();
            let got = match got {
                Some(o) => o,
                None => panic!("job {j} never retired"),
            };
            let cfg_j = EngineConfig { seed: spec.seed, faults: spec.faults, ..config.clone() };
            let mut s = Session::new(&g);
            let run = s.run(|v, gr| mk(v, j, gr), cfg_j);
            match run {
                Ok(out) => {
                    prop_assert_eq!(limits[j], None, "job {} limited but isolated ran fine", j);
                    let want = LaneObs {
                        stats: out.stats,
                        trace: out.trace().map(<[u64]>::to_vec),
                        edge_congestion: out.edge_congestion().to_vec(),
                        outputs: out.take_outputs(),
                    };
                    prop_assert_eq!(&got, &want, "job {} diverged from isolated", j);
                }
                Err(congest_sim::EngineError::RoundLimitExceeded { limit }) => {
                    prop_assert_eq!(limits[j], Some(limit), "job {} limit mismatch", j);
                    prop_assert!(got.outputs.is_empty(), "limited job {} kept outputs", j);
                    prop_assert_eq!(&got.stats, &congest_sim::RunStats::default());
                    prop_assert!(got.edge_congestion.is_empty());
                }
            }
        }
    }

    /// A wide run that hits the round limit must leave the session
    /// reusable: the next wide run on the same session matches a fresh
    /// session's run lane-for-lane (the dirty-scrub path).
    #[test]
    fn failed_wide_run_leaves_session_clean(
        g in arb_connected_graph(14),
        seed in any::<u64>(),
    ) {
        /// Never terminates: chatters forever.
        struct Forever;
        impl Protocol for Forever {
            type Msg = u64;
            type Output = u64;
            fn round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
                ctx.send_all(ctx.round | 1);
            }
            fn finish(self) -> u64 {
                0
            }
        }
        let lanes = LaneSpec::batch(seed, 4);
        let mut session = WideSession::new(&g);
        let err = match session.run(
            &lanes,
            |_, _, _| Forever,
            EngineConfig::serial().max_rounds(5),
        ) {
            Err(e) => e,
            Ok(_) => panic!("Forever must exceed the round limit"),
        };
        prop_assert_eq!(err, congest_sim::EngineError::RoundLimitExceeded { limit: 5 });
        let mk = |_: u32, l: usize, _: &Graph| Chatter { rounds: 5, salt: l as u64, heard: 0 };
        let config = EngineConfig::serial().shards(2).trace();
        let after: Vec<LaneObs> = {
            let mut out = session
                .run(&lanes, mk, config.clone())
                .expect("post-failure run terminates");
            (0..lanes.len())
                .map(|l| LaneObs {
                    stats: out.stats(l),
                    trace: out.trace(l).map(<[u64]>::to_vec),
                    edge_congestion: out.edge_congestion(l).to_vec(),
                    outputs: out.take_lane_outputs(l),
                })
                .collect()
        };
        let fresh = wide_obs(&g, &lanes, mk, config);
        prop_assert_eq!(&after, &fresh);
    }
}

/// Full-width boundary: all 64 lanes in one run (bit 63 in every lane
/// word), staggered termination, identical to 64 sequential runs.
#[test]
fn wide_64_lanes_match_sequential() {
    let g = congest_graph::generators::harary(4, 12);
    let lanes = mixed_lanes(42, 64, 1, 7);
    let mk = |v: u32, l: usize, _: &Graph| Gossip {
        token: (v as u64 + 1).wrapping_mul(l as u64 + 1),
    };
    let config = EngineConfig::serial().shards(3).trace();
    let wide = wide_obs(&g, &lanes, mk, config.clone());
    let seq = seq_obs(&g, &lanes, mk, config);
    assert_eq!(wide, seq);
}
