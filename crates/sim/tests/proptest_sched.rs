//! Property-based tests for the two-tier multiplexer port rings: random
//! push/pop/serve interleavings checked against a plain `VecDeque` model,
//! including inline-ring wraparound, spill-arena claims, drain orders,
//! and capacities sitting exactly at the Theorem-12 congestion bound.

use congest_sim::sched::{PortRings, INLINE_CAP};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Drive `rings` and a `VecDeque`-per-port model through the same
/// operation stream, asserting identical observable behavior after every
/// step. `ops` entries pick a port and an action; pushes respect the
/// capacity bound (overflow is a separate panic test).
fn check_against_model(degree: usize, cap: usize, ops: &[(u8, u8)]) {
    let mut rings = PortRings::new(degree, cap);
    let mut model: Vec<VecDeque<u128>> = vec![VecDeque::new(); degree];
    let mut next_word: u128 = 1;
    let mut model_peak = 0usize;
    for &(port_pick, action) in ops {
        let p = port_pick as usize % degree;
        match action % 4 {
            // Push (skipped at the bound — overflow panics by contract).
            0 | 1 => {
                if model[p].len() < rings.capacity() {
                    rings.push(p, next_word);
                    model[p].push_back(next_word);
                    model_peak = model_peak.max(model[p].len());
                    next_word += 1;
                }
            }
            // Pop one from this port.
            2 => {
                assert_eq!(rings.pop(p), model[p].pop_front(), "pop on port {p}");
            }
            // Serve: pop one from every nonempty port, ascending.
            _ => {
                let mut served = Vec::new();
                rings.serve(|port, word| served.push((port, word)));
                let mut expect = Vec::new();
                for (port, q) in model.iter_mut().enumerate() {
                    if let Some(w) = q.pop_front() {
                        expect.push((port, w));
                    }
                }
                assert_eq!(served, expect, "serve order/content");
            }
        }
        assert_eq!(
            rings.queued(),
            model.iter().map(|q| q.len()).sum::<usize>(),
            "queued total"
        );
        for (port, q) in model.iter().enumerate() {
            assert_eq!(rings.len(port), q.len(), "len on port {port}");
        }
    }
    // Full drain, port by port, must replay every queue in FIFO order.
    for (port, q) in model.iter_mut().enumerate() {
        while let Some(w) = q.pop_front() {
            assert_eq!(rings.pop(port), Some(w), "drain port {port}");
        }
        assert_eq!(rings.pop(port), None);
    }
    assert_eq!(rings.queued(), 0);
    assert_eq!(rings.peak(), model_peak, "peak depth matches the model");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random interleavings over random shapes: every push/pop/serve/
    /// wraparound/spill/drain order the model can express.
    #[test]
    fn rings_match_vecdeque_model(
        degree in 1usize..9,
        cap in 1usize..20,
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..200),
    ) {
        check_against_model(degree, cap, &ops);
    }

    /// Capacity exactly at the Theorem-12 bound: fill every port to the
    /// brim (deep into the spill tier), then drain in FIFO order — the
    /// boundary the congestion theorem parameterizes the scheduler by.
    #[test]
    fn exact_capacity_fill_and_drain(
        degree in 1usize..6,
        cap in 1usize..40,
        interleave in any::<bool>(),
    ) {
        let mut rings = PortRings::new(degree, cap);
        let total = rings.capacity();
        prop_assert!(total >= cap, "logical capacity covers the declared bound");
        for p in 0..degree {
            for i in 0..total {
                rings.push(p, (p * 1000 + i) as u128);
            }
            prop_assert_eq!(rings.len(p), total);
        }
        if cap > INLINE_CAP as usize {
            prop_assert_eq!(rings.spilled_ports(), degree, "every port claimed a block");
        } else {
            prop_assert_eq!(rings.spilled_ports(), 0, "inline-only fills never claim");
        }
        if interleave {
            // One pop frees exactly one slot at the bound; push refills it.
            for p in 0..degree {
                prop_assert_eq!(rings.pop(p), Some((p * 1000) as u128));
                rings.push(p, 0xFFFF + p as u128);
            }
        }
        for p in 0..degree {
            for i in 0..total {
                let expect = if interleave && i == 0 {
                    continue; // popped above
                } else {
                    (p * 1000 + i) as u128
                };
                prop_assert_eq!(rings.pop(p), Some(expect), "port {} slot {}", p, i);
            }
            if interleave {
                prop_assert_eq!(rings.pop(p), Some(0xFFFF + p as u128));
            }
            prop_assert_eq!(rings.pop(p), None);
        }
        prop_assert_eq!(rings.queued(), 0);
    }
}

/// One past the bound must panic with the congestion hint, for shapes on
/// both sides of the inline/spill boundary.
#[test]
fn overflow_panics_at_every_tier_shape() {
    for cap in [1usize, 3, 4, 5, 7, 12] {
        let result = std::panic::catch_unwind(|| {
            let mut rings = PortRings::new(2, cap);
            for i in 0..=rings.capacity() as u128 {
                rings.push(1, i);
            }
        });
        let err = result.expect_err("push past capacity must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(
            msg.contains("ring overflow on port 1"),
            "cap {cap}: message was {msg:?}"
        );
    }
}
