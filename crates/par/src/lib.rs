//! # congest-par — a minimal persistent thread pool
//!
//! The CONGEST engine steps millions of rounds; spawning OS threads per
//! round (as `std::thread::scope` would) costs more than the round itself,
//! and the container image carries no external crates, so this crate
//! provides the one primitive the workspace needs: a **persistent** pool
//! with an **allocation-free scoped parallel-for**.
//!
//! * [`run`] — execute `n_tasks` closures `f(0..n_tasks)` across the pool.
//!   The job descriptor lives on the caller's stack; workers check in and
//!   out under a lock, so no per-call heap allocation happens and the
//!   borrow is released before `run` returns.
//! * [`run_list`] — parallel-for over an **explicit worklist** of task
//!   indices (the engine's sparse rounds visit only shards with staged
//!   traffic; idle shards cost nothing).
//! * [`par_chunks_mut`] — split a `&mut [T]` into fixed-size chunks and
//!   process them in parallel (each chunk is touched by exactly one task).
//! * [`par_map_collect`] — parallel `(0..n).map(f).collect()`.
//! * [`par_tree_reduce`] — combine a slice of per-task partials in a
//!   **fixed binary tree order** without allocating: the combine tree is a
//!   function of the slice length alone, so results are identical at every
//!   pool width even for non-commutative folds (the engine reduces its
//!   per-shard meter blocks through this every round).
//! * [`with_threads`] — run a closure with a temporary pool of an explicit
//!   width (determinism tests sweep 1/2/4 threads and assert identical
//!   results).
//! * [`RacyCells`] — an unsafe cell wrapper for parallel scatter writes to
//!   *provably disjoint* indices (the engine's reverse-arc permutation is a
//!   bijection, so every destination slot has exactly one writer).
//!
//! Scheduling is a shared atomic cursor over task indices, so uneven tasks
//! load-balance; determinism is the *callers'* responsibility (every user
//! in this workspace writes task-owned, disjoint outputs and reduces with
//! associative, commutative folds only).

use std::cell::Cell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;

/// A job visible to workers: a type-erased `Fn(usize)` plus progress
/// bookkeeping. Lives on the stack of the thread inside [`Pool::scope`];
/// workers only dereference it between check-in and check-out, both of
/// which the caller observes before returning.
struct Job {
    /// The task body; `usize` is the task index. Lifetime-erased pointer to
    /// a `&dyn Fn(usize) + Sync` that outlives the job (enforced by
    /// `Pool::scope` blocking until all workers check out).
    task: *const (dyn Fn(usize) + Sync),
    /// Next unclaimed task index.
    cursor: AtomicUsize,
    /// Number of tasks finished (successfully or by panic).
    finished: AtomicUsize,
    /// Total tasks.
    total: usize,
    /// Workers currently holding a pointer to this job (checked in under
    /// the board lock at pickup, checked out after draining). Per-job so
    /// concurrent `scope` calls never wait on each other's stragglers.
    checked_in: AtomicUsize,
    /// First panic payload observed, propagated to the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

unsafe impl Sync for Job {}

impl Job {
    /// Claim-and-run tasks until the cursor is exhausted. Returns after
    /// contributing to `finished` for every claimed task even on panic,
    /// so the caller can never deadlock.
    fn drain(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            let task = unsafe { &*self.task };
            let result = catch_unwind(AssertUnwindSafe(|| task(i)));
            if let Err(payload) = result {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            self.finished.fetch_add(1, Ordering::Release);
        }
    }

    fn is_done(&self) -> bool {
        self.finished.load(Ordering::Acquire) >= self.total
    }
}

/// What workers poll: a sequence number plus the current job pointer.
struct Board {
    seq: u64,
    job: Option<*const Job>,
}

unsafe impl Send for Board {}

/// A persistent pool of worker threads.
pub struct Pool {
    board: Mutex<Board>,
    work_ready: Condvar,
    idle: Condvar,
    threads: usize,
}

impl Pool {
    /// Build a pool with `threads` total lanes (including the caller's);
    /// `threads - 1` OS workers are spawned. `threads == 1` spawns none
    /// and [`Pool::scope`] degrades to a serial loop.
    pub fn new(threads: usize) -> &'static Pool {
        let threads = threads.max(1);
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            board: Mutex::new(Board { seq: 0, job: None }),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            threads,
        }));
        for _ in 1..threads {
            thread::Builder::new()
                .name("congest-par".into())
                .spawn(move || pool.worker_loop())
                .expect("spawn pool worker");
        }
        pool
    }

    fn worker_loop(&'static self) {
        let mut last_seen = 0u64;
        loop {
            let job: *const Job = {
                let mut board = self.board.lock().unwrap();
                loop {
                    if board.seq > last_seen {
                        if let Some(job) = board.job {
                            last_seen = board.seq;
                            // Check in while holding the lock: the caller
                            // can only retract + free the job after taking
                            // this same lock and seeing our count.
                            unsafe { &*job }.checked_in.fetch_add(1, Ordering::Relaxed);
                            break job;
                        }
                    }
                    board = self.work_ready.wait(board).unwrap();
                }
            };
            unsafe { &*job }.drain();
            // Last touch of the job: once the count hits zero the caller
            // may free it, so only the board/idle handles are used after.
            let remaining = unsafe { &*job }.checked_in.fetch_sub(1, Ordering::Release) - 1;
            if remaining == 0 {
                let _board = self.board.lock().unwrap();
                self.idle.notify_all();
            }
        }
    }

    /// Run `task(0..n_tasks)` across the pool. Blocks until every task has
    /// finished and no worker still holds a reference to `task`; panics
    /// from tasks are re-raised here. No heap allocation.
    pub fn scope(&'static self, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        if n_tasks == 0 {
            return;
        }
        if self.threads == 1 || n_tasks == 1 {
            for i in 0..n_tasks {
                task(i);
            }
            return;
        }
        // Erase the borrow's lifetime: workers only dereference `task`
        // between check-in and check-out, and we block below until every
        // worker has checked out, so the borrow outlives all uses.
        let task_erased: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        };
        let job = Job {
            task: task_erased,
            cursor: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            total: n_tasks,
            checked_in: AtomicUsize::new(0),
            panic: Mutex::new(None),
        };
        let job_ptr = &job as *const Job;
        {
            let mut board = self.board.lock().unwrap();
            board.seq += 1;
            board.job = Some(job_ptr);
            self.work_ready.notify_all();
        }
        // The caller is a lane too.
        job.drain();
        // Retract the job — but only if a concurrent `scope` hasn't
        // already replaced it with its own — then wait for stragglers to
        // check out of *this* job.
        let mut board = self.board.lock().unwrap();
        if board.job == Some(job_ptr) {
            board.job = None;
        }
        while !(job.is_done() && job.checked_in.load(Ordering::Acquire) == 0) {
            board = self
                .idle
                .wait_timeout(board, std::time::Duration::from_millis(1))
                .unwrap()
                .0;
        }
        drop(board);
        let payload = job.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

fn default_threads() -> usize {
    std::env::var("CONGEST_PAR_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn global_pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(default_threads()))
}

thread_local! {
    /// Scoped pool override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<&'static Pool>> = const { Cell::new(None) };
}

fn current_pool() -> &'static Pool {
    OVERRIDE.with(|o| o.get()).unwrap_or_else(global_pool)
}

/// Number of parallel lanes the calling thread would currently use.
pub fn num_threads() -> usize {
    current_pool().threads
}

/// Run `f` with a dedicated pool of exactly `threads` lanes installed for
/// the current thread. Pools are cached per width, so repeated calls don't
/// leak unbounded threads.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    static CACHE: Mutex<Vec<(usize, &'static Pool)>> = Mutex::new(Vec::new());
    let threads = threads.max(1);
    let pool = {
        let mut cache = CACHE.lock().unwrap();
        match cache.iter().find(|(t, _)| *t == threads) {
            Some(&(_, p)) => p,
            None => {
                let p = Pool::new(threads);
                cache.push((threads, p));
                p
            }
        }
    };
    let prev = OVERRIDE.with(|o| o.replace(Some(pool)));
    struct Restore(Option<&'static Pool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Parallel-for over task indices `0..n_tasks` on the current pool.
pub fn run(n_tasks: usize, task: impl Fn(usize) + Sync) {
    current_pool().scope(n_tasks, &task);
}

/// Parallel-for over an **explicit worklist** of task indices: runs
/// `task(list[i])` for every entry, scheduling entries across the pool
/// like [`run`] schedules `0..n`. This is the worklist-friendly shape the
/// engine's sparse round paths use: per-shard active lists (shards that
/// actually staged traffic this round) are built once and only those
/// shards are visited — idle shards cost nothing, not even a closure
/// call. Allocation-free; entries may appear in any order and tasks must
/// be independent, exactly as with [`run`].
pub fn run_list(list: &[u32], task: impl Fn(usize) + Sync) {
    current_pool().scope(list.len(), &|i| task(list[i] as usize));
}

/// Process `data` in contiguous chunks of `chunk_len` elements, in
/// parallel. `f(chunk_index, chunk)`; the last chunk may be short.
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let len = data.len();
    if len == 0 {
        return;
    }
    let chunk_len = chunk_len.max(1);
    let n_chunks = len.div_ceil(chunk_len);
    let cells = RacyCells::new(data);
    run(n_chunks, |ci| {
        let start = ci * chunk_len;
        let end = (start + chunk_len).min(len);
        // Sound: chunk `ci` is the unique task touching indices
        // `start..end`.
        let chunk = unsafe { cells.slice_mut(start, end) };
        f(ci, chunk);
    });
}

/// Reduce `items` in place by a **fixed binary combine tree** (pairwise at
/// stride 1, 2, 4, …), leaving the result in `items[0]` and returning a
/// reference to it. The tree shape depends only on `items.len()`, never on
/// the pool width, so any associative `combine` — commutative or not —
/// produces bit-identical results in serial and parallel execution. Each
/// level's pairs are disjoint, so they run as one allocation-free
/// parallel-for over the pool.
///
/// `combine(left, right)` must fold `right` into `left`; slots other than
/// `items[0]` are left in an unspecified (combined-over) state.
pub fn par_tree_reduce<T: Send>(items: &mut [T], combine: impl Fn(&mut T, &T) + Sync) {
    let n = items.len();
    let mut stride = 1usize;
    while stride < n {
        let pair_span = 2 * stride;
        // Pairs (i, i + stride) for i = 0, 2s, 4s, … with a partner in range.
        let n_pairs = (n - stride).div_ceil(pair_span);
        let cells = RacyCells::new(items);
        run(n_pairs, |k| {
            let i = k * pair_span;
            let j = i + stride;
            // Sound: pair `k` is the unique task touching slots `i` and `j`
            // at this level, and levels are separated by the pool barrier.
            unsafe {
                let left = &mut cells.slice_mut(i, i + 1)[0];
                let right = &cells.slice_mut(j, j + 1)[0];
                combine(left, right);
            }
        });
        stride = pair_span;
    }
}

/// Parallel `(0..n).map(f).collect::<Vec<_>>()`.
pub fn par_map_collect<T: Send, F: Fn(usize) -> T + Sync>(n: usize, f: F) -> Vec<T> {
    let mut out: Vec<std::mem::MaybeUninit<T>> = Vec::with_capacity(n);
    // Sound: every slot is written exactly once below before assuming init.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(n)
    };
    let chunk = n.div_ceil((num_threads() * 4).max(1)).max(1);
    par_chunks_mut(&mut out, chunk, |ci, slots| {
        let base = ci * chunk;
        for (i, slot) in slots.iter_mut().enumerate() {
            slot.write(f(base + i));
        }
    });
    // Reassemble from raw parts rather than transmuting the Vec itself
    // (Vec's field layout is unspecified across element types). Sound:
    // all n slots are initialized and MaybeUninit<T> has T's layout.
    let mut out = std::mem::ManuallyDrop::new(out);
    unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut T, out.len(), out.capacity()) }
}

/// A shared view over a `&mut [T]` allowing raw indexed writes from
/// multiple threads. Callers must guarantee every index is written by at
/// most one thread between synchronization points (the engine's delivery
/// permutation is a bijection, so this holds by construction).
pub struct RacyCells<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Sync for RacyCells<'_, T> {}
unsafe impl<T: Send> Send for RacyCells<'_, T> {}

impl<'a, T> RacyCells<'a, T> {
    pub fn new(data: &'a mut [T]) -> Self {
        RacyCells {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            _marker: PhantomData,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write `value` at `index`.
    ///
    /// # Safety
    /// `index < len`, and no other thread reads or writes `index`
    /// concurrently.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        unsafe { self.ptr.add(index).write(value) };
    }

    /// Read the value at `index`.
    ///
    /// # Safety
    /// `index < len`, and no other thread writes `index` concurrently.
    #[inline]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(index < self.len);
        unsafe { self.ptr.add(index).read() }
    }

    /// Reborrow a sub-slice mutably.
    ///
    /// # Safety
    /// `start <= end <= len`, and no other thread touches `start..end`
    /// concurrently.
    #[inline]
    pub unsafe fn slice_mut(&self, start: usize, end: usize) -> &'a mut [T] {
        debug_assert!(start <= end && end <= self.len);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_covers_every_task_once() {
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        run(1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_list_visits_exactly_the_listed_tasks() {
        let hits: Vec<AtomicU64> = (0..256).map(|_| AtomicU64::new(0)).collect();
        let list: Vec<u32> = (0..256).step_by(3).collect();
        for t in [1usize, 4] {
            with_threads(t, || {
                run_list(&list, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
            });
        }
        for (i, h) in hits.iter().enumerate() {
            let expect = if i % 3 == 0 { 2 } else { 0 };
            assert_eq!(h.load(Ordering::Relaxed), expect, "task {i}");
        }
        // Empty worklists are a no-op at any pool width.
        run_list(&[], |_| panic!("no tasks"));
    }

    #[test]
    fn par_chunks_mut_writes_disjointly() {
        let mut data = vec![0u64; 10_000];
        par_chunks_mut(&mut data, 64, |ci, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (ci * 64 + i) as u64;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn par_map_collect_matches_serial() {
        let par = par_map_collect(513, |i| i * i);
        let ser: Vec<usize> = (0..513).map(|i| i * i).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn with_threads_installs_width() {
        for t in [1, 2, 4] {
            with_threads(t, || {
                assert_eq!(num_threads(), t);
                let v = par_map_collect(100, |i| i + 1);
                assert_eq!(v[99], 100);
            });
        }
    }

    #[test]
    fn tree_reduce_matches_serial_fold_at_all_widths() {
        // Non-commutative combine (string-like ordered concat encoded in
        // u64 via shifting) must agree across pool widths because the tree
        // shape is fixed.
        for t in [1usize, 2, 4] {
            with_threads(t, || {
                for n in [1usize, 2, 3, 7, 8, 64, 129] {
                    let mut items: Vec<u64> = (1..=n as u64).collect();
                    par_tree_reduce(&mut items, |a, b| *a = a.wrapping_mul(31).wrapping_add(*b));
                    let mut expect: Vec<u64> = (1..=n as u64).collect();
                    let mut stride = 1;
                    while stride < n {
                        let mut i = 0;
                        while i + stride < n {
                            expect[i] = expect[i].wrapping_mul(31).wrapping_add(expect[i + stride]);
                            i += 2 * stride;
                        }
                        stride *= 2;
                    }
                    assert_eq!(items[0], expect[0], "n {n} threads {t}");
                }
            });
        }
    }

    #[test]
    fn tree_reduce_sums() {
        let mut items: Vec<u64> = (0..1000).collect();
        par_tree_reduce(&mut items, |a, b| *a += *b);
        assert_eq!(items[0], 499_500);
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            run(64, |i| {
                if i == 33 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
        // Pool must still be usable afterwards.
        let v = par_map_collect(10, |i| i);
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn nested_scopes_from_tasks_serialize() {
        // A task calling run() again must not deadlock: inner scope runs
        // on the same pool; since the worker is busy, the caller lane
        // drains it.
        run(4, |_| {
            let v = par_map_collect(8, |i| i);
            assert_eq!(v.len(), 8);
        });
    }
}
