//! The communication-free random edge partition (paper Theorem 2) and the
//! single-subgraph sampling lemma behind it (Lemma 5).
//!
//! Theorem 2: putting each edge of a simple graph with edge connectivity λ
//! and min degree δ into one of `λ′ = λ/(C log n)` classes uniformly and
//! independently yields, w.h.p., `λ′` **edge-disjoint spanning subgraphs
//! of diameter O((C n log n)/δ)** — the low-diameter decomposition
//! everything else in the paper rides on.
//!
//! The decision is local: for edge `{u, v}` with `ID(u) > ID(v)`, node `u`
//! draws the class. We implement it exactly that way — the owner derives
//! the color by hashing the (canonical) endpoint pair with the run seed
//! and tells the other endpoint in **one round**
//! ([`EdgePartitionProtocol`]). Because the color is a pure function of
//! `(seed, u, v)`, the centralized mirror [`EdgePartition::compute`]
//! reproduces the distributed outcome bit-for-bit, which the tests assert.

use congest_graph::{Edge, Graph, Node, Port};
use congest_sim::rng::mix64;
use congest_sim::{NodeCtx, Protocol};

/// How many subgraphs to partition into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionParams {
    pub num_subgraphs: usize,
}

impl PartitionParams {
    /// Exactly `λ′` classes.
    pub fn explicit(num_subgraphs: usize) -> Self {
        assert!(num_subgraphs >= 1);
        PartitionParams { num_subgraphs }
    }

    /// The paper's choice `λ′ = max(1, ⌊λ/(c·ln n)⌋)`.
    ///
    /// With `λ < c·ln n` this degrades to a single subgraph = the whole
    /// graph, and the broadcast gracefully degenerates to the textbook
    /// algorithm on one tree.
    pub fn from_lambda(n: usize, lambda: usize, c: f64) -> Self {
        assert!(c > 0.0);
        let ln_n = (n.max(2) as f64).ln();
        let lp = (lambda as f64 / (c * ln_n)).floor() as usize;
        PartitionParams {
            num_subgraphs: lp.max(1),
        }
    }
}

/// The color (class index) of edge `{u, v}` under `seed`. Pure function,
/// so any party knowing the endpoint ids can evaluate it.
#[inline]
pub fn edge_color(seed: u64, u: Node, v: Node, num_subgraphs: usize) -> u32 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    let key = ((a as u64) << 32) | b as u64;
    (mix64(seed ^ mix64(key)) % num_subgraphs as u64) as u32
}

/// A materialized partition: edge-id-indexed colors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgePartition {
    pub num_subgraphs: usize,
    /// `colors[e] ∈ [0, num_subgraphs)`.
    pub colors: Vec<u32>,
}

impl EdgePartition {
    /// Centralized mirror of the distributed partition — identical output
    /// to running [`EdgePartitionProtocol`] with the same seed.
    pub fn compute(g: &Graph, params: PartitionParams, seed: u64) -> Self {
        let colors = g
            .edge_list()
            .map(|(_, u, v)| edge_color(seed, u, v, params.num_subgraphs))
            .collect();
        EdgePartition {
            num_subgraphs: params.num_subgraphs,
            colors,
        }
    }

    #[inline]
    pub fn color(&self, e: Edge) -> u32 {
        self.colors[e as usize]
    }

    /// Port-indexed colors for one node (what a node program holds).
    pub fn port_colors(&self, g: &Graph, v: Node) -> Vec<u32> {
        g.incident_edges(v)
            .iter()
            .map(|&e| self.colors[e as usize])
            .collect()
    }

    /// Edge count of each class.
    pub fn class_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_subgraphs];
        for &c in &self.colors {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Exact diameter of each subgraph (`None` where not spanning-connected).
    /// Centralized measurement for experiments E1/E2.
    pub fn subgraph_diameters(&self, g: &Graph) -> Vec<Option<u32>> {
        (0..self.num_subgraphs)
            .map(|i| {
                let allow: Vec<bool> = self.colors.iter().map(|&c| c as usize == i).collect();
                congest_graph::algo::diameter::diameter_exact_restricted(g, &allow)
            })
            .collect()
    }

    /// Whether every class is a connected spanning subgraph.
    pub fn all_spanning(&self, g: &Graph) -> bool {
        (0..self.num_subgraphs as u32).all(|i| {
            congest_graph::algo::components::is_spanning_connected(g, |e| {
                self.colors[e as usize] == i
            })
        })
    }
}

/// Lemma 5's single-subgraph sampling: keep each edge independently with
/// probability `p`; returns the keep-mask. (The lemma: for
/// `p = C log n / λ` the kept subgraph spans with diameter
/// `O(C n log n / δ)` w.h.p.)
pub fn sample_edges(g: &Graph, p: f64, seed: u64) -> Vec<bool> {
    assert!((0.0..=1.0).contains(&p));
    g.edge_list()
        .map(|(_, u, v)| {
            let key = ((u as u64) << 32) | v as u64;
            let r = mix64(seed ^ mix64(key ^ 0xABCD_EF01)) as f64 / u64::MAX as f64;
            r < p
        })
        .collect()
}

/// The one-round distributed partition: the higher-id endpoint of each
/// edge announces the color to the other endpoint. Output: port-indexed
/// colors.
pub struct EdgePartitionProtocol {
    me: Node,
    seed: u64,
    num_subgraphs: usize,
    port_colors: Vec<u32>,
}

impl EdgePartitionProtocol {
    pub fn new(me: Node, seed: u64, num_subgraphs: usize, degree: usize) -> Self {
        EdgePartitionProtocol {
            me,
            seed,
            num_subgraphs,
            port_colors: vec![u32::MAX; degree],
        }
    }
}

impl Protocol for EdgePartitionProtocol {
    type Msg = u32;
    type Output = Vec<u32>;

    fn round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
        if ctx.round == 0 {
            // Decide for the edges I own (my id is the larger endpoint)
            // and announce.
            for p in 0..ctx.degree() as Port {
                let nb = ctx.neighbor(p);
                if self.me > nb {
                    let c = edge_color(self.seed, self.me, nb, self.num_subgraphs);
                    self.port_colors[p as usize] = c;
                    ctx.send(p, c);
                }
            }
            return;
        }
        for (p, c) in ctx.inbox() {
            debug_assert!(self.port_colors[p as usize] == u32::MAX);
            self.port_colors[p as usize] = c;
        }
        ctx.set_done(true);
    }

    fn finish(self) -> Vec<u32> {
        self.port_colors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{complete, harary, torus2d};
    use congest_sim::{run_protocol, EngineConfig};

    #[test]
    fn params_from_lambda() {
        // λ = 64, n = 1024, c = 1: λ' = ⌊64 / ln 1024⌋ = ⌊64/6.93⌋ = 9.
        let p = PartitionParams::from_lambda(1024, 64, 1.0);
        assert_eq!(p.num_subgraphs, 9);
        // Degenerate: tiny λ clamps to 1.
        assert_eq!(PartitionParams::from_lambda(1024, 2, 1.0).num_subgraphs, 1);
    }

    #[test]
    fn colors_cover_all_edges_exactly_once() {
        let g = harary(6, 30);
        let part = EdgePartition::compute(&g, PartitionParams::explicit(3), 7);
        assert_eq!(part.colors.len(), g.m());
        assert!(part.colors.iter().all(|&c| c < 3));
        let sizes = part.class_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), g.m());
        // Random partition: every class should be non-trivial here.
        assert!(sizes.iter().all(|&s| s > 0));
    }

    #[test]
    fn distributed_matches_centralized() {
        let g = torus2d(5, 6);
        let seed = 0xFEED;
        let k = 4;
        let central = EdgePartition::compute(&g, PartitionParams::explicit(k), seed);
        let out = run_protocol(
            &g,
            |v, gr| EdgePartitionProtocol::new(v, seed, k, gr.degree(v)),
            EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(out.stats.rounds, 1, "partition costs exactly one round");
        for v in 0..g.n() as Node {
            assert_eq!(
                out.outputs[v as usize],
                central.port_colors(&g, v),
                "node {v}"
            );
        }
    }

    #[test]
    fn both_endpoints_agree() {
        let g = harary(4, 20);
        let out = run_protocol(
            &g,
            |v, gr| EdgePartitionProtocol::new(v, 99, 5, gr.degree(v)),
            EngineConfig::default(),
        )
        .unwrap();
        for (e, u, v) in g.edge_list() {
            let pu = g.port_to(u, v).unwrap();
            let pv = g.port_to(v, u).unwrap();
            assert_eq!(
                out.outputs[u as usize][pu as usize], out.outputs[v as usize][pv as usize],
                "edge {e} endpoints disagree"
            );
        }
    }

    #[test]
    fn theorem2_spanning_on_well_connected_graph() {
        // K_48: λ = 47. λ' = 4 classes ⇒ each class ≈ G(48, 1/4·...) dense
        // enough to span with small diameter w.h.p.
        let g = complete(48);
        let part = EdgePartition::compute(&g, PartitionParams::explicit(4), 3);
        assert!(part.all_spanning(&g));
        for d in part.subgraph_diameters(&g) {
            let d = d.expect("spanning");
            assert!(d <= 4, "complete-graph class diameter {d} should be tiny");
        }
    }

    #[test]
    fn sampling_probability_is_respected() {
        let g = complete(64); // m = 2016
        let mask = sample_edges(&g, 0.25, 11);
        let kept = mask.iter().filter(|&&b| b).count();
        let expected = 0.25 * g.m() as f64;
        assert!(
            (kept as f64 - expected).abs() < 0.2 * expected,
            "kept {kept}, expected ≈ {expected}"
        );
        // Deterministic in seed.
        assert_eq!(mask, sample_edges(&g, 0.25, 11));
        assert_ne!(mask, sample_edges(&g, 0.25, 12));
    }

    #[test]
    fn edge_color_is_orientation_invariant() {
        assert_eq!(edge_color(5, 3, 9, 7), edge_color(5, 9, 3, 7));
    }
}
