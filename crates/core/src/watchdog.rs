//! Connectivity watchdog and graceful degradation under churn.
//!
//! The paper's parameter choice `λ′ = λ/(C·ln n)` (Theorem 1) assumes λ is
//! a property of a fixed graph. Under churn ([`congest_sim::churn`]) the
//! topology drifts between phases, and a λ′ that was safe at launch can
//! silently cross Theorem 2's threshold — at which point every attempt
//! fails [`BroadcastError::NotSpanning`] and a bare retry loop burns its
//! whole budget re-rolling a partition that *cannot* span.
//!
//! This module closes that gap in two layers:
//!
//! * a **watchdog** ([`watchdog()`]) run at the phase boundary: it
//!   re-measures connectivity (cheap `δ ≥ λ` upper bound by default,
//!   exact λ via [`congest_graph::algo::edge_connectivity`] on demand)
//!   and recomputes the λ′ the *current* graph supports;
//! * a **degradation ladder** ([`partition_broadcast_degrading`],
//!   [`resilient_broadcast_degrading`]): retry with fresh seeds at the
//!   current λ′, and on persistent `NotSpanning` halve the subgraph count
//!   instead of failing — at λ′ = 1 the algorithm *is* the textbook
//!   single-tree broadcast, which spans any connected graph. Only a
//!   genuinely disconnected graph (reported cleanly as
//!   [`BroadcastError::Disconnected`]) or an exhausted budget still
//!   errors.
//!
//! The resilient variant additionally tolerates partial delivery: under
//! an active edge adversary a run can complete with starved nodes, so the
//! ladder keeps the best outcome seen (fewest starved nodes) and returns
//! it with [`DegradeLog::exhausted`] set when the budget runs out —
//! degraded service instead of no service.

use crate::broadcast::{
    partition_broadcast_hosted, BroadcastConfig, BroadcastError, BroadcastInput, BroadcastOutcome,
    DEFAULT_PARTITION_C,
};
use crate::partition::PartitionParams;
use crate::resilient::{resilient_broadcast_hosted, ResilientOutcome};
use congest_graph::{algo, Graph};
use congest_sim::{FaultPlan, PhaseHost};

/// How the watchdog measures connectivity at a phase boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WatchdogMode {
    /// Skip the check (the degradation ladder still reacts to
    /// `NotSpanning` failures, just without foresight).
    Off,
    /// Use the minimum degree δ: free to compute, and `λ ≤ δ` always, so
    /// a δ that no longer supports the requested λ′ proves λ doesn't
    /// either. Misses cuts narrower than δ (a bottleneck between two
    /// dense halves). This is the default.
    #[default]
    MinDegree,
    /// Exact λ by max-flow ([`algo::edge_connectivity`]) — `n−1` Dinic
    /// runs; precise but only affordable at experiment scale.
    Exact,
}

/// What the watchdog saw at one phase boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogReport {
    /// Minimum degree δ of the current graph.
    pub min_degree: usize,
    /// Exact λ (only measured in [`WatchdogMode::Exact`]).
    pub lambda: Option<usize>,
    /// The λ′ the caller wanted to run with.
    pub current_subgraphs: usize,
    /// The λ′ the current graph supports:
    /// `max(1, ⌊bound/(c·ln n)⌋)` for the measured bound.
    pub recommended_subgraphs: usize,
    /// `recommended < current`: proceeding unchanged would (likely) fail.
    pub degrade_needed: bool,
    /// The graph cannot be spanned at all.
    pub disconnected: bool,
}

/// Re-measure connectivity and judge whether `current_subgraphs` is still
/// viable on `g`. `c` is the partition constant (Theorem 2's `C`,
/// usually [`DEFAULT_PARTITION_C`]).
pub fn watchdog(g: &Graph, current_subgraphs: usize, mode: WatchdogMode, c: f64) -> WatchdogReport {
    let n = g.n();
    let min_degree = g.min_degree();
    let (lambda, bound, disconnected) = match mode {
        WatchdogMode::Off => (None, current_subgraphs, false),
        WatchdogMode::MinDegree => (None, min_degree, n > 1 && min_degree == 0),
        WatchdogMode::Exact => {
            let l = algo::edge_connectivity(g);
            (Some(l), l, n > 1 && l == 0)
        }
    };
    let recommended = match mode {
        WatchdogMode::Off => current_subgraphs,
        _ => PartitionParams::from_lambda(n, bound, c).num_subgraphs,
    };
    WatchdogReport {
        min_degree,
        lambda,
        current_subgraphs,
        recommended_subgraphs: recommended,
        degrade_needed: recommended < current_subgraphs,
        disconnected,
    }
}

/// Budget and shape of the degradation ladder.
#[derive(Debug, Clone, Copy)]
pub struct DegradePolicy {
    /// Fresh-seed retries at each subgraph count before halving.
    pub attempts_per_level: usize,
    /// Floor of the ladder (1 = textbook single-tree broadcast).
    pub min_subgraphs: usize,
    /// Phase-boundary connectivity check.
    pub watchdog: WatchdogMode,
    /// Theorem 2's `C` used to recompute λ′ from the watchdog's bound.
    pub partition_c: f64,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy {
            attempts_per_level: 3,
            min_subgraphs: 1,
            watchdog: WatchdogMode::MinDegree,
            partition_c: DEFAULT_PARTITION_C,
        }
    }
}

/// One partial-delivery run remembered by the salvage ladder: which
/// attempt it was, what it starved, and whether its outcome is the one
/// ultimately returned at exhaustion. A multi-tenant caller attributes
/// degraded service run by run from these records instead of seeing only
/// the winning outcome's global starved set.
#[derive(Debug, Clone)]
pub struct SalvageAttempt {
    /// λ′ the attempt ran at.
    pub subgraphs: usize,
    /// Zero-based attempt index across the whole ladder (the same
    /// counter that perturbs the seed), so the exact run is replayable.
    pub attempt: u64,
    /// That run's exact starved-node set.
    pub starved: Vec<usize>,
    /// Messages the adversary destroyed during that run's routing phase.
    pub dropped: u64,
    /// True on exactly one record iff the budget was exhausted and this
    /// attempt's outcome was the best partial delivery returned.
    pub salvaged: bool,
}

/// How a degrading run actually unfolded.
#[derive(Debug, Clone, Default)]
pub struct DegradeLog {
    /// The boundary check, if the policy ran one.
    pub watchdog: Option<WatchdogReport>,
    /// `(subgraphs, attempts)` per ladder level, in descent order; the
    /// last entry is the level that produced the returned result.
    pub levels: Vec<(usize, usize)>,
    /// λ′ of the returned outcome (0 if the run errored out).
    pub final_subgraphs: usize,
    /// Did we run below the λ′ originally requested?
    pub degraded: bool,
    /// The whole budget was spent; the result (if any) is best-effort.
    pub exhausted: bool,
    /// Every partial-delivery attempt the resilient ladder saw, in run
    /// order (empty for the plain partition ladder and for runs that
    /// fully delivered before anything starved).
    pub salvage: Vec<SalvageAttempt>,
}

impl DegradeLog {
    pub fn total_attempts(&self) -> usize {
        self.levels.iter().map(|&(_, a)| a).sum()
    }
}

/// The subgraph count the ladder starts at, after the optional watchdog
/// veto, plus the started log.
fn ladder_start(
    g: &Graph,
    requested: usize,
    policy: &DegradePolicy,
) -> Result<(usize, DegradeLog), BroadcastError> {
    let mut log = DegradeLog::default();
    let floor = policy.min_subgraphs.max(1);
    let mut lp = requested.max(floor);
    if policy.watchdog != WatchdogMode::Off {
        let report = watchdog(g, lp, policy.watchdog, policy.partition_c);
        if report.disconnected {
            log.watchdog = Some(report);
            return Err(BroadcastError::Disconnected);
        }
        if report.degrade_needed {
            // Jump straight to what the graph supports instead of
            // discovering it one NotSpanning failure at a time.
            lp = report.recommended_subgraphs.max(floor);
            log.degraded = lp < requested;
        }
        log.watchdog = Some(report);
    }
    Ok((lp, log))
}

/// Theorem 1 with retry-and-degrade instead of hard failure; see the
/// module docs. Per-host variant: every attempt at every level reuses
/// the caller's engine.
pub fn partition_broadcast_degrading_hosted(
    host: &mut PhaseHost<'_>,
    input: &BroadcastInput,
    params: PartitionParams,
    cfg: &BroadcastConfig,
    policy: &DegradePolicy,
) -> Result<(BroadcastOutcome, DegradeLog), BroadcastError> {
    let (mut lp, mut log) = ladder_start(host.graph(), params.num_subgraphs, policy)?;
    let floor = policy.min_subgraphs.max(1);
    let mut total_attempt: u64 = 0;
    let mut last_err = None;
    loop {
        let mut attempts_here = 0usize;
        for _ in 0..policy.attempts_per_level.max(1) {
            let mut c = cfg.clone();
            c.seed = cfg.seed.wrapping_add(total_attempt * 0x9E37_79B9);
            total_attempt += 1;
            attempts_here += 1;
            match partition_broadcast_hosted(host, input, PartitionParams::explicit(lp), &c) {
                Ok(out) => {
                    log.levels.push((lp, attempts_here));
                    log.final_subgraphs = lp;
                    return Ok((out, log));
                }
                Err(e @ BroadcastError::NotSpanning { .. }) => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        log.levels.push((lp, attempts_here));
        if lp <= floor {
            log.exhausted = true;
            return Err(last_err.expect("at least one attempt ran"));
        }
        lp = (lp / 2).max(floor);
        log.degraded = true;
    }
}

/// [`partition_broadcast_degrading_hosted`] owning its host.
pub fn partition_broadcast_degrading(
    g: &Graph,
    input: &BroadcastInput,
    params: PartitionParams,
    cfg: &BroadcastConfig,
    policy: &DegradePolicy,
) -> Result<(BroadcastOutcome, DegradeLog), BroadcastError> {
    let mut host = PhaseHost::new(g, cfg.phase_resident);
    partition_broadcast_degrading_hosted(&mut host, input, params, cfg, policy)
}

/// Resilient broadcast with retry-and-degrade **and** partial-delivery
/// salvage: an attempt that completes with starved nodes is remembered
/// (fewest starved wins, earliest such attempt on ties) and returned with
/// [`DegradeLog::exhausted`] set if nothing fully delivers within the
/// budget. Callers distinguish the cases via
/// [`ResilientOutcome::all_delivered`] / [`DegradeLog::exhausted`].
pub fn resilient_broadcast_degrading_hosted(
    host: &mut PhaseHost<'_>,
    input: &BroadcastInput,
    params: PartitionParams,
    replication: usize,
    faults: Option<FaultPlan>,
    cfg: &BroadcastConfig,
    policy: &DegradePolicy,
) -> Result<(ResilientOutcome, DegradeLog), BroadcastError> {
    let (mut lp, mut log) = ladder_start(host.graph(), params.num_subgraphs, policy)?;
    let floor = policy.min_subgraphs.max(1);
    let mut total_attempt: u64 = 0;
    let mut last_err = None;
    let mut best: Option<(usize, usize, ResilientOutcome)> = None; // (starved, level, outcome)
    let mut best_salvage = 0usize; // index into log.salvage of the current best
    loop {
        let mut attempts_here = 0usize;
        for _ in 0..policy.attempts_per_level.max(1) {
            let mut c = cfg.clone();
            c.seed = cfg.seed.wrapping_add(total_attempt * 0x9E37_79B9);
            total_attempt += 1;
            attempts_here += 1;
            match resilient_broadcast_hosted(
                host,
                input,
                PartitionParams::explicit(lp),
                replication,
                faults,
                &c,
            ) {
                Ok(out) => {
                    let starved = out.starved_nodes();
                    if starved.is_empty() {
                        log.levels.push((lp, attempts_here));
                        log.final_subgraphs = lp;
                        return Ok((out, log));
                    }
                    log.salvage.push(SalvageAttempt {
                        subgraphs: lp,
                        attempt: total_attempt - 1,
                        dropped: out.dropped,
                        salvaged: false,
                        starved,
                    });
                    let starved = log.salvage.last().expect("just pushed").starved.len();
                    if best.as_ref().is_none_or(|(s, ..)| starved < *s) {
                        best = Some((starved, lp, out));
                        best_salvage = log.salvage.len() - 1;
                    }
                }
                Err(e @ BroadcastError::NotSpanning { .. }) => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        log.levels.push((lp, attempts_here));
        if lp <= floor {
            log.exhausted = true;
            return match best {
                // Budget gone: degrade gracefully to the best partial
                // delivery instead of erroring.
                Some((_, level, out)) => {
                    log.final_subgraphs = level;
                    log.salvage[best_salvage].salvaged = true;
                    Ok((out, log))
                }
                None => Err(last_err.expect("at least one attempt ran")),
            };
        }
        lp = (lp / 2).max(floor);
        log.degraded = true;
    }
}

/// [`resilient_broadcast_degrading_hosted`] owning its host.
#[allow(clippy::too_many_arguments)]
pub fn resilient_broadcast_degrading(
    g: &Graph,
    input: &BroadcastInput,
    params: PartitionParams,
    replication: usize,
    faults: Option<FaultPlan>,
    cfg: &BroadcastConfig,
    policy: &DegradePolicy,
) -> Result<(ResilientOutcome, DegradeLog), BroadcastError> {
    let mut host = PhaseHost::new(g, cfg.phase_resident);
    resilient_broadcast_degrading_hosted(&mut host, input, params, replication, faults, cfg, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{cycle, harary};
    use congest_graph::GraphBuilder;

    #[test]
    fn watchdog_modes_agree_on_healthy_graphs() {
        // δ = λ = 16 on 48 nodes: ⌊16/(2·ln 48)⌋ = 2, so λ′ = 2 is viable.
        let g = harary(16, 48);
        let cheap = watchdog(&g, 2, WatchdogMode::MinDegree, DEFAULT_PARTITION_C);
        let exact = watchdog(&g, 2, WatchdogMode::Exact, DEFAULT_PARTITION_C);
        assert_eq!(cheap.min_degree, 16);
        assert_eq!(exact.lambda, Some(16));
        assert_eq!(
            cheap.recommended_subgraphs, exact.recommended_subgraphs,
            "δ = λ here, so both modes recommend the same λ′"
        );
        assert!(!cheap.degrade_needed && !exact.degrade_needed);
        assert!(!cheap.disconnected);
    }

    #[test]
    fn watchdog_flags_overambitious_subgraph_counts() {
        let g = cycle(64); // δ = λ = 2; 2/(2·ln 64) < 1 ⇒ λ′ = 1
        let rep = watchdog(&g, 4, WatchdogMode::MinDegree, DEFAULT_PARTITION_C);
        assert!(rep.degrade_needed);
        assert_eq!(rep.recommended_subgraphs, 1);
    }

    #[test]
    fn watchdog_exact_sees_narrow_cut_min_degree_misses() {
        // Two K17's joined by one bridge: δ = 16 (⌊16/(2·ln 34)⌋ = 2, so
        // the cheap bound blesses λ′ = 2) but λ = 1.
        let mut edges = Vec::new();
        for a in 0..17u32 {
            for b in (a + 1)..17 {
                edges.push((a, b));
                edges.push((a + 17, b + 17));
            }
        }
        edges.push((0, 17));
        let g = GraphBuilder::new(34).edges(edges).build().unwrap();
        let cheap = watchdog(&g, 2, WatchdogMode::MinDegree, DEFAULT_PARTITION_C);
        let exact = watchdog(&g, 2, WatchdogMode::Exact, DEFAULT_PARTITION_C);
        assert!(!cheap.degrade_needed, "δ = 16 looks fine to the cheap mode");
        assert!(exact.degrade_needed, "λ = 1 cannot support 2 subgraphs");
        assert_eq!(exact.lambda, Some(1));
    }

    #[test]
    fn disconnected_graph_is_reported_cleanly() {
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (2, 3)])
            .build()
            .unwrap();
        let rep = watchdog(&g, 1, WatchdogMode::Exact, DEFAULT_PARTITION_C);
        assert!(rep.disconnected);
        let input = BroadcastInput::at_single_node(&g, 0, 4);
        let err = partition_broadcast_degrading(
            &g,
            &input,
            PartitionParams::explicit(1),
            &BroadcastConfig::with_seed(1),
            &DegradePolicy {
                watchdog: WatchdogMode::Exact,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, BroadcastError::Disconnected);
    }

    #[test]
    fn degrading_broadcast_succeeds_where_fixed_params_fail() {
        // cycle(16) with λ′ = 16 demanded: plain broadcast fails
        // NotSpanning (pinned in broadcast.rs tests); the degrading
        // wrapper walks down and delivers on one tree.
        let g = cycle(16);
        let input = BroadcastInput::random_spread(&g, 8, 0);
        let policy = DegradePolicy {
            watchdog: WatchdogMode::Off, // force the ladder itself to work
            attempts_per_level: 1,
            ..Default::default()
        };
        let (out, log) = partition_broadcast_degrading(
            &g,
            &input,
            PartitionParams::explicit(16),
            &BroadcastConfig::with_seed(0),
            &policy,
        )
        .unwrap();
        assert!(out.all_delivered());
        assert!(log.degraded);
        assert_eq!(log.final_subgraphs, 1);
        assert!(log.levels.len() > 1, "walked down the ladder");
        assert!(!log.exhausted);
    }

    #[test]
    fn resilient_degrading_returns_best_partial_on_exhaustion() {
        // Unreplicated routing under a heavy mobile adversary: every
        // ladder level completes but starves someone. The budget runs
        // out and the wrapper returns the *best* partial outcome instead
        // of an error — degraded service, honestly labelled.
        let g = harary(24, 72);
        let input = BroadcastInput::random_spread(&g, 72, 3);
        let faults = congest_sim::FaultPlan::new(12, 0xBAD);
        let policy = DegradePolicy {
            attempts_per_level: 1,
            watchdog: WatchdogMode::Off,
            ..Default::default()
        };
        let (out, log) = resilient_broadcast_degrading(
            &g,
            &input,
            PartitionParams::explicit(4),
            1,
            Some(faults),
            &BroadcastConfig::with_seed(0x52),
            &policy,
        )
        .unwrap();
        assert!(log.exhausted, "no attempt fully delivered: {log:?}");
        assert!(out.dropped > 0, "the adversary must have acted");
        assert!(!out.all_delivered());
        let starved = out.starved_nodes();
        assert!(!starved.is_empty());
        // starved_nodes is precisely the fingerprint-mismatch set.
        for (v, r) in out.per_node.iter().enumerate() {
            let bad = r.unique != out.k || (r.xor_check, r.sum_check) != out.expected;
            assert_eq!(starved.contains(&v), bad, "node {v}");
        }
        // The ladder walked 4 → 2 → 1, one attempt each.
        let visited: Vec<usize> = log.levels.iter().map(|&(l, _)| l).collect();
        assert_eq!(visited, vec![4, 2, 1]);
        assert_eq!(log.total_attempts(), 3);
    }

    #[test]
    fn exhausted_salvage_reports_every_partial_attempt() {
        // Same exhaustion scenario as above, but the contract under test
        // is the per-run salvage detail: `log.salvage` must carry one
        // record per partial attempt — exact starved set, drop count,
        // replayable attempt index — with exactly one record marked as
        // the outcome the caller actually got. Multi-tenant callers
        // attribute degraded service from these records, not from the
        // winner's global starved set alone.
        let g = harary(24, 72);
        let input = BroadcastInput::random_spread(&g, 72, 3);
        let faults = congest_sim::FaultPlan::new(12, 0xBAD);
        let policy = DegradePolicy {
            attempts_per_level: 1,
            watchdog: WatchdogMode::Off,
            ..Default::default()
        };
        let (out, log) = resilient_broadcast_degrading(
            &g,
            &input,
            PartitionParams::explicit(4),
            1,
            Some(faults),
            &BroadcastConfig::with_seed(0x52),
            &policy,
        )
        .unwrap();
        assert!(log.exhausted);
        // One attempt per level, all partial: three salvage records in
        // run order with replayable attempt indices.
        let levels: Vec<usize> = log.salvage.iter().map(|s| s.subgraphs).collect();
        assert_eq!(levels, vec![4, 2, 1]);
        let attempts: Vec<u64> = log.salvage.iter().map(|s| s.attempt).collect();
        assert_eq!(attempts, vec![0, 1, 2]);
        for s in &log.salvage {
            assert!(!s.starved.is_empty(), "a salvage record is a partial run");
            assert!(s.dropped > 0, "partial delivery here implies drops");
        }
        // Exactly one record is the returned outcome, and it is the one
        // with the fewest starved nodes (earliest on ties).
        let winners: Vec<&SalvageAttempt> = log.salvage.iter().filter(|s| s.salvaged).collect();
        assert_eq!(winners.len(), 1);
        let w = winners[0];
        assert_eq!(w.starved, out.starved_nodes());
        assert_eq!(w.dropped, out.dropped);
        assert_eq!(w.subgraphs, log.final_subgraphs);
        let min = log.salvage.iter().map(|s| s.starved.len()).min().unwrap();
        assert_eq!(w.starved.len(), min);
        assert!(log
            .salvage
            .iter()
            .take_while(|s| !s.salvaged)
            .all(|s| s.starved.len() > min));
        // A run that fully delivers leaves no salvage records behind.
        let ok_faults = congest_sim::FaultPlan::new(3, 0xBAD);
        let (_, ok_log) = resilient_broadcast_degrading(
            &g,
            &input,
            PartitionParams::explicit(4),
            3,
            Some(ok_faults),
            &BroadcastConfig::with_seed(0x52),
            &policy,
        )
        .unwrap();
        assert!(ok_log.salvage.is_empty());
    }

    #[test]
    fn resilient_degrading_stops_at_first_full_delivery() {
        let g = harary(24, 72);
        let input = BroadcastInput::random_spread(&g, 72, 3);
        let faults = congest_sim::FaultPlan::new(3, 0xBAD);
        // Watchdog off: harary(24,72) only supports λ′ = 2 by the
        // formula, and this test wants the undegraded r=3 run (pinned
        // all-delivered in resilient.rs) to return on attempt one.
        let policy = DegradePolicy {
            watchdog: WatchdogMode::Off,
            ..Default::default()
        };
        let (out, log) = resilient_broadcast_degrading(
            &g,
            &input,
            PartitionParams::explicit(4),
            3,
            Some(faults),
            &BroadcastConfig::with_seed(0x52),
            &policy,
        )
        .unwrap();
        assert!(out.all_delivered(), "starved: {:?}", out.starved_nodes());
        assert!(!log.exhausted);
        assert_eq!(log.final_subgraphs, 4, "no degradation needed");
        assert_eq!(log.total_attempts(), 1);
    }

    #[test]
    fn watchdog_jumps_ladder_straight_to_viable_level() {
        let g = cycle(16);
        let input = BroadcastInput::random_spread(&g, 8, 0);
        let (out, log) = partition_broadcast_degrading(
            &g,
            &input,
            PartitionParams::explicit(16),
            &BroadcastConfig::with_seed(0),
            &DegradePolicy::default(),
        )
        .unwrap();
        assert!(out.all_delivered());
        assert_eq!(log.final_subgraphs, 1);
        assert_eq!(log.total_attempts(), 1, "no NotSpanning burned: {log:?}");
    }
}
