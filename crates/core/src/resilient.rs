//! Fault-tolerant broadcast over the tree packing (paper §1.2, "An
//! application to secure distributed computing").
//!
//! Fischer–Parter \[FP23\] show that a tree packing with ≥ λ trees, small
//! congestion, and tree diameter `d` — exactly what Theorem 2 provides —
//! compiles any CONGEST algorithm into an *f-mobile-resilient* one
//! (correct despite an adversary controlling `f` edges per round) with
//! `f = Θ̃(λ)` and overhead `Θ̃(d)`.
//!
//! This module implements the natural broadcast instantiation of that
//! idea: **replicate every message across `r` of the λ′ partition trees**
//! and deduplicate by message id at every node. An adversary must block
//! all `r` edge-disjoint routes of a message to suppress it, so delivery
//! survives fault rates that grow with `r` — experimentally charted in
//! `exp_resilience`. (Our adversary is oblivious-random rather than
//! adaptive, and the control phases — BFS, numbering, partition — run
//! protected; both substitutions documented in DESIGN.md §2.)

use crate::bfs::{BfsProtocol, SubgraphBfs};
use crate::broadcast::{BroadcastConfig, BroadcastError, BroadcastInput, ColoredPipeMsg};
use crate::convergecast::{Numbering, TreeView};
use crate::leader::FloodMax;
use crate::partition::{EdgePartitionProtocol, PartitionParams};
use crate::pipeline::{expected_checksums, PipeCore, PipeMsg};
use congest_graph::{Graph, Port};
use congest_sim::{EngineConfig, FaultPlan, NodeCtx, PhaseHost, PhaseLog, Protocol};
use std::collections::HashMap;

/// Per-node result of a replicated broadcast: the deduplicated message
/// set fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DedupResult {
    /// Distinct message ids received (or initially held).
    pub unique: u64,
    /// Order-invariant checksums over the distinct messages.
    pub xor_check: u64,
    pub sum_check: u64,
    /// Copies that arrived after the id was already known.
    pub duplicates: u64,
}

/// λ′ pipeline cores plus an id-level deduplication layer.
pub struct ReplicatedPipeline {
    cores: Vec<PipeCore>,
    seen: HashMap<u32, u64>,
    duplicates: u64,
}

impl ReplicatedPipeline {
    /// `own` must list this node's initial messages once per replica
    /// (i.e. already expanded to (class, msg) pairs).
    pub fn new(cores: Vec<PipeCore>, own_unique: &[(u32, u64)]) -> Self {
        let mut seen = HashMap::new();
        for &(id, payload) in own_unique {
            seen.insert(id, payload);
        }
        ReplicatedPipeline {
            cores,
            seen,
            duplicates: 0,
        }
    }

    fn record(&mut self, id: u32, payload: u64) {
        if self.seen.insert(id, payload).is_some() {
            self.duplicates += 1;
        }
    }
}

impl Protocol for ReplicatedPipeline {
    type Msg = ColoredPipeMsg;
    type Output = DedupResult;

    fn round(&mut self, ctx: &mut NodeCtx<'_, ColoredPipeMsg>) {
        let arrivals: Vec<(Port, ColoredPipeMsg)> = ctx.inbox().collect();
        for (p, m) in arrivals {
            self.record(m.inner.id, m.inner.payload);
            self.cores[m.color as usize].on_receive(p, m.inner);
        }
        for c in 0..self.cores.len() {
            let (up, down) = self.cores[c].emit();
            if let Some(m) = up {
                let pp = self.cores[c].tree().parent_port.expect("non-root sends up");
                ctx.send(
                    pp,
                    ColoredPipeMsg {
                        color: c as u16,
                        inner: m,
                    },
                );
            }
            if let Some(m) = down {
                for &child in &self.cores[c].tree().children_ports.clone() {
                    ctx.send(
                        child,
                        ColoredPipeMsg {
                            color: c as u16,
                            inner: m,
                        },
                    );
                }
            }
        }
        // Under faults a core may stall forever short of its k_c; local
        // termination is therefore quiescence, and delivery is judged
        // post-hoc by the driver.
        ctx.set_done(self.cores.iter().all(|c| c.quiescent()));
    }

    fn finish(self) -> DedupResult {
        let pairs: Vec<(u32, u64)> = self.seen.into_iter().collect();
        let (x, s) = expected_checksums(pairs.iter());
        DedupResult {
            unique: pairs.len() as u64,
            xor_check: x,
            sum_check: s,
            duplicates: self.duplicates,
        }
    }
}

/// Outcome of a resilient broadcast run.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    pub phases: PhaseLog,
    pub total_rounds: u64,
    /// Replication factor used.
    pub replication: usize,
    pub num_subgraphs: usize,
    /// Per-node dedup results.
    pub per_node: Vec<DedupResult>,
    /// Expected checksums of the full message set.
    pub expected: (u64, u64),
    pub k: u64,
    /// Messages the adversary destroyed during routing.
    pub dropped: u64,
}

impl ResilientOutcome {
    /// Nodes that ended up missing at least one message.
    pub fn starved_nodes(&self) -> Vec<usize> {
        self.per_node
            .iter()
            .enumerate()
            .filter(|(_, r)| r.unique != self.k || (r.xor_check, r.sum_check) != self.expected)
            .map(|(v, _)| v)
            .collect()
    }

    pub fn all_delivered(&self) -> bool {
        self.starved_nodes().is_empty()
    }
}

/// Replicated broadcast under an edge adversary active during routing.
///
/// `replication` copies of each message are routed over distinct trees
/// (clamped to λ′). `faults` applies to the routing phase only.
pub fn resilient_broadcast(
    g: &Graph,
    input: &BroadcastInput,
    params: PartitionParams,
    replication: usize,
    faults: Option<FaultPlan>,
    cfg: &BroadcastConfig,
) -> Result<ResilientOutcome, BroadcastError> {
    let mut host = PhaseHost::new(g, cfg.phase_resident);
    resilient_broadcast_hosted(&mut host, input, params, replication, faults, cfg)
}

/// [`resilient_broadcast`] on a caller-provided engine host, so drivers
/// that compose broadcasts (and the degradation loop in
/// [`crate::watchdog()`]) reuse one preallocated engine across attempts.
pub fn resilient_broadcast_hosted(
    host: &mut PhaseHost<'_>,
    input: &BroadcastInput,
    params: PartitionParams,
    replication: usize,
    faults: Option<FaultPlan>,
    cfg: &BroadcastConfig,
) -> Result<ResilientOutcome, BroadcastError> {
    let g = host.graph();
    let n = g.n();
    let k = input.k() as u64;
    let lp = params.num_subgraphs;
    let r = replication.clamp(1, lp);
    let mut phases = PhaseLog::new();
    let engine = |p: u64| {
        EngineConfig::with_seed(congest_sim::rng::phase_seed(cfg.seed, 0x9E5 + p))
            .max_rounds(cfg.max_rounds)
    };

    // Protected control phases (identical to Theorem 1's phases 1–5).
    let leaders = host.run(|v, _| FloodMax::new(v), engine(1))?;
    phases.record("leader-election", leaders.stats);
    let root = leaders.outputs()[0].leader;
    drop(leaders);

    let bfs = host.run(|v, _| BfsProtocol::new(root, v), engine(2))?;
    phases.record("bfs", bfs.stats);
    let views: Vec<TreeView> = bfs.outputs().iter().map(TreeView::from_bfs).collect();
    drop(bfs);

    let payloads = input.payloads_by_node(n);
    let numbering = host.run(
        |v, _| Numbering::new(views[v as usize].clone(), payloads[v as usize].len() as u64),
        engine(3),
    )?;
    phases.record("numbering", numbering.stats);
    let ids_by_node: Vec<Vec<u32>> = (0..n)
        .map(|v| {
            let (start, _) = numbering.outputs()[v];
            (0..payloads[v].len() as u64)
                .map(|j| (start + j) as u32)
                .collect()
        })
        .collect();
    drop(numbering);

    let part = host.run(
        |v, gr| EdgePartitionProtocol::new(v, cfg.seed, lp, gr.degree(v)),
        engine(4),
    )?;
    phases.record("edge-partition", part.stats);
    let port_colors = part.take_outputs();

    let sub_bfs_run = host.run(
        |v, _| SubgraphBfs::new(root, v, port_colors[v as usize].clone(), lp),
        engine(5),
    )?;
    phases.record("subgraph-bfs", sub_bfs_run.stats);
    let sub_bfs = sub_bfs_run.take_outputs();
    for c in 0..lp {
        let unreached = sub_bfs.iter().filter(|infos| !infos[c].reached).count();
        if unreached > 0 {
            return Err(BroadcastError::NotSpanning {
                subgraph: c as u32,
                unreached,
            });
        }
    }

    // Routing with replication, under attack.
    let cap = k.max(1).div_ceil(lp as u64);
    let base_color = |id: u32| ((id as u64 / cap).min(lp as u64 - 1)) as usize;
    let copy_colors =
        |id: u32| -> Vec<usize> { (0..r).map(|i| (base_color(id) + i) % lp).collect() };
    let mut k_per_class = vec![0u64; lp];
    for ids in &ids_by_node {
        for &id in ids {
            for c in copy_colors(id) {
                k_per_class[c] += 1;
            }
        }
    }
    let mut routing_engine = engine(6);
    routing_engine.faults = faults;
    let routing = host.run(
        |v, _| {
            let vi = v as usize;
            let own_unique: Vec<(u32, u64)> = ids_by_node[vi]
                .iter()
                .zip(payloads[vi].iter())
                .map(|(&id, &p)| (id, p))
                .collect();
            let cores = (0..lp)
                .map(|c| {
                    let own: Vec<PipeMsg> = own_unique
                        .iter()
                        .filter(|(id, _)| copy_colors(*id).contains(&c))
                        .map(|&(id, payload)| PipeMsg { id, payload })
                        .collect();
                    PipeCore::new(
                        TreeView::from_bfs(&sub_bfs[vi][c]),
                        k_per_class[c],
                        own,
                        false,
                    )
                })
                .collect();
            ReplicatedPipeline::new(cores, &own_unique)
        },
        routing_engine,
    )?;
    phases.record("replicated-routing", routing.stats);
    let routing_stats = routing.stats;
    let per_node = routing.take_outputs();

    let all_msgs: Vec<(u32, u64)> = (0..n)
        .flat_map(|v| {
            ids_by_node[v]
                .iter()
                .zip(payloads[v].iter())
                .map(|(&id, &p)| (id, p))
                .collect::<Vec<_>>()
        })
        .collect();
    let expected = expected_checksums(all_msgs.iter());

    Ok(ResilientOutcome {
        total_rounds: phases.total_rounds(),
        phases,
        replication: r,
        num_subgraphs: lp,
        per_node,
        expected,
        k,
        dropped: routing_stats.dropped_messages, // routing is the only attacked phase
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::harary;

    fn setup() -> (Graph, BroadcastInput, PartitionParams) {
        let g = harary(24, 72);
        let input = BroadcastInput::random_spread(&g, 72, 3);
        let params = PartitionParams::explicit(4);
        (g, input, params)
    }

    #[test]
    fn no_faults_behaves_like_plain_broadcast_with_dedup() {
        let (g, input, params) = setup();
        let out = resilient_broadcast(
            &g,
            &input,
            params,
            2,
            None,
            &BroadcastConfig::with_seed(0x51),
        )
        .unwrap();
        assert!(out.all_delivered());
        assert_eq!(out.dropped, 0);
        // With replication 2, every node sees duplicates.
        assert!(out.per_node.iter().any(|r| r.duplicates > 0));
    }

    #[test]
    fn replication_survives_faults_that_starve_single_routing() {
        let (g, input, params) = setup();
        let faults = FaultPlan::new(3, 0xBAD);
        // r = 1: the adversary usually starves someone.
        let single = resilient_broadcast(
            &g,
            &input,
            params,
            1,
            Some(faults),
            &BroadcastConfig::with_seed(0x52),
        )
        .unwrap();
        // r = 3: three edge-disjoint routes per message.
        let triple = resilient_broadcast(
            &g,
            &input,
            params,
            3,
            Some(faults),
            &BroadcastConfig::with_seed(0x52),
        )
        .unwrap();
        assert!(triple.dropped > 0, "adversary must have acted");
        assert!(
            triple.starved_nodes().len() <= single.starved_nodes().len(),
            "replication must not hurt: r=3 starved {:?} vs r=1 starved {:?}",
            triple.starved_nodes().len(),
            single.starved_nodes().len()
        );
        assert!(
            triple.all_delivered(),
            "r=3 should survive 3 random edge faults/round: starved {:?}",
            triple.starved_nodes()
        );
    }

    #[test]
    fn starved_nodes_reports_exact_mismatch_set_under_partial_delivery() {
        let (g, input, params) = setup();
        // Moderate faults on unreplicated routing: partial delivery with
        // a genuinely mixed population (some starved, some complete).
        let out = resilient_broadcast(
            &g,
            &input,
            params,
            1,
            Some(FaultPlan::new(2, 0xBAD)),
            &BroadcastConfig::with_seed(0x52),
        )
        .unwrap();
        assert!(out.dropped > 0);
        let starved = out.starved_nodes();
        assert!(!starved.is_empty(), "2 faults/round must starve someone");
        assert!(starved.len() < g.n(), "quiescence still delivers to most");
        assert_eq!(out.all_delivered(), starved.is_empty());
        assert!(starved.windows(2).all(|w| w[0] < w[1]), "sorted node ids");
        for (v, r) in out.per_node.iter().enumerate() {
            let bad = r.unique != out.k || (r.xor_check, r.sum_check) != out.expected;
            assert_eq!(starved.contains(&v), bad, "node {v}");
            assert!(r.unique <= out.k, "dedup can never exceed k");
        }
    }

    #[test]
    fn replication_clamped_to_subgraph_count() {
        let (g, input, params) = setup();
        let out = resilient_broadcast(
            &g,
            &input,
            params,
            100,
            None,
            &BroadcastConfig::with_seed(0x53),
        )
        .unwrap();
        assert_eq!(out.replication, 4);
        assert!(out.all_delivered());
    }
}
