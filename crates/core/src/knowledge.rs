//! Learning the graph parameters δ and λ (paper Lemma 4).
//!
//! * **δ** is learned exactly as in the paper: a min-convergecast of node
//!   degrees over a BFS tree plus a broadcast back down — `O(D)` rounds
//!   ([`learn_min_degree`]).
//! * **λ**: the paper invokes the universally-optimal min-cut machinery of
//!   \[GZ22\] with \[CPT20\] shortcuts (an entire separate paper). Per the
//!   substitution rule (DESIGN.md §2) we provide instead
//!   (a) the paper's own *exponential search* fallback
//!   ([`crate::exp_search`]), which removes the need to know λ entirely at
//!   the same asymptotic cost, and
//!   (b) a centralized oracle ([`lambda_oracle`], Dinic max-flows) used
//!   only to parameterize experiments.

use crate::bfs::BfsProtocol;
use crate::convergecast::{AggOp, Aggregate, TreeView};
use crate::leader::FloodMax;
use congest_graph::Graph;
use congest_sim::{EngineConfig, EngineError, PhaseLog, Session};

/// Distributed δ-learning: every node ends up knowing the global minimum
/// degree. Returns `(delta, phases)`. All three phases run on one
/// resident engine session.
pub fn learn_min_degree(g: &Graph, seed: u64) -> Result<(usize, PhaseLog), EngineError> {
    let mut session = Session::new(g);
    let mut phases = PhaseLog::new();
    let engine = |p: u64| EngineConfig::with_seed(congest_sim::rng::phase_seed(seed, 0xDE17A + p));

    let leaders = session.run(|v, _| FloodMax::new(v), engine(1))?;
    phases.record("leader-election", leaders.stats);
    let root = leaders.outputs()[0].leader;
    drop(leaders);

    let bfs = session.run(|v, _| BfsProtocol::new(root, v), engine(2))?;
    phases.record("bfs", bfs.stats);
    let views: Vec<TreeView> = bfs.outputs().iter().map(TreeView::from_bfs).collect();
    drop(bfs);

    let agg = session.run(
        |v, gr| Aggregate::new(views[v as usize].clone(), AggOp::Min, gr.degree(v) as u64),
        engine(3),
    )?;
    phases.record("min-convergecast", agg.stats);

    // Every node holds the same answer; sanity-check that.
    let delta = agg.outputs()[0];
    debug_assert!(agg.outputs().iter().all(|&d| d == delta));
    Ok((delta as usize, phases))
}

/// Centralized λ oracle (experiments only; see module docs).
pub fn lambda_oracle(g: &Graph) -> usize {
    congest_graph::algo::connectivity::edge_connectivity(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{clique_chain, harary, hypercube, torus2d};

    #[test]
    fn delta_matches_centralized() {
        for g in [
            harary(5, 20),
            torus2d(4, 5),
            clique_chain(3, 6, 2),
            hypercube(4),
        ] {
            let (delta, _) = learn_min_degree(&g, 1).unwrap();
            assert_eq!(delta, g.min_degree());
        }
    }

    #[test]
    fn rounds_are_order_d() {
        let g = congest_graph::generators::path(20); // D = 19
        let (delta, phases) = learn_min_degree(&g, 2).unwrap();
        assert_eq!(delta, 1);
        // 3 phases of O(D) each.
        assert!(phases.total_rounds() <= 6 * 19 + 12);
    }

    #[test]
    fn oracle_agrees_with_generators() {
        assert_eq!(lambda_oracle(&harary(6, 24)), 6);
        assert_eq!(lambda_oracle(&clique_chain(3, 8, 3)), 3);
    }
}
