//! The textbook `O(D + k)` broadcast baseline (paper Lemma 1 applied to
//! one global BFS tree).
//!
//! This is the algorithm Theorem 1 is compared against: elect a leader,
//! build one BFS tree of `G`, and pipeline all `k` messages up and then
//! down that single tree. Round complexity `O(D + k)`, per-edge congestion
//! `O(k)`. In graphs with λ ≫ log n the paper's partition broadcast beats
//! it as soon as `k` dominates `D` — experiments E3/E4 locate the
//! crossover empirically.

use crate::bfs::BfsProtocol;
use crate::broadcast::{BroadcastConfig, BroadcastInput};
use crate::convergecast::TreeView;
use crate::leader::FloodMax;
use crate::pipeline::{expected_checksums, PipeMsg, PipeResult, TreePipeline};
use congest_graph::Graph;
use congest_sim::{EngineError, PhaseLog, RunStats};

/// Outcome of the baseline run (same verification interface as
/// [`crate::broadcast::BroadcastOutcome`]).
#[derive(Debug, Clone)]
pub struct TextbookOutcome {
    pub phases: PhaseLog,
    pub total_rounds: u64,
    pub stats: RunStats,
    /// Height of the single BFS tree (≈ D).
    pub tree_height: u32,
    pub per_node: Vec<PipeResult>,
    pub expected: (u64, u64),
    pub k: u64,
}

impl TextbookOutcome {
    pub fn all_delivered(&self) -> bool {
        self.per_node
            .iter()
            .all(|r| r.delivered == self.k && (r.xor_check, r.sum_check) == self.expected)
    }
}

/// Run the baseline: leader election + BFS + single-tree pipeline.
///
/// Message ids are the input indices — the baseline needs no distributed
/// numbering because a single tree assigns each message a unique path and
/// ids only feed the delivery checksums.
pub fn textbook_broadcast(
    g: &Graph,
    input: &BroadcastInput,
    seed: u64,
) -> Result<TextbookOutcome, EngineError> {
    let cfg = BroadcastConfig::with_seed(seed);
    textbook_broadcast_with(g, input, &cfg)
}

/// Baseline with explicit configuration.
pub fn textbook_broadcast_with(
    g: &Graph,
    input: &BroadcastInput,
    cfg: &BroadcastConfig,
) -> Result<TextbookOutcome, EngineError> {
    let n = g.n();
    let k = input.k() as u64;
    let mut host = congest_sim::PhaseHost::new(g, cfg.phase_resident);
    let mut phases = PhaseLog::new();

    let engine = |phase: u64| {
        congest_sim::EngineConfig::with_seed(congest_sim::rng::phase_seed(cfg.seed, 0x7B00 + phase))
            .max_rounds(cfg.max_rounds)
    };

    // Phase 1: leader election.
    let leaders = host.run(|v, _| FloodMax::new(v), engine(1))?;
    phases.record("leader-election", leaders.stats);
    let root = leaders.outputs()[0].leader;
    drop(leaders);

    // Phase 2: BFS tree.
    let bfs = host.run(|v, _| BfsProtocol::new(root, v), engine(2))?;
    phases.record("bfs", bfs.stats);
    let views: Vec<TreeView> = bfs.outputs().iter().map(TreeView::from_bfs).collect();
    let tree_height = bfs.outputs().iter().map(|i| i.depth).max().unwrap_or(0);
    drop(bfs);

    // Phase 3: single-tree pipeline with all k messages.
    let mut own: Vec<Vec<PipeMsg>> = vec![Vec::new(); n];
    for (i, &(v, payload)) in input.messages.iter().enumerate() {
        own[v as usize].push(PipeMsg {
            id: i as u32,
            payload,
        });
    }
    let routing = host.run(
        |v, _| {
            TreePipeline::new(
                views[v as usize].clone(),
                k,
                own[v as usize].clone(),
                cfg.record_payloads,
            )
        },
        engine(3),
    )?;
    phases.record("tree-pipeline", routing.stats);
    let per_node = routing.take_outputs();

    let all: Vec<(u32, u64)> = input
        .messages
        .iter()
        .enumerate()
        .map(|(i, &(_, p))| (i as u32, p))
        .collect();
    let expected = expected_checksums(all.iter());

    let stats = phases.total();
    Ok(TextbookOutcome {
        total_rounds: phases.total_rounds(),
        phases,
        stats,
        tree_height,
        per_node,
        expected,
        k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{barbell, cycle, harary, path};

    #[test]
    fn delivers_on_standard_families() {
        for g in [path(10), cycle(12), harary(4, 20)] {
            let input = BroadcastInput::random_spread(&g, 15, 2);
            let out = textbook_broadcast(&g, &input, 3).unwrap();
            assert!(out.all_delivered(), "on {:?}", g);
        }
    }

    #[test]
    fn rounds_are_order_d_plus_k() {
        let g = path(30); // D = 29
        let k = 40;
        let input = BroadcastInput::random_spread(&g, k, 1);
        let out = textbook_broadcast(&g, &input, 5).unwrap();
        let d = 29u64;
        // leader O(D) + bfs O(D) + pipeline O(D + k), small constants.
        let bound = 5 * d + 3 * k as u64 + 20;
        assert!(out.total_rounds <= bound, "{} > {bound}", out.total_rounds);
        assert!(out.total_rounds >= d + k as u64);
    }

    #[test]
    fn congestion_is_order_k() {
        let g = harary(4, 24);
        let k = 30;
        let input = BroadcastInput::at_single_node(&g, 0, k);
        let out = textbook_broadcast(&g, &input, 7).unwrap();
        assert!(
            out.phases.phases().last().unwrap().1.max_edge_congestion <= 2 * k as u64,
            "pipeline congestion must be O(k)"
        );
    }

    #[test]
    fn works_at_lambda_one() {
        // The motivating worst case: λ = 1 forces Ω(k) through the bridge.
        let g = barbell(6, 4);
        let input = BroadcastInput::random_spread(&g, 25, 9);
        let out = textbook_broadcast(&g, &input, 11).unwrap();
        assert!(out.all_delivered());
    }
}
