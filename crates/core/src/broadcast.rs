//! The paper's main result (Theorem 1): `k`-broadcast in
//! `O((n log n)/δ + (k log n)/λ)` rounds.
//!
//! The algorithm is a sequential composition, exactly as in the proof:
//!
//! 1. **Leader election** (flood-max) — Lemma 1's prerequisite;
//! 2. **BFS** on `G` from the leader (Lemma 2) — `O(D)` rounds;
//! 3. **Numbering** of the `k` messages over the BFS tree (Lemma 3) —
//!    `O(D)` rounds;
//! 4. **Edge partition** into `λ′ = λ/(C log n)` classes (Theorem 2) —
//!    one round;
//! 5. **Parallel BFS** inside every class simultaneously
//!    ([`crate::bfs::SubgraphBfs`]) — `O((n log n)/δ)` rounds, no
//!    congestion conflicts because classes are edge-disjoint;
//! 6. **Parallel pipelined routing**: message `j` is assigned to class
//!    `⌊j/K⌋`, `K = ⌈k/λ′⌉`, and each class runs Lemma 1 on its own tree
//!    concurrently ([`ParallelPipeline`]) —
//!    `O(max_i (depth_i + k_i)) = O((n log n)/δ + (k log n)/λ)` rounds.
//!
//! Every phase is executed as real message passing and its round count
//! recorded in a [`PhaseLog`]; the total is the number Theorem 1 bounds.

use crate::bfs::{BfsProtocol, SubgraphBfs};
use crate::convergecast::{Numbering, TreeView};
use crate::leader::FloodMax;
use crate::partition::{EdgePartitionProtocol, PartitionParams};
use crate::pipeline::{expected_checksums, PipeCore, PipeMsg, PipeResult};
use congest_graph::{Graph, Node, Port};
use congest_sim::{
    EngineConfig, EngineError, LaneSpec, MsgBits, NodeCtx, PackedMsg, PhaseHost, PhaseLog,
    Protocol, RunStats, WideSession,
};

/// The broadcast problem instance: `k` messages, message `i` initially at
/// node `messages[i].0` with payload `messages[i].1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastInput {
    pub messages: Vec<(Node, u64)>,
}

impl BroadcastInput {
    /// All `k` messages at one node (the classic "source broadcast").
    pub fn at_single_node(g: &Graph, node: Node, k: usize) -> Self {
        assert!((node as usize) < g.n());
        BroadcastInput {
            messages: (0..k)
                .map(|i| (node, congest_sim::rng::mix64(0x0B0E ^ i as u64)))
                .collect(),
        }
    }

    /// `k` messages at independently uniform nodes.
    pub fn random_spread(g: &Graph, k: usize, seed: u64) -> Self {
        let n = g.n() as u64;
        assert!(n > 0);
        BroadcastInput {
            messages: (0..k)
                .map(|i| {
                    let h = congest_sim::rng::mix64(seed ^ congest_sim::rng::mix64(i as u64));
                    ((h % n) as Node, congest_sim::rng::mix64(h))
                })
                .collect(),
        }
    }

    /// One message per node ("everyone broadcasts"), k = n — the regime
    /// where the algorithm is universally optimal (§3.2) and which powers
    /// the broadcast-congested-clique simulation (§1.2).
    pub fn one_per_node(g: &Graph) -> Self {
        BroadcastInput {
            messages: (0..g.n() as Node)
                .map(|v| (v, congest_sim::rng::mix64(0xA11 ^ v as u64)))
                .collect(),
        }
    }

    pub fn k(&self) -> usize {
        self.messages.len()
    }

    /// Payloads grouped by holder, preserving input order within a node.
    pub fn payloads_by_node(&self, n: usize) -> Vec<Vec<u64>> {
        let mut per = vec![Vec::new(); n];
        for &(v, payload) in &self.messages {
            per[v as usize].push(payload);
        }
        per
    }
}

/// Tunables for the full pipeline.
#[derive(Debug, Clone)]
pub struct BroadcastConfig {
    pub seed: u64,
    /// Record full payload lists at every node (tests; memory-heavy).
    pub record_payloads: bool,
    /// Engine round limit per phase.
    pub max_rounds: u64,
    /// Host every phase on one resident [`congest_sim::Session`]
    /// (default) instead of building a fresh engine per phase. Results
    /// are bit-identical either way — the per-phase composition is kept
    /// selectable for the differential tests and the `phase_reuse`
    /// bench arm.
    pub phase_resident: bool,
}

impl Default for BroadcastConfig {
    fn default() -> Self {
        BroadcastConfig {
            seed: 0xB10C,
            record_payloads: false,
            max_rounds: 4_000_000,
            phase_resident: true,
        }
    }
}

impl BroadcastConfig {
    pub fn with_seed(seed: u64) -> Self {
        BroadcastConfig {
            seed,
            ..Default::default()
        }
    }

    fn engine(&self, phase: u64) -> EngineConfig {
        EngineConfig::with_seed(congest_sim::rng::phase_seed(self.seed, phase))
            .max_rounds(self.max_rounds)
    }
}

/// Why a broadcast failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BroadcastError {
    /// A partition class failed to span (Theorem 2's low-probability
    /// failure event — retry with a fresh seed or a smaller λ′).
    NotSpanning {
        subgraph: u32,
        unreached: usize,
    },
    /// The connectivity watchdog found the graph disconnected: no number
    /// of subgraphs can span it, so degradation refuses to burn retries
    /// and reports cleanly instead (see [`crate::watchdog()`]).
    Disconnected,
    Engine(EngineError),
}

impl std::fmt::Display for BroadcastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BroadcastError::NotSpanning { subgraph, unreached } => write!(
                f,
                "partition class {subgraph} left {unreached} nodes unreached (Theorem 2 failure event)"
            ),
            BroadcastError::Disconnected => {
                write!(f, "graph is disconnected: no subgraph count can span it")
            }
            BroadcastError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for BroadcastError {}

impl From<EngineError> for BroadcastError {
    fn from(e: EngineError) -> Self {
        BroadcastError::Engine(e)
    }
}

/// A completed broadcast with its full cost breakdown.
#[derive(Debug, Clone)]
pub struct BroadcastOutcome {
    /// Per-phase round/message/congestion log.
    pub phases: PhaseLog,
    /// Headline number: total rounds across all phases.
    pub total_rounds: u64,
    /// Composed stats (congestion summed pessimistically across phases).
    pub stats: RunStats,
    /// λ′ actually used.
    pub num_subgraphs: usize,
    /// BFS-tree height of every partition class.
    pub subgraph_heights: Vec<u32>,
    /// Per-node delivery results.
    pub per_node: Vec<PipeResult>,
    /// Expected (xor, sum) checksums over all k messages.
    pub expected: (u64, u64),
    /// k.
    pub k: u64,
}

impl BroadcastOutcome {
    /// Did every node receive every message? (Count + two independent
    /// order-invariant checksums.)
    pub fn all_delivered(&self) -> bool {
        self.per_node
            .iter()
            .all(|r| r.delivered == self.k && (r.xor_check, r.sum_check) == self.expected)
    }
}

/// The paper's constant `C` in `λ′ = λ/(C ln n)`. Each partition class has
/// expected degree `C·ln n`; `C = 1` sits exactly at the connectivity
/// threshold, so the default uses `C = 2` — still within Theorem 2's
/// `C = Ω(1)` regime, with failure probability decaying as `n^{-Ω(C)}`.
pub const DEFAULT_PARTITION_C: f64 = 2.0;

/// Theorem 1 with the paper's parameter choice `λ′ = max(1, ⌊λ/(C·ln n)⌋)`
/// at the default `C` ([`DEFAULT_PARTITION_C`]).
pub fn partition_broadcast(
    g: &Graph,
    input: &BroadcastInput,
    lambda: usize,
    seed: u64,
) -> Result<BroadcastOutcome, BroadcastError> {
    let params = PartitionParams::from_lambda(g.n(), lambda, DEFAULT_PARTITION_C);
    partition_broadcast_with(g, input, params, &BroadcastConfig::with_seed(seed))
}

/// Theorem 1 with explicit parameters. See the module docs for the phase
/// structure. Builds a phase host per `cfg.phase_resident` and delegates
/// to [`partition_broadcast_hosted`].
pub fn partition_broadcast_with(
    g: &Graph,
    input: &BroadcastInput,
    params: PartitionParams,
    cfg: &BroadcastConfig,
) -> Result<BroadcastOutcome, BroadcastError> {
    let mut host = PhaseHost::new(g, cfg.phase_resident);
    partition_broadcast_hosted(&mut host, input, params, cfg)
}

/// Theorem 1 on a caller-provided engine host. Drivers that compose
/// several broadcasts (the BCC simulation, APSP, the sparsifier
/// pipeline) pass one resident host so every broadcast — and every phase
/// inside it — reuses the same preallocated engine.
pub fn partition_broadcast_hosted(
    host: &mut PhaseHost<'_>,
    input: &BroadcastInput,
    params: PartitionParams,
    cfg: &BroadcastConfig,
) -> Result<BroadcastOutcome, BroadcastError> {
    let g = host.graph();
    let n = g.n();
    let k = input.k() as u64;
    let lp = params.num_subgraphs;
    let mut phases = PhaseLog::new();

    // Phase stats are recorded together with the engine's post-phase
    // state hash (the snapshot/replay checkpoint signal), which needs
    // the host back — so each phase captures its stats, releases the
    // outcome, then records.

    // Phase 1: leader election.
    let leaders = host.run(|v, _| FloodMax::new(v), cfg.engine(1))?;
    let st = leaders.stats;
    let root = leaders.outputs()[0].leader;
    drop(leaders);
    phases.record_hashed("leader-election", st, host.state_hash());

    // Phase 2: BFS on G from the leader.
    let bfs = host.run(|v, _| BfsProtocol::new(root, v), cfg.engine(2))?;
    let st = bfs.stats;
    let views: Vec<TreeView> = bfs.outputs().iter().map(TreeView::from_bfs).collect();
    drop(bfs);
    phases.record_hashed("bfs", st, host.state_hash());

    // Phase 3: Lemma 3 numbering of the k messages.
    let payloads = input.payloads_by_node(n);
    let numbering = host.run(
        |v, _| Numbering::new(views[v as usize].clone(), payloads[v as usize].len() as u64),
        cfg.engine(3),
    )?;
    let numbering_stats = numbering.stats;
    debug_assert!(numbering.outputs().iter().all(|&(_, total)| total == k));

    // Locally at each node: message j (input order) gets id start_v + j.
    let ids_by_node: Vec<Vec<u32>> = (0..n)
        .map(|v| {
            let (start, _) = numbering.outputs()[v];
            (0..payloads[v].len() as u64)
                .map(|j| (start + j) as u32)
                .collect()
        })
        .collect();
    drop(numbering);
    phases.record_hashed("numbering", numbering_stats, host.state_hash());

    // Phase 4: edge partition (one round).
    let part_protocol = host.run(
        |v, gr| EdgePartitionProtocol::new(v, cfg.seed, lp, gr.degree(v)),
        cfg.engine(4),
    )?;
    let st = part_protocol.stats;
    let port_colors: Vec<Vec<u32>> = part_protocol.take_outputs();
    phases.record_hashed("edge-partition", st, host.state_hash());

    // Phase 5: parallel BFS in every class.
    let sub_bfs_run = host.run(
        |v, _| SubgraphBfs::new(root, v, port_colors[v as usize].clone(), lp),
        cfg.engine(5),
    )?;
    let st = sub_bfs_run.stats;
    let sub_bfs = sub_bfs_run.take_outputs();
    phases.record_hashed("subgraph-bfs", st, host.state_hash());
    // Verify Theorem 2's event: every class spans.
    for c in 0..lp {
        let unreached = sub_bfs.iter().filter(|infos| !infos[c].reached).count();
        if unreached > 0 {
            return Err(BroadcastError::NotSpanning {
                subgraph: c as u32,
                unreached,
            });
        }
    }
    let subgraph_heights: Vec<u32> = (0..lp)
        .map(|c| (0..n).map(|v| sub_bfs[v][c].depth).max().unwrap_or(0))
        .collect();

    // Phase 6: parallel pipelined routing. Message id j → class ⌊j/K⌋.
    let cap = ceil_div(k.max(1), lp as u64);
    let color_of_id = |id: u32| ((id as u64 / cap).min(lp as u64 - 1)) as usize;
    let mut k_per_class = vec![0u64; lp];
    for ids in &ids_by_node {
        for &id in ids {
            k_per_class[color_of_id(id)] += 1;
        }
    }
    let routing = host.run(
        |v, _| {
            let vi = v as usize;
            let cores = (0..lp)
                .map(|c| {
                    let own: Vec<PipeMsg> = ids_by_node[vi]
                        .iter()
                        .zip(payloads[vi].iter())
                        .filter(|(&id, _)| color_of_id(id) == c)
                        .map(|(&id, &payload)| PipeMsg { id, payload })
                        .collect();
                    PipeCore::new(
                        TreeView::from_bfs(&sub_bfs[vi][c]),
                        k_per_class[c],
                        own,
                        cfg.record_payloads,
                    )
                })
                .collect();
            ParallelPipeline::new(cores)
        },
        cfg.engine(6),
    )?;
    let st = routing.stats;
    let per_node = routing.take_outputs();
    phases.record_hashed("parallel-routing", st, host.state_hash());

    // Expected checksums from the id assignment.
    let all_msgs: Vec<(u32, u64)> = (0..n)
        .flat_map(|v| {
            ids_by_node[v]
                .iter()
                .zip(payloads[v].iter())
                .map(|(&id, &p)| (id, p))
                .collect::<Vec<_>>()
        })
        .collect();
    let expected = expected_checksums(all_msgs.iter());

    let stats = phases.total();
    Ok(BroadcastOutcome {
        total_rounds: phases.total_rounds(),
        phases,
        stats,
        num_subgraphs: lp,
        subgraph_heights,
        per_node,
        expected,
        k,
    })
}

/// Retry wrapper: Theorem 2 succeeds w.h.p., so on the rare `NotSpanning`
/// event re-randomize (fresh seed) up to `attempts` times.
pub fn partition_broadcast_retrying(
    g: &Graph,
    input: &BroadcastInput,
    params: PartitionParams,
    cfg: &BroadcastConfig,
    attempts: usize,
) -> Result<(BroadcastOutcome, usize), BroadcastError> {
    let mut host = PhaseHost::new(g, cfg.phase_resident);
    partition_broadcast_retrying_hosted(&mut host, input, params, cfg, attempts)
}

/// [`partition_broadcast_retrying`] on a caller-provided host: retries
/// (and the broadcasts composed around them) all share one engine.
pub fn partition_broadcast_retrying_hosted(
    host: &mut PhaseHost<'_>,
    input: &BroadcastInput,
    params: PartitionParams,
    cfg: &BroadcastConfig,
    attempts: usize,
) -> Result<(BroadcastOutcome, usize), BroadcastError> {
    let mut last_err = None;
    for attempt in 0..attempts.max(1) {
        let mut c = cfg.clone();
        c.seed = cfg.seed.wrapping_add(attempt as u64 * 0x9E37_79B9);
        match partition_broadcast_hosted(host, input, params, &c) {
            Ok(outcome) => return Ok((outcome, attempt + 1)),
            Err(e @ BroadcastError::NotSpanning { .. }) => last_err = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last_err.expect("at least one attempt"))
}

#[inline]
fn ceil_div(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Theorem 1, **W independent instances in one sweep**: lane `l` runs the
/// whole six-phase composition under broadcast seed `seeds[l]`, with all
/// lanes advancing through each phase in lockstep on one
/// [`WideSession`]. Lane `l`'s result — phase log, stats, deliveries —
/// is bit-identical to
/// `partition_broadcast_with(g, input, params, &BroadcastConfig { seed: seeds[l], ..cfg })`,
/// which is exactly the seed-sweep the retry wrapper
/// ([`partition_broadcast_retrying`]) performs one at a time: the wide
/// driver explores all candidate seeds concurrently, paying the arc
/// sweep once per round instead of once per seed.
///
/// **Lane compaction:** lanes whose partition fails the phase-5 spanning
/// check (Theorem 2's low-probability failure event) drop out and are
/// reported as `Err(NotSpanning)`; the surviving lanes run the routing
/// phase on a compacted lane set. An engine error (round limit) aborts
/// the whole batch, exactly as it would abort each sequential run.
pub fn partition_broadcast_wide(
    g: &Graph,
    input: &BroadcastInput,
    params: PartitionParams,
    cfg: &BroadcastConfig,
    seeds: &[u64],
) -> Result<Vec<Result<BroadcastOutcome, BroadcastError>>, BroadcastError> {
    let w = seeds.len();
    assert!(
        (1..=congest_sim::MAX_LANES).contains(&w),
        "1..={} broadcast lanes, got {w}",
        congest_sim::MAX_LANES
    );
    let n = g.n();
    let k = input.k() as u64;
    let lp = params.num_subgraphs;
    let mut session = WideSession::new(g);
    let econf = EngineConfig::with_seed(0).max_rounds(cfg.max_rounds);
    // Per-phase lane seeds follow the sequential drivers' `cfg.engine(k)`
    // discipline: lane l, phase p runs under `phase_seed(seeds[l], p)`.
    let lane_specs = |phase: u64, lane_seeds: &[u64]| -> Vec<LaneSpec> {
        lane_seeds
            .iter()
            .map(|&s| LaneSpec::new(congest_sim::rng::phase_seed(s, phase)))
            .collect()
    };
    let mut logs: Vec<PhaseLog> = (0..w).map(|_| PhaseLog::new()).collect();

    // Phase 1: leader election, all lanes.
    let roots: Vec<Node> = {
        let out = session.run(
            &lane_specs(1, seeds),
            |v, _, _| FloodMax::new(v),
            econf.clone(),
        )?;
        (0..w)
            .map(|l| {
                logs[l].record("leader-election", out.stats(l));
                out.outputs(l)[0].leader
            })
            .collect()
    };

    // Phase 2: BFS on G from each lane's leader.
    let views: Vec<Vec<TreeView>> = {
        let out = session.run(
            &lane_specs(2, seeds),
            |v, l, _| BfsProtocol::new(roots[l], v),
            econf.clone(),
        )?;
        (0..w)
            .map(|l| {
                logs[l].record("bfs", out.stats(l));
                out.outputs(l).iter().map(TreeView::from_bfs).collect()
            })
            .collect()
    };

    // Phase 3: Lemma 3 numbering, per lane.
    let payloads = input.payloads_by_node(n);
    let ids_by_node: Vec<Vec<Vec<u32>>> = {
        let out = session.run(
            &lane_specs(3, seeds),
            |v, l, _| {
                Numbering::new(
                    views[l][v as usize].clone(),
                    payloads[v as usize].len() as u64,
                )
            },
            econf.clone(),
        )?;
        (0..w)
            .map(|l| {
                logs[l].record("numbering", out.stats(l));
                debug_assert!(out.outputs(l).iter().all(|&(_, total)| total == k));
                (0..n)
                    .map(|v| {
                        let (start, _) = out.outputs(l)[v];
                        (0..payloads[v].len() as u64)
                            .map(|j| (start + j) as u32)
                            .collect()
                    })
                    .collect()
            })
            .collect()
    };

    // Phase 4: edge partition — lane l colors with its own broadcast
    // seed, exactly as the sequential driver uses `cfg.seed`.
    let port_colors: Vec<Vec<Vec<u32>>> = {
        let mut out = session.run(
            &lane_specs(4, seeds),
            |v, l, gr: &Graph| EdgePartitionProtocol::new(v, seeds[l], lp, gr.degree(v)),
            econf.clone(),
        )?;
        (0..w)
            .map(|l| {
                logs[l].record("edge-partition", out.stats(l));
                out.take_lane_outputs(l)
            })
            .collect()
    };

    // Phase 5: parallel BFS in every class, per lane, then the spanning
    // check — failing lanes compact out here.
    let sub_bfs: Vec<Vec<crate::bfs::SubgraphBfsInfo>> = {
        let mut out = session.run(
            &lane_specs(5, seeds),
            |v, l, _| SubgraphBfs::new(roots[l], v, port_colors[l][v as usize].clone(), lp),
            econf.clone(),
        )?;
        (0..w)
            .map(|l| {
                logs[l].record("subgraph-bfs", out.stats(l));
                out.take_lane_outputs(l)
            })
            .collect()
    };
    let mut failed: Vec<Option<BroadcastError>> = (0..w).map(|_| None).collect();
    for l in 0..w {
        for c in 0..lp {
            let unreached = sub_bfs[l].iter().filter(|infos| !infos[c].reached).count();
            if unreached > 0 {
                failed[l] = Some(BroadcastError::NotSpanning {
                    subgraph: c as u32,
                    unreached,
                });
                break;
            }
        }
    }
    let alive: Vec<usize> = (0..w).filter(|&l| failed[l].is_none()).collect();

    // Phase 6: parallel pipelined routing on the compacted lane set.
    let cap = ceil_div(k.max(1), lp as u64);
    let color_of_id = |id: u32| ((id as u64 / cap).min(lp as u64 - 1)) as usize;
    let k_per_class: Vec<Vec<u64>> = (0..w)
        .map(|l| {
            let mut per = vec![0u64; lp];
            for ids in &ids_by_node[l] {
                for &id in ids {
                    per[color_of_id(id)] += 1;
                }
            }
            per
        })
        .collect();
    let mut per_node: Vec<Option<Vec<PipeResult>>> = (0..w).map(|_| None).collect();
    if !alive.is_empty() {
        let routing_seeds: Vec<u64> = alive.iter().map(|&l| seeds[l]).collect();
        let mut out = session.run(
            &lane_specs(6, &routing_seeds),
            |v, li, _| {
                let l = alive[li];
                let vi = v as usize;
                let cores = (0..lp)
                    .map(|c| {
                        let own: Vec<PipeMsg> = ids_by_node[l][vi]
                            .iter()
                            .zip(payloads[vi].iter())
                            .filter(|(&id, _)| color_of_id(id) == c)
                            .map(|(&id, &payload)| PipeMsg { id, payload })
                            .collect();
                        PipeCore::new(
                            TreeView::from_bfs(&sub_bfs[l][vi][c]),
                            k_per_class[l][c],
                            own,
                            cfg.record_payloads,
                        )
                    })
                    .collect();
                ParallelPipeline::new(cores)
            },
            econf.clone(),
        )?;
        for (li, &l) in alive.iter().enumerate() {
            logs[l].record("parallel-routing", out.stats(li));
            per_node[l] = Some(out.take_lane_outputs(li));
        }
    }

    // Assemble per-lane results.
    Ok((0..w)
        .map(|l| {
            if let Some(err) = failed[l].take() {
                return Err(err);
            }
            let subgraph_heights: Vec<u32> = (0..lp)
                .map(|c| (0..n).map(|v| sub_bfs[l][v][c].depth).max().unwrap_or(0))
                .collect();
            let all_msgs: Vec<(u32, u64)> = (0..n)
                .flat_map(|v| {
                    ids_by_node[l][v]
                        .iter()
                        .zip(payloads[v].iter())
                        .map(|(&id, &p)| (id, p))
                        .collect::<Vec<_>>()
                })
                .collect();
            let expected = expected_checksums(all_msgs.iter());
            let phases = std::mem::take(&mut logs[l]);
            let stats = phases.total();
            Ok(BroadcastOutcome {
                total_rounds: phases.total_rounds(),
                phases,
                stats,
                num_subgraphs: lp,
                subgraph_heights,
                per_node: per_node[l].take().expect("alive lane routed"),
                expected,
                k,
            })
        })
        .collect())
}

/// One message on the wire during parallel routing: the class tag plus the
/// usual pipeline payload. Classes are edge-disjoint, so each port only
/// ever carries its own class's messages — the tag is for safety checking
/// and for the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColoredPipeMsg {
    pub color: u16,
    pub inner: PipeMsg,
}

impl MsgBits for ColoredPipeMsg {
    fn bits(&self) -> usize {
        16 + self.inner.bits()
    }
}

/// Bit budget: `pipe(96) | color(16)`.
impl PackedMsg for ColoredPipeMsg {
    type Word = u128;
    const WIDTH: u32 = PipeMsg::WIDTH + 16;
    #[inline]
    fn pack(self) -> u128 {
        self.inner.pack() | (self.color as u128) << PipeMsg::WIDTH
    }
    #[inline]
    fn unpack(word: u128) -> Self {
        ColoredPipeMsg {
            color: (word >> PipeMsg::WIDTH) as u16,
            inner: PipeMsg::unpack(word & congest_sim::message::low_mask(PipeMsg::WIDTH)),
        }
    }
}

/// λ′ pipelined broadcasts running concurrently, one per partition class,
/// each confined to its own class's tree edges.
pub struct ParallelPipeline {
    cores: Vec<PipeCore>,
}

impl ParallelPipeline {
    pub fn new(cores: Vec<PipeCore>) -> Self {
        ParallelPipeline { cores }
    }
}

impl Protocol for ParallelPipeline {
    type Msg = ColoredPipeMsg;
    type Output = PipeResult;

    fn round(&mut self, ctx: &mut NodeCtx<'_, ColoredPipeMsg>) {
        let arrivals: Vec<(Port, ColoredPipeMsg)> = ctx.inbox().collect();
        for (p, m) in arrivals {
            self.cores[m.color as usize].on_receive(p, m.inner);
        }
        for c in 0..self.cores.len() {
            let (up, down) = self.cores[c].emit();
            if let Some(m) = up {
                let pp = self.cores[c].tree().parent_port.expect("non-root sends up");
                ctx.send(
                    pp,
                    ColoredPipeMsg {
                        color: c as u16,
                        inner: m,
                    },
                );
            }
            if let Some(m) = down {
                for &child in &self.cores[c].tree().children_ports.clone() {
                    ctx.send(
                        child,
                        ColoredPipeMsg {
                            color: c as u16,
                            inner: m,
                        },
                    );
                }
            }
        }
        ctx.set_done(self.cores.iter().all(|c| c.complete()));
    }

    fn finish(self) -> PipeResult {
        // Fold per-class results into one node-level result.
        let mut delivered = 0;
        let mut xor_check = 0u64;
        let mut sum_check = 0u64;
        let mut recorded: Option<Vec<(u32, u64)>> = None;
        for core in self.cores {
            let r = core.into_result();
            delivered += r.delivered;
            xor_check ^= r.xor_check;
            sum_check = sum_check.wrapping_add(r.sum_check);
            if let Some(mut rec) = r.recorded {
                recorded.get_or_insert_with(Vec::new).append(&mut rec);
            }
        }
        PipeResult {
            delivered,
            xor_check,
            sum_check,
            recorded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{clique_chain, complete, harary, hypercube};

    #[test]
    fn broadcast_on_harary_all_delivered() {
        let g = harary(16, 48);
        let input = BroadcastInput::random_spread(&g, 96, 5);
        let out = partition_broadcast(&g, &input, 16, 17).unwrap();
        assert!(out.all_delivered());
        assert_eq!(out.k, 96);
        assert!(out.num_subgraphs >= 2, "λ = 16 must yield parallelism");
        assert_eq!(out.phases.len(), 6);
    }

    #[test]
    fn broadcast_single_source() {
        let g = complete(32);
        let input = BroadcastInput::at_single_node(&g, 7, 50);
        let out = partition_broadcast(&g, &input, 31, 3).unwrap();
        assert!(out.all_delivered());
        // λ' = ⌊31/(2·ln 32)⌋ = 4 classes on K_32.
        assert_eq!(out.num_subgraphs, 4);
    }

    #[test]
    fn one_per_node_regime() {
        let g = hypercube(5); // n = 32, λ = 5
        let input = BroadcastInput::one_per_node(&g);
        // λ = 5, ln 32 ≈ 3.47 ⇒ λ' = 1 (degenerate single tree), still valid.
        let out = partition_broadcast(&g, &input, 5, 9).unwrap();
        assert!(out.all_delivered());
        assert_eq!(out.num_subgraphs, 1);
    }

    #[test]
    fn explicit_subgraph_count() {
        // λ = 16 split 3 ways: class degree ≈ 5.3 > ln 48 — spans w.h.p.;
        // retry wrapper absorbs the residual failure probability.
        let g = harary(16, 48);
        let input = BroadcastInput::random_spread(&g, 80, 1);
        let (out, _) = partition_broadcast_retrying(
            &g,
            &input,
            PartitionParams::explicit(3),
            &BroadcastConfig::with_seed(2),
            10,
        )
        .unwrap();
        assert!(out.all_delivered());
        assert_eq!(out.num_subgraphs, 3);
        assert_eq!(out.subgraph_heights.len(), 3);
    }

    #[test]
    fn failure_detected_when_too_many_classes() {
        // λ = 2 but demand 16 classes on a sparse graph: classes can't all
        // span; must report NotSpanning (never silently mis-deliver).
        let g = congest_graph::generators::cycle(16);
        let input = BroadcastInput::random_spread(&g, 8, 0);
        let err = partition_broadcast_with(
            &g,
            &input,
            PartitionParams::explicit(16),
            &BroadcastConfig::with_seed(0),
        )
        .unwrap_err();
        assert!(matches!(err, BroadcastError::NotSpanning { .. }));
    }

    #[test]
    fn retrying_succeeds_on_borderline_partition() {
        let g = clique_chain(3, 12, 6);
        let input = BroadcastInput::random_spread(&g, 40, 4);
        // λ = 6; two classes is borderline but should succeed within a few
        // seeds.
        let (out, attempts) = partition_broadcast_retrying(
            &g,
            &input,
            PartitionParams::explicit(2),
            &BroadcastConfig::with_seed(77),
            20,
        )
        .unwrap();
        assert!(out.all_delivered());
        assert!(attempts >= 1);
    }

    #[test]
    fn record_payloads_collects_everything() {
        let g = complete(16);
        let input = BroadcastInput::random_spread(&g, 20, 6);
        let mut cfg = BroadcastConfig::with_seed(8);
        cfg.record_payloads = true;
        let out = partition_broadcast_with(&g, &input, PartitionParams::explicit(2), &cfg).unwrap();
        assert!(out.all_delivered());
        for r in &out.per_node {
            let rec = r.recorded.as_ref().unwrap();
            assert_eq!(rec.len(), 20);
            // Payload multiset must equal the input's.
            let mut got: Vec<u64> = rec.iter().map(|&(_, p)| p).collect();
            got.sort_unstable();
            let mut want: Vec<u64> = input.messages.iter().map(|&(_, p)| p).collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    /// The session-hosted composition must reproduce the per-phase
    /// composition bit for bit: same per-phase log, same stats, same
    /// per-node deliveries. This pins the drivers' `phase_resident`
    /// default against the pre-session behavior.
    #[test]
    fn phase_resident_and_per_phase_compositions_agree() {
        let g = harary(16, 48);
        let input = BroadcastInput::random_spread(&g, 96, 5);
        let params = PartitionParams::from_lambda(g.n(), 16, DEFAULT_PARTITION_C);
        let mut cfg = BroadcastConfig::with_seed(17);
        cfg.record_payloads = true;
        assert!(cfg.phase_resident, "resident hosting is the default");
        let resident = partition_broadcast_with(&g, &input, params, &cfg).unwrap();
        cfg.phase_resident = false;
        let per_phase = partition_broadcast_with(&g, &input, params, &cfg).unwrap();
        assert_eq!(resident.total_rounds, per_phase.total_rounds);
        assert_eq!(resident.stats, per_phase.stats);
        assert_eq!(resident.num_subgraphs, per_phase.num_subgraphs);
        assert_eq!(resident.subgraph_heights, per_phase.subgraph_heights);
        assert_eq!(resident.per_node, per_phase.per_node);
        assert_eq!(resident.expected, per_phase.expected);
        assert_eq!(resident.phases.len(), per_phase.phases.len());
        for ((na, sa), (nb, sb)) in resident.phases.phases().zip(per_phase.phases.phases()) {
            assert_eq!(na, nb);
            assert_eq!(sa, sb, "phase {na}");
        }
    }

    /// One sequential broadcast per seed is the oracle for the wide
    /// driver: every lane must reproduce its seed's run bit for bit —
    /// phase log, stats, heights, deliveries, recorded payloads.
    #[test]
    fn wide_lanes_match_sequential_per_seed() {
        let g = harary(16, 48);
        let input = BroadcastInput::random_spread(&g, 96, 5);
        let params = PartitionParams::from_lambda(g.n(), 16, DEFAULT_PARTITION_C);
        let mut cfg = BroadcastConfig::with_seed(0); // superseded per lane
        cfg.record_payloads = true;
        let seeds = [5u64, 17, 23, 42, 0xB10C];
        let wide = partition_broadcast_wide(&g, &input, params, &cfg, &seeds).unwrap();
        assert_eq!(wide.len(), seeds.len());
        for (l, &seed) in seeds.iter().enumerate() {
            let seq_cfg = BroadcastConfig {
                seed,
                ..cfg.clone()
            };
            let seq = partition_broadcast_with(&g, &input, params, &seq_cfg);
            match (&wide[l], &seq) {
                (Ok(wo), Ok(so)) => {
                    assert_eq!(wo.total_rounds, so.total_rounds, "lane {l}");
                    assert_eq!(wo.stats, so.stats, "lane {l}");
                    assert_eq!(wo.num_subgraphs, so.num_subgraphs);
                    assert_eq!(wo.subgraph_heights, so.subgraph_heights, "lane {l}");
                    assert_eq!(wo.per_node, so.per_node, "lane {l}");
                    assert_eq!(wo.expected, so.expected);
                    assert_eq!(wo.k, so.k);
                    assert!(wo.all_delivered(), "lane {l}");
                    assert_eq!(wo.phases.len(), so.phases.len());
                    for ((na, sa), (nb, sb)) in wo.phases.phases().zip(so.phases.phases()) {
                        assert_eq!(na, nb);
                        assert_eq!(sa, sb, "lane {l} phase {na}");
                    }
                }
                (Err(we), Err(se)) => assert_eq!(we, se, "lane {l}"),
                (w, s) => panic!("lane {l} diverged: wide {w:?} vs sequential {s:?}"),
            }
        }
    }

    /// Mixed outcomes: on a borderline partition some seeds fail the
    /// spanning check. Failing lanes must surface as per-lane
    /// `NotSpanning` while the survivors still route correctly on the
    /// compacted lane set — each lane again equal to its sequential run.
    #[test]
    fn wide_compacts_out_non_spanning_lanes() {
        let g = clique_chain(3, 12, 6);
        let input = BroadcastInput::random_spread(&g, 40, 4);
        let params = PartitionParams::explicit(2);
        let cfg = BroadcastConfig::with_seed(0);
        // The retrying test's seed family: borderline two-class split.
        let seeds: Vec<u64> = (0..12u64)
            .map(|a| 77u64.wrapping_add(a * 0x9E37_79B9))
            .collect();
        let wide = partition_broadcast_wide(&g, &input, params, &cfg, &seeds).unwrap();
        let mut ok = 0usize;
        let mut failed = 0usize;
        for (l, &seed) in seeds.iter().enumerate() {
            let seq_cfg = BroadcastConfig {
                seed,
                ..cfg.clone()
            };
            let seq = partition_broadcast_with(&g, &input, params, &seq_cfg);
            match (&wide[l], &seq) {
                (Ok(wo), Ok(so)) => {
                    ok += 1;
                    assert!(wo.all_delivered(), "lane {l}");
                    assert_eq!(wo.total_rounds, so.total_rounds, "lane {l}");
                    assert_eq!(wo.stats, so.stats, "lane {l}");
                    assert_eq!(wo.per_node, so.per_node, "lane {l}");
                }
                (Err(we), Err(se)) => {
                    failed += 1;
                    assert_eq!(we, se, "lane {l}");
                    assert!(matches!(we, BroadcastError::NotSpanning { .. }));
                }
                (w, s) => panic!("lane {l} diverged: wide {w:?} vs sequential {s:?}"),
            }
        }
        assert!(ok > 0, "seed family produced no spanning partition");
        assert!(
            failed > 0,
            "seed family produced no failure — not borderline"
        );
    }

    #[test]
    fn zero_messages() {
        let g = complete(16);
        let input = BroadcastInput {
            messages: Vec::new(),
        };
        let out = partition_broadcast(&g, &input, 15, 1).unwrap();
        assert!(out.all_delivered());
        assert_eq!(out.k, 0);
    }
}
