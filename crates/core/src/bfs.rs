//! Distributed BFS (paper Lemma 2) — single-tree and parallel
//! per-subgraph variants.
//!
//! The single-tree variant builds a BFS tree rooted at a given node in
//! `O(D)` rounds. The [`SubgraphBfs`] variant is the workhorse of the
//! paper's broadcast: after the Theorem 2 edge partition colors every edge
//! with a subgraph index `i ∈ [λ′]`, BFS waves for **all** subgraphs run
//! simultaneously — each wave only travels over its own color class, and
//! since color classes are edge-disjoint, the one-message-per-edge-round
//! CONGEST budget is respected without any scheduling.
//!
//! Both variants are message-driven: a node adopts the first wave it
//! hears (lowest port wins ties, for determinism), relays once, and
//! reports `Child` to its parent so parents learn their children — the
//! structure the pipelined broadcast (Lemma 1) needs.

use congest_graph::{Node, Port};
use congest_sim::{MsgBits, NodeCtx, PackedMsg, Protocol};

/// Wire message for BFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BfsMsg {
    /// The exploration wave, carrying the sender's depth + 1.
    Wave { depth: u32 },
    /// "You are my parent."
    Child,
}

impl MsgBits for BfsMsg {
    fn bits(&self) -> usize {
        // 1 tag bit + a depth counter (≤ log n bits semantically; we
        // account the full u32 width, conservatively).
        match self {
            BfsMsg::Wave { .. } => 1 + 32,
            BfsMsg::Child => 1,
        }
    }
}

/// Bit budget: `tag(1) | depth(32)`.
impl PackedMsg for BfsMsg {
    type Word = u64;
    const WIDTH: u32 = 33;
    #[inline]
    fn pack(self) -> u64 {
        match self {
            BfsMsg::Child => 0,
            BfsMsg::Wave { depth } => 1 | (depth as u64) << 1,
        }
    }
    #[inline]
    fn unpack(word: u64) -> Self {
        if word & 1 == 0 {
            BfsMsg::Child
        } else {
            BfsMsg::Wave {
                depth: (word >> 1) as u32,
            }
        }
    }
}

/// Per-node result of a BFS run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsNodeInfo {
    /// Port towards the parent (`None` for the root and unreached nodes).
    pub parent_port: Option<Port>,
    /// Depth in the tree (`u32::MAX` if unreached).
    pub depth: u32,
    /// Ports towards children, in ascending port order.
    pub children_ports: Vec<Port>,
    /// Whether this node was reached at all.
    pub reached: bool,
}

impl BfsNodeInfo {
    fn unreached() -> Self {
        BfsNodeInfo {
            parent_port: None,
            depth: u32::MAX,
            children_ports: Vec::new(),
            reached: false,
        }
    }
}

/// Single-tree distributed BFS from `root`.
pub struct BfsProtocol {
    root: Node,
    me: Node,
    info: BfsNodeInfo,
    relayed: bool,
}

impl BfsProtocol {
    pub fn new(root: Node, me: Node) -> Self {
        BfsProtocol {
            root,
            me,
            info: BfsNodeInfo::unreached(),
            relayed: false,
        }
    }
}

impl Protocol for BfsProtocol {
    type Msg = BfsMsg;
    type Output = BfsNodeInfo;
    /// A node relays in the very round it adopts a parent (or round 0 at
    /// the root), so `reached ⇒ relayed` at every round boundary; with an
    /// empty inbox nothing else can change. Done rounds are no-ops and
    /// the wide kernel may skip them.
    const QUIESCENT: bool = true;

    fn round(&mut self, ctx: &mut NodeCtx<'_, BfsMsg>) {
        // Root bootstraps.
        if ctx.round == 0 && self.me == self.root {
            self.info.reached = true;
            self.info.depth = 0;
        }
        // Process arrivals.
        let mut first_wave: Option<(Port, u32)> = None;
        for (port, msg) in ctx.inbox() {
            match msg {
                BfsMsg::Wave { depth } => {
                    if !self.info.reached && first_wave.is_none() {
                        first_wave = Some((port, depth));
                    }
                }
                BfsMsg::Child => self.info.children_ports.push(port),
            }
        }
        if let Some((port, depth)) = first_wave {
            self.info.reached = true;
            self.info.depth = depth;
            self.info.parent_port = Some(port);
        }
        // Relay the wave exactly once (root: on round 0; others: the round
        // they adopt a parent). Also tell the parent it has a child.
        if self.info.reached && !self.relayed {
            self.relayed = true;
            let wave = BfsMsg::Wave {
                depth: self.info.depth + 1,
            };
            for p in 0..ctx.degree() as Port {
                if Some(p) == self.info.parent_port {
                    ctx.send(p, BfsMsg::Child);
                } else {
                    ctx.send(p, wave);
                }
            }
        }
        ctx.set_done(self.relayed || ctx.round > 0);
    }

    fn finish(self) -> BfsNodeInfo {
        self.info
    }
}

/// Wire message for the parallel per-subgraph BFS: the wave is tagged with
/// its subgraph index. Each edge belongs to exactly one subgraph, so no
/// edge ever needs to carry two waves in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubBfsMsg {
    Wave { subgraph: u32, depth: u32 },
    Child { subgraph: u32 },
}

impl MsgBits for SubBfsMsg {
    fn bits(&self) -> usize {
        match self {
            SubBfsMsg::Wave { .. } => 1 + 16 + 32,
            SubBfsMsg::Child { .. } => 1 + 16,
        }
    }
}

/// Bit budget: `tag(1) | subgraph(16) | depth(32)`. λ′ (the subgraph
/// count) is at most λ/(C log n) ≤ n, and 16 bits cover every experiment
/// scale; `pack` asserts the bound in debug builds.
impl PackedMsg for SubBfsMsg {
    type Word = u64;
    const WIDTH: u32 = 49;
    #[inline]
    fn pack(self) -> u64 {
        match self {
            SubBfsMsg::Child { subgraph } => {
                debug_assert!(subgraph < 1 << 16);
                (subgraph as u64) << 1
            }
            SubBfsMsg::Wave { subgraph, depth } => {
                debug_assert!(subgraph < 1 << 16);
                1 | (subgraph as u64) << 1 | (depth as u64) << 17
            }
        }
    }
    #[inline]
    fn unpack(word: u64) -> Self {
        let subgraph = (word >> 1) as u32 & 0xFFFF;
        if word & 1 == 0 {
            SubBfsMsg::Child { subgraph }
        } else {
            SubBfsMsg::Wave {
                subgraph,
                depth: (word >> 17) as u32,
            }
        }
    }
}

/// Per-node result of the parallel BFS: one [`BfsNodeInfo`] per subgraph.
pub type SubgraphBfsInfo = Vec<BfsNodeInfo>;

/// Parallel BFS over the `λ′` edge-disjoint subgraphs of a Theorem 2
/// partition, all rooted at the same node.
///
/// `port_colors[p]` is the subgraph index of the edge behind port `p`
/// (from the partition phase). The wave for subgraph `i` travels only over
/// ports with color `i`.
pub struct SubgraphBfs {
    root: Node,
    me: Node,
    port_colors: Vec<u32>,
    num_subgraphs: usize,
    info: Vec<BfsNodeInfo>,
    relayed: Vec<bool>,
}

impl SubgraphBfs {
    pub fn new(root: Node, me: Node, port_colors: Vec<u32>, num_subgraphs: usize) -> Self {
        debug_assert!(port_colors.iter().all(|&c| (c as usize) < num_subgraphs));
        SubgraphBfs {
            root,
            me,
            port_colors,
            num_subgraphs,
            info: (0..num_subgraphs)
                .map(|_| BfsNodeInfo::unreached())
                .collect(),
            relayed: vec![false; num_subgraphs],
        }
    }
}

impl Protocol for SubgraphBfs {
    type Msg = SubBfsMsg;
    type Output = SubgraphBfsInfo;
    /// Same argument as [`BfsProtocol`], per class: each subgraph's wave
    /// is relayed in the round it is adopted, so an empty inbox leaves
    /// every `reached`/`relayed` pair in lockstep and the round is a
    /// no-op.
    const QUIESCENT: bool = true;

    fn round(&mut self, ctx: &mut NodeCtx<'_, SubBfsMsg>) {
        if ctx.round == 0 && self.me == self.root {
            for i in 0..self.num_subgraphs {
                self.info[i].reached = true;
                self.info[i].depth = 0;
            }
        }
        // Arrivals. At most one wave per subgraph can arrive on distinct
        // ports; lowest port wins (inbox iterates ports ascending).
        for (port, msg) in ctx.inbox() {
            match msg {
                SubBfsMsg::Wave { subgraph, depth } => {
                    debug_assert_eq!(
                        self.port_colors[port as usize], subgraph,
                        "wave crossed an edge of the wrong color"
                    );
                    let info = &mut self.info[subgraph as usize];
                    if !info.reached {
                        info.reached = true;
                        info.depth = depth;
                        info.parent_port = Some(port);
                    }
                }
                SubBfsMsg::Child { subgraph } => {
                    self.info[subgraph as usize].children_ports.push(port);
                }
            }
        }
        // Relay each newly-adopted subgraph's wave over its color class.
        for i in 0..self.num_subgraphs {
            if self.info[i].reached && !self.relayed[i] {
                self.relayed[i] = true;
                for p in 0..ctx.degree() as Port {
                    if self.port_colors[p as usize] != i as u32 {
                        continue;
                    }
                    if Some(p) == self.info[i].parent_port {
                        ctx.send(p, SubBfsMsg::Child { subgraph: i as u32 });
                    } else {
                        ctx.send(
                            p,
                            SubBfsMsg::Wave {
                                subgraph: i as u32,
                                depth: self.info[i].depth + 1,
                            },
                        );
                    }
                }
            }
        }
        ctx.set_done(true);
    }

    fn finish(self) -> SubgraphBfsInfo {
        self.info
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::algo::bfs::bfs_distances;
    use congest_graph::generators::{complete, cycle, harary, path, torus2d};
    use congest_graph::Graph;
    use congest_sim::{run_protocol, EngineConfig};

    fn run_bfs(g: &Graph, root: Node) -> Vec<BfsNodeInfo> {
        run_protocol(g, |v, _| BfsProtocol::new(root, v), EngineConfig::default())
            .unwrap()
            .outputs
    }

    #[test]
    fn depths_match_centralized_bfs() {
        for g in [path(9), cycle(10), torus2d(4, 5), complete(8)] {
            let infos = run_bfs(&g, 0);
            let exact = bfs_distances(&g, 0);
            for v in 0..g.n() {
                assert_eq!(infos[v].depth, exact[v], "node {v}");
                assert!(infos[v].reached);
            }
        }
    }

    #[test]
    fn parent_child_structure_is_consistent() {
        let g = torus2d(4, 4);
        let infos = run_bfs(&g, 0);
        // Every non-root has a parent one level up; children lists mirror
        // parent pointers exactly.
        let mut claimed_children = 0;
        for v in 0..g.n() as Node {
            if v == 0 {
                assert!(infos[0].parent_port.is_none());
            } else {
                let pp = infos[v as usize].parent_port.expect("non-root parent");
                let parent = g.neighbor_at(v, pp);
                assert_eq!(infos[v as usize].depth, infos[parent as usize].depth + 1);
                // Parent's children list contains a port back to v.
                let back = g.port_to(parent, v).unwrap();
                assert!(
                    infos[parent as usize].children_ports.contains(&back),
                    "parent {parent} must list child {v}"
                );
            }
            claimed_children += infos[v as usize].children_ports.len();
        }
        // Tree has exactly n-1 edges.
        assert_eq!(claimed_children, g.n() - 1);
    }

    #[test]
    fn bfs_round_complexity_is_depth_plus_constant() {
        let g = path(12);
        let out = run_protocol(&g, |v, _| BfsProtocol::new(0, v), EngineConfig::default()).unwrap();
        // Wave reaches depth 11 at round 11; Child replies land at 12.
        assert!(out.stats.rounds as u32 >= 11);
        assert!(out.stats.rounds as u32 <= 13);
    }

    #[test]
    fn subgraph_bfs_with_two_color_partition() {
        // Color edges of a 6-edge-connected Harary graph alternately by
        // edge id parity; both classes happen to stay connected here.
        let g = harary(6, 24);
        let colors_of = |gr: &Graph, v: Node| -> Vec<u32> {
            gr.incident_edges(v).iter().map(|&e| e % 2).collect()
        };
        let out = run_protocol(
            &g,
            |v, gr| SubgraphBfs::new(0, v, colors_of(gr, v), 2),
            EngineConfig::default(),
        )
        .unwrap();
        for i in 0..2usize {
            // Verify against centralized restricted BFS.
            let t = congest_graph::algo::bfs::bfs_tree_restricted(&g, 0, |e| e % 2 == i as u32);
            for v in 0..g.n() {
                assert_eq!(
                    out.outputs[v][i].reached,
                    t.depth[v] != u32::MAX,
                    "subgraph {i} node {v} reach"
                );
                if out.outputs[v][i].reached {
                    assert_eq!(out.outputs[v][i].depth, t.depth[v], "subgraph {i} node {v}");
                }
            }
        }
    }

    #[test]
    fn subgraph_bfs_marks_unreachable_in_disconnected_color() {
        // Path: color all edges 0 except the middle edge colored 1 ⇒
        // color-1 subgraph is disconnected from the root except across
        // that one edge... nodes beyond it unreachable in color 0.
        let g = path(6);
        let mid = 2u32; // edge ids are canonical-sorted: (0,1)=0,(1,2)=1,(2,3)=2,...
        let out = run_protocol(
            &g,
            |v, gr: &Graph| {
                let colors = gr
                    .incident_edges(v)
                    .iter()
                    .map(|&e| if e == mid { 1 } else { 0 })
                    .collect();
                SubgraphBfs::new(0, v, colors, 2)
            },
            EngineConfig::default(),
        )
        .unwrap();
        // Color 0 reaches nodes 0..=2 only (edge (2,3) is color 1).
        for v in 0..6 {
            let reach0 = out.outputs[v][0].reached;
            assert_eq!(reach0, v <= 2, "node {v} color0");
        }
        // Color 1 reaches only the root (its only edge is far from node 0).
        assert!(out.outputs[0][1].reached);
        for v in 1..6 {
            assert!(!out.outputs[v][1].reached, "node {v} color1");
        }
    }
}
